"""Compare the paper's four diagonalization methods on a hard case.

CN+ is the strongly multireference system the paper uses to stress-test
eigensolvers (Table 2): plain Olsen single-vector iteration diverges, the
fixed-damping variant stalls, while Davidson's subspace method and the
paper's automatically adjusted single-vector method both converge tightly -
the latter storing only a single CI vector (no subspace), which is what made
the 65-billion-determinant benchmark possible.

Run:  python examples/diagonalization_methods.py
"""

from repro import FCISolver, Molecule


def main() -> None:
    mol = Molecule.from_atoms(
        [("C", (0, 0, 0)), ("N", (0, 0, 2.2))], charge=1, name="CN+"
    )
    common = dict(
        basis="sto-3g",
        frozen_core=2,
        point_group="C2v",
        wavefunction_irrep="A1",
        max_iterations=60,
    )
    reference = None
    print("CN+ X1Sigma+ / STO-3G, frozen 1s cores, C2v symmetry (A1 block)\n")
    for method in ["davidson", "auto", "olsen", "olsen-damped"]:
        result = FCISolver(mol, method=method, **common).run()
        if reference is None:
            reference = result.energy
        right_state = abs(result.energy - reference) < 1e-6
        status = (
            "converged"
            if result.solve.converged and right_state
            else "NOT CONVERGED (diverged or wrong state)"
        )
        print(f"{method:13s}: E = {result.energy:14.8f}  "
              f"iters = {result.solve.n_iterations:3d}  {status}")
        # show the first few residual norms: the divergence is visible
        rn = ", ".join(f"{x:.1e}" for x in result.solve.residual_norms[:6])
        print(f"{'':13s}  residual norms: {rn}, ...\n")

    print("Paper Table 2 (at 105M determinants): Davidson 41, Olsen NC,")
    print("Olsen(0.7) >>60, Auto 22 - the same ranking as above.")


if __name__ == "__main__":
    main()
