"""Excited states with block Davidson: the CN+ singlet-triplet problem.

The paper's Table-2 stress case CN+ is hard precisely because low-lying
triplet states crowd the X1Sigma+ ground state in the Ms = 0 determinant
space.  The multi-root extension resolves the lowest states at once and
labels them by <S^2>, making the near-degeneracy that breaks the Olsen
iteration directly visible.

Run:  python examples/excited_states.py
"""

from repro import FCISolver, Molecule

HARTREE_TO_EV = 27.211386


def main() -> None:
    mol = Molecule.from_atoms(
        [("C", (0, 0, 0)), ("N", (0, 0, 2.2))], charge=1, name="CN+"
    )
    res = FCISolver(
        mol, "sto-3g", frozen_core=2, model_space_size=80
    ).run_multiroot(5)
    print(f"CN+ / STO-3G (frozen cores): {res.problem.dimension} determinants, "
          f"{res.n_iterations} block-Davidson iterations\n")
    print(f"{'state':>5} | {'E (Eh)':>14} | {'dE (eV)':>8} | {'<S^2>':>6} | assignment")
    print("-" * 58)
    for i, (e, s2) in enumerate(zip(res.energies, res.s_squared)):
        mult = {0.0: "singlet", 2.0: "triplet", 6.0: "quintet"}.get(round(s2, 1), "?")
        de = (e - res.energies[0]) * HARTREE_TO_EV
        print(f"{i:5d} | {e:14.8f} | {de:8.3f} | {s2:6.3f} | {mult}")
    print("\nNote the triplets within ~1.5 eV of the singlet ground state -")
    print("the near-degeneracy that defeats the plain Olsen single-vector")
    print("iteration in Table 2 (and why the paper's auto-adjusted step and")
    print("model-space preconditioner matter).")


if __name__ == "__main__":
    main()
