"""Kill a rank mid-sigma and watch the survivors heal the calculation.

Runs the numeric-mode parallel DGEMM sigma (`repro.parallel.ParallelSigma`)
on a 4-MSP simulated Cray-X1 under the `dead_rank` chaos scenario: the
victim MSP fail-stops halfway through the build, its held mutexes are
revoked after their lease, and the surviving ranks detect the uncommitted
work through the commit-tag protocol and requeue it.  The result is then
checked element-for-element against the serial sigma - recovery must be
exact, not approximate.

A ChromeTracer records the whole story in virtual time: open the written
JSON at https://ui.perfetto.dev to see the victim's track stop dead, the
`fault:*` instant markers, and the survivors' recovery round (heartbeat
check, tag gather, requeued task executions).

Run:  python examples/chaos_run.py [output.json]
"""

import sys

import numpy as np

from repro import Telemetry
from repro.core import CIProblem, sigma_dgemm
from repro.faults import ChaosConfig
from repro.obs import ChromeTracer
from repro.parallel import ParallelSigma
from repro.scf.mo import MOIntegrals
from repro.x1 import X1Config


def random_problem(n: int = 6, n_alpha: int = 3, n_beta: int = 3) -> CIProblem:
    """A small FCI space over random but symmetric MO integrals."""
    rng = np.random.default_rng(42)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T) + np.diag(np.linspace(-3, 2, n)) * 2
    g = rng.standard_normal((n, n, n, n))
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    mo = MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n)
    return CIProblem(mo, n_alpha, n_beta)


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "chaos.trace.json"
    problem = random_problem()
    config = X1Config(n_msps=4)
    C = problem.random_vector(0)
    ref = sigma_dgemm(problem, C)

    # measure a fault-free run to place the death halfway through it
    probe = ParallelSigma(problem, config, resilient=True)
    probe(C)
    horizon = probe.report.elapsed
    print(f"fault-free sigma build: {horizon:.3e} virtual s on {config.n_msps} MSPs")

    tracer = ChromeTracer()
    telemetry = Telemetry(tracer=tracer)
    chaos = ChaosConfig(["dead_rank"], seed=1, victim=1, at=0.5, horizon=horizon)
    injector = chaos.injector(registry=telemetry.registry)

    sigma_op = ParallelSigma(problem, config, telemetry=telemetry, faults=injector)
    out_sigma = sigma_op(C)

    err = float(np.max(np.abs(out_sigma - ref)))
    print(f"MSP 1 killed at t = {0.5 * horizon:.3e} s (half the fault-free run)")
    print(f"recovered sigma vs serial reference: max |diff| = {err:.3e}")
    assert err < 1e-12, "recovery must reproduce the serial sigma exactly"

    print("fault/recovery counters:")
    for name, value in sorted(injector.counts().items()):
        print(f"  {name:40s} {value:g}")

    path = tracer.write(out)
    faults = [e for e in tracer.events() if e.get("name", "").startswith("fault:")]
    beats = sum(1 for e in tracer.events() if e.get("name") == "heartbeat_check")
    print(f"trace: {tracer.n_events} events ({len(faults)} fault markers, "
          f"{beats} heartbeat checks)")
    print(f"wrote {path} - open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
