"""Analyze an FCI wavefunction: correlation energy, natural orbitals, spin.

Solves the water molecule (STO-3G, frozen 1s core) exactly and inspects the
result the way a correlation-method developer would - the "calibration"
use-case the paper's title refers to: FCI provides the exact answer in a
basis, against which approximate methods are measured.

Run:  python examples/correlation_analysis.py
"""

import numpy as np

from repro import FCISolver, Molecule
from repro.core import natural_orbitals, one_rdm


def main() -> None:
    mol = Molecule.from_atoms(
        [
            ("O", (0.0, 0.0, 0.2217)),
            ("H", (0.0, 1.4309, -0.8867)),
            ("H", (0.0, -1.4309, -0.8867)),
        ],
        name="H2O",
    )
    result = FCISolver(mol, basis="sto-3g", frozen_core=1, method="davidson").run()
    prob = result.problem

    print(f"H2O / STO-3G, frozen 1s core: FCI({prob.n_alpha + prob.n_beta}e,{prob.n}o), "
          f"{prob.dimension} determinants")
    print(f"E(RHF)  = {result.scf_energy:.8f} Eh")
    print(f"E(FCI)  = {result.energy:.8f} Eh")
    print(f"E_corr  = {result.correlation_energy:.8f} Eh")
    print(f"<S^2>   = {result.s_squared:.2e}")
    print(f"solved in {result.solve.n_iterations} {result.solve.method} iterations\n")

    occ, _ = natural_orbitals(prob, result.vector)
    print("natural occupation numbers (active space):")
    print("  " + "  ".join(f"{x:.4f}" for x in occ))
    # occupation missing from the naturals that correspond to HF-occupied
    # orbitals = electrons promoted into the virtual space
    promoted = (prob.n_alpha + prob.n_beta) - float(occ[: prob.n_alpha].sum())
    print(f"\nelectrons promoted out of the HF-occupied naturals: {promoted:.4f}")

    # weight of the HF determinant in the FCI wavefunction
    c0 = abs(result.vector[0, 0]) / np.linalg.norm(result.vector)
    print(f"|c0| (HF determinant weight) = {c0:.4f} -> "
          f"{'single-reference' if c0 > 0.9 else 'multireference'} system")

    gamma = one_rdm(prob, result.vector)
    print(f"tr(1-RDM) = {np.trace(gamma):.6f} "
          f"(= {prob.n_alpha + prob.n_beta} active electrons)")


if __name__ == "__main__":
    main()
