"""The paper's flagship experiment, end to end.

Part 1 - real numerics at laptop scale: the C2 X1Sigma_g+ ground state in
STO-3G / D2h symmetry, solved with the DGEMM sigma algorithm and the
automatically adjusted single-vector method (the exact configuration of the
paper's production code, down to the model-space preconditioner).

Part 2 - paper scale on the simulated Cray-X1: the 64,931,348,928-
determinant FCI(8,66) space on 432 simulated MSPs, regenerating the Table-3
breakdown (per-routine seconds, sustained GF/MSP, load imbalance, I/O,
network traffic, aggregate TFLOP/s).

Run:  python examples/c2_paper_benchmark.py
"""

from repro import FCISolver, Molecule
from repro.analysis import paper_comparison
from repro.parallel import FCISpaceSpec, TraceFCI, homonuclear_diatomic_irreps
from repro.x1 import X1Config


def small_scale_c2() -> None:
    print("=" * 64)
    print("Part 1: C2/STO-3G FCI (real numerics, auto single-vector method)")
    print("=" * 64)
    mol = Molecule.from_atoms([("C", (0, 0, -1.174)), ("C", (0, 0, 1.174))], name="C2")
    result = FCISolver(
        mol,
        basis="sto-3g",
        frozen_core=2,
        point_group="D2h",
        wavefunction_irrep="Ag",
        method="auto",
        algorithm="dgemm",
    ).run()
    prob = result.problem
    print(f"CI space        : FCI(8,{prob.n}) -> {prob.dimension} determinants "
          f"({prob.symmetry_dimension()} in the Ag block)")
    print(f"E(RHF)          : {result.scf_energy:.8f} Eh")
    print(f"E(FCI)          : {result.energy:.8f} Eh")
    print(f"E_corr          : {result.correlation_energy:.8f} Eh")
    print(f"iterations      : {result.solve.n_iterations} (paper needed 25 at 65e9 dets)")
    print(f"<S^2>           : {result.s_squared:.2e} (singlet)")
    print()


def paper_scale_c2() -> None:
    print("=" * 64)
    print("Part 2: FCI(8,66) on 432 simulated Cray-X1 MSPs (trace mode)")
    print("=" * 64)
    spec = FCISpaceSpec(66, 4, 4, "D2h", homonuclear_diatomic_irreps(66), 0, name="C2")
    print(spec.describe(), "(paper: 64,931,348,928)\n")
    res = TraceFCI(spec, X1Config(n_msps=432)).run_iteration()
    rows = [
        ("beta-beta s", 62, round(res.phase_seconds["beta-beta"], 0)),
        ("alpha-beta s", 167, round(res.phase_seconds["alpha-beta"], 0)),
        ("load imbalance s", 9, round(res.load_imbalance, 1)),
        ("vector symm s", 11, round(res.phase_seconds.get("vector-symm", 0), 1)),
        ("disk I/O s", 11, round(res.phase_seconds.get("disk-io", 0), 1)),
        ("total s/iteration", 249, round(res.elapsed, 0)),
        ("network TB/iteration", 6.2, round(res.comm_bytes / 1e12, 2)),
        ("aggregate TFLOP/s", 3.4, round(res.aggregate_tflops, 2)),
        ("% of peak", "62%", f"{100 * res.sustained_gflops_per_msp / 12.8:.0f}%"),
    ]
    print(paper_comparison(rows, title="Table 3 regeneration"))
    full = TraceFCI(spec, X1Config(n_msps=432)).run_calculation(25)
    print(f"\nfull calculation (25 iterations, as the paper needed): "
          f"{full['total_hours']:.1f} hours of simulated X1 time, "
          f"{full['total_comm_bytes'] / 1e12:.0f} TB moved")


def main() -> None:
    small_scale_c2()
    paper_scale_c2()


if __name__ == "__main__":
    main()
