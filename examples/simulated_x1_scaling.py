"""Drive the simulated Cray-X1 directly: MOC-vs-DGEMM scaling (Figs 4 & 5).

Shows the two headline parallel results on the discrete-event X1:

* the MOC same-spin routine is flat with processor count (its
  double-excitation-list generation is replicated on every MSP - Amdahl),
  while the DGEMM-based routines scale and are severalfold faster (Fig 4);
* the oxygen-anion run keeps near-perfect speedup from 128 to 256 MSPs at
  ~10 / ~8.7 GF per MSP (Fig 5).

Run:  python examples/simulated_x1_scaling.py
"""

from repro.analysis import format_series
from repro.parallel import FCISpaceSpec, TraceFCI, atom_irreps
from repro.x1 import X1Config


def fig4() -> None:
    spec = FCISpaceSpec(43, 3, 5, "D2h", atom_irreps(43), 0, name="O")
    print(f"Fig 4 workload: {spec.describe()}\n")
    msps = [16, 32, 64, 128]
    series = {
        "bb MOC": [], "bb DGEMM": [], "ab MOC": [], "ab DGEMM": [],
    }
    for P in msps:
        for algo, tag in [("moc", "MOC"), ("dgemm", "DGEMM")]:
            r = TraceFCI(spec, X1Config(n_msps=P), algorithm=algo).run_iteration()
            series[f"bb {tag}"].append(round(r.phase_seconds["beta-beta"], 1))
            series[f"ab {tag}"].append(round(r.phase_seconds["alpha-beta"], 1))
    print(format_series("MSPs", msps, series,
                        title="Fig 4: seconds per sigma build (same-spin bb, mixed-spin ab)"))
    print("\n-> MOC same-spin does not scale; DGEMM wins everywhere.\n")


def fig5() -> None:
    spec = FCISpaceSpec(43, 4, 5, "D2h", atom_irreps(43), 0, name="O-")
    print(f"Fig 5 workload: {spec.describe()}\n")
    msps = [128, 160, 192, 224, 256]
    results = {P: TraceFCI(spec, X1Config(n_msps=P)).run_iteration() for P in msps}
    base = results[128].elapsed
    series = {
        "speedup": [round(base / results[P].elapsed, 3) for P in msps],
        "ideal": [P / 128 for P in msps],
        "bb GF/MSP": [round(results[P].phase_gflops_per_msp["beta-beta"], 1) for P in msps],
        "ab GF/MSP": [round(results[P].phase_gflops_per_msp["alpha-beta"], 1) for P in msps],
    }
    print(format_series("MSPs", msps, series, title="Fig 5: speedup vs 128 MSPs"))
    print("\n-> almost perfect speedup (paper: same finding, 9.6 / 8.5-8.1 GF).")


def main() -> None:
    fig4()
    fig5()


if __name__ == "__main__":
    main()
