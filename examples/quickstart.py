"""Quickstart: dissociate H2 with FCI and watch RHF fail.

Computes the H2 potential curve in STO-3G with restricted Hartree-Fock and
full configuration interaction (the exact answer in this basis).  FCI
dissociates correctly to two hydrogen atoms while RHF overshoots - the
classic motivation for multireference-capable methods like the FCI program
this package reproduces.

Run:  python examples/quickstart.py
"""

from repro import FCISolver, Molecule


def main() -> None:
    print(f"{'R (bohr)':>9} | {'E(RHF)':>12} | {'E(FCI)':>12} | {'E_corr':>9}")
    print("-" * 52)
    for r in [1.0, 1.4, 2.0, 3.0, 4.5, 6.0]:
        mol = Molecule.from_atoms([("H", (0, 0, 0)), ("H", (0, 0, r))])
        result = FCISolver(mol, basis="sto-3g", model_space_size=2).run()
        print(
            f"{r:9.2f} | {result.scf_energy:12.6f} | {result.energy:12.6f} "
            f"| {result.correlation_energy:9.6f}"
        )
    print()
    print("FCI -> 2 x E(H) = -0.933 Eh at dissociation; RHF does not.")
    print(f"converged in {result.solve.n_iterations} iterations "
          f"({result.solve.method}), <S^2> = {result.s_squared:.2e}")


if __name__ == "__main__":
    main()
