"""Record a Perfetto-viewable timeline of one parallel sigma build.

Runs the numeric-mode parallel DGEMM sigma (`repro.parallel.ParallelSigma`)
on a 4-MSP simulated Cray-X1 with a ChromeTracer attached, then writes the
Chrome trace-event JSON.  Open the file at https://ui.perfetto.dev (or
chrome://tracing) to see one track per MSP with the DGEMM compute phases,
the DDI_GET / DDI_ACC protocol spans, SHMEM traffic, mutex waits and
barriers laid out in virtual time.

Run:  python examples/trace_timeline.py [output.json]
"""

import sys

import numpy as np

from repro import Telemetry
from repro.core import CIProblem
from repro.obs import ChromeTracer
from repro.parallel import ParallelSigma
from repro.scf.mo import MOIntegrals
from repro.x1 import X1Config


def random_problem(n: int = 6, n_alpha: int = 3, n_beta: int = 3) -> CIProblem:
    """A small FCI space over random but symmetric MO integrals."""
    rng = np.random.default_rng(42)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T) + np.diag(np.linspace(-3, 2, n)) * 2
    g = rng.standard_normal((n, n, n, n))
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    mo = MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n)
    return CIProblem(mo, n_alpha, n_beta)


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "sigma.trace.json"
    problem = random_problem()
    tracer = ChromeTracer()
    telemetry = Telemetry(tracer=tracer)
    config = X1Config(n_msps=4)

    sigma_op = ParallelSigma(problem, config, telemetry=telemetry)
    sigma_op(problem.random_vector(0))

    path = tracer.write(out)
    names = sorted(tracer.span_names())
    print(f"FCI space: {problem.shape[0]} x {problem.shape[1]} determinants")
    print(f"simulated machine: {config.n_msps} MSPs")
    print(f"trace: {tracer.n_events} events, span kinds: {', '.join(names)}")
    n_gets = sum(1 for e in tracer.events() if e["name"] == "DDI_GET" and e["ph"] == "B")
    n_accs = sum(1 for e in tracer.events() if e["name"] == "DDI_ACC" and e["ph"] == "B")
    print(f"DDI protocol spans:  {n_gets} DDI_GET, {n_accs} DDI_ACC")
    print(f"virtual DGEMM time:  {tracer.total_duration('DGEMM'):.3e} s")
    snap = telemetry.snapshot()
    print(f"bytes communicated:  {snap['x1.bytes_communicated']['value']:.3e}")
    print(f"wrote {path} - open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
