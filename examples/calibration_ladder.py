"""Calibrating quantum chemistry - the use-case in the paper's title.

FCI "solves the non-relativistic many-electron Schroedinger equation exactly
in a given finite one-electron basis space, and provides a vital tool in the
evaluation and development of other quantum chemistry methods" (paper,
opening sentence).  This example does exactly that: it measures the standard
method ladder (RHF, MP2, CISD, CISD+Q) against the FCI reference for water,
at equilibrium and with stretched bonds - where single-reference methods
degrade and the errors spread out.

Run:  python examples/calibration_ladder.py
"""

import numpy as np

from repro import FCISolver, Molecule
from repro.core import CIProblem, TruncatedCI, cisd, mp2_energy
from repro.scf import compute_ao_integrals, freeze_core, rhf, transform


def ladder(stretch: float) -> dict[str, float]:
    mol = Molecule.from_atoms(
        [
            ("O", (0.0, 0.0, 0.2217 * stretch)),
            ("H", (0.0, 1.4309 * stretch, -0.8867 * stretch)),
            ("H", (0.0, -1.4309 * stretch, -0.8867 * stretch)),
        ],
        name="H2O",
    )
    ao = compute_ao_integrals(mol, "sto-3g")
    scf = rhf(mol, ao)
    nf = 1
    mo = freeze_core(transform(ao, scf.mo_coeff), nf)
    nocc = mol.n_electrons // 2 - nf
    prob = CIProblem(mo, nocc, nocc)

    e_mp2 = scf.energy + mp2_energy(mo, scf.mo_energy[nf:], nocc)
    r_cisd, q = cisd(prob)
    e_fci = FCISolver(mol, "sto-3g", frozen_core=nf).run().energy
    return {
        "RHF": scf.energy,
        "MP2": e_mp2,
        "CISD": r_cisd.energy,
        "CISD+Q": r_cisd.energy + q,
        "FCI": e_fci,
        "c0": r_cisd.c0,
    }


def main() -> None:
    print("H2O / STO-3G, frozen core - method errors vs FCI (mEh)\n")
    print(f"{'geometry':>14} | {'RHF':>8} | {'MP2':>8} | {'CISD':>8} | {'CISD+Q':>8} | {'|c0|':>6}")
    print("-" * 66)
    for stretch, label in [(1.0, "equilibrium"), (1.3, "1.3 x r_e"), (1.6, "1.6 x r_e")]:
        e = ladder(stretch)
        err = {m: (e[m] - e["FCI"]) * 1000 for m in ["RHF", "MP2", "CISD", "CISD+Q"]}
        print(
            f"{label:>14} | {err['RHF']:8.2f} | {err['MP2']:8.2f} | "
            f"{err['CISD']:8.2f} | {err['CISD+Q']:8.2f} | {e['c0']:6.3f}"
        )
    print("\nAs the bonds stretch the reference weight |c0| drops and every")
    print("single-reference method drifts from FCI - the calibration data a")
    print("method developer needs, exact by construction.")


if __name__ == "__main__":
    main()
