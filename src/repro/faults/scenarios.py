"""Named chaos scenarios and their composition into one fault plan.

Each scenario is a function ``(cfg) -> dict`` returning :class:`FaultPlan`
field overrides; :class:`ChaosConfig` merges any number of them (so
``["dead_rank", "flaky_network"]`` kills a rank *on* a lossy network).
Scenario parameters with physical meaning - who dies (``victim``), when
(``at`` as a fraction of the expected ``horizon`` in virtual seconds) -
live on the config so tests and the CI chaos matrix can sweep them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..obs.metrics import MetricsRegistry
from .injector import FaultInjector, FaultPlan, StallWindow

__all__ = ["ChaosConfig", "SCENARIOS", "scenario_names", "register_scenario"]


def _slow_rank(cfg: "ChaosConfig") -> dict:
    """The victim MSP runs ``slowdown`` x slower for the whole run."""
    return {
        "stalls": [StallWindow(cfg.victim, 0.0, math.inf, cfg.slowdown)],
    }


def _dead_rank(cfg: "ChaosConfig") -> dict:
    """Fail-stop of the victim at ``at * horizon`` virtual seconds."""
    return {"deaths": {cfg.victim: cfg.at * cfg.horizon}}


def _flaky_network(cfg: "ChaosConfig") -> dict:
    """Lossy, jittery interconnect: drops, delays, and mutex-grant jitter."""
    return {
        "drop_get": 0.08,
        "drop_put": 0.08,
        "delay_prob": 0.10,
        "delay_seconds": 20e-6,
        "mutex_jitter": 5e-6,
        "op_timeout": 2e-3,
    }


def _corrupt_payload(cfg: "ChaosConfig") -> dict:
    """Numeric-mode NaN poisoning of remote gets (detected by solver guards)."""
    return {"corrupt": cfg.corrupt_prob, "corrupt_mode": "nan"}


def _bitflip_payload(cfg: "ChaosConfig") -> dict:
    """Single-bit corruption of remote gets (the sneaky variant)."""
    return {"corrupt": cfg.corrupt_prob, "corrupt_mode": "bitflip"}


def _flaky_io(cfg: "ChaosConfig") -> dict:
    """Transient shared-filesystem errors on simulated I/O ops."""
    return {"io_error": 0.2}


SCENARIOS: dict[str, Callable[["ChaosConfig"], dict]] = {
    "slow_rank": _slow_rank,
    "dead_rank": _dead_rank,
    "flaky_network": _flaky_network,
    "corrupt_payload": _corrupt_payload,
    "bitflip_payload": _bitflip_payload,
    "flaky_io": _flaky_io,
}


def scenario_names() -> list[str]:
    """The registered chaos scenario names, sorted."""
    return sorted(SCENARIOS)


def register_scenario(name: str, fn: Callable[["ChaosConfig"], dict]) -> None:
    """Register a named scenario (``(cfg) -> FaultPlan field overrides``)."""
    if not name or not isinstance(name, str):
        raise ValueError("scenario name must be a non-empty string")
    if name in SCENARIOS:
        raise ValueError(f"scenario {name!r} is already registered")
    SCENARIOS[name] = fn


@dataclass
class ChaosConfig:
    """Composition of named scenarios into one seeded fault plan.

    Parameters
    ----------
    scenarios:
        Names from :data:`SCENARIOS`, merged left to right (later scenarios
        override scalar fields; deaths and stalls are unioned).
    seed:
        Seed of the injector's random stream.
    victim:
        Rank targeted by ``slow_rank`` / ``dead_rank``.
    at, horizon:
        The victim dies at ``at * horizon`` virtual seconds; ``horizon``
        is typically a fault-free run's elapsed time.
    """

    scenarios: list[str] = field(default_factory=list)
    seed: int = 0
    victim: int = 1
    at: float = 0.5
    horizon: float = 1.0
    slowdown: float = 4.0
    corrupt_prob: float = 0.05

    def __post_init__(self) -> None:
        unknown = [s for s in self.scenarios if s not in SCENARIOS]
        if unknown:
            raise ValueError(
                f"unknown chaos scenario(s) {unknown}; registered: {scenario_names()}"
            )

    def build_plan(self) -> FaultPlan:
        deaths: dict[int, float] = {}
        stalls: list[StallWindow] = []
        scalars: dict = {}
        for name in self.scenarios:
            overrides = SCENARIOS[name](self)
            deaths.update(overrides.pop("deaths", {}))
            stalls.extend(overrides.pop("stalls", []))
            scalars.update(overrides)
        return FaultPlan(seed=self.seed, deaths=deaths, stalls=stalls, **scalars)

    def injector(self, registry: MetricsRegistry | None = None) -> FaultInjector:
        return FaultInjector(self.build_plan(), registry=registry)
