"""Seeded, deterministic fault injection for the simulated X1.

A :class:`FaultPlan` is a declarative description of what should go wrong;
a :class:`FaultInjector` is the stateful (but fully seeded) oracle the
engine and DDI layers consult at well-defined points:

* ``death_time(rank)`` - fail-stop at a virtual time; the engine schedules
  the death as a first-class event (ops issued before the death complete,
  nothing new starts after it),
* ``op_delay(rank, kind, base, now)`` - extra virtual seconds for an op:
  rank-stall windows slow everything on the victim, flaky-network delays
  hit remote one-sided transfers,
* ``should_drop(rank, kind)`` - a remote get/put vanishes; the engine
  charges the op's timeout and returns the :data:`DROPPED` sentinel so the
  DDI layer can retry with exponential backoff,
* ``maybe_corrupt(rank, data)`` - numeric-mode payload corruption: NaN
  poisoning or a single bit-flip in one element,
* ``mutex_delay(rank, now)`` - jitter added to mutex grants,
* ``io_fails(rank)`` - a transient shared-filesystem error.

Determinism: the engine's event order is deterministic, so one seeded
``numpy`` Generator stream yields reproducible fault sequences - the same
plan and seed always breaks the same ops at the same virtual times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields

import numpy as np

from ..obs.metrics import MetricsRegistry

__all__ = ["StallWindow", "FaultPlan", "FaultInjector", "DEFAULT_MUTEX_LEASE"]

DEFAULT_MUTEX_LEASE = 250e-6
"""Default mutex lease in virtual seconds before the engine may revoke a
lock held by a dead rank (a few hundred atomic overheads)."""

_REMOTE_KINDS = ("get", "put", "putm")


@dataclass(frozen=True)
class StallWindow:
    """Rank ``rank`` runs ``slowdown`` times slower during [t0, t1)."""

    rank: int
    t0: float = 0.0
    t1: float = math.inf
    slowdown: float = 4.0


@dataclass
class FaultPlan:
    """Declarative chaos: what goes wrong, where, and how often.

    Probabilities are per-op; times are virtual seconds.  The default plan
    injects nothing (an injector built from it is a useful "hooks attached
    but idle" baseline for overhead measurements).
    """

    seed: int = 0
    deaths: dict[int, float] = field(default_factory=dict)  # rank -> time
    stalls: list[StallWindow] = field(default_factory=list)
    drop_get: float = 0.0  # P(remote get vanishes)
    drop_put: float = 0.0  # P(remote put vanishes)
    delay_prob: float = 0.0  # P(remote op delayed)
    delay_seconds: float = 0.0  # mean of the exponential delay draw
    mutex_jitter: float = 0.0  # max uniform jitter on mutex grants
    corrupt: float = 0.0  # P(numeric get payload corrupted)
    corrupt_mode: str = "nan"  # "nan" | "bitflip"
    io_error: float = 0.0  # P(simulated I/O op fails transiently)
    op_timeout: float | None = None  # virtual-time timeout per one-sided op
    mutex_lease: float = DEFAULT_MUTEX_LEASE
    max_retries: int = 8  # DDI retry budget per op
    retry_backoff: float = 5e-6  # first backoff; doubles per attempt

    def __post_init__(self) -> None:
        if self.corrupt_mode not in ("nan", "bitflip"):
            raise ValueError("corrupt_mode must be 'nan' or 'bitflip'")
        for p in (self.drop_get, self.drop_put, self.delay_prob, self.corrupt, self.io_error):
            if not 0.0 <= p <= 1.0:
                raise ValueError("fault probabilities must be in [0, 1]")

    def any_faults(self) -> bool:
        return bool(
            self.deaths
            or self.stalls
            or self.drop_get
            or self.drop_put
            or self.delay_prob
            or self.mutex_jitter
            or self.corrupt
            or self.io_error
        )

    # -- JSON round-trip (chaos reproducers persist plans with their seed) ----
    def to_dict(self) -> dict:
        """JSON-ready representation; inverse of :meth:`from_dict`.

        ``inf`` stall endpoints serialize as the string ``"inf"`` so the
        payload stays valid strict JSON (replayable by any tool, not just
        Python's permissive parser).
        """

        def _num(x: float):
            return "inf" if math.isinf(x) else float(x)

        return {
            "seed": int(self.seed),
            "deaths": {str(r): float(t) for r, t in sorted(self.deaths.items())},
            "stalls": [
                {
                    "rank": w.rank,
                    "t0": _num(w.t0),
                    "t1": _num(w.t1),
                    "slowdown": float(w.slowdown),
                }
                for w in self.stalls
            ],
            "drop_get": self.drop_get,
            "drop_put": self.drop_put,
            "delay_prob": self.delay_prob,
            "delay_seconds": self.delay_seconds,
            "mutex_jitter": self.mutex_jitter,
            "corrupt": self.corrupt,
            "corrupt_mode": self.corrupt_mode,
            "io_error": self.io_error,
            "op_timeout": self.op_timeout,
            "mutex_lease": self.mutex_lease,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (JSON-decoded)."""
        data = dict(data)
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {', '.join(sorted(unknown))}")
        data["deaths"] = {int(r): float(t) for r, t in data.get("deaths", {}).items()}
        data["stalls"] = [
            StallWindow(
                rank=int(w["rank"]),
                t0=float(w.get("t0", 0.0)),
                t1=float(w.get("t1", math.inf)),
                slowdown=float(w.get("slowdown", 4.0)),
            )
            for w in data.get("stalls", [])
        ]
        return cls(**data)


class FaultInjector:
    """Stateful, seeded oracle for a :class:`FaultPlan`.

    Counts every injected fault under ``faults.injected.<kind>`` and every
    recovery the stack reports (via :meth:`note_recovered`) under
    ``faults.recovered.<kind>`` in ``registry`` (a fresh private
    :class:`repro.obs.MetricsRegistry` unless one is shared in, e.g. a
    ``Telemetry.registry``).
    """

    def __init__(self, plan: FaultPlan | None = None, registry: MetricsRegistry | None = None):
        self.plan = plan if plan is not None else FaultPlan()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.rng = np.random.default_rng(self.plan.seed)
        self._stalls_by_rank: dict[int, list[StallWindow]] = {}
        for w in self.plan.stalls:
            if w.slowdown < 1.0:
                raise ValueError("stall slowdown must be >= 1")
            self._stalls_by_rank.setdefault(w.rank, []).append(w)

    # -- bookkeeping ---------------------------------------------------------
    def note_injected(self, kind: str, n: float = 1.0) -> None:
        self.registry.counter(f"faults.injected.{kind}").inc(n)

    def note_recovered(self, kind: str, n: float = 1.0) -> None:
        self.registry.counter(f"faults.recovered.{kind}").inc(n)

    def counts(self) -> dict[str, float]:
        """All ``faults.*`` counter values (for assertions and reports)."""
        return {
            name: self.registry.get(name).value
            for name in self.registry
            if name.startswith("faults.")
        }

    # -- retry policy the DDI layer consults ---------------------------------
    @property
    def max_retries(self) -> int:
        return self.plan.max_retries

    @property
    def retry_backoff(self) -> float:
        return self.plan.retry_backoff

    @property
    def mutex_lease(self) -> float:
        return self.plan.mutex_lease

    @property
    def op_timeout(self) -> float | None:
        return self.plan.op_timeout

    # -- engine query points -------------------------------------------------
    def death_time(self, rank: int) -> float | None:
        return self.plan.deaths.get(rank)

    def op_delay(self, rank: int, kind: str, base_seconds: float, now: float) -> float:
        """Extra virtual seconds injected into one op."""
        extra = 0.0
        for w in self._stalls_by_rank.get(rank, ()):
            if w.t0 <= now < w.t1:
                extra += base_seconds * (w.slowdown - 1.0)
                self.note_injected("stall")
                break
        plan = self.plan
        if kind in _REMOTE_KINDS and plan.delay_prob:
            if self.rng.random() < plan.delay_prob:
                extra += float(self.rng.exponential(plan.delay_seconds))
                self.note_injected("delayed_op")
        return extra

    def should_drop(self, rank: int, kind: str) -> bool:
        plan = self.plan
        p = plan.drop_get if kind == "get" else plan.drop_put
        if p and self.rng.random() < p:
            self.note_injected("dropped_get" if kind == "get" else "dropped_put")
            return True
        return False

    def mutex_delay(self, rank: int, now: float) -> float:
        j = self.plan.mutex_jitter
        if j:
            self.note_injected("mutex_jitter")
            return float(self.rng.uniform(0.0, j))
        return 0.0

    def io_fails(self, rank: int) -> bool:
        if self.plan.io_error and self.rng.random() < self.plan.io_error:
            self.note_injected("io_error")
            return True
        return False

    def maybe_corrupt(self, rank: int, data):
        """Possibly corrupt a numeric get payload (returns a new array)."""
        plan = self.plan
        if data is None or not plan.corrupt:
            return data
        if self.rng.random() >= plan.corrupt:
            return data
        arr = np.array(data, copy=True)
        if arr.size == 0:
            return data
        flat = arr.reshape(-1)
        idx = int(self.rng.integers(0, flat.size))
        if plan.corrupt_mode == "nan":
            flat[idx] = np.nan
        else:
            # flip one bit of the victim element's IEEE-754 representation
            bits = flat[idx : idx + 1].view(np.uint64)
            bits ^= np.uint64(1) << np.uint64(int(self.rng.integers(0, 63)))
        self.note_injected("corrupt_payload")
        return arr
