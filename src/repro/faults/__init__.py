"""repro.faults: deterministic fault injection and chaos scenarios.

The paper's 65-billion-determinant campaigns only succeed because the
single-vector solver carries a tiny restart state (one CI vector) and the
DDI/SHMEM layer tolerates contention.  This subsystem lets the simulated
X1 *prove* the same discipline: a seeded :class:`FaultInjector` perturbs
the discrete-event engine with rank stalls, rank death at a virtual time,
dropped or delayed one-sided transfers, mutex-grant jitter, transient I/O
errors, and payload corruption (NaN or bit-flip) in numeric mode, while
:class:`ChaosConfig` composes the named scenarios the CI chaos matrix
runs (``slow_rank``, ``dead_rank``, ``flaky_network``, ``corrupt_payload``).

Every injected fault is counted under ``faults.injected.*`` and every
recovery action (DDI retry, mutex-lease revocation, task requeue,
checkpoint restart) under ``faults.recovered.*`` in a
:class:`repro.obs.MetricsRegistry`, so a chaos run tells a complete,
Perfetto-viewable story of what broke and how it healed.

The subsystem only depends on :mod:`repro.obs`; the engine and DDI layers
accept an injector duck-typed, so nothing here imports the simulator.
"""

from .injector import DEFAULT_MUTEX_LEASE, FaultInjector, FaultPlan, StallWindow
from .scenarios import SCENARIOS, ChaosConfig, register_scenario, scenario_names
from .service import ServiceFaultInjector, ServiceFaultPlan, WorkerCrashed

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "StallWindow",
    "ChaosConfig",
    "SCENARIOS",
    "scenario_names",
    "register_scenario",
    "ServiceFaultPlan",
    "ServiceFaultInjector",
    "WorkerCrashed",
    "DEFAULT_MUTEX_LEASE",
]
