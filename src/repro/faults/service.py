"""Seeded fault injection for the service layer (``repro.service``).

:class:`FaultPlan`/:class:`FaultInjector` perturb the *simulated* X1 - a
virtual-time world where rank death and dropped SHMEM ops are engine
events.  The job service runs on real threads, real files, and a real
queue, so its failure modes are different: a worker thread dies mid-solve,
a cached result file rots on disk, a journal write is torn by a crash, the
telemetry stream hits a full filesystem.  :class:`ServiceFaultPlan`
describes those, and :class:`ServiceFaultInjector` is the seeded oracle the
service layer consults at its injection points:

* ``worker_crashes()`` - consulted by the per-iteration checkpoint hook;
  when it fires the executor raises :class:`WorkerCrashed`, which the
  scheduler deliberately does *not* convert into a job failure: the worker
  thread dies with the job still RUNNING, exactly like a real thread
  killed by the OS.  :meth:`FCIService.reap` is the recovery path.
* ``io_fails(rank)`` - the same duck-typed hook
  :class:`~repro.core.checkpoint.Checkpointer` already takes via
  ``faults=``, so one injector drives both checkpoint I/O crashes and the
  service-specific faults.
* ``corrupt_result(path)`` - after the artifact cache persists a result,
  truncate it, flip a byte, or replace it with a header-only husk; the
  cache's CRC discipline must turn the damage into a miss, never a wrong
  answer.
* ``torn_journal_write(path, blob)`` - replace an atomic journal write
  with a half-written file (a crash between ``open`` and ``os.replace`` on
  a non-atomic filesystem); restart recovery must skip it and count it.
* ``telemetry_write_fails()`` - the per-iteration telemetry stream raises
  :class:`OSError`; the solve must shrug it off (telemetry is observability,
  never correctness).

Determinism: one ``random.Random(seed)`` stream, consulted *only* by hooks
whose probability is non-zero - an idle injector (default plan) draws
nothing, so attaching it leaves every code path bitwise identical.

Counters mirror :class:`FaultInjector`: every injection under
``faults.injected.<kind>`` and every recovery the service reports under
``faults.recovered.<kind>``.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields

from ..obs.metrics import MetricsRegistry

__all__ = ["ServiceFaultPlan", "ServiceFaultInjector", "WorkerCrashed"]

_CORRUPT_MODES = ("truncate", "bitflip", "header_only")


class WorkerCrashed(Exception):
    """Injected worker-thread death: the thread exits, the job stays RUNNING.

    Raised by the executor's checkpoint hook and recognized by the
    scheduler, which lets the thread die *without* reporting an outcome -
    the abandoned job is what :meth:`FCIService.reap` exists to recover.
    """


@dataclass
class ServiceFaultPlan:
    """Declarative service-layer chaos; the default plan injects nothing.

    Probabilities are per-opportunity: ``worker_crash`` per checkpoint
    save, ``checkpoint_io_error`` per checkpoint write,
    ``result_corrupt`` per persisted result, ``journal_torn_write`` per
    journal write, ``telemetry_io_error`` per streamed iteration event.
    """

    seed: int = 0
    worker_crash: float = 0.0
    checkpoint_io_error: float = 0.0
    result_corrupt: float = 0.0
    result_corrupt_mode: str = "bitflip"  # "truncate" | "bitflip" | "header_only"
    journal_torn_write: float = 0.0
    telemetry_io_error: float = 0.0

    def __post_init__(self) -> None:
        if self.result_corrupt_mode not in _CORRUPT_MODES:
            raise ValueError(
                f"result_corrupt_mode must be one of {_CORRUPT_MODES}"
            )
        for p in (
            self.worker_crash,
            self.checkpoint_io_error,
            self.result_corrupt,
            self.journal_torn_write,
            self.telemetry_io_error,
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError("fault probabilities must be in [0, 1]")

    def any_faults(self) -> bool:
        return bool(
            self.worker_crash
            or self.checkpoint_io_error
            or self.result_corrupt
            or self.journal_torn_write
            or self.telemetry_io_error
        )

    # -- JSON round-trip ------------------------------------------------------
    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceFaultPlan":
        data = dict(data)
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ServiceFaultPlan fields: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


class ServiceFaultInjector:
    """Stateful, seeded oracle for a :class:`ServiceFaultPlan`.

    Uses the stdlib :class:`random.Random` (the service layer never needs
    numpy draws), and never touches the stream for zero-probability hooks,
    so an idle injector is bitwise-invisible.
    """

    def __init__(
        self, plan: ServiceFaultPlan | None = None, registry: MetricsRegistry | None = None
    ):
        self.plan = plan if plan is not None else ServiceFaultPlan()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.rng = random.Random(self.plan.seed)

    # -- bookkeeping ----------------------------------------------------------
    def note_injected(self, kind: str, n: float = 1.0) -> None:
        self.registry.counter(f"faults.injected.{kind}").inc(n)

    def note_recovered(self, kind: str, n: float = 1.0) -> None:
        self.registry.counter(f"faults.recovered.{kind}").inc(n)

    def counts(self) -> dict[str, float]:
        """All ``faults.*`` counter values (for assertions and reports)."""
        return {
            name: self.registry.get(name).value
            for name in self.registry
            if name.startswith("faults.")
        }

    # -- injection points -----------------------------------------------------
    def worker_crashes(self) -> bool:
        """Consulted once per checkpoint save; True kills the worker thread."""
        p = self.plan.worker_crash
        if p and self.rng.random() < p:
            self.note_injected("worker_crash")
            return True
        return False

    def io_fails(self, rank: int) -> bool:
        """Checkpoint-write I/O error (the ``Checkpointer(faults=)`` hook)."""
        p = self.plan.checkpoint_io_error
        if p and self.rng.random() < p:
            self.note_injected("io_error")
            return True
        return False

    def telemetry_write_fails(self) -> bool:
        p = self.plan.telemetry_io_error
        if p and self.rng.random() < p:
            self.note_injected("telemetry_io_error")
            return True
        return False

    def corrupt_result(self, path) -> bool:
        """Possibly damage a just-persisted result file in place.

        Returns True when damage was done.  Modes: ``truncate`` chops the
        file mid-payload (torn write), ``bitflip`` XORs one byte (bit-rot),
        ``header_only`` keeps a prefix so short only the npz magic survives.
        """
        p = self.plan.result_corrupt
        if not p or self.rng.random() >= p:
            return False
        path = os.fspath(path)
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as f:
                mode = self.plan.result_corrupt_mode
                if mode == "truncate":
                    f.truncate(max(1, size // 2))
                elif mode == "header_only":
                    f.truncate(min(6, size))
                else:  # bitflip
                    # damage the payload half, past the npz member headers
                    offset = self.rng.randrange(size // 2, size) if size > 1 else 0
                    f.seek(offset)
                    byte = f.read(1)
                    f.seek(offset)
                    f.write(bytes([byte[0] ^ 0x40]) if byte else b"\x40")
        except OSError:
            return False
        self.note_injected(f"result_corrupt.{self.plan.result_corrupt_mode}")
        return True

    def torn_journal_write(self, path, blob: bytes) -> bool:
        """Possibly replace an atomic journal write with a torn one.

        When it fires, writes only the first half of ``blob`` directly to
        ``path`` (no tmp+rename) and returns True: the caller skips the
        real write, leaving the journal exactly as a crash mid-write on a
        non-atomic filesystem would.
        """
        p = self.plan.journal_torn_write
        if not p or self.rng.random() >= p:
            return False
        with open(os.fspath(path), "wb") as f:
            f.write(blob[: max(1, len(blob) // 2)])
        self.note_injected("journal_torn_write")
        return True
