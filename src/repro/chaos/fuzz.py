"""Property-based fuzzing of the fault/recovery machinery.

The repo proves its reliability invariants *pointwise*: hand-written chaos
scenarios, each with a test.  This module turns them into *searched-for
counterexamples*: a seeded generator draws random :class:`FaultPlan` /
:class:`ServiceFaultPlan` schedules inside a budget grammar, executes each
through one of three harnesses, and checks the machine-verifiable
invariants the pointwise tests pin:

========  ====================================================================
harness   invariants
--------  --------------------------------------------------------------------
sigma     resilient ``ParallelSigma`` under any plan reproduces the serial
          sigma to 1e-10 (exact recovery implies no double accumulation);
          a fault-free plan is *bitwise* identical to the no-injector run;
          silent bit-flips are seeded-reproducible bit-for-bit
solver    a solve killed at a random iteration (and battered by injected
          checkpoint-I/O errors) resumes to the uninterrupted energy within
          1e-10; olsen/auto replay the exact energy sequence
service   a chaotic :class:`FCIService` (worker deaths, torn journals,
          result rot, telemetry blackouts) still lands every submitted job
          on the fault-free energy after reap/resume and a restart; journal
          recovery re-adopts every readable ACTIVE job; the artifact cache
          never serves a CRC-invalid result
========  ====================================================================

Everything is derived from one integer seed (virtual time makes even the
fault *schedules* machine-independent), so a failure is replayable with
``python -m repro.chaos replay <seed>``.  On failure the case is **shrunk**
greedily - drop one death, zero one probability, simplify one knob at a
time, keeping the move only if the violation survives - down to a minimal
reproducer persisted as JSON next to its seed.
"""

from __future__ import annotations

import json
import logging
import os
import random
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from ..faults import FaultInjector, FaultPlan, ServiceFaultInjector, ServiceFaultPlan
from .plans import (
    ChaosEnv,
    build_fault_plan,
    build_service_plan,
    chaos_scenario_names,
    service_scenario_names,
)

__all__ = [
    "FuzzBudget",
    "FuzzCase",
    "Violation",
    "FuzzReport",
    "FuzzRunner",
    "shrink",
]

logger = logging.getLogger(__name__)

# mutation hook for the harness-validation tests: setting this False runs
# the sigma lane with recovery disabled, a deliberately broken stack the
# fuzzer must catch (proof it can find real bugs, not just pass)
_RECOVERY_ENABLED = True

_TOL = 1e-10
_SOLVER_MAX_ATTEMPTS = 40

_PROB_FIELDS = ("drop_get", "drop_put", "delay_prob", "mutex_jitter", "corrupt", "io_error")
_SERVICE_PROB_FIELDS = (
    "worker_crash",
    "checkpoint_io_error",
    "result_corrupt",
    "journal_torn_write",
    "telemetry_io_error",
)


@dataclass(frozen=True)
class FuzzBudget:
    """The grammar bounds: how hard a generated plan may push.

    Caps keep generated plans inside the envelope the stack *contracts* to
    survive (e.g. drop rates low enough that the DDI retry budget cannot
    be legitimately exhausted) - outside it, failure is expected and tells
    us nothing.
    """

    n_ranks: int = 4
    n_spans: int = 8
    max_deaths: int = 2  # always leaves a survivor on 4 ranks
    max_drop: float = 0.12  # P(9 consecutive drops) ~ 5e-9 << one per batch
    max_delay_prob: float = 0.2
    max_corrupt: float = 0.2
    max_io_error: float = 0.4
    max_scenarios: int = 3
    min_retries: int = 8
    # harness mix (sigma is cheap, service is seconds per case)
    w_sigma: float = 0.75
    w_solver: float = 0.15
    service_max_jobs: int = 3

    def clamp(self, plan: FaultPlan) -> FaultPlan:
        """Clamp a composed plan into the budget (deterministically)."""
        d = plan.to_dict()
        d["drop_get"] = min(d["drop_get"], self.max_drop)
        d["drop_put"] = min(d["drop_put"], self.max_drop)
        d["delay_prob"] = min(d["delay_prob"], self.max_delay_prob)
        d["corrupt"] = min(d["corrupt"], self.max_corrupt)
        d["io_error"] = min(d["io_error"], self.max_io_error)
        d["max_retries"] = max(d["max_retries"], self.min_retries)
        if len(d["deaths"]) > self.max_deaths:
            d["deaths"] = dict(sorted(d["deaths"].items())[: self.max_deaths])
        return FaultPlan.from_dict(d)


@dataclass
class FuzzCase:
    """One generated test case: a plan plus the knobs of its harness."""

    seed: int
    harness: str  # "sigma" | "solver" | "service"
    scenarios: tuple = ()
    plan: FaultPlan | None = None
    service_plan: ServiceFaultPlan | None = None
    knobs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "harness": self.harness,
            "scenarios": list(self.scenarios),
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "service_plan": (
                self.service_plan.to_dict() if self.service_plan is not None else None
            ),
            "knobs": dict(self.knobs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        return cls(
            seed=int(data["seed"]),
            harness=data["harness"],
            scenarios=tuple(data.get("scenarios", ())),
            plan=(
                FaultPlan.from_dict(data["plan"]) if data.get("plan") is not None else None
            ),
            service_plan=(
                ServiceFaultPlan.from_dict(data["service_plan"])
                if data.get("service_plan") is not None
                else None
            ),
            knobs=dict(data.get("knobs", {})),
        )


@dataclass
class Violation:
    """A broken invariant, with enough context to replay and shrink it."""

    seed: int
    harness: str
    invariant: str
    detail: str
    case: dict  # FuzzCase.to_dict() of the case that broke it

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "harness": self.harness,
            "invariant": self.invariant,
            "detail": self.detail,
            "case": self.case,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz batch."""

    executed: int = 0
    by_harness: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)  # Violation dicts (shrunk)
    fault_counters: dict = field(default_factory=dict)
    shrink_iterations: int = 0
    elapsed_s: float = 0.0
    seeds: list = field(default_factory=list)
    truncated: bool = False  # time budget cut the batch short

    def to_dict(self) -> dict:
        return {
            "executed": self.executed,
            "by_harness": dict(self.by_harness),
            "violations": list(self.violations),
            "fault_counters": dict(self.fault_counters),
            "shrink_iterations": self.shrink_iterations,
            "elapsed_s": self.elapsed_s,
            "seeds": [self.seeds[0], self.seeds[-1]] if self.seeds else [],
            "truncated": self.truncated,
        }


# -- harnesses ----------------------------------------------------------------


def _random_problem(n: int = 6, n_alpha: int = 3, n_beta: int = 3):
    """The chaos workload: a seeded random CI problem (diag-dominant h)."""
    from ..core import CIProblem
    from ..scf.mo import MOIntegrals

    rng = np.random.default_rng(42)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T) + np.diag(np.linspace(-3, 2, n)) * 2
    g = rng.standard_normal((n, n, n, n))
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), n_alpha, n_beta)


class SigmaHarness:
    """Runs a FaultPlan through the resilient simulated parallel sigma."""

    def __init__(self, n_ranks: int = 4):
        from ..core import sigma_dgemm
        from ..parallel import ParallelSigma
        from ..x1 import X1Config

        self._ParallelSigma = ParallelSigma
        self.config = X1Config(n_msps=n_ranks)
        self.problem = _random_problem()
        self.C = self.problem.random_vector(0)
        self.ref = sigma_dgemm(self.problem, self.C)
        probe = ParallelSigma(self.problem, self.config, resilient=True)
        self.baseline = probe(self.C)  # fault-free resilient run (bitwise ref)
        self.horizon = probe.report.elapsed  # deterministic virtual seconds

    def _run(self, injector: FaultInjector) -> np.ndarray:
        resilient = None if _RECOVERY_ENABLED else False
        op = self._ParallelSigma(
            self.problem, self.config, faults=injector, resilient=resilient
        )
        # bit-flipped payloads legitimately overflow inside the DGEMMs; the
        # invariants below judge the output, not the arithmetic en route
        with np.errstate(over="ignore", invalid="ignore"):
            return op(self.C)

    def run(self, case: FuzzCase) -> tuple[str, str] | None:
        """None, or ``(invariant, detail)`` for the broken invariant."""
        plan = case.plan
        fi = FaultInjector(plan)
        try:
            out = self._run(fi)
        except Exception as exc:
            return ("no_crash", f"{type(exc).__name__}: {exc}")
        if plan.corrupt and plan.corrupt_mode == "bitflip":
            # silent bit-flips: the contract is seeded reproducibility
            out2 = self._run(FaultInjector(plan))
            if not np.array_equal(out, out2):
                return ("bitflip_reproducible", "two runs of one seed differ bitwise")
            return None
        if not plan.any_faults():
            if not np.array_equal(out, self.baseline):
                return (
                    "bitwise_faultfree",
                    "idle injector perturbed the fault-free sigma",
                )
            return None
        err = float(np.max(np.abs(out - self.ref)))
        if not err < _TOL:
            return ("exact_recovery", f"max|sigma - serial| = {err:.3e}")
        return None


class _Killed(Exception):
    """Deterministic mid-solve kill (the fuzzer's process-death stand-in)."""


class SolverHarness:
    """Kills and resumes checkpointed solves; asserts exact replay.

    Beyond the dense in-RAM methods, the lane covers the storage layer:
    ``davidson-mmap`` runs Davidson with its held subspace in an
    out-of-core :class:`~repro.core.vectors.MmapStore` (killed the same
    way, via sigma-call counting), and ``cdfci`` runs the sparse-store
    coordinate-descent solver - it evaluates no sigma at all, so the kill
    fires from its per-sweep ``on_iteration`` hook instead.
    """

    _METHODS = {
        "olsen": dict(step=0.7, max_iterations=250),
        "auto": {},
        "davidson": {},
        "davidson-mmap": {},
        # the synthetic problem's ~190 Ha spectral scale leaves cdfci's
        # incrementally-maintained b = Hc a float plateau around |r| ~ 3e-5;
        # the lane's invariant is resumed-vs-uninterrupted, so the looser
        # residual gate costs nothing
        "cdfci": dict(max_iterations=300, residual_tol=1e-4),
    }

    def __init__(self):
        from ..core import (
            ModelSpacePreconditioner,
            auto_adjusted_solve,
            davidson_solve,
            olsen_solve,
        )

        self._solvers = {
            "olsen": olsen_solve,
            "auto": auto_adjusted_solve,
            "davidson": davidson_solve,
            "davidson-mmap": davidson_solve,
        }
        self.problem = _random_problem()
        self.precond = ModelSpacePreconditioner(self.problem, 50)
        self.guess = self.precond.ground_state_guess()
        self._refs: dict = {}

    def _sigma(self, C):
        from ..core import sigma_dgemm

        return sigma_dgemm(self.problem, C)

    def _run_cdfci(self, ckpt, kill_at):
        from ..core.cdfci import cdfci_solve

        hook = None
        if kill_at is not None:

            def hook(iteration, _energy):
                if iteration >= kill_at:
                    raise _Killed

        return cdfci_solve(
            self.problem,
            guess=self.guess,
            checkpoint=ckpt,
            on_iteration=hook,
            **self._METHODS["cdfci"],
        )

    def reference(self, method: str):
        if method not in self._refs:
            if method == "cdfci":
                res = self._run_cdfci(None, None)
            else:
                res = self._solvers[method](
                    self._sigma, self.guess, self.precond, **self._METHODS[method]
                )
            assert res.converged
            self._refs[method] = res
        return self._refs[method]

    def run(self, case: FuzzCase) -> tuple[str, str] | None:
        from ..core import Checkpointer
        from ..core.vectors import MmapStore

        method = case.knobs.get("method", "auto")
        ref = self.reference(method)
        kill_frac = case.knobs.get("kill_frac")
        kill_at = (
            max(2, int(ref.n_iterations * kill_frac)) if kill_frac is not None else None
        )
        plan = case.plan if case.plan is not None else FaultPlan()
        fi = FaultInjector(plan) if plan.io_error else None

        with tempfile.TemporaryDirectory(prefix="chaos-solver-") as d:
            ckpt = Checkpointer(os.path.join(d, "solve.npz"), faults=fi)
            result = None
            attempts = 0
            while attempts < _SOLVER_MAX_ATTEMPTS:
                attempts += 1
                this_kill = kill_at if attempts == 1 else None

                if method == "cdfci":
                    try:
                        result = self._run_cdfci(ckpt, this_kill)
                        break
                    except (_Killed, OSError):
                        continue
                    except Exception as exc:
                        return ("no_crash", f"{type(exc).__name__}: {exc}")

                if this_kill is not None:
                    calls = [0]

                    def sig(C, _calls=calls, _kill=this_kill):
                        _calls[0] += 1
                        if _calls[0] > _kill:
                            raise _Killed
                        return self._sigma(C)

                else:
                    sig = self._sigma
                store = (
                    MmapStore(self.problem.shape, directory=d)
                    if method == "davidson-mmap"
                    else None
                )
                try:
                    result = self._solvers[method](
                        sig,
                        self.guess,
                        self.precond,
                        checkpoint=ckpt,
                        store=store,
                        **self._METHODS[method],
                    )
                    break
                except (_Killed, OSError):
                    continue  # injected death or checkpoint I/O crash: retry
                except Exception as exc:
                    return ("no_crash", f"{type(exc).__name__}: {exc}")
                finally:
                    if store is not None:
                        store.close()

        if result is None:
            return (
                "solver_resume_energy",
                f"{method} did not survive {_SOLVER_MAX_ATTEMPTS} chaos restarts",
            )
        if not result.converged:
            return ("solver_resume_energy", f"{method} resumed but failed to converge")
        err = abs(result.energy - ref.energy)
        if not err < _TOL:
            return ("solver_resume_energy", f"|E - E_ref| = {err:.3e} for {method}")
        if method in ("olsen", "auto", "cdfci") and list(result.energies) != list(
            ref.energies
        ):
            # the single-vector methods (and cdfci, whose checkpoint carries
            # the exact coordinate state) replay their exact iteration
            # sequence from any checkpoint; davidson restarts from a
            # collapsed subspace (a few extra iterations are its contract),
            # so only the energy invariant above applies to it
            return (
                "solver_replay",
                f"{method} resumed energy sequence differs from uninterrupted run",
            )
        return None


class ServiceHarness:
    """Drives the full FCIService stack under service-layer chaos.

    Phase 1 submits a family of jobs into a service wired with the case's
    :class:`ServiceFaultInjector`, reaping/resuming through a few chaos
    rounds, then shuts down (preempting, so checkpoints are durable).
    Phase 2 restarts a *clean* service on the same workdir and requires:
    every readable journal is re-adopted (ACTIVE ones as PREEMPTED), torn
    journals are skipped+counted (never a startup crash), every job can be
    driven to the fault-free reference energy, and the artifact cache
    serves either a CRC-valid result or a miss - never garbage.
    """

    _METHODS = ("auto", "davidson", "olsen")

    def __init__(self):
        from ..core.solver import FCISolver
        from ..molecule.geometry import Molecule

        self.molecule = Molecule.from_atoms(
            [("H", (0, 0, 0)), ("H", (0, 0, 1.4))], name="H2"
        )
        self._refs: dict = {}
        self._FCISolver = FCISolver

    def reference(self, method: str) -> float:
        if method not in self._refs:
            self._refs[method] = self._FCISolver(
                self.molecule, "sto-3g", method=method
            ).run().energy
        return self._refs[method]

    def run(self, case: FuzzCase) -> tuple[str, str] | None:
        from ..service import FCIService, JobState, JobSpec

        knobs = case.knobs
        n_jobs = max(1, min(int(knobs.get("n_jobs", 1)), len(self._METHODS)))
        methods = self._METHODS[:n_jobs]
        specs = {
            m: JobSpec.from_molecule(self.molecule, "sto-3g", method=m) for m in methods
        }
        sfi = ServiceFaultInjector(case.service_plan or ServiceFaultPlan())

        with tempfile.TemporaryDirectory(prefix="chaos-service-") as workdir:
            # -- phase 1: chaos ------------------------------------------------
            svc = FCIService(
                workdir,
                max_workers=int(knobs.get("n_workers", 1)),
                service_faults=sfi,
            )
            try:
                keys = {}
                for i, m in enumerate(methods):
                    rec = svc.submit(
                        specs[m],
                        preempt_after=(
                            2 if (i == 0 and knobs.get("preempt_first")) else None
                        ),
                    )
                    keys[m] = rec.key
                if knobs.get("cancel_one") and len(methods) > 1:
                    svc.cancel(keys[methods[1]])  # may land queued, running, or late
                for _ in range(int(knobs.get("chaos_rounds", 2))):
                    for m in methods:
                        try:
                            svc.wait(keys[m], timeout=2.0)
                        except TimeoutError:
                            pass
                    svc.reap()  # recover any jobs abandoned by crashed workers
                    for m in methods:
                        if svc.get(keys[m]).state in JobState.RESUMABLE:
                            svc.resume(keys[m])
            except Exception as exc:
                return ("no_crash", f"phase1 {type(exc).__name__}: {exc}")
            finally:
                svc.stop(preempt=True)

            # -- journal ground truth -----------------------------------------
            readable, torn = {}, 0
            for name in os.listdir(svc.jobs_dir):
                if not name.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(svc.jobs_dir, name)) as f:
                        data = json.load(f)
                    readable[data["key"]] = data["state"]
                except Exception:
                    torn += 1

            # -- phase 2: clean restart ---------------------------------------
            try:
                svc2 = FCIService(workdir, max_workers=2)
            except Exception as exc:
                return ("journal_recovery", f"restart crashed: {type(exc).__name__}: {exc}")
            try:
                if svc2.recovery["skipped_journals"] != torn:
                    return (
                        "journal_recovery",
                        f"skipped {svc2.recovery['skipped_journals']} journals, "
                        f"expected {torn} torn",
                    )
                active = [k for k, s in readable.items() if s in JobState.ACTIVE]
                for k in readable:
                    try:
                        rec = svc2.get(k)
                    except KeyError:
                        return ("journal_recovery", f"readable journal {k[:12]} not adopted")
                    if k in active and rec.state != JobState.PREEMPTED:
                        return (
                            "journal_recovery",
                            f"ACTIVE job {k[:12]} re-adopted as {rec.state}, "
                            "expected preempted",
                        )
                if svc2.recovery["readopted"] != len(active):
                    return (
                        "journal_recovery",
                        f"readopted {svc2.recovery['readopted']} != {len(active)} ACTIVE",
                    )

                # cache must serve CRC-valid results or nothing
                for m in methods:
                    cached = svc2.cache.get_result(keys[m])
                    if cached is not None:
                        err = abs(cached[0]["energy"] - self.reference(m))
                        if not err < _TOL:
                            return ("cache_crc", f"cached energy off by {err:.3e}")

                # every job must still be drivable to the reference energy
                for m in methods:
                    k = keys[m]
                    try:
                        rec = svc2._records.get(k)
                        if rec is None:  # journal torn: resubmit the same spec
                            rec = svc2.submit(specs[m])
                        elif rec.state != JobState.COMPLETED:
                            svc2.resume(k)
                        energy = svc2.result(k, timeout=120)["energy"]
                    except Exception as exc:
                        return (
                            "service_energy",
                            f"driving {m} to completion failed: "
                            f"{type(exc).__name__}: {exc}",
                        )
                    err = abs(energy - self.reference(m))
                    if not err < _TOL:
                        return ("service_energy", f"|E - E_ref| = {err:.3e} for {m}")
            finally:
                svc2.stop(preempt=True)
        return None


# -- generation ---------------------------------------------------------------


def generate_case(seed: int, budget: FuzzBudget, env: ChaosEnv) -> FuzzCase:
    """The case for one seed - a pure function of (seed, budget, env)."""
    rng = random.Random(seed)
    r = rng.random()
    if r < budget.w_sigma:
        pool = chaos_scenario_names()
        names = tuple(rng.sample(pool, 1 + rng.randrange(budget.max_scenarios)))
        plan = budget.clamp(build_fault_plan(names, env, seed))
        return FuzzCase(seed=seed, harness="sigma", scenarios=names, plan=plan)
    if r < budget.w_sigma + budget.w_solver:
        method = rng.choice(("olsen", "auto", "davidson", "davidson-mmap", "cdfci"))
        kill_frac = round(rng.uniform(0.2, 0.9), 3) if rng.random() < 0.7 else None
        # every save failure kills the attempt, so survival over an
        # ~25-iteration solve goes like (1-p)^25: keep p where finishing
        # within the retry budget is near-certain, not a coin flip
        io_error = rng.choice((0.0, 0.02, 0.05))
        return FuzzCase(
            seed=seed,
            harness="solver",
            scenarios=("checkpointed_solve",),
            plan=FaultPlan(seed=seed, io_error=io_error),
            knobs={"method": method, "kill_frac": kill_frac},
        )
    pool = service_scenario_names()
    names = tuple(rng.sample(pool, 1 + rng.randrange(2)))
    return FuzzCase(
        seed=seed,
        harness="service",
        scenarios=names,
        service_plan=build_service_plan(names, env, seed),
        knobs={
            "n_jobs": 1 + rng.randrange(budget.service_max_jobs),
            "n_workers": rng.choice((1, 2)),
            "chaos_rounds": 1 + rng.randrange(2),
            "preempt_first": rng.random() < 0.5,
            "cancel_one": rng.random() < 0.3,
        },
    )


# -- shrinking ----------------------------------------------------------------


def _shrink_moves(case: FuzzCase):
    """Yield candidate cases, each one component simpler than ``case``."""
    if case.plan is not None:
        d = case.plan.to_dict()
        for rank in list(d["deaths"]):
            nd = dict(d, deaths={r: t for r, t in d["deaths"].items() if r != rank})
            yield _with_plan(case, nd)
        for i in range(len(d["stalls"])):
            nd = dict(d, stalls=d["stalls"][:i] + d["stalls"][i + 1 :])
            yield _with_plan(case, nd)
        for name in _PROB_FIELDS:
            if d[name]:
                yield _with_plan(case, dict(d, **{name: 0.0}))
    if case.service_plan is not None:
        sd = case.service_plan.to_dict()
        for name in _SERVICE_PROB_FIELDS:
            if sd[name]:
                nc = FuzzCase.from_dict(case.to_dict())
                nc.service_plan = ServiceFaultPlan.from_dict(dict(sd, **{name: 0.0}))
                yield nc
    simpler_knobs = {
        "kill_frac": None,
        "n_jobs": 1,
        "n_workers": 1,
        "chaos_rounds": 1,
        "preempt_first": False,
        "cancel_one": False,
    }
    for name, simple in simpler_knobs.items():
        if name in case.knobs and case.knobs[name] != simple:
            nc = FuzzCase.from_dict(case.to_dict())
            nc.knobs[name] = simple
            yield nc


def _with_plan(case: FuzzCase, plan_dict: dict) -> FuzzCase:
    nc = FuzzCase.from_dict(case.to_dict())
    nc.plan = FaultPlan.from_dict(plan_dict)
    return nc


def shrink(case: FuzzCase, run_fn, max_iterations: int = 200) -> tuple[FuzzCase, int]:
    """Greedy delta-debugging: keep any single simplification that still
    violates *some* invariant; stop at a fixpoint (a 1-minimal case).

    ``run_fn(case)`` returns None or ``(invariant, detail)``.  Returns the
    shrunk case and the number of candidate executions spent.
    """
    iterations = 0
    current = case
    progress = True
    while progress and iterations < max_iterations:
        progress = False
        for candidate in _shrink_moves(current):
            iterations += 1
            if iterations > max_iterations:
                break
            if run_fn(candidate) is not None:
                current = candidate
                progress = True
                break
    return current, iterations


# -- the batch runner ---------------------------------------------------------


class FuzzRunner:
    """Generates, executes, shrinks, and reports on seeded fuzz cases."""

    def __init__(self, budget: FuzzBudget | None = None):
        self.budget = budget if budget is not None else FuzzBudget()
        self._sigma: SigmaHarness | None = None
        self._solver: SolverHarness | None = None
        self._service: ServiceHarness | None = None
        self._env: ChaosEnv | None = None

    @property
    def sigma(self) -> SigmaHarness:
        if self._sigma is None:
            self._sigma = SigmaHarness(n_ranks=self.budget.n_ranks)
        return self._sigma

    @property
    def env(self) -> ChaosEnv:
        """The generation environment (probed once; virtual time, so stable)."""
        if self._env is None:
            self._env = ChaosEnv(
                n_ranks=self.budget.n_ranks,
                horizon=self.sigma.horizon,
                n_spans=self.budget.n_spans,
            )
        return self._env

    def case_for_seed(self, seed: int) -> FuzzCase:
        return generate_case(seed, self.budget, self.env)

    def run_case(self, case: FuzzCase) -> tuple[str, str] | None:
        """Execute one case; None or the ``(invariant, detail)`` it broke."""
        if case.harness == "sigma":
            return self.sigma.run(case)
        if case.harness == "solver":
            if self._solver is None:
                self._solver = SolverHarness()
            return self._solver.run(case)
        if case.harness == "service":
            if self._service is None:
                self._service = ServiceHarness()
            return self._service.run(case)
        return ("no_crash", f"unknown harness {case.harness!r}")

    def fuzz(
        self,
        seeds,
        *,
        time_budget: float | None = None,
        reproducer_dir=None,
        do_shrink: bool = True,
    ) -> FuzzReport:
        """Run a batch of seeds; shrink and persist every violation."""
        report = FuzzReport()
        t0 = time.monotonic()
        counters: dict[str, float] = {}
        for seed in seeds:
            if time_budget is not None and time.monotonic() - t0 > time_budget:
                report.truncated = True
                logger.warning(
                    "fuzz time budget (%.0fs) exhausted after %d cases; "
                    "remaining seeds dropped",
                    time_budget,
                    report.executed,
                )
                break
            case = self.case_for_seed(seed)
            failure = self.run_case(case)
            report.executed += 1
            report.seeds.append(seed)
            report.by_harness[case.harness] = report.by_harness.get(case.harness, 0) + 1
            self._collect_counters(case, counters)
            if failure is None:
                continue
            invariant, detail = failure
            logger.error(
                "seed %d broke %s (%s); shrinking...", seed, invariant, detail
            )
            shrunk, iters = (
                shrink(case, self.run_case) if do_shrink else (case, 0)
            )
            report.shrink_iterations += iters
            violation = Violation(
                seed=seed,
                harness=case.harness,
                invariant=invariant,
                detail=detail,
                case=case.to_dict(),
            )
            payload = violation.to_dict()
            payload["shrunk"] = shrunk.to_dict()
            payload["shrink_iterations"] = iters
            report.violations.append(payload)
            if reproducer_dir is not None:
                os.makedirs(reproducer_dir, exist_ok=True)
                path = os.path.join(reproducer_dir, f"seed{seed}.json")
                with open(path, "w") as f:
                    json.dump(payload, f, indent=2, sort_keys=True)
                logger.error("minimal reproducer written to %s", path)
        report.fault_counters = counters
        report.elapsed_s = time.monotonic() - t0
        return report

    def _collect_counters(self, case: FuzzCase, counters: dict) -> None:
        """Re-derive a case's injected-fault ledger for the batch report.

        Sigma runs consume their injector inside the harness, so the cheap,
        exact way to aggregate is to count one representative re-run; to
        keep the batch fast we only aggregate the *plan's* static shape
        (deaths, stall windows) plus the per-kind booleans, not per-op
        draws.
        """
        plan = case.plan
        if plan is not None:
            counters["deaths"] = counters.get("deaths", 0) + len(plan.deaths)
            counters["stall_windows"] = counters.get("stall_windows", 0) + len(plan.stalls)
            for name in _PROB_FIELDS:
                if getattr(plan, name):
                    counters[f"plans_with.{name}"] = (
                        counters.get(f"plans_with.{name}", 0) + 1
                    )
        if case.service_plan is not None:
            for name in _SERVICE_PROB_FIELDS:
                if getattr(case.service_plan, name):
                    counters[f"plans_with.{name}"] = (
                        counters.get(f"plans_with.{name}", 0) + 1
                    )
