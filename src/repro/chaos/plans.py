"""Composable, seeded chaos-scenario generators.

:mod:`repro.faults.scenarios` names *single-knob* configurations (one dead
rank, one global drop rate).  At fleet scale the interesting failures are
*shaped*: several ranks failing together because they share a blade, a
latency distribution with a heavy tail rather than a mean, stalls that
land exactly on task-pool span boundaries where the dynamic load balancer
is most exposed, I/O that browns out gradually instead of flipping off.

A chaos scenario here is a **generator**: ``(env, rng) -> FaultPlan field
overrides``, drawing its shape from a seeded :class:`random.Random` so the
same seed always produces the same schedule.  Scenarios compose by
merging - deaths union, stall windows concatenate, scalar knobs override
left-to-right - into one declarative :class:`~repro.faults.FaultPlan`
that round-trips through JSON (``FaultPlan.to_dict``/``from_dict``), which
is what lets the fuzzer persist a failing schedule as a replayable
reproducer.

Three registries, same discipline as :data:`repro.faults.SCENARIOS`:

* :data:`CHAOS_SCENARIOS` - simulated-X1 fault schedules (consumed by
  ``ParallelSigma(faults=...)`` and solver checkpointing),
* :data:`SERVICE_SCENARIOS` - service-layer fault plans (consumed by
  ``FCIService(service_faults=...)``),
* :data:`BACKEND_SCENARIOS` - real-process execution-backend faults
  (killed workers, stragglers); these compose into a plain knob dict via
  :func:`build_backend_plan` because the real backends take keyword
  options, not a :class:`~repro.faults.FaultPlan`.

Unknown names raise :class:`ValueError` listing the registered names;
:func:`chaos_scenario_names` / :func:`service_scenario_names` /
:func:`backend_scenario_names` expose them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..faults import FaultPlan, ServiceFaultPlan, StallWindow

__all__ = [
    "ChaosEnv",
    "CHAOS_SCENARIOS",
    "SERVICE_SCENARIOS",
    "BACKEND_SCENARIOS",
    "register_chaos_scenario",
    "chaos_scenario_names",
    "service_scenario_names",
    "backend_scenario_names",
    "build_fault_plan",
    "build_service_plan",
    "build_backend_plan",
]


@dataclass(frozen=True)
class ChaosEnv:
    """What a generator is allowed to know about the run it will break.

    ``horizon`` is the fault-free run's elapsed *virtual* time (the
    simulated X1 is deterministic, so this is a stable, machine-independent
    number); ``n_spans`` is the task-pool span count the adversarial
    schedules align their windows to.
    """

    n_ranks: int = 4
    horizon: float = 1.0
    n_spans: int = 8


Generator = Callable[[ChaosEnv, random.Random], dict]

CHAOS_SCENARIOS: dict[str, Generator] = {}
SERVICE_SCENARIOS: dict[str, Generator] = {}
BACKEND_SCENARIOS: dict[str, Generator] = {}


def register_chaos_scenario(name: str, *, registry: dict | None = None):
    """Decorator registering a generator under ``name`` (X1 registry by default)."""
    reg = CHAOS_SCENARIOS if registry is None else registry

    def wrap(fn: Generator) -> Generator:
        if name in reg:
            raise ValueError(f"chaos scenario {name!r} is already registered")
        reg[name] = fn
        return fn

    return wrap


def chaos_scenario_names() -> list[str]:
    """The registered X1 chaos-scenario names, sorted."""
    return sorted(CHAOS_SCENARIOS)


def service_scenario_names() -> list[str]:
    """The registered service chaos-scenario names, sorted."""
    return sorted(SERVICE_SCENARIOS)


def backend_scenario_names() -> list[str]:
    """The registered execution-backend chaos-scenario names, sorted."""
    return sorted(BACKEND_SCENARIOS)


# -- X1 schedule generators ---------------------------------------------------


@register_chaos_scenario("correlated_failures")
def _correlated_failures(env: ChaosEnv, rng: random.Random) -> dict:
    """Ranks sharing a failure domain die together in one small window."""
    k = 1 + rng.randrange(max(1, min(2, env.n_ranks - 1)))
    victims = rng.sample(range(env.n_ranks), min(k, env.n_ranks - 1))
    center = env.horizon * rng.uniform(0.2, 0.8)
    spread = env.horizon * 0.05
    return {
        "deaths": {v: max(0.0, center + rng.uniform(-spread, spread)) for v in victims}
    }


@register_chaos_scenario("heavy_tail_latency")
def _heavy_tail_latency(env: ChaosEnv, rng: random.Random) -> dict:
    """Remote-op latency with a Pareto tail, not a friendly mean."""
    tail = 5e-6 * rng.paretovariate(1.5)  # alpha=1.5: finite mean, wild tail
    return {
        "delay_prob": rng.uniform(0.05, 0.15),
        "delay_seconds": min(tail, 200e-6),
        "op_timeout": 2e-3,
    }


@register_chaos_scenario("adversarial_stalls")
def _adversarial_stalls(env: ChaosEnv, rng: random.Random) -> dict:
    """Stall windows aligned to task-pool span boundaries.

    The dynamic load balancer hands out Fig-3 spans; a slowdown that
    switches on exactly at a span boundary maximizes the work stranded on
    the slow rank - the adversarial placement a uniform-random window
    would only rarely find.
    """
    dt = env.horizon / env.n_spans
    windows = []
    for _ in range(1 + rng.randrange(3)):
        b = rng.randrange(env.n_spans)
        windows.append(
            StallWindow(
                rank=rng.randrange(env.n_ranks),
                t0=b * dt,
                t1=(b + 1 + rng.randrange(2)) * dt,
                slowdown=rng.uniform(2.0, 10.0),
            )
        )
    return {"stalls": windows}


@register_chaos_scenario("corruption_burst")
def _corruption_burst(env: ChaosEnv, rng: random.Random) -> dict:
    """NaN-poisoned get payloads (detectable corruption: DDI refetches)."""
    return {"corrupt": rng.uniform(0.05, 0.2), "corrupt_mode": "nan"}


@register_chaos_scenario("silent_bitflips")
def _silent_bitflips(env: ChaosEnv, rng: random.Random) -> dict:
    """Single-bit payload flips - indistinguishable from data at the comms
    layer, so the contract is seeded reproducibility, not exactness."""
    return {"corrupt": rng.uniform(0.05, 0.2), "corrupt_mode": "bitflip"}


@register_chaos_scenario("cascading_brownout")
def _cascading_brownout(env: ChaosEnv, rng: random.Random) -> dict:
    """Shared-filesystem brownout: I/O failures plus sympathetic delays."""
    return {
        "io_error": rng.uniform(0.1, 0.4),
        "delay_prob": rng.uniform(0.05, 0.1),
        "delay_seconds": 20e-6,
        "op_timeout": 2e-3,
    }


@register_chaos_scenario("flaky_interconnect")
def _flaky_interconnect(env: ChaosEnv, rng: random.Random) -> dict:
    """Lossy network: symmetric drops, grant jitter, op timeouts."""
    p = rng.uniform(0.02, 0.12)
    return {
        "drop_get": p,
        "drop_put": p,
        "mutex_jitter": rng.uniform(0.0, 5e-6),
        "op_timeout": 2e-3,
    }


@register_chaos_scenario("calm")
def _calm(env: ChaosEnv, rng: random.Random) -> dict:
    """No faults at all - the bitwise fault-free-identity lane."""
    return {}


# -- service-layer generators -------------------------------------------------


@register_chaos_scenario("worker_massacre", registry=SERVICE_SCENARIOS)
def _worker_massacre(env: ChaosEnv, rng: random.Random) -> dict:
    """Worker threads die mid-solve; reap/resume must recover the jobs."""
    return {"worker_crash": rng.uniform(0.1, 0.4)}


@register_chaos_scenario("checkpoint_brownout", registry=SERVICE_SCENARIOS)
def _checkpoint_brownout(env: ChaosEnv, rng: random.Random) -> dict:
    """Checkpoint writes fail transiently (the shared-filesystem story)."""
    return {"checkpoint_io_error": rng.uniform(0.1, 0.4)}


@register_chaos_scenario("result_rot", registry=SERVICE_SCENARIOS)
def _result_rot(env: ChaosEnv, rng: random.Random) -> dict:
    """Persisted results rot on disk; CRC must turn damage into a miss."""
    return {
        "result_corrupt": rng.uniform(0.3, 1.0),
        "result_corrupt_mode": rng.choice(["truncate", "bitflip", "header_only"]),
    }


@register_chaos_scenario("torn_journals", registry=SERVICE_SCENARIOS)
def _torn_journals(env: ChaosEnv, rng: random.Random) -> dict:
    """Journal writes tear mid-crash; restart recovery must skip, not die."""
    return {"journal_torn_write": rng.uniform(0.2, 0.6)}


@register_chaos_scenario("telemetry_blackout", registry=SERVICE_SCENARIOS)
def _telemetry_blackout(env: ChaosEnv, rng: random.Random) -> dict:
    """The telemetry stream's filesystem goes away; solves must not care."""
    return {"telemetry_io_error": rng.uniform(0.3, 1.0)}


# -- execution-backend generators ---------------------------------------------


@register_chaos_scenario("socket_worker_kill", registry=BACKEND_SCENARIOS)
def _socket_worker_kill(env: ChaosEnv, rng: random.Random) -> dict:
    """SIGKILL one real socket worker mid-span.

    ``straggle_seconds`` (the engine's per-task chaos hook) widens the
    mixed-spin span window so the kill reliably lands *inside* a span;
    the engine must convert the death into a ``RuntimeError`` naming the
    rank within its heartbeat budget — never a hang.
    """
    return {
        "backend": "sockets",
        "kill_rank": rng.randrange(max(1, env.n_ranks)),
        "kill_after_seconds": rng.uniform(0.05, 0.25),
        "straggle_seconds": rng.uniform(0.05, 0.2),
    }


@register_chaos_scenario("shm_worker_kill", registry=BACKEND_SCENARIOS)
def _shm_worker_kill(env: ChaosEnv, rng: random.Random) -> dict:
    """SIGKILL one real shm worker mid-span (same contract as sockets)."""
    return {
        "backend": "shm",
        "kill_rank": rng.randrange(max(1, env.n_ranks)),
        "kill_after_seconds": rng.uniform(0.05, 0.25),
        "straggle_seconds": rng.uniform(0.05, 0.2),
    }


# -- composition --------------------------------------------------------------


def _compose(names, env: ChaosEnv, seed: int, registry: dict, kind: str) -> dict:
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise ValueError(
            f"unknown {kind} scenario(s) {unknown}; registered: {sorted(registry)}"
        )
    rng = random.Random(seed)
    deaths: dict[int, float] = {}
    stalls: list[StallWindow] = []
    scalars: dict = {}
    for name in names:
        overrides = dict(registry[name](env, rng))
        deaths.update(overrides.pop("deaths", {}))
        stalls.extend(overrides.pop("stalls", []))
        scalars.update(overrides)
    if deaths:
        scalars["deaths"] = deaths
    if stalls:
        scalars["stalls"] = stalls
    return scalars


def build_fault_plan(names, env: ChaosEnv, seed: int) -> FaultPlan:
    """Compose named X1 scenarios into one seeded :class:`FaultPlan`.

    The generators draw from ``random.Random(seed)``; the plan's own
    ``seed`` (the injector's stream) is the same value, so one integer
    reproduces both the schedule and the per-op coin flips.
    """
    scalars = _compose(names, env, seed, CHAOS_SCENARIOS, "chaos")
    return FaultPlan(seed=seed, **scalars)


def build_backend_plan(names, env: ChaosEnv, seed: int) -> dict:
    """Compose named backend scenarios into one plain knob dict.

    Real-process backends are configured with keyword options (worker
    count, straggle hook), so the composed plan stays a dict the test
    harness interprets: ``kill_rank``/``kill_after_seconds`` drive the
    killer, ``straggle_seconds`` passes through to the engine.
    """
    unknown = [n for n in names if n not in BACKEND_SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown backend scenario(s) {unknown}; "
            f"registered: {backend_scenario_names()}"
        )
    rng = random.Random(seed)
    plan: dict = {}
    for name in names:
        plan.update(BACKEND_SCENARIOS[name](env, rng))
    return plan


def build_service_plan(names, env: ChaosEnv, seed: int) -> ServiceFaultPlan:
    """Compose named service scenarios into one seeded :class:`ServiceFaultPlan`."""
    scalars = _compose(names, env, seed, SERVICE_SCENARIOS, "service chaos")
    scalars.pop("deaths", None)
    scalars.pop("stalls", None)
    return ServiceFaultPlan(seed=seed, **scalars)
