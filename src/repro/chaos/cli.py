"""``python -m repro.chaos`` - fuzz, replay, and inspect chaos scenarios.

Subcommands:

``fuzz``
    Run a seeded batch of generated FaultPlans through the harnesses.
    ``--seeds N`` (count), ``--start S`` (first seed), ``--time-budget``
    (wall seconds; the batch truncates rather than overruns),
    ``--min-executed`` (fail if truncation cut below this floor),
    ``--reproducers DIR`` (where shrunk failures are persisted),
    ``--report FILE`` (write the batch report JSON).  Exit 1 on any
    violation, 2 if fewer than ``--min-executed`` cases ran.

``replay``
    Re-run one case: ``replay 1234`` regenerates seed 1234's case from
    scratch; ``replay --file repro.json`` loads a persisted reproducer
    (the shrunk case when present).  Exit 1 if the invariant is (still)
    violated - so a fixed bug replays to exit 0.

``scenarios``
    List the registered X1 and service chaos scenarios.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from .fuzz import FuzzBudget, FuzzCase, FuzzRunner
from .plans import (
    backend_scenario_names,
    chaos_scenario_names,
    service_scenario_names,
)

__all__ = ["main"]


def _cmd_fuzz(args) -> int:
    runner = FuzzRunner(FuzzBudget())
    seeds = range(args.start, args.start + args.seeds)
    report = runner.fuzz(
        seeds,
        time_budget=args.time_budget,
        reproducer_dir=args.reproducers,
        do_shrink=not args.no_shrink,
    )
    payload = report.to_dict()
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.report:
        with open(args.report, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
    if report.violations:
        for v in report.violations:
            shrunk = v["shrunk"]
            print(
                f"VIOLATION seed={v['seed']} {v['harness']}/{v['invariant']}: "
                f"{v['detail']}\n  minimal reproducer: {json.dumps(shrunk)}",
                file=sys.stderr,
            )
        return 1
    if args.min_executed and report.executed < args.min_executed:
        print(
            f"only {report.executed} cases executed "
            f"(< --min-executed {args.min_executed})",
            file=sys.stderr,
        )
        return 2
    print(
        f"ok: {report.executed} cases, 0 violations ({report.elapsed_s:.1f}s)",
        file=sys.stderr,
    )
    return 0


def _cmd_replay(args) -> int:
    runner = FuzzRunner(FuzzBudget())
    if args.file:
        with open(args.file) as f:
            payload = json.load(f)
        case_dict = payload.get("shrunk") or payload.get("case") or payload
        case = FuzzCase.from_dict(case_dict)
        print(f"replaying persisted case (seed {case.seed}, {case.harness})")
    elif args.seed is not None:
        case = runner.case_for_seed(args.seed)
        print(f"replaying seed {args.seed}: {case.harness} {list(case.scenarios)}")
    else:
        print("replay needs a seed or --file", file=sys.stderr)
        return 2
    failure = runner.run_case(case)
    if failure is None:
        print("ok: all invariants held")
        return 0
    invariant, detail = failure
    print(f"VIOLATION {invariant}: {detail}", file=sys.stderr)
    print(json.dumps(case.to_dict(), indent=2, sort_keys=True))
    return 1


def _cmd_scenarios(_args) -> int:
    print("X1 chaos scenarios (compose into a FaultPlan):")
    for name in chaos_scenario_names():
        print(f"  {name}")
    print("service chaos scenarios (compose into a ServiceFaultPlan):")
    for name in service_scenario_names():
        print(f"  {name}")
    print("backend chaos scenarios (compose into a real-process knob dict):")
    for name in backend_scenario_names():
        print(f"  {name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="property-based fuzzing of the fault/recovery machinery",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fuzz", help="run a seeded batch of generated fault plans")
    p.add_argument("--seeds", type=int, default=200, help="number of seeds (default 200)")
    p.add_argument("--start", type=int, default=0, help="first seed (default 0)")
    p.add_argument(
        "--time-budget", type=float, default=None, help="wall-clock cap in seconds"
    )
    p.add_argument(
        "--min-executed",
        type=int,
        default=0,
        help="fail (exit 2) if the time budget cut the batch below this",
    )
    p.add_argument(
        "--reproducers", default=None, help="directory for shrunk failing cases"
    )
    p.add_argument("--report", default=None, help="write the batch report JSON here")
    p.add_argument("--no-shrink", action="store_true", help="skip shrinking failures")
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser("replay", help="re-run one seed or a persisted reproducer")
    p.add_argument("seed", type=int, nargs="?", help="seed to regenerate and run")
    p.add_argument("--file", default=None, help="persisted reproducer JSON")
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser("scenarios", help="list registered chaos scenarios")
    p.set_defaults(fn=_cmd_scenarios)

    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.WARNING,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
