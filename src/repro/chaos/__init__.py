"""Chaos engineering for the FCI stack: scenario library + fuzzer.

:mod:`repro.faults` provides the *mechanisms* (seeded injectors for the
simulated X1, the checkpointer, and the service layer); this package
provides the *search*: composable seeded scenario generators
(:mod:`.plans`) and a property-based fuzzer (:mod:`.fuzz`) that draws
random fault schedules inside a budget grammar, executes them through the
parallel sigma / checkpointed solver / FCIService harnesses, checks the
recovery invariants, and shrinks any failure to a minimal JSON reproducer.

CLI: ``python -m repro.chaos {fuzz,replay,scenarios}``.
"""

from .fuzz import (
    FuzzBudget,
    FuzzCase,
    FuzzReport,
    FuzzRunner,
    Violation,
    shrink,
)
from .plans import (
    BACKEND_SCENARIOS,
    CHAOS_SCENARIOS,
    SERVICE_SCENARIOS,
    ChaosEnv,
    backend_scenario_names,
    build_backend_plan,
    build_fault_plan,
    build_service_plan,
    chaos_scenario_names,
    register_chaos_scenario,
    service_scenario_names,
)

__all__ = [
    "ChaosEnv",
    "BACKEND_SCENARIOS",
    "CHAOS_SCENARIOS",
    "SERVICE_SCENARIOS",
    "register_chaos_scenario",
    "backend_scenario_names",
    "chaos_scenario_names",
    "service_scenario_names",
    "build_backend_plan",
    "build_fault_plan",
    "build_service_plan",
    "FuzzBudget",
    "FuzzCase",
    "FuzzReport",
    "FuzzRunner",
    "Violation",
    "shrink",
]
