"""The Boys function F_n(x) used by Gaussian Coulomb integrals.

F_n(x) = int_0^1 t^(2n) exp(-x t^2) dt

Evaluated through Kummer's confluent hypergeometric function,

    F_n(x) = 1F1(n + 1/2; n + 3/2; -x) / (2n + 1),

which is numerically stable across the full range needed here, with a
downward-recursion path that fills all orders 0..nmax from the highest one:

    F_{n-1}(x) = (2 x F_n(x) + exp(-x)) / (2 n - 1).
"""

from __future__ import annotations

import numpy as np
from scipy.special import hyp1f1

__all__ = ["boys", "boys_array", "boys_array_batch"]


def boys(n: int, x: float) -> float:
    """Single Boys function value F_n(x)."""
    if x < 0:
        raise ValueError("Boys function argument must be non-negative")
    return float(hyp1f1(n + 0.5, n + 1.5, -x)) / (2 * n + 1)


def boys_array(nmax: int, x: float) -> np.ndarray:
    """All Boys values F_0(x) .. F_nmax(x) as an array of length nmax+1.

    The top order is evaluated directly and lower orders are filled by the
    (stable) downward recursion.
    """
    if x < 0:
        raise ValueError("Boys function argument must be non-negative")
    out = np.empty(nmax + 1)
    out[nmax] = boys(nmax, x)
    if nmax > 0:
        ex = np.exp(-x)
        for n in range(nmax, 0, -1):
            out[n - 1] = (2.0 * x * out[n] + ex) / (2 * n - 1)
    return out


def boys_array_batch(nmax: int, x: np.ndarray) -> np.ndarray:
    """Boys values F_0..F_nmax for a whole batch of arguments at once.

    ``x`` has shape (N,); the result has shape (nmax+1, N).  The top order is
    one vectorized ``hyp1f1`` evaluation and lower orders follow by the same
    downward recursion as :func:`boys_array`, so each column matches the
    scalar routine elementwise.
    """
    x = np.asarray(x, dtype=float)
    if np.any(x < 0):
        raise ValueError("Boys function argument must be non-negative")
    out = np.empty((nmax + 1, x.size))
    out[nmax] = hyp1f1(nmax + 0.5, nmax + 1.5, -x) / (2 * nmax + 1)
    if nmax > 0:
        ex = np.exp(-x)
        for n in range(nmax, 0, -1):
            out[n - 1] = (2.0 * x * out[n] + ex) / (2 * n - 1)
    return out
