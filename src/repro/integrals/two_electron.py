"""Two-electron repulsion integrals (ERIs) in chemists' notation (pq|rs).

The full 4-index Cartesian ERI tensor is assembled shell-quartet by
shell-quartet with McMurchie-Davidson Hermite expansions.  Per shell pair the
bra/ket Hermite coefficient tensors are precomputed once; the inner
primitive-quad loop then only evaluates the Hermite Coulomb tensor R and a
small tensor contraction.  Eight-fold permutational symmetry halves (thrice)
the quartet loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..basis.shell import BasisSet, Shell, cartesian_components
from .hermite import hermite_coulomb, hermite_expansion
from .one_electron import _component_norms

__all__ = ["eri", "ShellPairData", "build_shell_pairs"]


@dataclass
class ShellPairData:
    """Precomputed Hermite data for one (shell, shell) pair."""

    ia: int
    ib: int
    la: int
    lb: int
    ncomp: int  # ncomp_a * ncomp_b
    coefs: np.ndarray  # (npairs,) products of contraction coefficients
    exps_p: np.ndarray  # (npairs,) a + b
    centers_P: np.ndarray  # (npairs, 3)
    # Hermite coefficient tensor per primitive pair:
    # B[pair, comp_ab, t, u, v] with t,u,v <= la+lb
    B: np.ndarray
    norms: np.ndarray  # (ncomp,) component normalization products


def build_shell_pairs(basis: BasisSet) -> list[list[ShellPairData]]:
    """Build Hermite pair data for all ia >= ib shell pairs.

    Returned as a 2-level list indexed [ia][ib] (ib <= ia).
    """
    table: list[list[ShellPairData]] = []
    for ia, sa in enumerate(basis.shells):
        row = []
        comps_a = cartesian_components(sa.l)
        norm_a = _component_norms(sa)
        for ib in range(ia + 1):
            sb = basis.shells[ib]
            comps_b = cartesian_components(sb.l)
            norm_b = _component_norms(sb)
            la, lb = sa.l, sb.l
            lsum = la + lb
            AB = sa.center - sb.center
            npair = sa.nprim * sb.nprim
            ncomp = len(comps_a) * len(comps_b)
            coefs = np.empty(npair)
            exps_p = np.empty(npair)
            centers = np.empty((npair, 3))
            B = np.zeros((npair, ncomp, lsum + 1, lsum + 1, lsum + 1))
            k = 0
            for a, ca in zip(sa.exponents, sa.coefficients * sa._norms):
                for b, cb in zip(sb.exponents, sb.coefficients * sb._norms):
                    p = a + b
                    coefs[k] = ca * cb
                    exps_p[k] = p
                    centers[k] = (a * sa.center + b * sb.center) / p
                    Ex = hermite_expansion(la, lb, a, b, AB[0])
                    Ey = hermite_expansion(la, lb, a, b, AB[1])
                    Ez = hermite_expansion(la, lb, a, b, AB[2])
                    c = 0
                    for (l1, m1, n1) in comps_a:
                        for (l2, m2, n2) in comps_b:
                            bx = Ex[l1, l2, : l1 + l2 + 1]
                            by = Ey[m1, m2, : m1 + m2 + 1]
                            bz = Ez[n1, n2, : n1 + n2 + 1]
                            B[
                                k, c, : l1 + l2 + 1, : m1 + m2 + 1, : n1 + n2 + 1
                            ] = bx[:, None, None] * by[None, :, None] * bz[None, None, :]
                            c += 1
                    k += 1
            norms = (norm_a[:, None] * norm_b[None, :]).ravel()
            row.append(
                ShellPairData(
                    ia=ia,
                    ib=ib,
                    la=la,
                    lb=lb,
                    ncomp=ncomp,
                    coefs=coefs,
                    exps_p=exps_p,
                    centers_P=centers,
                    B=B,
                    norms=norms,
                )
            )
        table.append(row)
    return table


def _quartet(bra: ShellPairData, ket: ShellPairData) -> np.ndarray:
    """Contracted ERI block for one shell quartet: (ncomp_bra, ncomp_ket)."""
    lb = bra.la + bra.lb
    lk = ket.la + ket.lb
    ltot = lb + lk
    nb1 = lb + 1
    nk1 = lk + 1
    out = np.zeros((bra.ncomp, ket.ncomp))
    Bbra = bra.B.reshape(bra.B.shape[0], bra.ncomp, -1)  # (npair, ncomp, nb1^3)
    for kb in range(bra.coefs.size):
        p = bra.exps_p[kb]
        P = bra.centers_P[kb]
        cb = bra.coefs[kb]
        for kk in range(ket.coefs.size):
            q = ket.exps_p[kk]
            Q = ket.centers_P[kk]
            alpha = p * q / (p + q)
            R = hermite_coulomb(ltot, alpha, P - Q)
            pref = (
                cb
                * ket.coefs[kk]
                * 2.0
                * math.pi**2.5
                / (p * q * math.sqrt(p + q))
            )
            # C[comp_ket, t,u,v] = sum_{tau,nu,phi} (-1)^(tau+nu+phi)
            #                      Bket[comp_ket,tau,nu,phi] R[t+tau,u+nu,v+phi]
            C = np.zeros((ket.ncomp, nb1, nb1, nb1))
            Bket = ket.B[kk]
            for tau in range(nk1):
                for nu in range(nk1):
                    for phi in range(nk1):
                        col = Bket[:, tau, nu, phi]
                        if not np.any(col):
                            continue
                        sign = -1.0 if (tau + nu + phi) & 1 else 1.0
                        C += (sign * col)[:, None, None, None] * R[
                            tau : tau + nb1, nu : nu + nb1, phi : phi + nb1
                        ]
            out += pref * (Bbra[kb] @ C.reshape(ket.ncomp, -1).T)
    out *= bra.norms[:, None] * ket.norms[None, :]
    return out


def eri(basis: BasisSet) -> np.ndarray:
    """Full (nbf, nbf, nbf, nbf) ERI tensor, chemists' notation (pq|rs)."""
    n = basis.nbf
    offs = basis.shell_offsets
    pairs = build_shell_pairs(basis)
    g = np.zeros((n, n, n, n))
    flat_pairs = [pairs[ia][ib] for ia in range(len(pairs)) for ib in range(ia + 1)]
    for pi, bra in enumerate(flat_pairs):
        for ket in flat_pairs[: pi + 1]:
            block = _quartet(bra, ket)
            na = basis.shells[bra.ia].nfunc
            nb = basis.shells[bra.ib].nfunc
            nc = basis.shells[ket.ia].nfunc
            nd = basis.shells[ket.ib].nfunc
            blk = block.reshape(na, nb, nc, nd)
            oa, ob = offs[bra.ia], offs[bra.ib]
            oc, od = offs[ket.ia], offs[ket.ib]
            for perm_blk, (o1, n1, o2, n2, o3, n3, o4, n4) in (
                (blk, (oa, na, ob, nb, oc, nc, od, nd)),
                (blk.transpose(1, 0, 2, 3), (ob, nb, oa, na, oc, nc, od, nd)),
                (blk.transpose(0, 1, 3, 2), (oa, na, ob, nb, od, nd, oc, nc)),
                (blk.transpose(1, 0, 3, 2), (ob, nb, oa, na, od, nd, oc, nc)),
                (blk.transpose(2, 3, 0, 1), (oc, nc, od, nd, oa, na, ob, nb)),
                (blk.transpose(3, 2, 0, 1), (od, nd, oc, nc, oa, na, ob, nb)),
                (blk.transpose(2, 3, 1, 0), (oc, nc, od, nd, ob, nb, oa, na)),
                (blk.transpose(3, 2, 1, 0), (od, nd, oc, nc, ob, nb, oa, na)),
            ):
                g[o1 : o1 + n1, o2 : o2 + n2, o3 : o3 + n3, o4 : o4 + n4] = perm_blk
    return g
