"""Two-electron repulsion integrals (ERIs) in chemists' notation (pq|rs).

The full 4-index Cartesian ERI tensor is assembled shell-quartet by
shell-quartet with McMurchie-Davidson Hermite expansions.  Two quartet
kernels live here:

* the **batched engine** (:class:`IntegralEngine`, the production path) —
  per quartet, *all* primitive quads are evaluated at once: one vectorized
  Hermite-Coulomb sweep over the whole batch of P-Q vectors, then two dense
  contractions (a broadcast GEMM folding the ket Hermite coefficients into
  the windowed R lattice, and one GEMM folding in the bra side).  Negligible
  quartets are skipped up front with the rigorous Cauchy-Schwarz bound
  ``sqrt((pq|pq)) * sqrt((rs|rs)) < tau``.
* the **scalar reference path** (:func:`eri_reference`) — the original
  primitive-quad quadruple loop, kept verbatim as the differential oracle
  the engine is tested against.

Eight-fold permutational symmetry halves (thrice) the quartet loop in both.
Contracted shell-pair Hermite data is built once per basis and cached on the
engine, which also serves the one-electron integrals and SCF (see
:func:`repro.scf.rhf.compute_ao_integrals`).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..basis.shell import BasisSet, cartesian_components
from .hermite import hermite_coulomb, hermite_coulomb_batch, hermite_expansion
from .one_electron import (
    _component_norms,
    core_hamiltonian,
    kinetic,
    nuclear_attraction,
    overlap,
)

__all__ = [
    "eri",
    "eri_reference",
    "EriStats",
    "IntegralEngine",
    "ShellPairData",
    "build_shell_pairs",
    "schwarz_bounds",
]

_TWO_PI_POW_2_5 = 2.0 * math.pi**2.5


@dataclass
class ShellPairData:
    """Precomputed Hermite data for one (shell, shell) pair."""

    ia: int
    ib: int
    la: int
    lb: int
    ncomp: int  # ncomp_a * ncomp_b
    coefs: np.ndarray  # (npairs,) products of contraction coefficients
    exps_p: np.ndarray  # (npairs,) a + b
    centers_P: np.ndarray  # (npairs, 3)
    # Hermite coefficient tensor per primitive pair:
    # B[pair, comp_ab, t, u, v] with t,u,v <= la+lb
    B: np.ndarray
    norms: np.ndarray  # (ncomp,) component normalization products
    # flattened views used by the batched kernel (built in __post_init__):
    # Bflat[pair, comp, tuv] and Bsigned[pair, comp, tuv] with the ket-side
    # (-1)^(t+u+v) phase folded in.
    Bflat: np.ndarray = field(init=False, repr=False)
    Bsigned: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        lsum = self.la + self.lb
        n1 = lsum + 1
        self.Bflat = self.B.reshape(self.B.shape[0], self.ncomp, n1 * n1 * n1)
        grid = np.arange(n1)
        sign = (-1.0) ** (
            grid[:, None, None] + grid[None, :, None] + grid[None, None, :]
        )
        self.Bsigned = (self.B * sign).reshape(self.Bflat.shape)

    @property
    def nherm(self) -> int:
        """Size of the flattened Hermite lattice (la+lb+1)^3."""
        return self.Bflat.shape[2]


def build_shell_pairs(basis: BasisSet) -> list[list[ShellPairData]]:
    """Build Hermite pair data for all ia >= ib shell pairs.

    Returned as a 2-level list indexed [ia][ib] (ib <= ia).
    """
    table: list[list[ShellPairData]] = []
    for ia, sa in enumerate(basis.shells):
        row = []
        comps_a = cartesian_components(sa.l)
        norm_a = _component_norms(sa)
        for ib in range(ia + 1):
            sb = basis.shells[ib]
            comps_b = cartesian_components(sb.l)
            norm_b = _component_norms(sb)
            la, lb = sa.l, sb.l
            lsum = la + lb
            AB = sa.center - sb.center
            npair = sa.nprim * sb.nprim
            ncomp = len(comps_a) * len(comps_b)
            coefs = np.empty(npair)
            exps_p = np.empty(npair)
            centers = np.empty((npair, 3))
            B = np.zeros((npair, ncomp, lsum + 1, lsum + 1, lsum + 1))
            k = 0
            for a, ca in zip(sa.exponents, sa.coefficients * sa._norms):
                for b, cb in zip(sb.exponents, sb.coefficients * sb._norms):
                    p = a + b
                    coefs[k] = ca * cb
                    exps_p[k] = p
                    centers[k] = (a * sa.center + b * sb.center) / p
                    Ex = hermite_expansion(la, lb, a, b, AB[0])
                    Ey = hermite_expansion(la, lb, a, b, AB[1])
                    Ez = hermite_expansion(la, lb, a, b, AB[2])
                    c = 0
                    for (l1, m1, n1) in comps_a:
                        for (l2, m2, n2) in comps_b:
                            bx = Ex[l1, l2, : l1 + l2 + 1]
                            by = Ey[m1, m2, : m1 + m2 + 1]
                            bz = Ez[n1, n2, : n1 + n2 + 1]
                            B[
                                k, c, : l1 + l2 + 1, : m1 + m2 + 1, : n1 + n2 + 1
                            ] = bx[:, None, None] * by[None, :, None] * bz[None, None, :]
                            c += 1
                    k += 1
            norms = (norm_a[:, None] * norm_b[None, :]).ravel()
            row.append(
                ShellPairData(
                    ia=ia,
                    ib=ib,
                    la=la,
                    lb=lb,
                    ncomp=ncomp,
                    coefs=coefs,
                    exps_p=exps_p,
                    centers_P=centers,
                    B=B,
                    norms=norms,
                )
            )
        table.append(row)
    return table


# -- scalar reference path (the differential oracle) --------------------------


def _quartet_reference(bra: ShellPairData, ket: ShellPairData) -> np.ndarray:
    """Contracted ERI block for one shell quartet: (ncomp_bra, ncomp_ket).

    The original primitive-quad loop, retained as the oracle the batched
    kernel is differentially tested against.
    """
    lb = bra.la + bra.lb
    lk = ket.la + ket.lb
    ltot = lb + lk
    nb1 = lb + 1
    nk1 = lk + 1
    out = np.zeros((bra.ncomp, ket.ncomp))
    Bbra = bra.Bflat  # (npair, ncomp, nb1^3)
    for kb in range(bra.coefs.size):
        p = bra.exps_p[kb]
        P = bra.centers_P[kb]
        cb = bra.coefs[kb]
        for kk in range(ket.coefs.size):
            q = ket.exps_p[kk]
            Q = ket.centers_P[kk]
            alpha = p * q / (p + q)
            R = hermite_coulomb(ltot, alpha, P - Q)
            pref = cb * ket.coefs[kk] * _TWO_PI_POW_2_5 / (p * q * math.sqrt(p + q))
            # C[comp_ket, t,u,v] = sum_{tau,nu,phi} (-1)^(tau+nu+phi)
            #                      Bket[comp_ket,tau,nu,phi] R[t+tau,u+nu,v+phi]
            C = np.zeros((ket.ncomp, nb1, nb1, nb1))
            Bket = ket.B[kk]
            for tau in range(nk1):
                for nu in range(nk1):
                    for phi in range(nk1):
                        col = Bket[:, tau, nu, phi]
                        if not np.any(col):
                            continue
                        sign = -1.0 if (tau + nu + phi) & 1 else 1.0
                        C += (sign * col)[:, None, None, None] * R[
                            tau : tau + nb1, nu : nu + nb1, phi : phi + nb1
                        ]
            out += pref * (Bbra[kb] @ C.reshape(ket.ncomp, -1).T)
    out *= bra.norms[:, None] * ket.norms[None, :]
    return out


def eri_reference(basis: BasisSet) -> np.ndarray:
    """Scalar-path (nbf,)*4 ERI tensor: the pre-engine quadruple loop."""
    return _assemble(basis, _flat_pairs(build_shell_pairs(basis)), _quartet_reference)


# -- batched engine path -------------------------------------------------------


def _quartet_batched(bra: ShellPairData, ket: ShellPairData) -> np.ndarray:
    """Batched contracted ERI block for one shell quartet.

    All npair_bra x npair_ket primitive quads at once: one vectorized
    Hermite-Coulomb sweep, one broadcast GEMM contracting the (signed) ket
    Hermite coefficients against the windowed R lattice, one GEMM folding in
    the bra coefficients.
    """
    lb = bra.la + bra.lb
    lk = ket.la + ket.lb
    ltot = lb + lk
    nb1 = lb + 1
    nk1 = lk + 1
    p = bra.exps_p
    q = ket.exps_p
    npb, npk = p.size, q.size
    psum = p[:, None] + q[None, :]
    alpha = p[:, None] * q[None, :] / psum
    PQ = bra.centers_P[:, None, :] - ket.centers_P[None, :, :]
    R = hermite_coulomb_batch(ltot, alpha.ravel(), PQ.reshape(-1, 3))
    pref = (
        bra.coefs[:, None]
        * ket.coefs[None, :]
        * _TWO_PI_POW_2_5
        / (p[:, None] * q[None, :] * np.sqrt(psum))
    )
    # windowed gather R[t+tau, u+nu, v+phi] -> (quad, tau,nu,phi, t,u,v)
    win = np.arange(nk1)[:, None] + np.arange(nb1)[None, :]
    Rw = R[
        :,
        win[:, None, None, :, None, None],
        win[None, :, None, None, :, None],
        win[None, None, :, None, None, :],
    ].reshape(npb, npk, nk1**3, nb1**3)
    # fold the signed ket coefficients into the lattice: one broadcast GEMM
    # (1, npk, ncomp_ket, nherm_ket) @ (npb, npk, nherm_ket, nherm_bra)
    Z = ket.Bsigned[None] @ Rw
    Z *= pref[:, :, None, None]
    D = Z.sum(axis=1)  # (npb, ncomp_ket, nherm_bra)
    # contract the bra coefficients over (primitive pair, hermite index)
    out = np.tensordot(bra.Bflat, D, axes=([0, 2], [0, 2]))
    out *= bra.norms[:, None] * ket.norms[None, :]
    return out


def _quartet_flops(bra: ShellPairData, ket: ShellPairData) -> float:
    """Multiply-add count of the two dense contractions of one quartet."""
    npb, npk = bra.coefs.size, ket.coefs.size
    ket_gemm = 2.0 * npb * npk * ket.ncomp * ket.nherm * bra.nherm
    bra_gemm = 2.0 * npb * bra.nherm * bra.ncomp * ket.ncomp
    return ket_gemm + bra_gemm


def _quartet_bytes(bra: ShellPairData, ket: ShellPairData) -> float:
    """Bytes of the windowed-R gather plus the contraction operands."""
    npb, npk = bra.coefs.size, ket.coefs.size
    window = npb * npk * ket.nherm * bra.nherm
    operands = npk * ket.ncomp * ket.nherm + npb * bra.ncomp * bra.nherm
    result = npb * ket.ncomp * bra.nherm + bra.ncomp * ket.ncomp
    return 8.0 * (window + operands + result)


def _flat_pairs(table: list[list[ShellPairData]]) -> list[ShellPairData]:
    return [table[ia][ib] for ia in range(len(table)) for ib in range(ia + 1)]


def schwarz_bounds(pairs: list[ShellPairData]) -> np.ndarray:
    """Cauchy-Schwarz bound sqrt(max |(pq|pq)|) for each shell pair.

    The diagonal quartet (pair|pair) is evaluated with the batched kernel;
    its diagonal entries are the (pq|pq) self-repulsions, so
    ``bounds[i] * bounds[j]`` rigorously bounds every element of quartet
    (i|j).
    """
    out = np.empty(len(pairs))
    for i, pair in enumerate(pairs):
        diag = np.abs(np.diagonal(_quartet_batched(pair, pair)))
        out[i] = math.sqrt(float(diag.max()))
    return out


def _assemble(basis: BasisSet, flat_pairs, quartet_fn, *, skip_fn=None) -> np.ndarray:
    """Drive the triangular quartet loop and scatter the 8 permutations."""
    n = basis.nbf
    offs = basis.shell_offsets
    g = np.zeros((n, n, n, n))
    for pi, bra in enumerate(flat_pairs):
        for ki, ket in enumerate(flat_pairs[: pi + 1]):
            if skip_fn is not None and skip_fn(pi, ki):
                continue
            block = quartet_fn(bra, ket)
            na = basis.shells[bra.ia].nfunc
            nb = basis.shells[bra.ib].nfunc
            nc = basis.shells[ket.ia].nfunc
            nd = basis.shells[ket.ib].nfunc
            blk = block.reshape(na, nb, nc, nd)
            oa, ob = offs[bra.ia], offs[bra.ib]
            oc, od = offs[ket.ia], offs[ket.ib]
            for perm_blk, (o1, n1, o2, n2, o3, n3, o4, n4) in (
                (blk, (oa, na, ob, nb, oc, nc, od, nd)),
                (blk.transpose(1, 0, 2, 3), (ob, nb, oa, na, oc, nc, od, nd)),
                (blk.transpose(0, 1, 3, 2), (oa, na, ob, nb, od, nd, oc, nc)),
                (blk.transpose(1, 0, 3, 2), (ob, nb, oa, na, od, nd, oc, nc)),
                (blk.transpose(2, 3, 0, 1), (oc, nc, od, nd, oa, na, ob, nb)),
                (blk.transpose(3, 2, 0, 1), (od, nd, oc, nc, oa, na, ob, nb)),
                (blk.transpose(2, 3, 1, 0), (oc, nc, od, nd, ob, nb, oa, na)),
                (blk.transpose(3, 2, 1, 0), (od, nd, oc, nc, ob, nb, oa, na)),
            ):
                g[o1 : o1 + n1, o2 : o2 + n2, o3 : o3 + n3, o4 : o4 + n4] = perm_blk
    return g


@dataclass
class EriStats:
    """Audited work/traffic tally of one ERI assembly."""

    n_shell_pairs: int = 0
    quartets_total: int = 0
    quartets_computed: int = 0
    quartets_screened: int = 0
    flops: float = 0.0
    bytes_moved: float = 0.0
    seconds: float = 0.0
    screen_threshold: float | None = None

    def as_dict(self) -> dict:
        return {
            "n_shell_pairs": self.n_shell_pairs,
            "quartets_total": self.quartets_total,
            "quartets_computed": self.quartets_computed,
            "quartets_screened": self.quartets_screened,
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "seconds": self.seconds,
            "screen_threshold": self.screen_threshold,
        }


class IntegralEngine:
    """Batched, Schwarz-screened AO integral engine for one basis set.

    Caches the contracted shell-pair Hermite data, the per-pair Schwarz
    bounds, the assembled integral matrices/tensors, and the one-electron
    Hermite tables, so SCF, the MO transformation, and any analysis code
    share one set of precomputed quantities.

    Parameters
    ----------
    basis:
        The Cartesian Gaussian basis to integrate over.
    screen_threshold:
        ``None`` disables Schwarz screening entirely (no bounds are built).
        A float tau engages the screen: quartets with
        ``Q_bra * Q_ket < tau`` are skipped.  ``tau = 0.0`` engages the
        machinery but skips nothing, which is bitwise-identical to the
        unscreened assembly (the screen only ever *skips* quartets).
    registry:
        Optional :class:`repro.obs.MetricsRegistry`; ERI assembly then
        publishes ``integrals.quartets.{computed,screened}`` counters and
        the FLOP/byte ledger via :func:`repro.obs.accounting.account_eri`.
    """

    def __init__(
        self,
        basis: BasisSet,
        *,
        screen_threshold: float | None = None,
        registry=None,
    ):
        if screen_threshold is not None and screen_threshold < 0:
            raise ValueError("screen_threshold must be None or >= 0")
        self.basis = basis
        self.screen_threshold = screen_threshold
        self.registry = registry
        self.stats = EriStats(screen_threshold=screen_threshold)
        self._pairs: list[ShellPairData] | None = None
        self._schwarz: np.ndarray | None = None
        self._eri: np.ndarray | None = None
        self._one_electron_tables: dict = {}
        self._one_cache: dict = {}

    # -- cached shell-pair data -------------------------------------------

    @property
    def shell_pairs(self) -> list[ShellPairData]:
        """Flattened (ia >= ib) shell-pair Hermite data, built once."""
        if self._pairs is None:
            self._pairs = _flat_pairs(build_shell_pairs(self.basis))
        return self._pairs

    @property
    def schwarz(self) -> np.ndarray:
        """Per-shell-pair Cauchy-Schwarz bounds, built once."""
        if self._schwarz is None:
            self._schwarz = schwarz_bounds(self.shell_pairs)
        return self._schwarz

    # -- two-electron integrals -------------------------------------------

    def eri(self) -> np.ndarray:
        """Full (nbf,)*4 ERI tensor via the batched, screened quartet loop."""
        if self._eri is not None:
            return self._eri
        t0 = time.perf_counter()
        pairs = self.shell_pairs
        tau = self.screen_threshold
        bounds = self.schwarz if tau is not None else None
        stats = self.stats
        stats.n_shell_pairs = len(pairs)

        def skip(pi: int, ki: int) -> bool:
            stats.quartets_total += 1
            if bounds is not None and bounds[pi] * bounds[ki] < tau:
                stats.quartets_screened += 1
                return True
            return False

        def quartet(bra: ShellPairData, ket: ShellPairData) -> np.ndarray:
            stats.quartets_computed += 1
            stats.flops += _quartet_flops(bra, ket)
            stats.bytes_moved += _quartet_bytes(bra, ket)
            return _quartet_batched(bra, ket)

        self._eri = _assemble(self.basis, pairs, quartet, skip_fn=skip)
        stats.seconds += time.perf_counter() - t0
        if self.registry is not None:
            from ..obs.accounting import account_eri

            account_eri(self.registry, stats, stats.seconds)
        return self._eri

    # -- one-electron integrals (shared Hermite-table cache) ----------------

    def overlap(self) -> np.ndarray:
        if "overlap" not in self._one_cache:
            self._one_cache["overlap"] = overlap(
                self.basis, pair_tables=self._one_electron_tables
            )
        return self._one_cache["overlap"]

    def kinetic(self) -> np.ndarray:
        if "kinetic" not in self._one_cache:
            self._one_cache["kinetic"] = kinetic(
                self.basis, pair_tables=self._one_electron_tables
            )
        return self._one_cache["kinetic"]

    def nuclear_attraction(self, charges) -> np.ndarray:
        key = ("nuclear", tuple((float(z), tuple(map(float, c))) for z, c in charges))
        if key not in self._one_cache:
            self._one_cache[key] = nuclear_attraction(
                self.basis, charges, pair_tables=self._one_electron_tables
            )
        return self._one_cache[key]

    def core_hamiltonian(self, charges) -> np.ndarray:
        key = ("hcore", tuple((float(z), tuple(map(float, c))) for z, c in charges))
        if key not in self._one_cache:
            self._one_cache[key] = core_hamiltonian(
                self.basis, charges, pair_tables=self._one_electron_tables
            )
        return self._one_cache[key]


def eri(basis: BasisSet, *, screen_threshold: float | None = None) -> np.ndarray:
    """Full (nbf, nbf, nbf, nbf) ERI tensor, chemists' notation (pq|rs).

    Thin wrapper over :class:`IntegralEngine`; pass ``screen_threshold`` to
    engage Cauchy-Schwarz shell-quartet screening.
    """
    return IntegralEngine(basis, screen_threshold=screen_threshold).eri()
