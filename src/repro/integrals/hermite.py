"""McMurchie-Davidson Hermite machinery.

Two pieces:

* ``hermite_expansion`` - the E_t^{ij} coefficients expanding a product of two
  1-D Cartesian Gaussians in Hermite Gaussians,
* ``hermite_coulomb`` - the auxiliary R^0_{tuv} integrals built from Boys
  function values by the standard recurrences.

Both follow McMurchie & Davidson, J. Comput. Phys. 26, 218 (1978).
"""

from __future__ import annotations

import numpy as np

from .boys import boys_array, boys_array_batch

__all__ = ["hermite_expansion", "hermite_coulomb", "hermite_coulomb_batch"]


def hermite_expansion(li: int, lj: int, a: float, b: float, ab_x: float) -> np.ndarray:
    """E[i, j, t] coefficients for one Cartesian direction.

    Parameters
    ----------
    li, lj:
        Maximum x-exponents on the two centers (table covers all i<=li,
        j<=lj).
    a, b:
        Gaussian exponents.
    ab_x:
        Component of A - B along this direction.

    Returns
    -------
    E with shape (li+1, lj+1, li+lj+1); entries with t > i+j are zero.
    """
    p = a + b
    mu = a * b / p
    # P - A and P - B along this axis; P = (aA + bB)/p.
    pa = -b * ab_x / p
    pb = a * ab_x / p
    E = np.zeros((li + 1, lj + 1, li + lj + 2))
    E[0, 0, 0] = np.exp(-mu * ab_x * ab_x)
    one_over_2p = 0.5 / p
    for i in range(1, li + 1):
        # build up in i with j = 0
        E[i, 0, 0] = pa * E[i - 1, 0, 0] + E[i - 1, 0, 1]
        for t in range(1, i + 1):
            E[i, 0, t] = (
                one_over_2p * E[i - 1, 0, t - 1]
                + pa * E[i - 1, 0, t]
                + (t + 1) * E[i - 1, 0, t + 1]
            )
    for j in range(1, lj + 1):
        for i in range(li + 1):
            E[i, j, 0] = pb * E[i, j - 1, 0] + E[i, j - 1, 1]
            for t in range(1, i + j + 1):
                E[i, j, t] = (
                    one_over_2p * E[i, j - 1, t - 1]
                    + pb * E[i, j - 1, t]
                    + (t + 1) * E[i, j - 1, t + 1]
                )
    return E[:, :, : li + lj + 1]


def hermite_coulomb(lmax: int, p: float, pc: np.ndarray) -> np.ndarray:
    """R[t, u, v] = R^0_{tuv}(p, PC) for all t+u+v <= lmax.

    Uses the auxiliary set R^n_{tuv} with the recurrences

        R^n_{t+1,u,v} = t R^{n+1}_{t-1,u,v} + X_PC R^{n+1}_{t,u,v}

    (and cyclic) seeded by R^n_{000} = (-2p)^n F_n(p |PC|^2).
    """
    x, y, z = float(pc[0]), float(pc[1]), float(pc[2])
    r2 = x * x + y * y + z * z
    fvals = boys_array(lmax, p * r2)
    # R[n][t,u,v]; build by decreasing n.
    Rn = np.zeros((lmax + 1, lmax + 1, lmax + 1, lmax + 1))
    minus_2p = -2.0 * p
    for n in range(lmax + 1):
        Rn[n, 0, 0, 0] = (minus_2p**n) * fvals[n]
    # Fill t, then u, then v, each step consuming one order of n.
    for n in range(lmax - 1, -1, -1):
        budget = lmax - n
        for t in range(1, budget + 1):
            if t == 1:
                Rn[n, 1, 0, 0] = x * Rn[n + 1, 0, 0, 0]
            else:
                Rn[n, t, 0, 0] = (t - 1) * Rn[n + 1, t - 2, 0, 0] + x * Rn[
                    n + 1, t - 1, 0, 0
                ]
        for t in range(0, budget + 1):
            for u in range(1, budget - t + 1):
                if u == 1:
                    Rn[n, t, 1, 0] = y * Rn[n + 1, t, 0, 0]
                else:
                    Rn[n, t, u, 0] = (u - 1) * Rn[n + 1, t, u - 2, 0] + y * Rn[
                        n + 1, t, u - 1, 0
                    ]
        for t in range(0, budget + 1):
            for u in range(0, budget - t + 1):
                for v in range(1, budget - t - u + 1):
                    if v == 1:
                        Rn[n, t, u, 1] = z * Rn[n + 1, t, u, 0]
                    else:
                        Rn[n, t, u, v] = (v - 1) * Rn[n + 1, t, u, v - 2] + z * Rn[
                            n + 1, t, u, v - 1
                        ]
    return Rn[0]


def hermite_coulomb_batch(lmax: int, p: np.ndarray, pc: np.ndarray) -> np.ndarray:
    """R^0_{tuv} for a batch of (exponent, PC-vector) pairs in one sweep.

    ``p`` has shape (N,) and ``pc`` shape (N, 3); the result has shape
    (N, lmax+1, lmax+1, lmax+1) with entry ``[i]`` equal to
    ``hermite_coulomb(lmax, p[i], pc[i])`` up to elementwise-identical
    arithmetic: the recurrences below are the scalar ones applied to (N,)
    slices, so each lattice entry sees the same operation sequence.

    This is the vector spine of the batched ERI engine: one ``hyp1f1``
    ufunc call seeds the whole batch instead of one Python-level Boys
    evaluation per primitive quad.
    """
    p = np.asarray(p, dtype=float)
    pc = np.asarray(pc, dtype=float)
    x, y, z = pc[:, 0], pc[:, 1], pc[:, 2]
    r2 = x * x + y * y + z * z
    fvals = boys_array_batch(lmax, p * r2)  # (lmax+1, N)
    n_batch = p.size
    Rn = np.zeros((lmax + 1, lmax + 1, lmax + 1, lmax + 1, n_batch))
    minus_2p = -2.0 * p
    for n in range(lmax + 1):
        Rn[n, 0, 0, 0] = (minus_2p**n) * fvals[n]
    for n in range(lmax - 1, -1, -1):
        budget = lmax - n
        for t in range(1, budget + 1):
            if t == 1:
                Rn[n, 1, 0, 0] = x * Rn[n + 1, 0, 0, 0]
            else:
                Rn[n, t, 0, 0] = (t - 1) * Rn[n + 1, t - 2, 0, 0] + x * Rn[
                    n + 1, t - 1, 0, 0
                ]
        for t in range(0, budget + 1):
            for u in range(1, budget - t + 1):
                if u == 1:
                    Rn[n, t, 1, 0] = y * Rn[n + 1, t, 0, 0]
                else:
                    Rn[n, t, u, 0] = (u - 1) * Rn[n + 1, t, u - 2, 0] + y * Rn[
                        n + 1, t, u - 1, 0
                    ]
        for t in range(0, budget + 1):
            for u in range(0, budget - t + 1):
                for v in range(1, budget - t - u + 1):
                    if v == 1:
                        Rn[n, t, u, 1] = z * Rn[n + 1, t, u, 0]
                    else:
                        Rn[n, t, u, v] = (v - 1) * Rn[n + 1, t, u, v - 2] + z * Rn[
                            n + 1, t, u, v - 1
                        ]
    return np.moveaxis(Rn[0], -1, 0)
