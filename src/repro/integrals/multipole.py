"""Multipole (dipole) integrals over Cartesian Gaussians."""

from __future__ import annotations

import math

import numpy as np

from ..basis.shell import BasisSet, cartesian_components
from .hermite import hermite_expansion
from .one_electron import _component_norms

__all__ = ["dipole"]


def dipole(basis: BasisSet, origin=(0.0, 0.0, 0.0)) -> np.ndarray:
    """Dipole integral matrices D[c, mu, nu] = <mu| (r - origin)_c |nu>.

    Uses the Hermite identity <a| x - Cx |b> = [E_1 + (Px - Cx) E_0] along
    the moment axis with plain overlaps on the other two.
    """
    origin = np.asarray(origin, dtype=float)
    n = basis.nbf
    D = np.zeros((3, n, n))
    offs = basis.shell_offsets
    for ia, sa in enumerate(basis.shells):
        comps_a = cartesian_components(sa.l)
        na = _component_norms(sa)
        for ib in range(ia + 1):
            sb = basis.shells[ib]
            comps_b = cartesian_components(sb.l)
            nb = _component_norms(sb)
            AB = sa.center - sb.center
            block = np.zeros((3, len(comps_a), len(comps_b)))
            for a, ca in zip(sa.exponents, sa.coefficients * sa._norms):
                for b, cb in zip(sb.exponents, sb.coefficients * sb._norms):
                    p = a + b
                    P = (a * sa.center + b * sb.center) / p
                    pref = ca * cb * (math.pi / p) ** 1.5
                    E = [
                        hermite_expansion(sa.l, sb.l, a, b, AB[ax]) for ax in range(3)
                    ]
                    for u, la in enumerate(comps_a):
                        for v, lb in enumerate(comps_b):
                            s = [E[ax][la[ax], lb[ax], 0] for ax in range(3)]
                            for ax in range(3):
                                lsum = la[ax] + lb[ax]
                                e1 = E[ax][la[ax], lb[ax], 1] if lsum >= 1 else 0.0
                                mom = e1 + (P[ax] - origin[ax]) * s[ax]
                                others = 1.0
                                for ox in range(3):
                                    if ox != ax:
                                        others *= s[ox]
                                block[ax, u, v] += pref * mom * others
            block *= na[None, :, None] * nb[None, None, :]
            D[
                :,
                offs[ia] : offs[ia] + len(comps_a),
                offs[ib] : offs[ib] + len(comps_b),
            ] = block
            D[
                :,
                offs[ib] : offs[ib] + len(comps_b),
                offs[ia] : offs[ia] + len(comps_a),
            ] = block.transpose(0, 2, 1)
    return D
