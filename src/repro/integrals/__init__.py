"""Molecular integrals over contracted Cartesian Gaussians."""

from .boys import boys, boys_array
from .hermite import hermite_coulomb, hermite_expansion
from .one_electron import core_hamiltonian, kinetic, nuclear_attraction, overlap
from .two_electron import eri

__all__ = [
    "boys",
    "boys_array",
    "hermite_coulomb",
    "hermite_expansion",
    "core_hamiltonian",
    "kinetic",
    "nuclear_attraction",
    "overlap",
    "eri",
]
