"""Molecular integrals over contracted Cartesian Gaussians."""

from .boys import boys, boys_array, boys_array_batch
from .hermite import hermite_coulomb, hermite_coulomb_batch, hermite_expansion
from .one_electron import core_hamiltonian, kinetic, nuclear_attraction, overlap
from .two_electron import EriStats, IntegralEngine, eri, eri_reference

__all__ = [
    "boys",
    "boys_array",
    "boys_array_batch",
    "hermite_coulomb",
    "hermite_coulomb_batch",
    "hermite_expansion",
    "core_hamiltonian",
    "kinetic",
    "nuclear_attraction",
    "overlap",
    "eri",
    "eri_reference",
    "EriStats",
    "IntegralEngine",
]
