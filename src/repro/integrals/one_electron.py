"""One-electron integrals: overlap, kinetic, nuclear attraction."""

from __future__ import annotations

import math

import numpy as np

from ..basis.shell import BasisSet, Shell, cartesian_components
from .hermite import hermite_coulomb, hermite_expansion

__all__ = ["overlap", "kinetic", "nuclear_attraction", "core_hamiltonian"]


def _component_norms(shell: Shell) -> np.ndarray:
    """Unit-normalization ratios for each Cartesian component of a shell."""
    return np.array(
        [shell.component_norm(lmn) for lmn in cartesian_components(shell.l)]
    )


def _shell_pair_tables(sa: Shell, sb: Shell, extra: int = 0):
    """Hermite E tables for every primitive pair of a shell pair.

    Returns a list of (ca*cb, p, P, (Ex, Ey, Ez)) tuples, where the E tables
    cover angular momenta up to (la, lb + extra) on each axis.
    """
    la, lb = sa.l, sb.l
    AB = sa.center - sb.center
    out = []
    for a, ca in zip(sa.exponents, sa.coefficients * sa._norms):
        for b, cb in zip(sb.exponents, sb.coefficients * sb._norms):
            p = a + b
            P = (a * sa.center + b * sb.center) / p
            Ex = hermite_expansion(la, lb + extra, a, b, AB[0])
            Ey = hermite_expansion(la, lb + extra, a, b, AB[1])
            Ez = hermite_expansion(la, lb + extra, a, b, AB[2])
            out.append((ca * cb, a, b, p, P, (Ex, Ey, Ez)))
    return out


def _cached_pair_tables(cache, ia: int, ib: int, extra: int, sa: Shell, sb: Shell):
    """Shell-pair Hermite tables, memoized in ``cache`` when one is given.

    ``cache`` is any mutable mapping keyed by (ia, ib, extra) — typically
    owned by an :class:`repro.integrals.two_electron.IntegralEngine`, so
    overlap and nuclear-attraction assemblies (both ``extra=0``) share one
    set of tables.
    """
    if cache is None:
        return _shell_pair_tables(sa, sb, extra)
    key = (ia, ib, extra)
    if key not in cache:
        cache[key] = _shell_pair_tables(sa, sb, extra)
    return cache[key]


def overlap(basis: BasisSet, *, pair_tables=None) -> np.ndarray:
    """Overlap matrix S over Cartesian basis functions.

    ``pair_tables`` is an optional mutable mapping memoizing the Hermite E
    tables across the one-electron routines (see :func:`_cached_pair_tables`).
    """
    n = basis.nbf
    S = np.zeros((n, n))
    offs = basis.shell_offsets
    for ia, sa in enumerate(basis.shells):
        ca_comps = cartesian_components(sa.l)
        na = _component_norms(sa)
        for ib, sb in enumerate(basis.shells):
            if ib > ia:
                continue
            cb_comps = cartesian_components(sb.l)
            nb = _component_norms(sb)
            pairs = _cached_pair_tables(pair_tables, ia, ib, 0, sa, sb)
            block = np.zeros((len(ca_comps), len(cb_comps)))
            for cc, a, b, p, P, (Ex, Ey, Ez) in pairs:
                pref = cc * (math.pi / p) ** 1.5
                for u, (l1, m1, n1) in enumerate(ca_comps):
                    for v, (l2, m2, n2) in enumerate(cb_comps):
                        block[u, v] += (
                            pref * Ex[l1, l2, 0] * Ey[m1, m2, 0] * Ez[n1, n2, 0]
                        )
            block *= na[:, None] * nb[None, :]
            S[
                offs[ia] : offs[ia] + len(ca_comps),
                offs[ib] : offs[ib] + len(cb_comps),
            ] = block
            S[
                offs[ib] : offs[ib] + len(cb_comps),
                offs[ia] : offs[ia] + len(ca_comps),
            ] = block.T
    return S


def kinetic(basis: BasisSet, *, pair_tables=None) -> np.ndarray:
    """Kinetic-energy matrix T = <mu| -1/2 nabla^2 |nu>."""
    n = basis.nbf
    T = np.zeros((n, n))
    offs = basis.shell_offsets

    def s1d(E, i, j):
        return E[i, j, 0]

    for ia, sa in enumerate(basis.shells):
        ca_comps = cartesian_components(sa.l)
        na = _component_norms(sa)
        for ib, sb in enumerate(basis.shells):
            if ib > ia:
                continue
            cb_comps = cartesian_components(sb.l)
            nb = _component_norms(sb)
            pairs = _cached_pair_tables(pair_tables, ia, ib, 2, sa, sb)
            block = np.zeros((len(ca_comps), len(cb_comps)))
            for cc, a, b, p, P, (Ex, Ey, Ez) in pairs:
                pref = cc * (math.pi / p) ** 1.5
                for u, (l1, m1, n1) in enumerate(ca_comps):
                    for v, (l2, m2, n2) in enumerate(cb_comps):
                        sx, sy, sz = s1d(Ex, l1, l2), s1d(Ey, m1, m2), s1d(Ez, n1, n2)

                        def k1d(E, i, j):
                            val = -2.0 * b * b * E[i, j + 2, 0] + b * (
                                2 * j + 1
                            ) * E[i, j, 0]
                            if j >= 2:
                                val -= 0.5 * j * (j - 1) * E[i, j - 2, 0]
                            return val

                        kx = k1d(Ex, l1, l2)
                        ky = k1d(Ey, m1, m2)
                        kz = k1d(Ez, n1, n2)
                        block[u, v] += pref * (kx * sy * sz + sx * ky * sz + sx * sy * kz)
            block *= na[:, None] * nb[None, :]
            T[
                offs[ia] : offs[ia] + len(ca_comps),
                offs[ib] : offs[ib] + len(cb_comps),
            ] = block
            T[
                offs[ib] : offs[ib] + len(cb_comps),
                offs[ia] : offs[ia] + len(ca_comps),
            ] = block.T
    return T


def nuclear_attraction(
    basis: BasisSet, charges: list[tuple[float, np.ndarray]], *, pair_tables=None
) -> np.ndarray:
    """Nuclear-attraction matrix V = sum_C -Z_C <mu| 1/|r-C| |nu>.

    ``charges`` is a list of (Z, position) pairs in Bohr.
    """
    n = basis.nbf
    V = np.zeros((n, n))
    offs = basis.shell_offsets
    for ia, sa in enumerate(basis.shells):
        ca_comps = cartesian_components(sa.l)
        na = _component_norms(sa)
        for ib, sb in enumerate(basis.shells):
            if ib > ia:
                continue
            cb_comps = cartesian_components(sb.l)
            nb = _component_norms(sb)
            pairs = _cached_pair_tables(pair_tables, ia, ib, 0, sa, sb)
            ltot = sa.l + sb.l
            block = np.zeros((len(ca_comps), len(cb_comps)))
            for cc, a, b, p, P, (Ex, Ey, Ez) in pairs:
                pref = cc * 2.0 * math.pi / p
                for Z, C in charges:
                    R = hermite_coulomb(ltot, p, P - np.asarray(C, dtype=float))
                    for u, (l1, m1, n1) in enumerate(ca_comps):
                        for v, (l2, m2, n2) in enumerate(cb_comps):
                            acc = 0.0
                            for t in range(l1 + l2 + 1):
                                ext = Ex[l1, l2, t]
                                if ext == 0.0:
                                    continue
                                for uu in range(m1 + m2 + 1):
                                    eyu = Ey[m1, m2, uu]
                                    if eyu == 0.0:
                                        continue
                                    for vv in range(n1 + n2 + 1):
                                        acc += ext * eyu * Ez[n1, n2, vv] * R[t, uu, vv]
                            block[u, v] += -Z * pref * acc
            block *= na[:, None] * nb[None, :]
            V[
                offs[ia] : offs[ia] + len(ca_comps),
                offs[ib] : offs[ib] + len(cb_comps),
            ] = block
            V[
                offs[ib] : offs[ib] + len(cb_comps),
                offs[ia] : offs[ia] + len(ca_comps),
            ] = block.T
    return V


def core_hamiltonian(
    basis: BasisSet, charges: list[tuple[float, np.ndarray]], *, pair_tables=None
) -> np.ndarray:
    """T + V for the given basis and nuclear framework."""
    return kinetic(basis, pair_tables=pair_tables) + nuclear_attraction(
        basis, charges, pair_tables=pair_tables
    )
