"""Basis-set data: STO-3G (generated), 6-31G tables, even-tempered sets.

STO-3G is generated from the universal three-Gaussian least-squares fits to
1s/2s/2p Slater functions of unit exponent (Hehre, Stewart & Pople 1969)
scaled by the standard atomic Slater exponents: a scaled primitive exponent
is ``alpha * zeta**2`` while contraction coefficients are scale-invariant.

6-31G data for H, C, N, O are tabulated explicitly.

An even-tempered generator (``alpha_k = a * b**k`` per angular momentum) is
provided for controlled basis-size sweeps in benchmarks.
"""

from __future__ import annotations

import numpy as np

from .shell import BasisSet, Shell

__all__ = [
    "ELEMENTS",
    "atomic_number",
    "build_basis",
    "even_tempered_shells",
    "available_basis_sets",
]

ELEMENTS = [
    "X", "H", "He", "Li", "Be", "B", "C", "N", "O", "F", "Ne",
    "Na", "Mg", "Al", "Si", "P", "S", "Cl", "Ar",
]


def atomic_number(symbol: str) -> int:
    """Atomic number for an element symbol (case-insensitive)."""
    s = symbol.strip().capitalize()
    try:
        return ELEMENTS.index(s)
    except ValueError as exc:
        raise KeyError(f"unknown element symbol {symbol!r}") from exc


# --- STO-3G -----------------------------------------------------------------
# Universal 3-Gaussian fits to Slater functions with zeta = 1.
_STO3G_1S_EXP = np.array([2.227660584, 0.4057711562, 0.1098175104])
_STO3G_1S_COEF = np.array([0.1543289673, 0.5353281423, 0.4446345422])
_STO3G_2SP_EXP = np.array([0.9942027306, 0.2310313331, 0.07513856500])
_STO3G_2S_COEF = np.array([-0.09996722919, 0.3995128261, 0.7001154689])
_STO3G_2P_COEF = np.array([0.1559162750, 0.6076837186, 0.3919573931])

# Standard STO-3G Slater exponents (zeta1 for 1s, zeta2 for 2s/2p).
_STO3G_ZETA = {
    "H": (1.24, None),
    "He": (1.69, None),
    "Li": (2.69, 0.80),
    "Be": (3.68, 1.15),
    "B": (4.68, 1.50),
    "C": (5.67, 1.72),
    "N": (6.67, 1.95),
    "O": (7.66, 2.25),
    "F": (8.65, 2.55),
    "Ne": (9.64, 2.88),
}


def _sto3g_shells(symbol: str, center: np.ndarray, atom_index: int) -> list[Shell]:
    sym = symbol.capitalize()
    if sym not in _STO3G_ZETA:
        raise KeyError(f"STO-3G not tabulated for {symbol!r}")
    z1, z2 = _STO3G_ZETA[sym]
    shells = [
        Shell(0, _STO3G_1S_EXP * z1**2, _STO3G_1S_COEF.copy(), center, atom_index)
    ]
    if z2 is not None:
        shells.append(
            Shell(0, _STO3G_2SP_EXP * z2**2, _STO3G_2S_COEF.copy(), center, atom_index)
        )
        shells.append(
            Shell(1, _STO3G_2SP_EXP * z2**2, _STO3G_2P_COEF.copy(), center, atom_index)
        )
    return shells


# --- 6-31G ------------------------------------------------------------------
# (exponents, coefficients) per shell; 'sp' shells share exponents between an
# s and a p contraction.
_631G: dict[str, list[tuple[str, list[float], list[float], list[float] | None]]] = {
    "H": [
        (
            "s",
            [18.73113696, 2.825394365, 0.6401216923],
            [0.03349460434, 0.2347269535, 0.8137573261],
            None,
        ),
        ("s", [0.1612777588], [1.0], None),
    ],
    "C": [
        (
            "s",
            [3047.524880, 457.3695180, 103.1949040, 29.21015530, 9.286662960, 3.163926960],
            [0.001834737132, 0.01403732281, 0.06884262226, 0.2321844432, 0.4679413484, 0.3623119853],
            None,
        ),
        (
            "sp",
            [7.868272350, 1.881288540, 0.5442492580],
            [-0.1193324198, -0.1608541517, 1.143456438],
            [0.06899906659, 0.3164239610, 0.7443082909],
        ),
        ("sp", [0.1687144782], [1.0], [1.0]),
    ],
    "N": [
        (
            "s",
            [4173.511460, 627.4579110, 142.9020930, 40.23432930, 13.03269600, 4.603090090],
            [0.001834772160, 0.01399462700, 0.06858655181, 0.2322408730, 0.4690699481, 0.3604551991],
            None,
        ),
        (
            "sp",
            [11.86242430, 2.771432770, 0.7578255210],
            [-0.1149611817, -0.1691174786, 1.145851947],
            [0.06757974388, 0.3239072959, 0.7408951398],
        ),
        ("sp", [0.2120314975], [1.0], [1.0]),
    ],
    "O": [
        (
            "s",
            [5484.671660, 825.2349460, 188.0469580, 52.96450000, 16.89757040, 5.799635340],
            [0.001831074430, 0.01395017220, 0.06844507810, 0.2327143360, 0.4701928980, 0.3585208530],
            None,
        ),
        (
            "sp",
            [15.53961625, 3.599933586, 1.013761750],
            [-0.1107775495, -0.1480262627, 1.130767015],
            [0.07087426823, 0.3397528391, 0.7271585773],
        ),
        ("sp", [0.2700058226], [1.0], [1.0]),
    ],
}


def _631g_shells(symbol: str, center: np.ndarray, atom_index: int) -> list[Shell]:
    sym = symbol.capitalize()
    if sym not in _631G:
        raise KeyError(f"6-31G not tabulated for {symbol!r}")
    shells: list[Shell] = []
    for kind, exps, cs, cp in _631G[sym]:
        e = np.asarray(exps, dtype=float)
        shells.append(Shell(0, e, np.asarray(cs, dtype=float), center, atom_index))
        if kind == "sp":
            shells.append(Shell(1, e, np.asarray(cp, dtype=float), center, atom_index))
    return shells


# --- even-tempered ----------------------------------------------------------

def even_tempered_shells(
    center,
    atom_index: int = -1,
    *,
    n_s: int = 4,
    n_p: int = 0,
    alpha0: float = 0.1,
    beta: float = 2.5,
) -> list[Shell]:
    """Uncontracted even-tempered shells ``alpha_k = alpha0 * beta**k``.

    Useful to sweep the orbital-space size in benchmarks without depending on
    tabulated basis data.
    """
    if beta <= 1.0:
        raise ValueError("even-tempered ratio beta must exceed 1")
    center = np.asarray(center, dtype=float)
    shells = []
    for k in range(n_s):
        shells.append(Shell(0, [alpha0 * beta**k], [1.0], center, atom_index))
    for k in range(n_p):
        shells.append(Shell(1, [alpha0 * beta**k], [1.0], center, atom_index))
    return shells


_BUILDERS = {
    "sto-3g": _sto3g_shells,
    "6-31g": _631g_shells,
}


def available_basis_sets() -> list[str]:
    return sorted(_BUILDERS)


def build_basis(atoms: list[tuple[str, np.ndarray]], name: str = "sto-3g") -> BasisSet:
    """Build a :class:`BasisSet` for ``atoms`` = [(symbol, xyz-in-bohr), ...]."""
    key = name.strip().lower()
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown basis {name!r}; available: {available_basis_sets()}"
        )
    builder = _BUILDERS[key]
    shells: list[Shell] = []
    for idx, (sym, xyz) in enumerate(atoms):
        shells.extend(builder(sym, np.asarray(xyz, dtype=float), idx))
    return BasisSet(shells)
