"""Contracted Gaussian shells and basis-function bookkeeping.

A :class:`Shell` is a contraction of primitive Cartesian Gaussians sharing a
center and an angular momentum.  A :class:`BasisSet` is an ordered list of
shells together with the flattened list of Cartesian basis functions that the
integral code indexes.

Cartesian components of angular momentum ``l`` are enumerated in the usual
"alphabetical within decreasing x" order, e.g. for ``l=1``: x, y, z; for
``l=2``: xx, xy, xz, yy, yz, zz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ANGULAR_LABELS",
    "Shell",
    "BasisFunction",
    "BasisSet",
    "cartesian_components",
    "n_cartesian",
    "primitive_norm",
]

ANGULAR_LABELS = "spdfgh"


def cartesian_components(l: int) -> list[tuple[int, int, int]]:
    """Return the Cartesian exponent triples (i, j, k) with i+j+k = l."""
    comps = []
    for i in range(l, -1, -1):
        for j in range(l - i, -1, -1):
            comps.append((i, j, l - i - j))
    return comps


def n_cartesian(l: int) -> int:
    """Number of Cartesian components of angular momentum ``l``."""
    return (l + 1) * (l + 2) // 2


def _double_factorial(n: int) -> int:
    if n <= 0:
        return 1
    out = 1
    while n > 1:
        out *= n
        n -= 2
    return out


def primitive_norm(alpha: float, lmn: tuple[int, int, int]) -> float:
    """Normalization constant of a primitive Cartesian Gaussian.

    N such that the self-overlap of ``N * x^i y^j z^k exp(-alpha r^2)`` is 1.
    """
    i, j, k = lmn
    l = i + j + k
    num = (2.0 * alpha / math.pi) ** 1.5 * (4.0 * alpha) ** l
    den = (
        _double_factorial(2 * i - 1)
        * _double_factorial(2 * j - 1)
        * _double_factorial(2 * k - 1)
    )
    return math.sqrt(num / den)


@dataclass
class Shell:
    """A contracted Cartesian Gaussian shell.

    Parameters
    ----------
    l:
        Angular momentum (0=s, 1=p, ...).
    exponents:
        Primitive exponents, shape (nprim,).
    coefficients:
        Contraction coefficients for the *unnormalized* primitives as they
        appear in basis-set tables; normalization is applied internally.
    center:
        Cartesian center, shape (3,).
    atom_index:
        Index of the parent atom in the molecule (or -1 for free shells).
    """

    l: int
    exponents: np.ndarray
    coefficients: np.ndarray
    center: np.ndarray
    atom_index: int = -1
    _norms: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.exponents = np.asarray(self.exponents, dtype=float)
        self.coefficients = np.asarray(self.coefficients, dtype=float)
        self.center = np.asarray(self.center, dtype=float)
        if self.exponents.shape != self.coefficients.shape:
            raise ValueError("exponents and coefficients must have equal length")
        if self.exponents.ndim != 1 or self.exponents.size == 0:
            raise ValueError("a shell needs at least one primitive")
        if np.any(self.exponents <= 0):
            raise ValueError("Gaussian exponents must be positive")
        if self.center.shape != (3,):
            raise ValueError("center must be a 3-vector")
        # Per-primitive norms for the (l,0,0) component; component-dependent
        # renormalization is handled by the integral routines through the
        # contracted self-overlap below.
        lmn0 = (self.l, 0, 0)
        self._norms = np.array(
            [primitive_norm(a, lmn0) for a in self.exponents], dtype=float
        )
        # Normalize the contraction so the (l,0,0) contracted function has
        # unit self-overlap.
        ee = self.exponents[:, None] + self.exponents[None, :]
        cc = (self.coefficients * self._norms)[:, None] * (
            self.coefficients * self._norms
        )[None, :]
        l = self.l
        pref = (
            math.pi**1.5
            * _double_factorial(2 * l - 1)
            / 2.0**l
        )
        s = float(np.sum(cc * pref / ee ** (l + 1.5)))
        self.coefficients = self.coefficients / math.sqrt(s)

    @property
    def nprim(self) -> int:
        return self.exponents.size

    @property
    def nfunc(self) -> int:
        return n_cartesian(self.l)

    def contracted_coefs(self, lmn: tuple[int, int, int]) -> np.ndarray:
        """Coefficients times primitive norms for the given component.

        The component norm differs from the (l,0,0) norm by a ratio of double
        factorials only, which is the standard Cartesian-shell convention
        (all components share the contraction normalization of (l,0,0); the
        per-component overlap then differs for e.g. xx vs xy, which we keep,
        matching common quantum-chemistry practice for Cartesian d shells in
        minimal reproductions; callers that require strictly normalized
        components should use :meth:`component_norm`).
        """
        return self.coefficients * np.array(
            [primitive_norm(a, lmn) for a in self.exponents]
        )

    def component_norm(self, lmn: tuple[int, int, int]) -> float:
        """Ratio normalizing this component to unit self-overlap."""
        i, j, k = lmn
        l = self.l
        num = _double_factorial(2 * l - 1)
        den = (
            _double_factorial(2 * i - 1)
            * _double_factorial(2 * j - 1)
            * _double_factorial(2 * k - 1)
        )
        return math.sqrt(num / den)


@dataclass(frozen=True)
class BasisFunction:
    """One Cartesian basis function: a (shell, component) pair."""

    shell_index: int
    lmn: tuple[int, int, int]
    center: tuple[float, float, float]
    atom_index: int


class BasisSet:
    """An ordered collection of shells with a flattened function list."""

    def __init__(self, shells: list[Shell]):
        self.shells = list(shells)
        self.functions: list[BasisFunction] = []
        self.shell_offsets: list[int] = []
        off = 0
        for si, sh in enumerate(self.shells):
            self.shell_offsets.append(off)
            for lmn in cartesian_components(sh.l):
                self.functions.append(
                    BasisFunction(
                        shell_index=si,
                        lmn=lmn,
                        center=tuple(sh.center),
                        atom_index=sh.atom_index,
                    )
                )
            off += sh.nfunc

    @property
    def nbf(self) -> int:
        """Total number of Cartesian basis functions."""
        return len(self.functions)

    @property
    def nshells(self) -> int:
        return len(self.shells)

    def max_l(self) -> int:
        return max((sh.l for sh in self.shells), default=0)

    def __len__(self) -> int:
        return self.nbf

    def __repr__(self) -> str:
        by_l: dict[int, int] = {}
        for sh in self.shells:
            by_l[sh.l] = by_l.get(sh.l, 0) + 1
        desc = ",".join(f"{v}{ANGULAR_LABELS[k]}" for k, v in sorted(by_l.items()))
        return f"BasisSet({self.nbf} functions: {desc})"
