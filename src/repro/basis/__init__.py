"""Gaussian basis sets (shells, tabulated data, even-tempered generator)."""

from .shell import (
    ANGULAR_LABELS,
    BasisFunction,
    BasisSet,
    Shell,
    cartesian_components,
    n_cartesian,
    primitive_norm,
)
from .data import (
    ELEMENTS,
    atomic_number,
    available_basis_sets,
    build_basis,
    even_tempered_shells,
)

__all__ = [
    "ANGULAR_LABELS",
    "BasisFunction",
    "BasisSet",
    "Shell",
    "cartesian_components",
    "n_cartesian",
    "primitive_norm",
    "ELEMENTS",
    "atomic_number",
    "available_basis_sets",
    "build_basis",
    "even_tempered_shells",
]
