"""Reporting utilities for the benchmark harness."""

from .reporting import format_series, format_table, paper_comparison

__all__ = ["format_series", "format_table", "paper_comparison"]
