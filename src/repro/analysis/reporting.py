"""Plain-text table/series formatting for the benchmark harness.

The benchmark scripts print the same rows/series the paper reports; these
helpers keep that output consistent and diff-friendly (no plotting
dependencies - "figures" are printed as aligned series tables).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_series", "paper_comparison"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str = "",
    float_fmt: str = "{:.4g}",
) -> str:
    """Render an aligned ASCII table."""
    srows = []
    for row in rows:
        srows.append(
            [
                float_fmt.format(c) if isinstance(c, float) else str(c)
                for c in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
) -> str:
    """Render figure data as a table: one x column plus one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [s[i] for s in series.values()])
    return format_table(headers, rows, title=title)


def paper_comparison(
    rows: Iterable[tuple[str, float | str, float | str]],
    *,
    title: str = "paper vs measured",
) -> str:
    """Two-column comparison table (quantity, paper value, this repo)."""
    return format_table(["quantity", "paper", "this repo"], rows, title=title)
