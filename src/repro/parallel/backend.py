"""Execution backends for :class:`repro.parallel.pfci.ParallelSigma`.

The paper's parallel decomposition of sigma = H C is backend-portable: the
rank decomposition, the task pool, and the per-block kernels are fixed by
the precompiled :class:`~repro.core.plans.SigmaPlan`, while the substrate
that *executes* them is swappable.  Every substrate provides the same five
one-sided primitives the paper's DDI/SHMEM layer provides:

======  =====================================================================
verb    meaning
------  ---------------------------------------------------------------------
get     one-sided read of a block of a distributed/shared array
acc     one-sided accumulate (add) into a block of a distributed/shared array
fetch_add  atomic counter increment (the dynamic-load-balancing counter)
barrier    all-ranks rendezvous
quiet      complete all outstanding one-sided traffic (SHMEM_QUIET)
======  =====================================================================

Three backends implement the protocol:

* ``"simulated"`` — the discrete-event Cray-X1 (:mod:`repro.x1`): the verbs
  are the generator-style engine ops (``DDIArray.iget_* / iacc_*``,
  ``DynamicLoadBalancer.inext``, ``proc.barrier/quiet``) resolved in
  *virtual* time, with the machine's calibrated cost models.
* ``"shm"`` — real OS processes over POSIX shared memory
  (:mod:`repro.parallel.shm`): the verbs are plain memory reads, locked
  in-place adds, a lock-protected shared counter, a process barrier, and a
  no-op fence (CPython releases the GIL around the BLAS/NumPy work, and
  the parent's reply collection orders all writes), measured in *wall*
  time.
* ``"sockets"`` — real OS processes over TCP (:mod:`repro.parallel
  .sockets`): a coordinator serves the symmetric heap as length-prefixed
  messages; ``get`` is a framed window read, ``acc`` a one-way
  accumulate, ``fetch_add`` a served counter, ``barrier`` a thread
  barrier over all connections, ``quiet`` an ordered-channel round-trip.
  Workers are spawned on loopback or join from other hosts; heartbeats
  make a dead worker a named ``RuntimeError``, not a hang.

A :class:`Backend` instance owns whatever long-lived machinery its verbs
need (the simulated heap/engine, or the worker process pool) and executes
one parallel sigma evaluation per :meth:`run_sigma` call, returning the
uniform :class:`SigmaRun` record that feeds ``ParallelReport`` and the obs
accounting layer for every backend alike.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..x1.engine import RankStats
from ..x1.machine import X1Config

__all__ = [
    "Backend",
    "SigmaRun",
    "SimulatedBackend",
    "ShmBackend",
    "SocketsBackend",
    "backend_names",
    "make_backend",
    "register_backend",
]


@dataclass
class SigmaRun:
    """Outcome of one parallel sigma evaluation, backend-independent.

    ``stats`` holds one :class:`~repro.x1.engine.RankStats` per rank; the
    simulated backend fills them with virtual-time charges, the shm backend
    with measured wall-clock phase times, bytes moved, and kernel FLOPs —
    so ``ParallelReport.merge`` and ``account_parallel_report`` work
    unchanged on both.
    """

    sigma: np.ndarray
    stats: list[RankStats] = field(default_factory=list)
    elapsed: float = 0.0
    load_imbalance: float = 0.0


class Backend(abc.ABC):
    """What an execution substrate must provide to ``ParallelSigma``."""

    name: str = "abstract"

    @property
    @abc.abstractmethod
    def n_ranks(self) -> int:
        """Number of execution ranks (MSPs or worker processes)."""

    @abc.abstractmethod
    def run_sigma(self, owner, C: np.ndarray) -> SigmaRun:
        """Evaluate sigma = H C with ``owner``'s decomposition and plan."""

    def close(self) -> None:
        """Release backend resources (processes, shared segments)."""

    def describe(self) -> dict:
        """JSON-friendly identity of this substrate (service/bench metadata)."""
        return {"backend": self.name, "n_ranks": self.n_ranks}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# -- registry -----------------------------------------------------------------

_REGISTRY: dict[str, type] = {}


def register_backend(name: str):
    """Class decorator: register a Backend implementation under ``name``."""

    def deco(cls):
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def backend_names() -> tuple[str, ...]:
    """Names of all registered execution backends (sorted)."""
    return tuple(sorted(_REGISTRY))


def make_backend(name: str, **options) -> Backend:
    """Construct a registered backend by name, or raise listing the registry."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}"
        ) from None
    return cls(**options)


@register_backend("simulated")
class SimulatedBackend(Backend):
    """The discrete-event Cray-X1: virtual clocks, zero real parallelism.

    All verbs run through the engine's generator ops with the calibrated
    X1 cost models; ``run_sigma`` delegates to the owner's rank-program
    builder (including the resilient tagged-task program when faults are
    attached), which is where the simulated decomposition lives.
    """

    def __init__(self, config: X1Config | None = None, **_ignored):
        self.config = config if config is not None else X1Config()

    @property
    def n_ranks(self) -> int:
        return self.config.n_msps

    def run_sigma(self, owner, C: np.ndarray) -> SigmaRun:
        return owner._run_simulated(C)


@register_backend("shm")
class ShmBackend(Backend):
    """Real OS processes over POSIX shared memory.

    Lazily builds a :class:`repro.parallel.shm.ShmSigmaEngine` (spawned
    worker pool, each loading the pickled plan once with BLAS threads
    pinned) on first use and keeps it alive across sigma evaluations, so
    eigensolver iterations pay the spawn cost once.
    """

    def __init__(
        self,
        *,
        n_workers: int | None = None,
        blas_threads: int = 1,
        timeout: float = 300.0,
        **_ignored,
    ):
        import os

        self.n_workers = int(n_workers) if n_workers else min(4, os.cpu_count() or 1)
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.blas_threads = int(blas_threads)
        self.timeout = float(timeout)
        self._engine = None

    @property
    def n_ranks(self) -> int:
        return self.n_workers

    def engine(self, plan, block_columns: int, kernel: str = "dgemm"):
        if self._engine is None:
            from .shm.engine import ShmSigmaEngine

            self._engine = ShmSigmaEngine(
                plan,
                n_workers=self.n_workers,
                block_columns=block_columns,
                blas_threads=self.blas_threads,
                timeout=self.timeout,
                kernel=kernel,
            )
        return self._engine

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "n_ranks": self.n_ranks,
            "blas_threads": self.blas_threads,
        }

    def run_sigma(self, owner, C: np.ndarray) -> SigmaRun:
        engine = self.engine(
            owner.plan, owner.block_columns, getattr(owner, "kernel_name", "dgemm")
        )
        try:
            return engine.sigma(C)
        except Exception:
            # a failed run closes the engine; drop it so the next call
            # spins up a fresh pool instead of hitting the closed guard
            if getattr(engine, "_closed", False):
                self._engine = None
            raise

    def close(self) -> None:
        if self._engine is not None:
            self._engine.close()
            self._engine = None


@register_backend("sockets")
class SocketsBackend(Backend):
    """Real OS processes behind a TCP coordinator (loopback or multi-node).

    Lazily builds a :class:`repro.parallel.sockets.SocketSigmaEngine` — a
    coordinator serving the symmetric heap over length-prefixed TCP plus
    ``n_workers`` spawned (or, with ``spawn="external"``, hand-started)
    worker processes — on first use and keeps it alive across sigma
    evaluations.  Extra keyword options (``host``/``port``/``token``/
    ``spawn``/``heartbeat_interval``/``heartbeat_misses``/
    ``straggle_seconds``) pass straight through to the engine.
    """

    def __init__(
        self,
        *,
        n_workers: int | None = None,
        blas_threads: int = 1,
        timeout: float = 300.0,
        **engine_options,
    ):
        import os

        self.n_workers = int(n_workers) if n_workers else min(4, os.cpu_count() or 1)
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.blas_threads = int(blas_threads)
        self.timeout = float(timeout)
        self.engine_options = dict(engine_options)
        self._engine = None

    @property
    def n_ranks(self) -> int:
        return self.n_workers

    def engine(self, plan, block_columns: int, kernel: str = "dgemm"):
        if self._engine is None:
            from .sockets.engine import SocketSigmaEngine

            self._engine = SocketSigmaEngine(
                plan,
                n_workers=self.n_workers,
                block_columns=block_columns,
                blas_threads=self.blas_threads,
                timeout=self.timeout,
                kernel=kernel,
                **self.engine_options,
            )
        return self._engine

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "n_ranks": self.n_ranks,
            "blas_threads": self.blas_threads,
            "spawn": self.engine_options.get("spawn", "process"),
        }

    def run_sigma(self, owner, C: np.ndarray) -> SigmaRun:
        engine = self.engine(
            owner.plan, owner.block_columns, getattr(owner, "kernel_name", "dgemm")
        )
        try:
            return engine.sigma(C)
        except Exception:
            if getattr(engine, "_closed", False):
                self._engine = None
            raise

    def close(self) -> None:
        if self._engine is not None:
            self._engine.close()
            self._engine = None
