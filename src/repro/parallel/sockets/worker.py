"""Worker process for the sockets sigma engine.

Each worker is one *rank* of the paper's decomposition on a real OS
process reached only through TCP — spawned on loopback by the engine, or
started by hand on another terminal (or, tomorrow, another host) with::

    python -m repro.parallel.sockets.worker --host H --port P --token T

A worker opens two channels to the coordinator: the control channel
(``ready``/``plan``/``sigma``/``done``/``error`` plus heartbeats every
``heartbeat_interval`` seconds, which is how the engine distinguishes a
long DGEMM from a dead process) and the data channel
(:class:`~repro.parallel.sockets.comm.SocketComm`, the five DDI verbs).

Spawned workers receive the pickled :class:`~repro.core.plans.SigmaPlan`
once through the spawn args (the paper's replicated coupling tables);
external workers request it once over the control channel.  Either way
the per-rank program is :func:`repro.parallel.rankwork.run_rank_sigma` —
*the same code the shm workers run* — into local zeroed buffers whose
disjoint owned windows are then shipped with ``acc`` and fenced with
``quiet`` before ``done`` is reported, so the parent's deterministic
one → aa → bb\\ :sup:`T` → mix reduction stays bitwise-identical to the
serial kernel for any worker count.
"""

from __future__ import annotations

import threading
import time
import traceback

import numpy as np

from ...core.kernels import SigmaCounters
from ..rankwork import run_rank_sigma
from .comm import SocketComm
from .coordinator import SocketCommSpec
from .wire import WireError, connect_with_retry

__all__ = ["worker_main", "main"]


def _pin_blas_threads(n: int):
    """Best-effort runtime cap on BLAS pool size (env vars already set)."""
    try:
        from threadpoolctl import threadpool_limits
    except ImportError:
        return None
    try:
        return threadpool_limits(limits=n)
    except Exception:
        return None


def _run_sigma(rank: int, comm: SocketComm, payload: dict) -> dict:
    """One sigma evaluation; returns the rank's wall-clock stats."""
    plan = payload["plan"]
    bc = payload["block_columns"]
    n_workers = payload["n_workers"]
    aa_blocks = payload["aa_blocks"]
    bb_blocks = payload["bb_blocks"]
    tasks = payload["tasks"]
    na, nb = plan.shape

    counters = SigmaCounters()
    phase_times: dict[str, float] = {}
    t_start = time.perf_counter()

    # one framed fetch of the whole coefficient matrix (the "replicated C"
    # a remote rank cannot window into for free the way shared memory can)
    C_stack = comm.get("C")[None]

    # local zeroed buffers standing in for the shm backend's owned
    # segments; only this rank's disjoint owned windows get written
    outs: dict[str, np.ndarray] = {"mix": np.zeros((na, nb))}
    if rank == 0:
        outs["one"] = np.zeros((na, nb))
    my_aa = aa_blocks[rank::n_workers]
    my_bb = bb_blocks[rank::n_workers]
    if plan.same_a is not None and my_aa:
        outs["aa"] = np.zeros((na, nb))
    if plan.same_b is not None and my_bb:
        outs["bb"] = np.zeros((nb, na))

    _, claimed = run_rank_sigma(
        rank,
        plan,
        C_stack,
        outs,
        comm.fetch_add,
        block_columns=bc,
        n_workers=n_workers,
        aa_blocks=aa_blocks,
        bb_blocks=bb_blocks,
        tasks=tasks,
        counters=counters,
        phase_times=phase_times,
        per_task_seconds=payload.get("straggle_seconds", 0.0),
        kernel=payload.get("kernel", "dgemm"),
    )

    # ship the owned windows: acc into segments the parent zeroed, which
    # is a store (0.0 + x) element-for-element because the windows are
    # disjoint — then fence with quiet before reporting done
    t0 = time.perf_counter()
    full = (slice(None), slice(None))
    if rank == 0:
        comm.acc("one", full, outs["one"])
    if "aa" in outs:
        for lo, hi in my_aa:
            comm.acc("aa", (slice(None), slice(lo, hi)), outs["aa"][:, lo:hi])
    if "bb" in outs:
        for lo, hi in my_bb:
            comm.acc("bb", (slice(None), slice(lo, hi)), outs["bb"][:, lo:hi])
    for tid in claimed:
        blo, bhi = tasks[tid]
        clo, chi = aa_blocks[blo][0], aa_blocks[bhi - 1][1]
        comm.acc("mix", (slice(None), slice(clo, chi)), outs["mix"][:, clo:chi])
    comm.quiet()  # all owned-window accumulates applied before we report done
    phase_times["wire-ship"] = time.perf_counter() - t0

    busy = time.perf_counter() - t_start
    return {
        "phase_times": phase_times,
        "busy": busy,
        "tasks_done": len(claimed),
        "wire_tx": comm.tx_bytes,
        "wire_rx": comm.rx_bytes,
        **counters.as_dict(),
    }


def worker_main(rank: int | None, spec: SocketCommSpec, payload: dict | None) -> None:
    """Entry point of a worker: dial in, handshake, serve sigma requests.

    Control protocol (engine -> worker): ``("sigma", seq)`` evaluate one
    sigma; ``("stop",)`` exit; ``("plan", payload)`` delivers the plan to
    an external worker.  Worker -> engine: ``("ready", rank, has_plan)``
    after both channels are up, ``("hb", rank)`` heartbeats, then
    ``("done", seq, stats)`` or ``("error", seq, traceback_text)``.
    """
    ctrl = None
    comm = None
    stop_hb = threading.Event()
    try:
        ctrl = connect_with_retry(spec.host, spec.port, timeout=spec.timeout)
        ctrl.send(("hello", "ctrl", rank, spec.token))
        reply = ctrl.recv(timeout=spec.timeout)
        if reply[0] != "ok":
            raise WireError(f"coordinator refused control channel: {reply[1:]}")
        rank = reply[1]
        comm = SocketComm.connect(spec, rank)
        ctrl.send(("ready", rank, payload is not None))
        if payload is None:
            msg = ctrl.recv(timeout=spec.timeout)
            if msg[0] != "plan":
                raise WireError(f"expected plan delivery, got {msg[0]!r}")
            payload = msg[1]
        limiter = _pin_blas_threads(payload.get("blas_threads", 1))  # noqa: F841

        interval = payload.get("heartbeat_interval", spec.heartbeat_interval)

        def _heartbeat():
            while not stop_hb.wait(interval):
                try:
                    ctrl.send(("hb", rank))
                except WireError:
                    return

        hb = threading.Thread(target=_heartbeat, name="repro-sockets-hb", daemon=True)
        hb.start()
        comm.barrier(payload.get("timeout"))
        while True:
            try:
                msg = ctrl.recv(timeout=None)
            except WireError:
                break
            if msg[0] == "stop":
                break
            if msg[0] == "sigma":
                seq = msg[1]
                try:
                    stats = _run_sigma(rank, comm, payload)
                    ctrl.send(("done", seq, stats))
                except Exception:
                    ctrl.send(("error", seq, traceback.format_exc()))
    except Exception:
        if ctrl is not None:
            try:
                ctrl.send(("fatal", rank, traceback.format_exc()))
            except Exception:
                pass
    finally:
        stop_hb.set()
        if comm is not None:
            comm.close()
        if ctrl is not None:
            ctrl.close()


def main(argv=None) -> int:
    """CLI for external (second-terminal / remote) workers."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.sockets.worker",
        description="join a sockets-backend coordinator as one sigma worker "
        "(the SigmaPlan arrives over the wire)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--token", required=True)
    parser.add_argument(
        "--rank", type=int, default=None,
        help="explicit rank (default: coordinator assigns join order)",
    )
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)
    spec = SocketCommSpec(
        host=args.host,
        port=args.port,
        token=args.token,
        n_ranks=0,  # informational client-side; the payload carries n_workers
        timeout=args.timeout,
    )
    worker_main(args.rank, spec, None)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
