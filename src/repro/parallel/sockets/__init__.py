"""Multi-node sockets DDI backend: the symmetric heap behind a TCP port.

The paper's DDI layer ran one data server per node and moved CI-vector
windows with one-sided get/accumulate; this package is that shape on
commodity sockets.  A :class:`~repro.parallel.sockets.coordinator
.Coordinator` owns the distributed arrays and serves the five verbs
(get / acc / fetch_add / barrier / quiet) over length-prefixed TCP
messages to workers that are spawned on loopback today and can join from
other hosts tomorrow (``python -m repro.parallel.sockets.worker``).

:class:`~repro.parallel.sockets.engine.SocketSigmaEngine` runs the same
per-rank sigma program as the shm backend
(:mod:`repro.parallel.rankwork`), so sigma stays bitwise-identical to the
serial kernel for any worker count; it adds heartbeat-based dead-worker
detection so a killed worker yields a diagnostic ``RuntimeError`` naming
the rank, never a hang.
"""

from .comm import SocketComm
from .coordinator import LIVE_COORDINATORS, Coordinator, SocketCommSpec
from .engine import SocketSigmaEngine
from .wire import Channel, WireClosed, WireError, WireTimeout, connect_with_retry

__all__ = [
    "Channel",
    "Coordinator",
    "LIVE_COORDINATORS",
    "SocketComm",
    "SocketCommSpec",
    "SocketSigmaEngine",
    "WireClosed",
    "WireError",
    "WireTimeout",
    "connect_with_retry",
]
