"""Sockets sigma engine: multi-process workers reached only over TCP.

:class:`SocketSigmaEngine` executes the same decomposition as the shm
engine (:func:`repro.parallel.rankwork.build_sigma_decomposition` — the
serial kernel's canonical column blocks round-robined for the same-spin
terms, size-ordered task-pool spans claimed through ``fetch_add`` for the
mixed-spin term), but the substrate is a :class:`Coordinator` serving the
symmetric heap over length-prefixed TCP messages:

* **lifecycle**: workers are spawned once on loopback (``spawn=
  "process"``, the default; each unpickles the cached
  :class:`~repro.core.plans.SigmaPlan` a single time from the spawn args,
  BLAS threads pinned through the environment) or join from other
  terminals/hosts (``spawn="external"``: the engine ships the plan over
  the control channel to each joiner), and serve ``("sigma", seq)``
  requests until :meth:`close`,
* **failure detection**: every worker heartbeats on its control channel;
  while collecting results the engine watches for EOF (process death) and
  heartbeat silence (``heartbeat_interval * heartbeat_misses``), raising
  a ``RuntimeError`` that names the dead rank (and its exit code when
  spawned) instead of hanging — the whole call is additionally bounded by
  ``timeout``,
* **determinism**: workers compute into local buffers and ``acc`` their
  disjoint owned windows into parent-zeroed segments (a bitwise store),
  fence with ``quiet``, then report ``done``; the parent reduces
  one → aa → bb\\ :sup:`T` → mix in the serial kernel's accumulation
  order, so sigma is bitwise-identical to serial ``sigma_dgemm`` at the
  same ``block_columns`` for any worker count,
* **observability**: per-rank :class:`~repro.x1.engine.RankStats` carry
  measured wall-clock phase times, *actual wire bytes* moved on the data
  channel, and kernel FLOPs — the same schema every other backend emits.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import select
import threading
import time

import numpy as np

from ...core.plans import SigmaPlan
from ...x1.engine import RankStats
from ..backend import SigmaRun
from ..rankwork import build_sigma_decomposition
from .coordinator import Coordinator
from .wire import WireClosed, WireError

__all__ = ["SocketSigmaEngine"]

# every BLAS/OpenMP runtime numpy might load reads one of these at startup
_BLAS_ENV = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


class SocketSigmaEngine:
    """Persistent fleet of sigma workers behind a TCP coordinator."""

    def __init__(
        self,
        plan: SigmaPlan,
        *,
        n_workers: int,
        block_columns: int,
        blas_threads: int = 1,
        timeout: float = 300.0,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        spawn: str = "process",
        heartbeat_interval: float = 0.25,
        heartbeat_misses: int = 40,
        straggle_seconds: float = 0.0,
        kernel: str = "dgemm",
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if spawn not in ("process", "external"):
            raise ValueError(
                f"spawn must be 'process' (loopback pool) or 'external' "
                f"(workers join by hand); got {spawn!r}"
            )
        self.plan = plan
        self.kernel = str(kernel)
        self.n_workers = int(n_workers)
        self.block_columns = int(block_columns)
        self.blas_threads = int(blas_threads)
        self.timeout = float(timeout)
        self.spawn = spawn
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_misses = int(heartbeat_misses)
        na, nb = plan.shape
        self.shape = (na, nb)

        decomp = build_sigma_decomposition(plan, self.n_workers, self.block_columns)
        self.decomposition = decomp
        self.aa_blocks = decomp.aa_blocks
        self.bb_blocks = decomp.bb_blocks
        self.tasks = decomp.tasks

        self.coordinator = Coordinator(
            arrays={
                "C": (na, nb),
                "one": (na, nb),
                "aa": (na, nb),
                "bb": (nb, na),  # beta-beta works on the transposed matrix
                "mix": (na, nb),
            },
            n_ranks=self.n_workers,
            host=host,
            port=port,
            token=token,
            timeout=self.timeout,
            heartbeat_interval=self.heartbeat_interval,
        )
        payload = {
            "plan": plan,
            "block_columns": self.block_columns,
            "n_workers": self.n_workers,
            "aa_blocks": self.aa_blocks,
            "bb_blocks": self.bb_blocks,
            "tasks": self.tasks,
            "blas_threads": self.blas_threads,
            "timeout": self.timeout,
            "heartbeat_interval": self.heartbeat_interval,
            "straggle_seconds": float(straggle_seconds),
            "kernel": self.kernel,
        }
        self._payload = payload
        self._procs: list = []
        self._ctrl: dict = {}
        self._seq = 0
        self._lock = threading.Lock()
        self._closed = False
        try:
            if spawn == "process":
                self._spawn_workers(payload)
            self._handshake(payload)
        except BaseException:
            self.close()
            raise

    def _spawn_workers(self, payload: dict) -> None:
        ctx = mp.get_context("spawn")
        spec = self.coordinator.spec()
        saved = {k: os.environ.get(k) for k in _BLAS_ENV}
        try:
            # spawn inherits os.environ: pin every worker's BLAS pool before
            # exec, then restore the parent's own settings
            for k in _BLAS_ENV:
                os.environ[k] = str(self.blas_threads)
            from .worker import worker_main

            for rank in range(self.n_workers):
                proc = ctx.Process(
                    target=worker_main,
                    args=(rank, spec, payload),
                    daemon=True,
                    name=f"repro-sockets-sigma-{rank}",
                )
                proc.start()
                self._procs.append(proc)
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v

    def _handshake(self, payload: dict) -> None:
        """Wait for every rank to join, deliver the plan to external
        joiners, then rendezvous at the startup barrier."""
        deadline = time.monotonic() + self.timeout
        self._ctrl = self.coordinator.wait_for_ctrl(deadline)
        for rank, ch in sorted(self._ctrl.items()):
            msg = self._recv_ctrl(rank, ch, max(deadline - time.monotonic(), 0.01))
            if msg[0] == "fatal":
                raise RuntimeError(
                    f"socket worker {rank} failed to start:\n{msg[2]}"
                )
            if msg[0] != "ready":
                raise RuntimeError(
                    f"socket worker {rank}: protocol violation during "
                    f"handshake, got {msg[0]!r}"
                )
            if not msg[2]:  # external worker without the plan
                ch.send(("plan", payload))
        self.coordinator.barrier(self.timeout)

    # -- plumbing -------------------------------------------------------------
    def _exitcode(self, rank: int):
        if rank < len(self._procs):
            return self._procs[rank].exitcode
        return "external"

    def _recv_ctrl(self, rank: int, ch, timeout: float):
        try:
            return ch.recv(timeout=timeout)
        except WireClosed:
            raise RuntimeError(
                f"socket worker {rank} died "
                f"(connection lost, exitcode={self._exitcode(rank)})"
            ) from None
        except WireError as exc:
            raise RuntimeError(
                f"socket worker {rank} unresponsive: {exc} "
                f"(exitcode={self._exitcode(rank)})"
            ) from None

    def segment_stores(self) -> list:
        """The coordinator's heap arrays as zero-copy DenseStore views
        (transient, for the storage-layer residency gauges)."""
        from ...core.vectors import DenseStore

        return [
            DenseStore.wrap(self.coordinator.get(name))
            for name in ("C", "one", "aa", "bb", "mix")
        ]

    # -- one parallel sigma evaluation ----------------------------------------
    def sigma(self, C: np.ndarray) -> SigmaRun:
        na, nb = self.shape
        C = np.asarray(C, dtype=np.float64)
        if C.shape != (na, nb):
            raise ValueError(f"C must have shape {(na, nb)}, got {C.shape}")
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "sockets engine is closed (a worker died or close() was "
                    "called); build a new ParallelSigma/backend"
                )
            return self._sigma_locked(C)

    def _sigma_locked(self, C: np.ndarray) -> SigmaRun:
        plan = self.plan
        co = self.coordinator
        t_wall = time.perf_counter()
        co.get("C")[...] = C
        co.zero("one", "aa", "bb", "mix")
        co.reset_counter()
        self._seq += 1
        seq = self._seq
        try:
            for rank, ch in sorted(self._ctrl.items()):
                try:
                    ch.send(("sigma", seq))
                except WireError:
                    raise RuntimeError(
                        f"socket worker {rank} died "
                        f"(exitcode={self._exitcode(rank)})"
                    ) from None
            replies = self._collect(seq)
        except BaseException:
            self.close()
            raise

        # deterministic left-to-right reduction in the serial kernel's
        # accumulation order: one-electron, alpha-alpha, beta-beta^T, mixed
        sigma = co.get("one").copy()
        if plan.same_a is not None:
            sigma += co.get("aa")
        if plan.same_b is not None:
            sigma += co.get("bb").T
        sigma += co.get("mix")
        elapsed = time.perf_counter() - t_wall

        stats = []
        for r in replies:
            stats.append(
                RankStats(
                    compute=r["busy"],
                    bytes_sent=float(r["wire_tx"]),
                    bytes_received=float(r["wire_rx"]),
                    flops=float(r["dgemm_flops"]),
                    finish_time=r["busy"],
                    phase_times=dict(r["phase_times"]),
                )
            )
        finish = [s.finish_time for s in stats]
        imbalance = max(finish) - sum(finish) / len(finish)
        return SigmaRun(
            sigma=sigma,
            stats=stats,
            elapsed=elapsed,
            load_imbalance=imbalance,
        )

    def _collect(self, seq: int) -> list[dict]:
        """Await one ``done`` per rank, watching heartbeats the whole way.

        A rank is declared dead on control-channel EOF or after
        ``heartbeat_interval * heartbeat_misses`` seconds of total
        silence; either way the caller gets a ``RuntimeError`` naming the
        rank — never a hang past ``timeout``.
        """
        hb_budget = self.heartbeat_interval * self.heartbeat_misses
        deadline = time.monotonic() + self.timeout
        pending = dict(self._ctrl)
        last_seen = {rank: time.monotonic() for rank in pending}
        replies: list[dict] = [None] * self.n_workers
        while pending:
            now = time.monotonic()
            if now > deadline:
                raise RuntimeError(
                    f"sockets sigma timed out after {self.timeout:.0f}s; "
                    f"ranks still pending: {sorted(pending)}"
                )
            channels = list(pending.values())
            try:
                readable, _, _ = select.select(channels, [], [], 0.05)
            except (OSError, ValueError):
                readable = channels  # a closed fd: let recv raise per-rank
            by_channel = {ch: rank for rank, ch in pending.items()}
            for ch in readable:
                rank = by_channel[ch]
                msg = self._recv_ctrl(rank, ch, max(deadline - time.monotonic(), 0.01))
                last_seen[rank] = time.monotonic()
                if msg[0] == "hb":
                    continue
                if msg[0] == "error":
                    raise RuntimeError(
                        f"socket worker {rank} failed in sigma:\n{msg[2]}"
                    )
                if msg[0] == "fatal":
                    raise RuntimeError(
                        f"socket worker {rank} died:\n{msg[2]}"
                    )
                if msg[0] != "done" or msg[1] != seq:
                    raise RuntimeError(
                        f"socket worker {rank}: protocol violation, got {msg[:2]}"
                    )
                replies[rank] = msg[2]
                del pending[rank]
            now = time.monotonic()
            for rank in list(pending):
                alive_hint = ""
                if rank < len(self._procs):
                    proc = self._procs[rank]
                    if not proc.is_alive():
                        raise RuntimeError(
                            f"socket worker {rank} died mid-sigma "
                            f"(process exited, exitcode={proc.exitcode})"
                        )
                    alive_hint = f", process alive={proc.is_alive()}"
                if now - last_seen[rank] > hb_budget:
                    raise RuntimeError(
                        f"socket worker {rank} missed {self.heartbeat_misses} "
                        f"heartbeats ({hb_budget:.1f}s silent{alive_hint}); "
                        "declaring it dead"
                    )
        return replies

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Stop workers, join/terminate, release the coordinator's port."""
        self._closed = True
        for ch in self._ctrl.values():
            try:
                ch.send(("stop",))
            except WireError:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs = []
        self._ctrl = {}
        self.coordinator.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
