"""Worker-side DDI verbs over one TCP data channel to the coordinator.

:class:`SocketComm` is the sockets twin of
:class:`repro.parallel.shm.ShmComm`'s worker side: the same five verbs,
but every ``get`` is a framed request/response (the window arrives as a
contiguous copy, not a live view), ``acc`` is genuinely one-sided (sent
and forgotten — the coordinator applies it under the accumulate lock),
and ``quiet`` is the fence that makes the one-sidedness safe: its reply
proves every prior message on this ordered TCP channel has been applied,
and carries any deferred ``acc`` failure back as a raised error.

Unlike shared memory, a remote window is *not* writable in place — which
is exactly why the sigma decomposition only ever ships disjoint *owned*
windows: accumulating a window that nobody else touches into a segment
the parent zeroed is a store, bit for bit.
"""

from __future__ import annotations

import numpy as np

from .coordinator import SocketCommSpec
from .wire import Channel, WireError, connect_with_retry

__all__ = ["SocketComm"]


class SocketComm:
    """The five one-sided verbs, spoken over a framed TCP channel."""

    def __init__(self, channel: Channel, rank: int, spec: SocketCommSpec):
        self.channel = channel
        self.rank = rank
        self.n_ranks = spec.n_ranks
        self.timeout = spec.timeout

    @classmethod
    def connect(cls, spec: SocketCommSpec, rank: int | None = None) -> "SocketComm":
        """Dial the coordinator's data port; ``rank=None`` lets the
        coordinator assign the next free rank (external workers)."""
        ch = connect_with_retry(spec.host, spec.port, timeout=spec.timeout)
        ch.send(("hello", "data", rank, spec.token))
        reply = ch.recv(timeout=spec.timeout)
        if reply[0] != "ok":
            ch.close()
            raise WireError(f"coordinator refused data channel: {reply[1:]}")
        return cls(ch, reply[1], spec)

    def _request(self, msg, timeout: float | None = None):
        self.channel.send(msg)
        reply = self.channel.recv(timeout=self.timeout if timeout is None else timeout)
        if reply[0] != "ok":
            raise WireError(f"{msg[0]} failed: {reply[1]}")
        return reply

    # -- the five verbs -------------------------------------------------------
    def get(self, name: str, window=None) -> np.ndarray:
        """One-sided read: a contiguous copy of the remote window."""
        return self._request(("get", name, window))[1]

    def acc(self, name: str, window, values) -> None:
        """One-sided accumulate: fire-and-forget; fenced by :meth:`quiet`."""
        self.channel.send(("acc", name, window, np.ascontiguousarray(values)))

    def fetch_add(self, n: int = 1) -> int:
        """Atomically advance the shared task counter; returns the old value."""
        return self._request(("fetch_add", n))[1]

    def barrier(self, timeout: float | None = None) -> None:
        """All ranks + parent rendezvous; raises on a broken barrier."""
        t = self.timeout if timeout is None else timeout
        # the reply may lag the request by up to the barrier timeout itself
        self._request(("barrier", t), timeout=t + 10.0)

    def quiet(self) -> None:
        """Complete outstanding one-sided traffic (SHMEM_QUIET): round-trip
        the ordered channel, surfacing any deferred ``acc`` error."""
        self._request(("quiet",))

    # -- management -----------------------------------------------------------
    @property
    def tx_bytes(self) -> int:
        return self.channel.tx_bytes

    @property
    def rx_bytes(self) -> int:
        return self.channel.rx_bytes

    def close(self) -> None:
        try:
            self.channel.send(("bye",))
        except WireError:
            pass
        self.channel.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
