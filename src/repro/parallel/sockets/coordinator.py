"""The sockets backend's coordinator: the symmetric heap behind a TCP port.

The coordinator process (the parent) owns the distributed arrays as plain
NumPy buffers and serves the five DDI verbs over length-prefixed TCP
messages (:mod:`repro.parallel.sockets.wire`).  Workers — spawned on
loopback today, remote tomorrow — open two connections each:

* a **data channel**, strictly request/response from the worker, carrying
  the verbs: ``get`` (window read), ``acc`` (one-way accumulate, no
  reply), ``fetch_add`` (atomic task counter), ``barrier`` (rendezvous of
  all ranks plus the parent), ``quiet`` (fence: the reply proves every
  prior message on this ordered channel — in particular all ``acc``\\ s —
  has been applied, and reports any deferred ``acc`` errors),
* a **control channel**, owned by the engine: ``ready``/``plan``/
  ``sigma``/``done``/``error`` plus worker heartbeats.

Each data channel gets a dedicated serve thread, so one slow verb never
blocks another rank; ``acc`` takes the accumulate lock (DDI_ACC's
atomicity guarantee), ``fetch_add`` its counter lock, and ``barrier``
waits on a :class:`threading.Barrier` with ``n_ranks + 1`` parties (the
parent participates through :meth:`Coordinator.barrier`).

The parent-side methods (`get`/`acc`/`fetch_add`/`barrier`/`quiet`/
``zero``/``reset_counter``) mirror :class:`repro.parallel.shm.ShmComm`
exactly, which is what lets one backend-conformance harness drive both
substrates.  Live coordinators register in :data:`LIVE_COORDINATORS`
until :meth:`close` — the test suite's leak fixture asserts the set
drains after every backend test.
"""

from __future__ import annotations

import os
import socket
import threading
import traceback
from dataclasses import dataclass

import numpy as np

from .wire import Channel, WireClosed, WireError

__all__ = ["Coordinator", "SocketCommSpec", "LIVE_COORDINATORS"]

# every open (un-closed) coordinator; drained by Coordinator.close() and
# asserted empty by the backend tests' leak-check fixture
LIVE_COORDINATORS: set = set()


@dataclass(frozen=True)
class SocketCommSpec:
    """Picklable dial-in handle a worker uses to join a coordinator."""

    host: str
    port: int
    token: str
    n_ranks: int
    timeout: float
    heartbeat_interval: float = 0.25


class Coordinator:
    """Serve a named-array heap and the five DDI verbs to TCP workers."""

    def __init__(
        self,
        arrays: dict[str, tuple[int, ...]],
        n_ranks: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        timeout: float = 300.0,
        heartbeat_interval: float = 0.25,
    ):
        self.n_ranks = int(n_ranks)
        self.timeout = float(timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.token = token if token else os.urandom(8).hex()
        self._arrays = {
            name: np.zeros(shape, dtype=np.float64) for name, shape in arrays.items()
        }
        self._acc_lock = threading.Lock()
        self._counter = 0
        self._counter_lock = threading.Lock()
        self._barrier = threading.Barrier(self.n_ranks + 1)
        self._reg = threading.Condition()
        self._data: dict[int, Channel] = {}
        self._ctrl: dict[int, Channel] = {}
        self._acc_errors: dict[int, list[str]] = {}
        self._next_rank = 0
        self._threads: list[threading.Thread] = []
        self._closed = threading.Event()
        self._listener = socket.create_server((host, int(port)))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-sockets-accept", daemon=True
        )
        self._accept_thread.start()
        LIVE_COORDINATORS.add(self)

    # -- connection plumbing ---------------------------------------------------
    def spec(self) -> SocketCommSpec:
        return SocketCommSpec(
            host=self.host,
            port=self.port,
            token=self.token,
            n_ranks=self.n_ranks,
            timeout=self.timeout,
            heartbeat_interval=self.heartbeat_interval,
        )

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            ch = Channel(sock)
            try:
                msg = ch.recv(timeout=10.0)
                kind, rank, token = msg[1], msg[2], msg[3]
                if msg[0] != "hello" or token != self.token:
                    ch.send(("err", "bad handshake or token"))
                    ch.close()
                    continue
                with self._reg:
                    if rank is None:
                        rank = self._next_rank
                        self._next_rank += 1
                    if not 0 <= rank < self.n_ranks:
                        ch.send(("err", f"rank {rank} outside 0..{self.n_ranks - 1}"))
                        ch.close()
                        continue
                    ch.send(("ok", rank))
                    if kind == "data":
                        self._data[rank] = ch
                        t = threading.Thread(
                            target=self._serve_data,
                            args=(rank, ch),
                            name=f"repro-sockets-data-{rank}",
                            daemon=True,
                        )
                        self._threads.append(t)
                        t.start()
                    else:
                        self._ctrl[rank] = ch
                    self._reg.notify_all()
            except WireError:
                ch.close()

    def wait_for_ctrl(self, deadline: float) -> dict[int, Channel]:
        """Block until every rank's control channel has joined."""
        import time

        with self._reg:
            while len(self._ctrl) < self.n_ranks:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    missing = sorted(set(range(self.n_ranks)) - set(self._ctrl))
                    raise RuntimeError(
                        f"socket workers {missing} never connected a control "
                        f"channel within {self.timeout:.0f}s"
                    )
                self._reg.wait(timeout=min(remaining, 0.2))
            return dict(self._ctrl)

    def ctrl_channels(self) -> dict[int, Channel]:
        with self._reg:
            return dict(self._ctrl)

    # -- the verb server -------------------------------------------------------
    def _serve_data(self, rank: int, ch: Channel) -> None:
        try:
            while not self._closed.is_set():
                msg = ch.recv(timeout=None)
                op = msg[0]
                if op == "acc":
                    # one-sided: no reply; failures surface at the next quiet
                    try:
                        _, name, window, values = msg
                        with self._acc_lock:
                            if window is None:
                                self._arrays[name] += values
                            else:
                                self._arrays[name][window] += values
                    except Exception:
                        self._acc_errors.setdefault(rank, []).append(
                            traceback.format_exc()
                        )
                elif op == "get":
                    _, name, window = msg
                    try:
                        arr = self._arrays[name]
                        view = arr if window is None else arr[window]
                        ch.send(("ok", np.ascontiguousarray(view)))
                    except Exception as exc:
                        ch.send(("err", f"get({name!r}, {window!r}): {exc!r}"))
                elif op == "fetch_add":
                    with self._counter_lock:
                        old = self._counter
                        self._counter = old + msg[1]
                    ch.send(("ok", old))
                elif op == "barrier":
                    try:
                        self._barrier.wait(msg[1] if msg[1] else self.timeout)
                        ch.send(("ok",))
                    except threading.BrokenBarrierError:
                        ch.send(("err", "barrier broken or timed out"))
                elif op == "quiet":
                    pending = self._acc_errors.pop(rank, None)
                    if pending:
                        ch.send(("err", "deferred acc failure(s):\n" + "\n".join(pending)))
                    else:
                        ch.send(("ok",))
                elif op == "bye":
                    return
                else:
                    ch.send(("err", f"unknown verb {op!r}"))
        except WireClosed:
            return  # worker gone; the engine's heartbeat watch names it
        except WireError:
            return

    # -- parent-side verbs (mirror ShmComm) ------------------------------------
    def get(self, name: str, window=None) -> np.ndarray:
        """Parent-local window into a heap array (live view, writable)."""
        view = self._arrays[name]
        return view if window is None else view[window]

    def acc(self, name: str, window, values) -> None:
        with self._acc_lock:
            if window is None:
                self._arrays[name] += values
            else:
                self._arrays[name][window] += values

    def fetch_add(self, n: int = 1) -> int:
        with self._counter_lock:
            old = self._counter
            self._counter = old + n
        return old

    def barrier(self, timeout: float | None = None) -> None:
        self._barrier.wait(timeout if timeout else self.timeout)

    def quiet(self) -> None:
        """Parent-side fence: local stores are already ordered; worker
        accumulates are fenced by each worker's own quiet before it reports
        ``done``, which the engine awaits before reading."""

    def reset_counter(self) -> None:
        with self._counter_lock:
            self._counter = 0

    def zero(self, *names: str) -> None:
        for name in names:
            self._arrays[name][...] = 0.0

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Stop serving: abort the barrier, close every channel + listener."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._barrier.abort()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._reg:
            channels = list(self._data.values()) + list(self._ctrl.values())
            self._data.clear()
            self._ctrl.clear()
        for ch in channels:
            ch.close()
        self._accept_thread.join(timeout=2.0)
        for t in self._threads:
            t.join(timeout=2.0)
        LIVE_COORDINATORS.discard(self)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
