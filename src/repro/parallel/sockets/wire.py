"""Length-prefixed message framing for the sockets backend.

One frame = an 8-byte big-endian unsigned payload length followed by the
payload, a :mod:`pickle` (highest protocol) of a plain tuple whose first
element is the message kind.  The framing is deliberately dumb: TCP
already gives per-connection ordering and integrity, so all the protocol
needs is message boundaries; NumPy arrays ride through pickle-5
out-of-band-free (contiguous copies are made by the senders).

:class:`Channel` wraps a connected socket with framed ``send``/``recv``,
a send lock (the worker's heartbeat thread and its main loop share the
control channel), and transmit/receive byte counters that feed the
backend's measured-traffic reporting.

Failure taxonomy: :class:`WireClosed` (peer gone — EOF or reset),
:class:`WireTimeout` (no frame within the deadline), and plain
:class:`WireError` for protocol violations (oversized frame, bad
handshake).  The engine converts all three into ``RuntimeError``
diagnostics naming the rank.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time

__all__ = [
    "Channel",
    "WireClosed",
    "WireError",
    "WireTimeout",
    "connect_with_retry",
]

# a frame bigger than 64 GiB is a corrupt header, not a message
_MAX_FRAME = 1 << 36
_HEADER = struct.Struct(">Q")


class WireError(RuntimeError):
    """Protocol-level failure on a sockets-backend channel."""


class WireClosed(WireError):
    """The peer closed the connection (EOF/reset)."""


class WireTimeout(WireError):
    """No complete frame arrived within the deadline."""


class Channel:
    """A framed, counted, thread-safe-send wrapper over one TCP socket."""

    def __init__(self, sock: socket.socket):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock = sock
        self.tx_bytes = 0
        self.rx_bytes = 0
        self._send_lock = threading.Lock()

    def fileno(self) -> int:
        """For select(): readiness of the underlying socket."""
        return self.sock.fileno()

    def send(self, obj) -> int:
        """Send one framed message; returns bytes written."""
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _HEADER.pack(len(payload)) + payload
        try:
            with self._send_lock:
                self.sock.sendall(frame)
        except (OSError, ValueError) as exc:
            raise WireClosed(f"send failed: {exc}") from None
        self.tx_bytes += len(frame)
        return len(frame)

    def _recv_exact(self, n: int) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            try:
                chunk = self.sock.recv(min(n - len(buf), 1 << 20))
            except socket.timeout:
                raise WireTimeout(
                    f"no complete frame within the socket timeout "
                    f"({len(buf)}/{n} bytes received)"
                ) from None
            except OSError as exc:
                raise WireClosed(f"recv failed: {exc}") from None
            if not chunk:
                raise WireClosed("connection closed by peer")
            buf += chunk
        return bytes(buf)

    def recv(self, timeout: float | None = None):
        """Receive one framed message; ``timeout`` caps the whole frame."""
        self.sock.settimeout(timeout)
        header = self._recv_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > _MAX_FRAME:
            raise WireError(f"frame length {length} exceeds protocol maximum")
        payload = self._recv_exact(length)
        self.rx_bytes += _HEADER.size + length
        return pickle.loads(payload)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def connect_with_retry(
    host: str,
    port: int,
    *,
    attempts: int = 40,
    delay: float = 0.05,
    timeout: float | None = 10.0,
) -> Channel:
    """Dial the coordinator with bounded retry and backoff.

    Spawned workers race the coordinator's listener coming up (and remote
    workers race operator typing); retry covers both, bounded so a wrong
    address fails with a clean diagnostic instead of hanging.
    """
    last: Exception | None = None
    pause = delay
    for _ in range(max(1, attempts)):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            return Channel(sock)
        except OSError as exc:
            last = exc
            time.sleep(pause)
            pause = min(pause * 1.5, 1.0)
    raise WireError(
        f"could not connect to coordinator at {host}:{port} after "
        f"{attempts} attempts: {last}"
    )
