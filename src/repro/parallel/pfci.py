"""Numeric-mode parallel DGEMM sigma, on a pluggable execution backend.

Implements the paper's parallel strategy (section 3) with real arithmetic:

* the CI coefficient matrix is block-distributed over MSPs along the alpha
  string axis (the paper's "columns"; see :mod:`repro.core.problem` for the
  transposed bookkeeping),
* **beta-beta** same-spin term: purely local, statically balanced - every
  rank loops the full N-2 beta intermediate space for its own rows, no
  communication (paper section 3.3),
* **alpha-alpha** term and the alpha one-electron term: handled in
  transposed column blocks gathered with DDI_GET and accumulated back with
  DDI_ACC (the "transposed local C / sigma" device of Fig. 2a generalized to
  a distributed transpose),
* **mixed-spin** (alpha-beta) term: a dynamically load-balanced task pool
  over spans of target alpha strings; each task gathers the single-
  excitation source rows one-sidedly, runs the D -> DGEMM -> E pipeline
  locally, and DDI_ACCs the sigma rows to their owner,
* per-rank virtual time is charged with the X1 kernel cost models, so the
  numeric run and the paper-scale trace run share one timing machinery.

The result is bit-identical (to roundoff) with the serial
:func:`repro.core.sigma_dgemm`, which the test suite enforces for many rank
counts.

Execution is delegated to a :class:`repro.parallel.backend.Backend`
(``backend="simulated"`` — the discrete-event X1 above; ``backend="shm"``
— real OS processes over POSIX shared memory, :mod:`repro.parallel.shm`;
or ``backend="sockets"`` — real OS processes behind a TCP coordinator,
:mod:`repro.parallel.sockets`), chosen at construction with no algorithm
changes; the real-process paths are additionally *bitwise*-identical to
the serial kernel.  ``ParallelSigma`` also satisfies the
:class:`repro.core.kernels.SigmaKernel` protocol, so it drops into
:class:`repro.core.operator.HamiltonianOperator` and
``FCISolver(..., parallel=...)`` like any serial kernel.

Resilient mode (``faults=`` attached, or ``resilient=True``): every phase
becomes a *named, tagged task* published with exactly-once DDI semantics
(commit flags written atomically with the data), and each phase ends with
recovery rounds:

    barrier -> gather commit tags (write-quiescent) -> barrier ->
    identical uncommitted-work decision on every rank ->
    claim via a per-round DLB counter -> recompute + tagged publish -> repeat

so any single (or multiple, up to the round budget) rank death still yields
the reference sigma: live ranks detect the dead rank via the engine's
virtual-time heartbeat, requeue its unfinished work, and the idempotent
accumulate guards make double delivery impossible.  NaN-poisoned gather
payloads are detected and refetched at this layer; non-NaN bit-flips are
the solvers' watchdog's problem.  With ``faults=None`` the original
fault-free program runs unchanged (bit-identical schedule and result).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.kernels import (
    SigmaCounters,
    compiled_same_spin_sigma,
    same_spin_sigma,
)
from ..core.plans import SigmaPlan
from ..core.problem import CIProblem
from ..core.vectors import make_store, publish_store_metrics, store_kinds
from ..obs.accounting import account_parallel_report, account_sigma_dgemm
from ..x1.ddi import DDIArray, DynamicLoadBalancer, block_ranges
from ..x1.engine import Engine, RankStats, SymmetricHeap
from ..x1.machine import X1Config
from .backend import Backend, SigmaRun, make_backend
from .taskpool import Task, build_task_pool, publish_pool_metrics

__all__ = ["ParallelSigma", "ParallelReport"]

_MAX_RECOVERY_ROUNDS = 4
_PHASE_NAMES = ("beta-beta", "alpha-alpha", "alpha-beta")


@dataclass
class ParallelReport:
    """Virtual-time breakdown of one (or accumulated) parallel sigma runs."""

    elapsed: float = 0.0
    phase_times: dict[str, float] = field(default_factory=dict)
    load_imbalance: float = 0.0
    bytes_communicated: float = 0.0
    flops: float = 0.0
    n_calls: int = 0

    def merge(self, stats: list[RankStats], elapsed: float, imbalance: float) -> None:
        self.elapsed += elapsed
        # worst imbalance over the merged calls: imbalance is a per-call
        # statistic (max finish - mean finish), so summing it across calls
        # would grow without bound and mean nothing
        self.load_imbalance = max(self.load_imbalance, imbalance)
        self.bytes_communicated += sum(s.bytes_received + s.bytes_sent for s in stats)
        self.flops += sum(s.flops for s in stats)
        self.n_calls += 1
        # max-over-ranks per phase (the critical path of that phase)
        per_phase: dict[str, float] = {}
        for s in stats:
            for k, v in s.phase_times.items():
                per_phase[k] = max(per_phase.get(k, 0.0), v)
        for k, v in per_phase.items():
            self.phase_times[k] = self.phase_times.get(k, 0.0) + v

    def gflops_rate(self) -> float:
        return self.flops / self.elapsed / 1e9 if self.elapsed else 0.0


class ParallelSigma:
    """Parallel sigma operator; call it like a function on CI matrices.

    All coupling tables come from the problem's cached
    :class:`repro.core.plans.SigmaPlan` (one compile, replicated on every
    simulated rank), and the same-spin kernels are shared with the serial
    :class:`repro.core.kernels.DgemmKernel`.  ``block_columns=None`` (the
    default) sizes the column blocks with the plan's memory-budget
    heuristic, :meth:`SigmaPlan.default_block_columns`.

    ``kernel`` selects the sigma sweep implementation each rank runs
    (``"dgemm"`` or ``"compiled"``); the compiled sweeps issue
    operand-identical DGEMMs with order-identical scatters, so the
    backend bitwise contracts are unchanged by the choice.

    ``backend`` selects the execution substrate: ``"simulated"`` (the
    discrete-event X1, default), ``"shm"`` (real OS processes over shared
    memory), ``"sockets"`` (real OS processes behind a TCP coordinator —
    loopback today, multi-node tomorrow), or a ready
    :class:`repro.parallel.backend.Backend` instance.
    ``n_workers``/``blas_threads``/``shm_timeout`` configure any
    real-process pool; ``backend_options`` passes extra substrate-specific
    keywords through to the backend constructor (e.g. the sockets
    backend's ``host``/``port``/``spawn``/``heartbeat_interval``).  A
    real-process backend holds worker processes until :meth:`close` (also
    a context manager), and rejects ``faults``/``tracer`` — fault
    injection and virtual-time traces are properties of the simulated
    machine.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) routes per-call FLOP and
    byte accounting into its metrics registry; ``tracer`` (a
    :class:`repro.obs.tracer.SpanTracer`, defaulting to the telemetry's
    tracer) records the per-rank virtual-time timeline of every engine run.
    ``faults`` (a :class:`repro.faults.FaultInjector`) perturbs the engine
    and switches on the resilient tagged-task program (override with
    ``resilient=``).  All three default to off and cost nothing when off.
    """

    def __init__(
        self,
        problem: CIProblem,
        config: X1Config | None = None,
        *,
        backend: str | Backend = "simulated",
        kernel: str = "dgemm",
        n_workers: int | None = None,
        blas_threads: int = 1,
        shm_timeout: float = 300.0,
        backend_options: dict | None = None,
        block_columns: int | None = None,
        n_fine_per_proc: int = 8,
        n_large_per_proc: int = 3,
        n_small_per_proc: int = 4,
        vector_store: str | dict | None = None,
        telemetry=None,
        tracer=None,
        faults=None,
        resilient: bool | None = None,
    ):
        self.problem = problem
        if kernel not in ("dgemm", "compiled"):
            raise ValueError(
                "parallel execution distributes the DGEMM sigma decomposition; "
                f"kernel must be 'dgemm' or 'compiled', got {kernel!r}"
            )
        self.kernel_name = kernel
        self._same_spin = (
            compiled_same_spin_sigma if kernel == "compiled" else same_spin_sigma
        )
        # every rank replicates the problem's one precompiled plan
        # (paper section 3: replicated integrals + coupling tables per rank)
        self.plan = SigmaPlan.for_problem(problem)
        self.block_columns = (
            block_columns
            if block_columns is not None
            else self.plan.default_block_columns()
        )
        self.telemetry = telemetry
        self.tracer = tracer if tracer is not None else (telemetry.tracer if telemetry else None)
        self.faults = faults
        self.resilient = (faults is not None) if resilient is None else bool(resilient)
        if isinstance(backend, Backend):
            self.backend = backend
        elif backend == "simulated":
            self.backend = make_backend(
                "simulated", config=config if config is not None else X1Config()
            )
        else:
            self.backend = make_backend(
                backend,
                n_workers=n_workers,
                blas_threads=blas_threads,
                timeout=shm_timeout,
                **(backend_options or {}),
            )
        if vector_store is not None:
            if isinstance(vector_store, str):
                vector_store = {"kind": vector_store}
            kind = vector_store.get("kind")
            if kind not in store_kinds() or kind == "sparse":
                raise ValueError(
                    "vector_store must be a dense-layout store kind "
                    f"(dense, mmap); got {kind!r}"
                )
            if self.backend.name != "simulated":
                raise ValueError(
                    "store-backed distributed segments require the simulated "
                    "backend; a real-process backend's segments live in its "
                    "own substrate (POSIX shared memory for shm, the TCP "
                    "coordinator's heap for sockets) "
                    f"(got backend={self.backend.name!r})"
                )
        self.vector_store = vector_store
        if self.backend.name != "simulated":
            if self.faults is not None or self.resilient:
                raise ValueError(
                    "fault injection / resilient mode require the simulated "
                    f"backend (got backend={self.backend.name!r})"
                )
            if tracer is not None:
                raise ValueError(
                    "virtual-time span tracing requires the simulated backend "
                    f"(got backend={self.backend.name!r})"
                )
        self.config = getattr(self.backend, "config", config)
        self.report = ParallelReport()
        if self.backend.name == "simulated":
            self._build_simulated_decomposition(
                n_fine_per_proc, n_large_per_proc, n_small_per_proc
            )

    def _build_simulated_decomposition(
        self, n_fine_per_proc: int, n_large_per_proc: int, n_small_per_proc: int
    ) -> None:
        """Rank ranges, task pool, and gather metadata of the simulated X1.

        The shm backend builds its own (column-block based) decomposition
        inside :class:`repro.parallel.shm.ShmSigmaEngine`; everything here
        belongs to the virtual machine's alpha-row distribution.
        """
        problem = self.problem
        P = self.config.n_msps
        na, nb = problem.shape
        self.row_ranges = block_ranges(na, P)
        self.col_ranges = block_ranges(nb, P)

        # replicated tables come straight off the plan: the one-electron CSR
        # operators and the target-sorted mixed-spin halves are compiled once
        # per problem, not rebuilt per ParallelSigma (or per call)
        self.Ta, self.Tb = self.plan.Ta, self.plan.Tb
        self._per_a = self.plan.scatter_a.per
        self._per_b = self.plan.gather_b.per

        # task pool over alpha rows for the mixed-spin phase; per-unit cost
        # estimated as the GEMM work of one target row (uniform without
        # symmetry; symmetry-blocked spaces get their real per-row block
        # sizes)
        mask = problem.symmetry_mask
        if mask is None:
            unit_costs = np.full(na, float(nb))
        else:
            unit_costs = mask.sum(axis=1).astype(float) + 1.0
        self.tasks: list[Task] = build_task_pool(
            unit_costs,
            P,
            n_fine_per_proc=n_fine_per_proc,
            n_large_per_proc=n_large_per_proc,
            n_small_per_proc=n_small_per_proc,
        )
        if self.telemetry:
            publish_pool_metrics(self.telemetry.registry, self.tasks, "taskpool.mixed")
        # per-task gather metadata, sliced from the plan's target-sorted
        # alpha scatter half (constant entries per target string)
        sa = self.plan.scatter_a
        self._task_meta = []
        for t in self.tasks:
            elo, ehi = t.start * self._per_a, t.stop * self._per_a
            src = sa.source[elo:ehi]
            rows_needed, src_local = np.unique(src, return_inverse=True)
            self._task_meta.append(
                {
                    "rows": rows_needed,
                    "src_local": src_local,
                    "pq": sa.pq[elo:ehi],
                    "sgn": sa.sign[elo:ehi],
                    "m": t.stop - t.start,
                }
            )
        # which sigma owners each mixed-spin task touches (for commit checks)
        self._task_owners = [
            [
                r
                for r, (lo, hi) in enumerate(self.row_ranges)
                if hi > lo and lo < t.stop and hi > t.start
            ]
            for t in self.tasks
        ]

    # -- kernels -------------------------------------------------------------
    def _beta_beta_block(self, Cblk: np.ndarray) -> tuple[np.ndarray, float, float]:
        """Local-phase sigma rows for one C block: one-electron beta +
        beta-beta doubles; returns (sigma_block, model_seconds, flops)."""
        plan = self.plan
        cfg = self.config
        m = Cblk.shape[0]
        nb = self.problem.space_b.size
        npair = plan.w_matrix.shape[0]
        sig_local = np.zeros((m, nb))
        sig_local += np.asarray(self.Tb @ Cblk.T).T
        if plan.same_b is not None:
            sig_local += self._same_spin(
                plan.same_b,
                plan.w_matrix,
                np.ascontiguousarray(Cblk.T),
                self.block_columns,
                None,
            ).T
        nkb = plan.same_b.n_reduced if plan.same_b is not None else 0
        flops = 2.0 * npair * npair * nkb * m
        t = cfg.dgemm_time(npair, max(nkb * m, 1), npair) if nkb else 0.0
        t += cfg.gather_time(
            2.0 * (plan.same_b.n_entries if plan.same_b is not None else 0)
            * m
            / max(nb, 1)
            * nb
        )
        return sig_local, t, flops

    def _alpha_block(self, colC: np.ndarray, w: int) -> tuple[np.ndarray, float, float]:
        """Alpha one-electron + alpha-alpha doubles on one transposed column
        block; returns (X, model_seconds, flops)."""
        plan = self.plan
        cfg = self.config
        npair = plan.w_matrix.shape[0]
        X = np.asarray(self.Ta @ colC)
        if plan.same_a is not None:
            X += self._same_spin(
                plan.same_a, plan.w_matrix, colC, self.block_columns, None
            )
        nka = plan.same_a.n_reduced if plan.same_a is not None else 0
        flops = 2.0 * npair * npair * nka * w
        t = cfg.dgemm_time(npair, max(nka * w, 1), npair) if nka else 0.0
        return X, t, flops

    def _mixed_subset(self, Csub: np.ndarray, meta: dict) -> np.ndarray:
        """Mixed-spin sigma rows for one task from gathered source rows."""
        plan = self.plan
        n = plan.n
        G = plan.g_matrix
        gb = plan.gather_b
        g_rows = Csub.shape[0]
        nb = self.problem.space_b.size
        m = meta["m"]
        out = np.zeros((m, nb))
        bc = self.block_columns
        for lo in range(0, nb, bc):
            hi = min(lo + bc, nb)
            w = hi - lo
            elo, ehi = lo * self._per_b, hi * self._per_b
            src, tgt = gb.source[elo:ehi], gb.target[elo:ehi]
            rs, sgn = gb.pq[elo:ehi], gb.sign[elo:ehi]
            D = np.zeros((n * n, w, g_rows))
            D[rs, tgt - lo] = sgn[:, None] * Csub[:, src].T
            E = (G @ D.reshape(n * n, w * g_rows)).reshape(n * n, w, g_rows)
            vals = meta["sgn"][:, None] * E[meta["pq"], :, meta["src_local"]]
            out[:, lo:hi] += vals.reshape(m, self._per_a, w).sum(axis=1)
        return out

    def _mixed_task_time(self, meta: dict) -> tuple[float, float]:
        """(seconds, flops) cost-model charge for one mixed-spin task."""
        cfg = self.config
        n = self.problem.n
        nb = self.problem.space_b.size
        g_rows = meta["rows"].size
        flops = 2.0 * (n * n) * (n * n) * nb * g_rows
        t = cfg.dgemm_time(n * n, nb * g_rows, n * n)
        t += cfg.gather_time(self.plan.gather_b.n_entries / max(nb, 1) * nb * g_rows)
        t += cfg.gather_time(meta["pq"].size * nb)
        return t, flops

    # -- main entry -----------------------------------------------------------
    def __call__(self, C: np.ndarray) -> np.ndarray:
        na, nb = self.problem.shape
        if C.shape != (na, nb):
            raise ValueError(f"C must have shape {(na, nb)}")
        run = self.backend.run_sigma(self, C)
        self.report.merge(run.stats, run.elapsed, run.load_imbalance)
        if self.telemetry:
            one = ParallelReport()
            one.merge(run.stats, run.elapsed, run.load_imbalance)
            account_parallel_report(
                self.telemetry.registry, one, self.backend.n_ranks
            )
            engine = getattr(self.backend, "_engine", None)
            if engine is not None:
                # real-process path: residency of the backend's segments
                # (POSIX shm, or the TCP coordinator's heap), reported
                # through transient DenseStore views (same gauge schema as
                # the solvers' store metrics)
                publish_store_metrics(
                    self.telemetry.registry,
                    engine.segment_stores(),
                    prefix="parallel.segments",
                )
        return run.sigma

    def close(self) -> None:
        """Release backend resources (the shm worker pool; simulated: no-op)."""
        self.backend.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- SigmaKernel protocol --------------------------------------------------
    # ParallelSigma drops into HamiltonianOperator (and therefore FCISolver)
    # like any serial kernel; counters are fed from the report deltas the
    # backends measure.
    @property
    def name(self) -> str:
        return f"parallel-{self.backend.name}"

    def make_counters(self) -> SigmaCounters:
        return SigmaCounters()

    def account(self, registry, counters, seconds: float, calls: int = 1):
        return account_sigma_dgemm(registry, counters, seconds, calls=calls)

    def apply(self, C: np.ndarray, counters: SigmaCounters | None = None) -> np.ndarray:
        flops0 = self.report.flops
        bytes0 = self.report.bytes_communicated
        sigma = self(C)
        if counters is not None:
            counters.dgemm_flops += int(self.report.flops - flops0)
            counters.dgemm_calls += 1
            # one-sided traffic, reported as gather-side elements
            counters.gather_elements += int(
                (self.report.bytes_communicated - bytes0) / 8
            )
        return sigma

    def apply_batch(
        self, C_stack: np.ndarray, counters: SigmaCounters | None = None
    ) -> np.ndarray:
        C_stack = np.asarray(C_stack)
        return np.stack([self.apply(C, counters) for C in C_stack])

    # -- simulated execution (invoked through SimulatedBackend) ---------------
    def _run_simulated(self, C: np.ndarray) -> SigmaRun:
        problem = self.problem
        cfg = self.config
        P = cfg.n_msps
        na, nb = problem.shape

        heap = SymmetricHeap(P)
        fi = self.faults
        stores = []
        if self.vector_store is not None:
            # the distributed C and sigma live inside CI-vector stores; every
            # rank's heap segment is a row-block view into them, so an mmap
            # store keeps the whole "distributed memory" on disk
            opts = {k: v for k, v in self.vector_store.items() if k != "kind"}
            stores = [
                make_store(self.vector_store["kind"], (na, nb), **opts)
                for _ in range(2)
            ]
        Cstore = stores[0] if stores else None
        Sstore = stores[1] if stores else None
        Cd = DDIArray(
            heap, "C", na, nb, msps_per_node=cfg.msps_per_node, faults=fi,
            store=Cstore,
        )
        Sd = DDIArray(
            heap, "sigma", na, nb, msps_per_node=cfg.msps_per_node, faults=fi,
            store=Sstore,
        )
        dlb = DynamicLoadBalancer(heap)
        for r, (lo, hi) in enumerate(self.row_ranges):
            Cd.set_local(r, C[lo:hi])

        if self.resilient:
            program = self._resilient_program(Cd, Sd, dlb, heap)
        else:
            program = self._program(Cd, Sd, dlb)

        engine = Engine(cfg, heap, tracer=self.tracer, faults=fi)
        try:
            stats = engine.run([program] * P)

            sigma = np.empty_like(C)
            for r, (lo, hi) in enumerate(self.row_ranges):
                if hi > lo:
                    sigma[lo:hi] = Sd.local_block(r)
        finally:
            if stores and self.telemetry:
                publish_store_metrics(
                    self.telemetry.registry, stores, prefix="parallel.vectors"
                )
            for s in stores:
                s.close()
        return SigmaRun(
            sigma=sigma,
            stats=stats,
            elapsed=engine.elapsed(),
            load_imbalance=engine.load_imbalance(),
        )

    # -- fault-free program (the default; schedule is bit-stable) ------------
    def _program(self, Cd: DDIArray, Sd: DDIArray, dlb: DynamicLoadBalancer):
        n_tasks = len(self.tasks)

        def program(proc, _heap):
            r = proc.rank
            lo, hi = self.row_ranges[r]
            m = hi - lo

            # ---- local phase: one-electron beta + beta-beta (static) ----
            if m:
                sig_local, t, flops = self._beta_beta_block(Cd.local_block(r))
                yield proc.compute(t, flops=flops, label="beta-beta", name="DGEMM beta-beta")
                Sd.local_block(r)[...] = sig_local
            else:
                Sd.local_block(r)[...] = 0.0
            yield proc.barrier()

            # ---- alpha-alpha + alpha one-electron on transposed blocks ----
            clo, chi = self.col_ranges[r]
            if chi > clo:
                colC = yield from Cd.iget_col_block(proc, clo, chi, label="alpha-alpha")
                X, t, flops = self._alpha_block(colC, chi - clo)
                yield proc.compute(t, flops=flops, label="alpha-alpha", name="DGEMM alpha-alpha")
                yield from Sd.iacc_col_block(proc, clo, chi, X, label="alpha-alpha")
            yield proc.barrier()

            # ---- mixed-spin: dynamic task pool ----
            while True:
                tid = yield from dlb.inext(proc, label="alpha-beta")
                if tid >= n_tasks:
                    break
                task = self.tasks[tid]
                meta = self._task_meta[tid]
                Csub = yield from Cd.iget_rows(proc, meta["rows"], label="alpha-beta")
                out = self._mixed_subset(Csub, meta)
                t, flops = self._mixed_task_time(meta)
                yield proc.compute(t, flops=flops, label="alpha-beta", name="DGEMM alpha-beta")
                yield from Sd.iacc_rows(
                    proc,
                    np.arange(task.start, task.stop),
                    out,
                    label="alpha-beta",
                )
            yield proc.barrier()

        return program

    # -- resilient program (tagged tasks + recovery rounds) -------------------
    def _resilient_program(self, Cd: DDIArray, Sd: DDIArray, dlb: DynamicLoadBalancer, heap):
        """Build the self-healing rank program.

        Commit-tag layout on ``Sd`` (tag ``t`` lives on each owner's heap):
        ``[0, P)`` beta-beta block publications, ``[P, 2P)`` alpha-alpha
        column-block accumulations, ``[2P, 2P + n_tasks)`` mixed-spin tasks.
        """
        P = self.config.n_msps
        fi = self.faults
        n_tasks = len(self.tasks)
        Sd.alloc_commit_tags(2 * P + n_tasks)
        # claim counters for every possible recovery round, allocated up
        # front so all ranks agree on them without communication
        rq = {
            (phase, rnd): DynamicLoadBalancer(heap, name=f"_rq_{phase}_{rnd}")
            for phase in range(3)
            for rnd in range(_MAX_RECOVERY_ROUNDS)
        }
        row_owners = [r for r, (lo, hi) in enumerate(self.row_ranges) if hi > lo]

        def publish_beta_block(proc, owner, Cblk):
            sig_local, t, flops = self._beta_beta_block(Cblk)
            yield proc.compute(t, flops=flops, label="beta-beta", name="DGEMM beta-beta")
            yield from Sd.iput_block_once(proc, owner, sig_local, tag=owner, label="beta-beta")

        def redo_beta_block(proc, owner):
            lo, hi = self.row_ranges[owner]
            Cblk = yield from Cd.iget_rows(proc, np.arange(lo, hi), label="beta-beta:requeue")
            yield from publish_beta_block(proc, owner, Cblk)

        def do_alpha_block(proc, c, label="alpha-alpha"):
            clo, chi = self.col_ranges[c]
            colC = yield from Cd.iget_col_block(proc, clo, chi, label=label)
            X, t, flops = self._alpha_block(colC, chi - clo)
            yield proc.compute(t, flops=flops, label="alpha-alpha", name="DGEMM alpha-alpha")
            yield from Sd.iacc_col_block_once(proc, clo, chi, X, tag=P + c, label=label)

        def do_mixed_task(proc, tid, label="alpha-beta"):
            task = self.tasks[tid]
            meta = self._task_meta[tid]
            Csub = yield from Cd.iget_rows(proc, meta["rows"], label=label)
            out = self._mixed_subset(Csub, meta)
            t, flops = self._mixed_task_time(meta)
            yield proc.compute(t, flops=flops, label="alpha-beta", name="DGEMM alpha-beta")
            yield from Sd.iacc_rows_once(
                proc, np.arange(task.start, task.stop), out, tag=2 * P + tid, label=label
            )

        def uncommitted_beta(T):
            return [r for r in row_owners if not T[r, r]]

        def uncommitted_alpha(T):
            return [
                c
                for c, (clo, chi) in enumerate(self.col_ranges)
                if chi > clo and not all(T[o, P + c] for o in row_owners)
            ]

        def uncommitted_mixed(T):
            return [
                t
                for t in range(n_tasks)
                if not all(T[o, 2 * P + t] for o in self._task_owners[t])
            ]

        def recover(proc, phase, find_uncommitted, redo_one):
            """Requeue-until-committed; every rank runs this in lockstep.

            Control flow is driven *only* by the gathered commit tags (read
            in a write-quiescent window between two barriers), so all live
            ranks take identical decisions; the heartbeat probe is for the
            trace and the fault counters, never for branching.
            """
            label = f"{_PHASE_NAMES[phase]}:recover"
            for rnd in range(_MAX_RECOVERY_ROUNDS + 1):
                yield proc.barrier()
                T = yield from Sd.iget_tags(proc, label=label)
                yield proc.barrier()
                uncommitted = find_uncommitted(T)
                if not uncommitted:
                    return
                if rnd == _MAX_RECOVERY_ROUNDS:
                    raise RuntimeError(
                        f"{label}: {len(uncommitted)} tasks still uncommitted "
                        f"after {_MAX_RECOVERY_ROUNDS} recovery rounds"
                    )
                yield proc.failures(label=label)  # heartbeat: dead set -> trace
                counter = rq[(phase, rnd)]
                while True:
                    idx = yield from counter.inext(proc, label=label)
                    if idx >= len(uncommitted):
                        break
                    if fi is not None:
                        fi.note_recovered("task_requeue")
                    yield from redo_one(proc, uncommitted[idx])

        def program(proc, _heap):
            r = proc.rank
            lo, hi = self.row_ranges[r]

            # ---- phase 1: beta-beta, published exactly-once ----
            if hi > lo:
                yield from publish_beta_block(proc, r, Cd.local_block(r))
            yield from recover(proc, 0, uncommitted_beta, redo_beta_block)

            # ---- phase 2: alpha-alpha column blocks ----
            clo, chi = self.col_ranges[r]
            if chi > clo:
                yield from do_alpha_block(proc, r)
            yield from recover(proc, 1, uncommitted_alpha, do_alpha_block)

            # ---- phase 3: mixed-spin dynamic task pool ----
            while True:
                tid = yield from dlb.inext(proc, label="alpha-beta")
                if tid >= n_tasks:
                    break
                yield from do_mixed_task(proc, tid)
            yield from recover(proc, 2, uncommitted_mixed, do_mixed_task)
            yield proc.barrier()

        return program
