"""Numeric-mode parallel DGEMM sigma on the simulated Cray-X1.

Implements the paper's parallel strategy (section 3) with real arithmetic:

* the CI coefficient matrix is block-distributed over MSPs along the alpha
  string axis (the paper's "columns"; see :mod:`repro.core.problem` for the
  transposed bookkeeping),
* **beta-beta** same-spin term: purely local, statically balanced - every
  rank loops the full N-2 beta intermediate space for its own rows, no
  communication (paper section 3.3),
* **alpha-alpha** term and the alpha one-electron term: handled in
  transposed column blocks gathered with DDI_GET and accumulated back with
  DDI_ACC (the "transposed local C / sigma" device of Fig. 2a generalized to
  a distributed transpose),
* **mixed-spin** (alpha-beta) term: a dynamically load-balanced task pool
  over spans of target alpha strings; each task gathers the single-
  excitation source rows one-sidedly, runs the D -> DGEMM -> E pipeline
  locally, and DDI_ACCs the sigma rows to their owner,
* per-rank virtual time is charged with the X1 kernel cost models, so the
  numeric run and the paper-scale trace run share one timing machinery.

The result is bit-identical (to roundoff) with the serial
:func:`repro.core.sigma_dgemm`, which the test suite enforces for many rank
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.problem import CIProblem
from ..core.sigma_dgemm import _same_spin_rows, one_electron_operators
from ..obs.accounting import account_parallel_report
from ..x1.ddi import DDIArray, DynamicLoadBalancer, block_ranges
from ..x1.engine import Engine, RankStats, SymmetricHeap
from ..x1.machine import X1Config
from .taskpool import Task, build_task_pool, publish_pool_metrics

__all__ = ["ParallelSigma", "ParallelReport"]


@dataclass
class ParallelReport:
    """Virtual-time breakdown of one (or accumulated) parallel sigma runs."""

    elapsed: float = 0.0
    phase_times: dict[str, float] = field(default_factory=dict)
    load_imbalance: float = 0.0
    bytes_communicated: float = 0.0
    flops: float = 0.0
    n_calls: int = 0

    def merge(self, stats: list[RankStats], elapsed: float, imbalance: float) -> None:
        self.elapsed += elapsed
        self.load_imbalance += imbalance
        self.bytes_communicated += sum(s.bytes_received + s.bytes_sent for s in stats)
        self.flops += sum(s.flops for s in stats)
        self.n_calls += 1
        # max-over-ranks per phase (the critical path of that phase)
        per_phase: dict[str, float] = {}
        for s in stats:
            for k, v in s.phase_times.items():
                per_phase[k] = max(per_phase.get(k, 0.0), v)
        for k, v in per_phase.items():
            self.phase_times[k] = self.phase_times.get(k, 0.0) + v

    def gflops_rate(self) -> float:
        return self.flops / self.elapsed / 1e9 if self.elapsed else 0.0


class ParallelSigma:
    """Parallel sigma operator; call it like a function on CI matrices.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) routes per-call FLOP and
    byte accounting into its metrics registry; ``tracer`` (a
    :class:`repro.obs.tracer.SpanTracer`, defaulting to the telemetry's
    tracer) records the per-rank virtual-time timeline of every engine run.
    Both default to off and cost nothing when off.
    """

    def __init__(
        self,
        problem: CIProblem,
        config: X1Config,
        *,
        block_columns: int = 64,
        n_fine_per_proc: int = 8,
        n_large_per_proc: int = 3,
        n_small_per_proc: int = 4,
        telemetry=None,
        tracer=None,
    ):
        self.problem = problem
        self.config = config
        self.block_columns = block_columns
        self.telemetry = telemetry
        self.tracer = tracer if tracer is not None else (telemetry.tracer if telemetry else None)
        P = config.n_msps
        na, nb = problem.shape
        self.row_ranges = block_ranges(na, P)
        self.col_ranges = block_ranges(nb, P)
        self.report = ParallelReport()

        # replicated tables (every MSP holds the integrals and coupling data)
        self.Ta, self.Tb = one_electron_operators(problem)
        n = problem.n
        ta = problem.singles_a
        self._per_a = ta.n_entries // problem.space_a.size
        ord_a = np.argsort(ta.target, kind="stable")
        self._a_src = ta.source[ord_a]
        self._a_tgt = ta.target[ord_a]
        self._a_pq = (ta.p * n + ta.q)[ord_a]
        self._a_sgn = ta.sign[ord_a].astype(np.float64)

        tb = problem.singles_b
        self._per_b = tb.n_entries // problem.space_b.size
        ord_b = np.argsort(tb.target, kind="stable")
        self._b_src = tb.source[ord_b]
        self._b_tgt = tb.target[ord_b]
        self._b_rs = (tb.p * n + tb.q)[ord_b]
        self._b_sgn = tb.sign[ord_b].astype(np.float64)

        # task pool over alpha rows for the mixed-spin phase; per-unit cost
        # estimated as the GEMM work of one target row (uniform without
        # symmetry; symmetry-blocked spaces get their real per-row block
        # sizes)
        mask = problem.symmetry_mask
        if mask is None:
            unit_costs = np.full(na, float(nb))
        else:
            unit_costs = mask.sum(axis=1).astype(float) + 1.0
        self.tasks: list[Task] = build_task_pool(
            unit_costs,
            P,
            n_fine_per_proc=n_fine_per_proc,
            n_large_per_proc=n_large_per_proc,
            n_small_per_proc=n_small_per_proc,
        )
        if self.telemetry:
            publish_pool_metrics(self.telemetry.registry, self.tasks, "taskpool.mixed")
        # per-task gather metadata
        self._task_meta = []
        for t in self.tasks:
            elo, ehi = t.start * self._per_a, t.stop * self._per_a
            src = self._a_src[elo:ehi]
            rows_needed, src_local = np.unique(src, return_inverse=True)
            self._task_meta.append(
                {
                    "rows": rows_needed,
                    "src_local": src_local,
                    "pq": self._a_pq[elo:ehi],
                    "sgn": self._a_sgn[elo:ehi],
                    "m": t.stop - t.start,
                }
            )

    # -- kernels -------------------------------------------------------------
    def _mixed_subset(self, Csub: np.ndarray, meta: dict) -> np.ndarray:
        """Mixed-spin sigma rows for one task from gathered source rows."""
        problem = self.problem
        n = problem.n
        G = problem.g_matrix
        g_rows = Csub.shape[0]
        nb = problem.space_b.size
        m = meta["m"]
        out = np.zeros((m, nb))
        bc = self.block_columns
        for lo in range(0, nb, bc):
            hi = min(lo + bc, nb)
            w = hi - lo
            elo, ehi = lo * self._per_b, hi * self._per_b
            src, tgt = self._b_src[elo:ehi], self._b_tgt[elo:ehi]
            rs, sgn = self._b_rs[elo:ehi], self._b_sgn[elo:ehi]
            D = np.zeros((n * n, w, g_rows))
            D[rs, tgt - lo] = sgn[:, None] * Csub[:, src].T
            E = (G @ D.reshape(n * n, w * g_rows)).reshape(n * n, w, g_rows)
            vals = meta["sgn"][:, None] * E[meta["pq"], :, meta["src_local"]]
            out[:, lo:hi] += vals.reshape(m, self._per_a, w).sum(axis=1)
        return out

    def _mixed_task_time(self, meta: dict) -> tuple[float, float]:
        """(seconds, flops) cost-model charge for one mixed-spin task."""
        cfg = self.config
        n = self.problem.n
        nb = self.problem.space_b.size
        g_rows = meta["rows"].size
        flops = 2.0 * (n * n) * (n * n) * nb * g_rows
        t = cfg.dgemm_time(n * n, nb * g_rows, n * n)
        t += cfg.gather_time(self._b_src.size / max(nb, 1) * nb * g_rows)
        t += cfg.gather_time(meta["pq"].size * nb)
        return t, flops

    # -- main entry -----------------------------------------------------------
    def __call__(self, C: np.ndarray) -> np.ndarray:
        problem = self.problem
        cfg = self.config
        P = cfg.n_msps
        na, nb = problem.shape
        if C.shape != (na, nb):
            raise ValueError(f"C must have shape {(na, nb)}")

        heap = SymmetricHeap(P)
        Cd = DDIArray(heap, "C", na, nb, msps_per_node=cfg.msps_per_node)
        Sd = DDIArray(heap, "sigma", na, nb, msps_per_node=cfg.msps_per_node)
        dlb = DynamicLoadBalancer(heap)
        for r, (lo, hi) in enumerate(self.row_ranges):
            Cd.set_local(r, C[lo:hi])
        n_tasks = len(self.tasks)
        W = problem.w_matrix
        npair = W.shape[0]

        def program(proc, _heap):
            r = proc.rank
            lo, hi = self.row_ranges[r]
            m = hi - lo
            Cblk = Cd.local_block(r)
            sig_local = np.zeros((m, nb))

            # ---- local phase: one-electron beta + beta-beta (static) ----
            if m:
                sig_local += np.asarray(self.Tb @ Cblk.T).T
                if problem.n_beta >= 2:
                    sig_local += _same_spin_rows(
                        problem.doubles_b,
                        W,
                        np.ascontiguousarray(Cblk.T),
                        self.block_columns,
                        None,
                    ).T
                nkb = problem.doubles_b.reduced_space.size if problem.n_beta >= 2 else 0
                flops = 2.0 * npair * npair * nkb * m
                t = cfg.dgemm_time(npair, max(nkb * m, 1), npair) if nkb else 0.0
                t += cfg.gather_time(
                    2.0 * (problem.doubles_b.n_entries if problem.n_beta >= 2 else 0)
                    * m
                    / max(problem.space_b.size, 1)
                    * problem.space_b.size
                )
                yield proc.compute(t, flops=flops, label="beta-beta", name="DGEMM beta-beta")
            Sd.local_block(r)[...] = sig_local
            yield proc.barrier()

            # ---- alpha-alpha + alpha one-electron on transposed blocks ----
            clo, chi = self.col_ranges[r]
            if chi > clo:
                colC = yield from Cd.iget_col_block(proc, clo, chi, label="alpha-alpha")
                X = np.asarray(self.Ta @ colC)
                if problem.n_alpha >= 2:
                    X += _same_spin_rows(
                        problem.doubles_a, W, colC, self.block_columns, None
                    )
                nka = problem.doubles_a.reduced_space.size if problem.n_alpha >= 2 else 0
                w = chi - clo
                flops = 2.0 * npair * npair * nka * w
                t = cfg.dgemm_time(npair, max(nka * w, 1), npair) if nka else 0.0
                yield proc.compute(t, flops=flops, label="alpha-alpha", name="DGEMM alpha-alpha")
                yield from Sd.iacc_col_block(proc, clo, chi, X, label="alpha-alpha")
            yield proc.barrier()

            # ---- mixed-spin: dynamic task pool ----
            while True:
                tid = yield from dlb.inext(proc, label="alpha-beta")
                if tid >= n_tasks:
                    break
                task = self.tasks[tid]
                meta = self._task_meta[tid]
                Csub = yield from Cd.iget_rows(proc, meta["rows"], label="alpha-beta")
                out = self._mixed_subset(Csub, meta)
                t, flops = self._mixed_task_time(meta)
                yield proc.compute(t, flops=flops, label="alpha-beta", name="DGEMM alpha-beta")
                yield from Sd.iacc_rows(
                    proc,
                    np.arange(task.start, task.stop),
                    out,
                    label="alpha-beta",
                )
            yield proc.barrier()

        engine = Engine(cfg, heap, tracer=self.tracer)
        stats = engine.run([program] * P)
        self.report.merge(stats, engine.elapsed(), engine.load_imbalance())
        if self.telemetry:
            run = ParallelReport()
            run.merge(stats, engine.elapsed(), engine.load_imbalance())
            account_parallel_report(self.telemetry.registry, run, P)

        sigma = np.empty_like(C)
        for r, (lo, hi) in enumerate(self.row_ranges):
            if hi > lo:
                sigma[lo:hi] = Sd.local_block(r)
        return sigma
