"""Analytic performance model of the alpha-beta routine (paper Table 1).

Reproduces the operation- and communication-count comparison between the
minimum-operation-count (MOC) and DGEMM-based FCI algorithms:

=================  =============================  =====================
                   MOC                            DGEMM
-----------------  -----------------------------  ---------------------
kernel             indexed multiply-and-add       DGEMM (+ gather/scatter)
operation count    Nci (n-na) na (n-nb) nb        ~ Nci n^2 na nb
communication      Nci na (n-na)  (collective)    3 Nci na  (get + acc)
=================  =============================  =====================

``measured_counts`` additionally runs both real kernels with counters on a
small CI problem so the model columns can be checked against observed
gather/DGEMM/indexed-op counts (the Table-1 benchmark does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.problem import CIProblem
from ..core.sigma_dgemm import SigmaCounters, sigma_dgemm
from ..core.sigma_moc import MOCCounters, sigma_moc

__all__ = ["PerfModelRow", "alpha_beta_model", "measured_counts"]


@dataclass
class PerfModelRow:
    """Model predictions for one FCI space."""

    label: str
    nci: float
    moc_operations: float
    dgemm_operations: float
    moc_comm_elements: float
    dgemm_comm_elements: float

    @property
    def operation_ratio(self) -> float:
        return self.moc_operations / self.dgemm_operations if self.dgemm_operations else np.inf

    @property
    def comm_ratio(self) -> float:
        return self.moc_comm_elements / self.dgemm_comm_elements if self.dgemm_comm_elements else np.inf


def alpha_beta_model(
    label: str, n_orbitals: int, n_alpha: int, n_beta: int, nci: float
) -> PerfModelRow:
    """Evaluate the Table-1 formulas for one FCI space.

    ``nci`` is the (possibly symmetry-reduced) CI dimension; the counts use
    the paper's conventions (elements, not bytes).
    """
    n, na, nb = n_orbitals, n_alpha, n_beta
    return PerfModelRow(
        label=label,
        nci=float(nci),
        moc_operations=float(nci) * (n - na) * na * (n - nb) * nb,
        dgemm_operations=float(nci) * n * n * na * nb,
        moc_comm_elements=float(nci) * na * (n - na),
        dgemm_comm_elements=3.0 * float(nci) * na,
    )


def measured_counts(problem: CIProblem, seed: int = 0) -> dict[str, dict[str, int]]:
    """Run both sigma kernels once with instrumentation counters.

    Returns {"dgemm": {...}, "moc": {...}} and asserts both kernels agree
    numerically (raises otherwise) - keeping Table 1 honest.
    """
    C = problem.random_vector(seed)
    dc = SigmaCounters()
    mc = MOCCounters()
    s1 = sigma_dgemm(problem, C, counters=dc)
    s2 = sigma_moc(problem, C, counters=mc)
    err = float(np.max(np.abs(s1 - s2)))
    if err > 1e-9:
        raise AssertionError(f"sigma kernels disagree by {err:g}")
    out = {"dgemm": dc.as_dict(), "moc": mc.as_dict()}
    out["agreement_error"] = err  # type: ignore[assignment]
    return out
