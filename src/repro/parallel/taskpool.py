"""Size-ordered aggregated task pool for dynamic load balancing (paper Fig 3).

The mixed-spin routine's work units (sets of alpha occupations) have
uneven and hard-to-predict costs, so the paper schedules them dynamically
from a replicated task pool served by a central counter.  Fine granularity
balances well but costs communication; the paper's compromise:

* start from ``n_fine_per_proc * P`` fine-grained tasks,
* aggregate most of them into ``n_large_per_proc * P`` large tasks of
  *decreasing* size (big tasks first),
* keep ``n_small_per_proc * P`` fine tasks as a tail, so worst-case
  imbalance is bounded by the fine-task size.

``build_task_pool`` reproduces that construction for an arbitrary list of
work-unit costs and returns tasks in execution order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Task", "build_task_pool", "pool_statistics", "publish_pool_metrics"]


@dataclass
class Task:
    """A scheduled unit: a contiguous span of work units."""

    index: int
    start: int  # first work unit
    stop: int  # one past last work unit
    cost: float  # estimated cost (model units)

    @property
    def n_units(self) -> int:
        return self.stop - self.start


def _split_even_cost(costs: np.ndarray, n_pieces: int) -> list[tuple[int, int]]:
    """Split range(len(costs)) into n_pieces contiguous spans of ~equal cost.

    Costs must be finite and non-negative: a negative cost would make the
    cumulative-sum non-monotone (silently mis-sorting the cut points) and a
    NaN poisons every span boundary, so both are rejected up front with the
    offending work unit named.
    """
    bad = ~np.isfinite(costs)
    if bad.any():
        unit = int(np.flatnonzero(bad)[0])
        raise ValueError(
            f"work unit {unit} has non-finite cost {costs[unit]!r}; "
            "unit costs must be finite"
        )
    negative = costs < 0
    if negative.any():
        unit = int(np.flatnonzero(negative)[0])
        raise ValueError(
            f"work unit {unit} has negative cost {costs[unit]!r}; "
            "unit costs must be >= 0"
        )
    total = float(costs.sum())
    if total <= 0:
        # degenerate: equal-count split
        bounds = np.linspace(0, costs.size, n_pieces + 1).astype(int)
        return [(int(bounds[i]), int(bounds[i + 1])) for i in range(n_pieces)]
    cum = np.concatenate([[0.0], np.cumsum(costs)])
    targets = np.linspace(0, total, n_pieces + 1)
    cut = np.searchsorted(cum, targets[1:-1], side="left")
    bounds = np.concatenate([[0], cut, [costs.size]])
    bounds = np.maximum.accumulate(bounds)  # keep monotone
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(n_pieces)]


def build_task_pool(
    unit_costs,
    n_procs: int,
    *,
    n_fine_per_proc: int = 16,
    n_large_per_proc: int = 3,
    n_small_per_proc: int = 4,
) -> list[Task]:
    """Build the paper's aggregated, size-ordered task pool.

    ``unit_costs`` are the estimated costs of the individual work units (in
    their natural order; tasks own contiguous spans so gathers stay
    blocked).  Returns tasks in the order they should be served: large
    tasks with decreasing size, then the fine tail.
    """
    costs = np.asarray(unit_costs, dtype=float)
    if costs.ndim != 1 or costs.size == 0:
        raise ValueError("unit_costs must be a non-empty 1-D sequence")
    if n_procs < 1:
        raise ValueError("n_procs must be positive")
    n_fine = max(n_procs * n_fine_per_proc, 1)
    n_fine = min(n_fine, costs.size)
    fine_spans = _split_even_cost(costs, n_fine)

    n_small = min(max(n_procs * n_small_per_proc, 0), len(fine_spans) - 1)
    head = fine_spans[: len(fine_spans) - n_small]
    tail = fine_spans[len(fine_spans) - n_small :]

    n_large = max(n_procs * n_large_per_proc, 1)
    n_large = min(n_large, len(head))
    # aggregate head spans into n_large tasks with linearly DECREASING sizes:
    # task i gets a share proportional to (n_large - i).
    weights = np.arange(n_large, 0, -1, dtype=float)
    shares = np.cumsum(weights) / weights.sum()
    bounds = [0] + [int(round(s * len(head))) for s in shares]
    bounds[-1] = len(head)
    bounds = list(np.maximum.accumulate(bounds))
    tasks: list[Task] = []
    for i in range(n_large):
        lo, hi = bounds[i], bounds[i + 1]
        if hi <= lo:
            continue
        start = head[lo][0]
        stop = head[hi - 1][1]
        if stop <= start:
            continue
        tasks.append(
            Task(
                index=len(tasks),
                start=start,
                stop=stop,
                cost=float(costs[start:stop].sum()),
            )
        )
    # large tasks in order of decreasing cost
    tasks.sort(key=lambda t: -t.cost)
    for i, t in enumerate(tasks):
        t.index = i
    for lo, hi in tail:
        if hi <= lo:
            continue
        tasks.append(
            Task(
                index=len(tasks),
                start=lo,
                stop=hi,
                cost=float(costs[lo:hi].sum()),
            )
        )
    return tasks


def pool_statistics(tasks: list[Task]) -> dict[str, float]:
    """Summary statistics used by the Fig-3 ablation benchmark.

    An empty pool (a rank that received no work units) yields all-zero
    statistics rather than tripping numpy's empty-reduction errors.
    """
    if not tasks:
        return {
            "n_tasks": 0,
            "total_cost": 0.0,
            "max_cost": 0.0,
            "min_cost": 0.0,
            "mean_cost": 0.0,
            "tail_cost": 0.0,
        }
    costs = np.array([t.cost for t in tasks])
    return {
        "n_tasks": len(tasks),
        "total_cost": float(costs.sum()),
        "max_cost": float(costs.max()),
        "min_cost": float(costs.min()),
        "mean_cost": float(costs.mean()),
        "tail_cost": float(costs[-1]) if len(tasks) else 0.0,
    }


def publish_pool_metrics(registry, tasks: list[Task], prefix: str = "taskpool") -> None:
    """Record pool shape in a metrics registry (``repro.obs``) as gauges.

    The max/tail-cost ratio bounds the worst-case dynamic-load-balancing
    imbalance, which is what the Fig-3 study varies.
    """
    stats = pool_statistics(tasks)
    for key, value in stats.items():
        registry.gauge(f"{prefix}.{key}").set(value)
