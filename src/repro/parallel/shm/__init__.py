"""Real shared-memory execution backend for the parallel sigma.

The paper's decomposition on actual OS processes: POSIX shared-memory
segments for the distributed arrays (:mod:`~repro.parallel.shm.comm`), a
persistent spawned worker pool executing the rank programs
(:mod:`~repro.parallel.shm.worker`), and the engine that coordinates them
and reduces the owned segments deterministically
(:mod:`~repro.parallel.shm.engine`).  Selected via
``ParallelSigma(..., backend="shm")``.
"""

from .comm import ShmComm, ShmCommSpec
from .engine import ShmSigmaEngine

__all__ = ["ShmComm", "ShmCommSpec", "ShmSigmaEngine"]
