"""Shared-memory sigma engine: real processes, bitwise-serial results.

:class:`ShmSigmaEngine` executes the paper's parallel sigma decomposition
on spawned OS processes over a :class:`~repro.parallel.shm.comm.ShmComm`:

* decomposition: the serial kernel's canonical column blocks
  (:func:`repro.core.kernels.column_blocks`) are the distribution unit —
  same-spin terms round-robin statically, the mixed-spin term runs a
  dynamically load-balanced pool of column-block *spans* built by the
  same size-ordered aggregation (:func:`repro.parallel.taskpool
  .build_task_pool`) the simulated MSPs use,
* accumulation: each phase writes disjoint owned windows of its own
  shared segment (``one``/``aa``/``bb``/``mix``); the parent reduces the
  four segments left-to-right in the serial kernel's accumulation order,
  so sigma is bitwise-identical to ``DgemmKernel.apply`` for any worker
  count,
* lifecycle: workers are spawned once (each unpickling the
  :class:`~repro.core.plans.SigmaPlan` a single time, with BLAS threads
  pinned through the environment before spawn) and serve sigma requests
  over pipes until :meth:`close`, so eigensolver iterations pay the
  spawn cost once,
* observability: every call returns a
  :class:`~repro.parallel.backend.SigmaRun` whose per-rank
  :class:`~repro.x1.engine.RankStats` carry measured wall-clock phase
  times, bytes gathered/scattered, and kernel FLOPs — the same schema the
  simulated engine emits, so ``ParallelReport`` and the obs accounting
  work unchanged.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time

import numpy as np

from ...core.plans import SigmaPlan
from ...x1.engine import RankStats
from ..backend import SigmaRun
from ..rankwork import build_sigma_decomposition
from .comm import ShmComm

__all__ = ["ShmSigmaEngine"]

# every BLAS/OpenMP runtime numpy might load reads one of these at startup
_BLAS_ENV = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


class ShmSigmaEngine:
    """Persistent pool of sigma workers over shared memory."""

    def __init__(
        self,
        plan: SigmaPlan,
        *,
        n_workers: int,
        block_columns: int,
        blas_threads: int = 1,
        timeout: float = 300.0,
        straggle_seconds: float = 0.0,
        kernel: str = "dgemm",
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.plan = plan
        self.kernel = str(kernel)
        self.n_workers = int(n_workers)
        self.block_columns = int(block_columns)
        self.blas_threads = int(blas_threads)
        self.timeout = float(timeout)
        na, nb = plan.shape
        self.shape = (na, nb)

        # the one decomposition shared with the sockets backend: canonical
        # column blocks round-robined, size-ordered mixed-spin spans
        decomp = build_sigma_decomposition(plan, self.n_workers, self.block_columns)
        self.decomposition = decomp
        self.aa_blocks = decomp.aa_blocks
        self.bb_blocks = decomp.bb_blocks
        self.tasks = decomp.tasks

        ctx = mp.get_context("spawn")
        self.comm = ShmComm(
            ctx,
            arrays={
                "C": (na, nb),
                "one": (na, nb),
                "aa": (na, nb),
                "bb": (nb, na),  # beta-beta works on the transposed matrix
                "mix": (na, nb),
            },
            n_ranks=self.n_workers,
        )
        payload = {
            "plan": plan,
            "block_columns": self.block_columns,
            "n_workers": self.n_workers,
            "aa_blocks": self.aa_blocks,
            "bb_blocks": self.bb_blocks,
            "tasks": self.tasks,
            "blas_threads": self.blas_threads,
            "timeout": self.timeout,
            "straggle_seconds": float(straggle_seconds),
            "kernel": self.kernel,
        }
        self._procs: list = []
        self._conns: list = []
        self._seq = 0
        self._lock = threading.Lock()
        self._closed = False
        spec = self.comm.spec()
        saved = {k: os.environ.get(k) for k in _BLAS_ENV}
        try:
            # spawn inherits os.environ: pin every worker's BLAS pool before
            # exec, then restore the parent's own settings
            for k in _BLAS_ENV:
                os.environ[k] = str(self.blas_threads)
            from .worker import worker_main

            for rank in range(self.n_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=worker_main,
                    args=(rank, child_conn, spec, payload),
                    daemon=True,
                    name=f"repro-shm-sigma-{rank}",
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except BaseException:
            self.close()
            raise
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v
        try:
            for rank, conn in enumerate(self._conns):
                msg = self._recv(rank, conn, self.timeout)
                if msg[0] != "ready":
                    raise RuntimeError(f"shm worker {rank} failed to start: {msg}")
            self.comm.barrier(self.timeout)
        except BaseException:
            self.close()
            raise

    def segment_stores(self) -> list:
        """The shared segments as zero-copy :class:`DenseStore` views.

        Built on demand and intentionally not retained: a held wrapper
        would keep the exported shm buffers alive past :meth:`close` and
        block the parent's unlink.  Callers use them transiently (the
        storage-layer residency gauges) and drop them."""
        from ...core.vectors import DenseStore

        return [
            DenseStore.wrap(self.comm.get(name))
            for name in ("C", "one", "aa", "bb", "mix")
        ]

    # -- plumbing -------------------------------------------------------------
    def _recv(self, rank: int, conn, timeout: float):
        if not conn.poll(timeout):
            alive = self._procs[rank].is_alive()
            code = self._procs[rank].exitcode
            raise RuntimeError(
                f"shm worker {rank} unresponsive after {timeout:.0f}s "
                f"(alive={alive}, exitcode={code})"
            )
        try:
            return conn.recv()
        except EOFError:
            code = self._procs[rank].exitcode
            raise RuntimeError(
                f"shm worker {rank} died (exitcode={code})"
            ) from None

    # -- one parallel sigma evaluation ----------------------------------------
    def sigma(self, C: np.ndarray) -> SigmaRun:
        na, nb = self.shape
        C = np.asarray(C, dtype=np.float64)
        if C.shape != (na, nb):
            raise ValueError(f"C must have shape {(na, nb)}, got {C.shape}")
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "shm engine is closed (a worker died or close() was "
                    "called); build a new ParallelSigma/backend"
                )
            return self._sigma_locked(C)

    def _sigma_locked(self, C: np.ndarray) -> SigmaRun:
        plan = self.plan
        t_wall = time.perf_counter()
        self.comm.get("C")[...] = C
        self.comm.zero("one", "aa", "bb", "mix")
        self.comm.reset_counter()
        self._seq += 1
        seq = self._seq
        for rank, conn in enumerate(self._conns):
            try:
                conn.send(("sigma", seq))
            except OSError:
                code = self._procs[rank].exitcode
                self.close()
                raise RuntimeError(
                    f"shm worker {rank} died (exitcode={code})"
                ) from None

        deadline = time.perf_counter() + self.timeout
        replies: list[dict] = [None] * self.n_workers
        try:
            for rank, conn in enumerate(self._conns):
                msg = self._recv(rank, conn, max(deadline - time.perf_counter(), 0.0))
                if msg[0] == "error":
                    raise RuntimeError(
                        f"shm worker {rank} failed in sigma:\n{msg[2]}"
                    )
                if msg[0] != "done" or msg[1] != seq:
                    raise RuntimeError(
                        f"shm worker {rank}: protocol violation, got {msg[:2]}"
                    )
                replies[rank] = msg[2]
        except BaseException:
            self.close()
            raise

        # deterministic left-to-right reduction in the serial kernel's
        # accumulation order: one-electron, alpha-alpha, beta-beta^T, mixed
        sigma = self.comm.get("one").copy()
        if plan.same_a is not None:
            sigma += self.comm.get("aa")
        if plan.same_b is not None:
            sigma += self.comm.get("bb").T
        sigma += self.comm.get("mix")
        elapsed = time.perf_counter() - t_wall

        stats = []
        for r in replies:
            stats.append(
                RankStats(
                    compute=r["busy"],
                    bytes_sent=8.0 * r["scatter_elements"],
                    bytes_received=8.0 * r["gather_elements"],
                    flops=float(r["dgemm_flops"]),
                    finish_time=r["busy"],
                    phase_times=dict(r["phase_times"]),
                )
            )
        finish = [s.finish_time for s in stats]
        imbalance = max(finish) - sum(finish) / len(finish)
        return SigmaRun(
            sigma=sigma,
            stats=stats,
            elapsed=elapsed,
            load_imbalance=imbalance,
        )

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Stop workers, join, and release the shared segments."""
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs = []
        self._conns = []
        self.comm.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
