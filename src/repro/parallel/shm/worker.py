"""Worker process for the shared-memory sigma engine.

Each worker is one *rank* of the paper's decomposition, executing on a
real OS process what the simulated MSPs execute in virtual time.  The
per-rank program itself — one-electron prologue on rank 0, round-robin
same-spin column blocks, ``fetch_add``-claimed mixed-spin spans — lives
in :func:`repro.parallel.rankwork.run_rank_sigma`, shared verbatim with
the sockets backend so the two substrates cannot drift from the bitwise
contract.  Here the substrate specifics are: outputs are the parent's
shared-memory segments written in place (zero-copy views), the pickled
:class:`~repro.core.plans.SigmaPlan` arrives once through the spawn args,
and the DLB counter is :meth:`ShmComm.fetch_add`.

Because every block is a *whole* canonical column block, each DGEMM sees
exactly the operands the serial kernel would give it, and the parent's
left-to-right reduction of the four owned segments reproduces the serial
accumulation order — which together make the result bitwise-identical to
``sigma_dgemm`` for any worker count.

BLAS threading is pinned per worker (env vars set by the parent before
spawn; :mod:`threadpoolctl` tightened here when available) so P workers
don't oversubscribe P*threads cores.
"""

from __future__ import annotations

import time
import traceback

from ...core.kernels import SigmaCounters
from ..rankwork import run_rank_sigma
from .comm import ShmComm, ShmCommSpec

__all__ = ["worker_main"]


def _pin_blas_threads(n: int):
    """Best-effort runtime cap on BLAS pool size (env vars already set).

    Returns the threadpoolctl limiter (kept alive for the process
    lifetime) or None when threadpoolctl isn't installed — the env-var
    pinning the parent applied before spawn still holds either way.
    """
    try:
        from threadpoolctl import threadpool_limits
    except ImportError:
        return None
    try:
        return threadpool_limits(limits=n)
    except Exception:
        return None


def _run_sigma(rank: int, comm: ShmComm, payload: dict) -> dict:
    """One sigma evaluation; returns the rank's wall-clock stats."""
    plan = payload["plan"]

    counters = SigmaCounters()
    phase_times: dict[str, float] = {}
    t_start = time.perf_counter()

    C_stack = comm.get("C")[None]  # (1, na, nb) window, zero-copy

    # outputs are the shared segments themselves: every phase writes only
    # this rank's disjoint owned windows, in place
    outs = {
        "one": comm.get("one"),
        "aa": comm.get("aa"),
        "bb": comm.get("bb"),
        "mix": comm.get("mix"),
    }
    n_tasks_done, _ = run_rank_sigma(
        rank,
        plan,
        C_stack,
        outs,
        comm.fetch_add,
        block_columns=payload["block_columns"],
        n_workers=payload["n_workers"],
        aa_blocks=payload["aa_blocks"],
        bb_blocks=payload["bb_blocks"],
        tasks=payload["tasks"],
        counters=counters,
        phase_times=phase_times,
        per_task_seconds=payload.get("straggle_seconds", 0.0),
        kernel=payload.get("kernel", "dgemm"),
    )

    comm.quiet()  # all owned-segment stores complete before we report done
    busy = time.perf_counter() - t_start
    return {
        "phase_times": phase_times,
        "busy": busy,
        "tasks_done": n_tasks_done,
        **counters.as_dict(),
    }


def worker_main(rank: int, conn, spec: ShmCommSpec, payload: dict) -> None:
    """Entry point of a spawned worker: attach, handshake, serve requests.

    Pipe protocol (parent -> worker): ``("sigma", seq)`` evaluate one
    sigma; ``("stop",)`` exit.  Replies: ``("ready", rank)`` after attach,
    then ``("done", seq, stats)`` or ``("error", seq, traceback_text)``.
    """
    limiter = _pin_blas_threads(payload.get("blas_threads", 1))  # noqa: F841
    comm = None
    try:
        comm = ShmComm.attach(spec)
        conn.send(("ready", rank))
        comm.barrier(payload.get("timeout"))
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "stop":
                break
            if msg[0] == "sigma":
                seq = msg[1]
                try:
                    stats = _run_sigma(rank, comm, payload)
                    conn.send(("done", seq, stats))
                except Exception:
                    conn.send(("error", seq, traceback.format_exc()))
    except Exception:
        try:
            conn.send(("fatal", rank, traceback.format_exc()))
        except Exception:
            pass
    finally:
        if comm is not None:
            comm.close()
        conn.close()
