"""Worker process for the shared-memory sigma engine.

Each worker is one *rank* of the paper's decomposition, executing on a
real OS process what the simulated MSPs execute in virtual time:

* attach to the parent's :class:`~repro.parallel.shm.comm.ShmComm`
  segments (the pickled :class:`~repro.core.plans.SigmaPlan` arrives once,
  through the spawn args — the paper's replicated coupling tables),
* **one-electron** terms: rank 0 only, operand-for-operand the serial
  ``DgemmKernel.apply_batch`` prologue, stored into the owned ``one``
  segment,
* **alpha-alpha** / **beta-beta** same-spin terms: statically balanced
  round-robin over the kernel's canonical column blocks, written into the
  owned windows of the ``aa`` / ``bb`` segments,
* **mixed-spin** term: dynamically load-balanced spans of column blocks
  claimed through ``fetch_add`` (the DLB counter), scattered into the
  ``mix`` segment — tasks own disjoint column spans, so no locking.

Because every block is a *whole* canonical column block, each DGEMM sees
exactly the operands the serial kernel would give it, and the parent's
left-to-right reduction of the four owned segments reproduces the serial
accumulation order — which together make the result bitwise-identical to
``sigma_dgemm`` for any worker count.

BLAS threading is pinned per worker (env vars set by the parent before
spawn; :mod:`threadpoolctl` tightened here when available) so P workers
don't oversubscribe P*threads cores.
"""

from __future__ import annotations

import time
import traceback

import numpy as np

from ...core.kernels import (
    SigmaCounters,
    _alpha_layout,
    _beta_layout,
    mixed_spin_sigma_stack,
    same_spin_sigma_stack,
)
from .comm import ShmComm, ShmCommSpec

__all__ = ["worker_main"]


def _pin_blas_threads(n: int):
    """Best-effort runtime cap on BLAS pool size (env vars already set).

    Returns the threadpoolctl limiter (kept alive for the process
    lifetime) or None when threadpoolctl isn't installed — the env-var
    pinning the parent applied before spawn still holds either way.
    """
    try:
        from threadpoolctl import threadpool_limits
    except ImportError:
        return None
    try:
        return threadpool_limits(limits=n)
    except Exception:
        return None


def _run_sigma(rank: int, comm: ShmComm, payload: dict) -> dict:
    """One sigma evaluation; returns the rank's wall-clock stats."""
    plan = payload["plan"]
    bc = payload["block_columns"]
    n_workers = payload["n_workers"]
    aa_blocks = payload["aa_blocks"]
    bb_blocks = payload["bb_blocks"]
    tasks = payload["tasks"]
    na, nb = plan.shape

    counters = SigmaCounters()
    phase_times: dict[str, float] = {}
    t_start = time.perf_counter()

    C_stack = comm.get("C")[None]  # (1, na, nb) window, zero-copy

    # one-electron alpha + beta: rank 0, exactly the serial prologue
    if rank == 0:
        t0 = time.perf_counter()
        one = np.asarray(plan.Ta @ _alpha_layout(C_stack))
        one = one.reshape(na, 1, nb).transpose(1, 0, 2)
        one = one + np.asarray(
            plan.Tb @ _beta_layout(C_stack)
        ).reshape(nb, 1, na).transpose(1, 2, 0)
        comm.get("one")[...] = one[0]
        phase_times["one-electron"] = time.perf_counter() - t0

    # alpha-alpha doubles: this rank's round-robin share of the beta-axis
    # column blocks, stored into disjoint owned windows of `aa`
    my_aa = aa_blocks[rank::n_workers]
    if plan.same_a is not None and my_aa:
        t0 = time.perf_counter()
        same_spin_sigma_stack(
            plan.same_a,
            plan.w_matrix,
            C_stack,
            bc,
            counters,
            col_blocks=my_aa,
            out=comm.get("aa")[None],
        )
        phase_times["alpha-alpha"] = time.perf_counter() - t0

    # beta-beta doubles on the transposed stack (paper Fig. 2a), blocks
    # over the alpha axis
    my_bb = bb_blocks[rank::n_workers]
    if plan.same_b is not None and my_bb:
        t0 = time.perf_counter()
        rows_stack = np.ascontiguousarray(C_stack.transpose(0, 2, 1))
        same_spin_sigma_stack(
            plan.same_b,
            plan.w_matrix,
            rows_stack,
            bc,
            counters,
            col_blocks=my_bb,
            out=comm.get("bb")[None],
        )
        phase_times["beta-beta"] = time.perf_counter() - t0

    # mixed-spin: dynamic task pool over column-block spans
    t0 = time.perf_counter()
    mix_out = comm.get("mix")[None]
    n_tasks_done = 0
    while True:
        tid = comm.fetch_add()
        if tid >= len(tasks):
            break
        blo, bhi = tasks[tid]
        mixed_spin_sigma_stack(
            plan,
            C_stack,
            bc,
            counters,
            col_blocks=aa_blocks[blo:bhi],
            out=mix_out,
        )
        n_tasks_done += 1
    phase_times["alpha-beta"] = time.perf_counter() - t0

    comm.quiet()  # all owned-segment stores complete before we report done
    busy = time.perf_counter() - t_start
    return {
        "phase_times": phase_times,
        "busy": busy,
        "tasks_done": n_tasks_done,
        **counters.as_dict(),
    }


def worker_main(rank: int, conn, spec: ShmCommSpec, payload: dict) -> None:
    """Entry point of a spawned worker: attach, handshake, serve requests.

    Pipe protocol (parent -> worker): ``("sigma", seq)`` evaluate one
    sigma; ``("stop",)`` exit.  Replies: ``("ready", rank)`` after attach,
    then ``("done", seq, stats)`` or ``("error", seq, traceback_text)``.
    """
    limiter = _pin_blas_threads(payload.get("blas_threads", 1))  # noqa: F841
    comm = None
    try:
        comm = ShmComm.attach(spec)
        conn.send(("ready", rank))
        comm.barrier(payload.get("timeout"))
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "stop":
                break
            if msg[0] == "sigma":
                seq = msg[1]
                try:
                    stats = _run_sigma(rank, comm, payload)
                    conn.send(("done", seq, stats))
                except Exception:
                    conn.send(("error", seq, traceback.format_exc()))
    except Exception:
        try:
            conn.send(("fatal", rank, traceback.format_exc()))
        except Exception:
            pass
    finally:
        if comm is not None:
            comm.close()
        conn.close()
