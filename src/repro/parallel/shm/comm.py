"""Shared-memory communication layer: the DDI/SHMEM verbs on real processes.

:class:`ShmComm` gives a group of OS processes the same five one-sided
primitives the paper's DDI layer gives MSPs — ``get``, ``acc``,
``fetch_add``, ``barrier``, ``quiet`` — implemented over POSIX shared
memory (:mod:`multiprocessing.shared_memory`):

* distributed arrays become named float64 segments every rank maps into
  its address space, so ``get`` is a zero-copy window and ``put`` is a
  plain store (cache-coherent shared memory makes one-sided access free);
* ``acc`` is a lock-protected in-place add, for callers whose target
  windows may overlap (the sigma decomposition itself writes only
  *disjoint owned* windows, which need no lock — that is the per-rank
  owned-segment design the deterministic reduction relies on);
* ``fetch_add`` is the dynamic-load-balancing counter: a lock-protected
  shared int64, the real-process twin of ``DynamicLoadBalancer.inext``;
* ``barrier`` is a :class:`multiprocessing.Barrier` across all ranks plus
  the parent; ``quiet`` is a documented no-op, because CPython issues the
  stores synchronously and x86/ARM cache coherence plus the barrier/pipe
  synchronization points make them visible before any rank can observe
  the rendezvous.

The parent constructs the comm (creating segments) and ships the picklable
:class:`ShmCommSpec` to spawned workers, which attach by name.  The parent
owns segment lifetime: it unlinks on :meth:`close`.  Workers attaching
re-register the names with the resource tracker, but spawned children
*share* the parent's tracker process (the fd travels in the spawn
preparation data) and its cache is a set, so the re-registration is a
dedupe no-op — nothing is unlinked before the parent's close, and nothing
extra must be unregistered.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmComm", "ShmCommSpec"]


@dataclass
class ShmCommSpec:
    """Picklable handle a worker uses to attach to the parent's ShmComm."""

    segments: dict[str, tuple[int, ...]]  # array name -> shape
    names: dict[str, str]  # array name -> OS segment name
    n_ranks: int
    counter: object  # multiprocessing.Value('q')
    lock: object  # multiprocessing.Lock for acc
    barrier: object  # multiprocessing.Barrier over n_ranks + parent


class ShmComm:
    """The five one-sided verbs over named shared-memory float64 arrays."""

    def __init__(self, ctx, arrays: dict[str, tuple[int, ...]], n_ranks: int):
        """Parent-side constructor: creates segments and sync primitives."""
        self._owner = True
        self.n_ranks = int(n_ranks)
        uid = f"{os.getpid():x}-{os.urandom(4).hex()}"
        self._counter = ctx.Value("q", 0)
        self._lock = ctx.Lock()
        # all worker ranks + the parent rendezvous here
        self._barrier = ctx.Barrier(self.n_ranks + 1)
        self._shapes = dict(arrays)
        self._names: dict[str, str] = {}
        self._shms: dict[str, shared_memory.SharedMemory] = {}
        self._views: dict[str, np.ndarray] = {}
        try:
            for name, shape in arrays.items():
                os_name = f"repro-{uid}-{name}"
                nbytes = int(np.prod(shape)) * 8
                shm = shared_memory.SharedMemory(
                    create=True, size=max(nbytes, 8), name=os_name
                )
                self._shms[name] = shm
                self._names[name] = os_name
                view = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
                view[...] = 0.0
                self._views[name] = view
        except BaseException:
            self.close()
            raise

    @classmethod
    def attach(cls, spec: ShmCommSpec) -> "ShmComm":
        """Worker-side constructor: map the parent's segments by name."""
        self = cls.__new__(cls)
        self._owner = False
        self.n_ranks = spec.n_ranks
        self._counter = spec.counter
        self._lock = spec.lock
        self._barrier = spec.barrier
        self._shapes = dict(spec.segments)
        self._names = dict(spec.names)
        self._shms = {}
        self._views = {}
        try:
            for name, shape in spec.segments.items():
                shm = shared_memory.SharedMemory(name=spec.names[name])
                self._shms[name] = shm
                self._views[name] = np.ndarray(
                    shape, dtype=np.float64, buffer=shm.buf
                )
        except BaseException:
            # a worker dying between attaching segment 1 and segment N must
            # not leave the earlier mappings open (they pin /dev/shm space
            # and, through the resource tracker, can outlive the parent)
            self.close()
            raise
        return self

    def spec(self) -> ShmCommSpec:
        """The picklable attach handle to pass to spawned workers."""
        return ShmCommSpec(
            segments=dict(self._shapes),
            names=dict(self._names),
            n_ranks=self.n_ranks,
            counter=self._counter,
            lock=self._lock,
            barrier=self._barrier,
        )

    # -- the five verbs -------------------------------------------------------
    def get(self, name: str, window=None) -> np.ndarray:
        """One-sided read: a live window into a shared array.

        ``window`` is any NumPy basic index (slice / tuple of slices); the
        returned view is writable, which is what makes ``put`` and the
        kernels' ``out=`` scatter free on shared memory.
        """
        view = self._views[name]
        return view if window is None else view[window]

    def acc(self, name: str, window, values) -> None:
        """One-sided accumulate: locked in-place add into a window.

        The lock serializes *all* accumulates on this comm (DDI_ACC's
        atomicity guarantee); rank-owned disjoint windows skip this verb
        and store through :meth:`get` views directly.
        """
        with self._lock:
            self._views[name][window] += values

    def fetch_add(self, n: int = 1) -> int:
        """Atomically advance the shared task counter; returns the old value."""
        with self._counter.get_lock():
            value = self._counter.value
            self._counter.value = value + n
        return value

    def barrier(self, timeout: float | None = None) -> None:
        """All ranks + parent rendezvous; raises on a broken barrier."""
        self._barrier.wait(timeout)

    def quiet(self) -> None:
        """Complete outstanding one-sided traffic (SHMEM_QUIET).

        A no-op here: stores into shared memory are issued synchronously
        by the interpreter and made visible by cache coherence before the
        pipe/barrier synchronization points that order observation.
        """

    # -- management -----------------------------------------------------------
    def reset_counter(self) -> None:
        with self._counter.get_lock():
            self._counter.value = 0

    def zero(self, *names: str) -> None:
        for name in names:
            self._views[name][...] = 0.0

    def close(self) -> None:
        """Unmap segments; the creating parent also unlinks them."""
        for name, shm in list(self._shms.items()):
            try:
                # drop the array views first: SharedMemory.close() refuses
                # while exported buffers are alive
                self._views.pop(name, None)
                shm.close()
                if self._owner:
                    shm.unlink()
            except Exception:
                pass
        self._shms.clear()
        self._views.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
