"""Trace-mode parallel FCI: paper-scale runs on the simulated Cray-X1.

The paper's headline results (Fig. 4, Fig. 5, Table 3) are measured on CI
spaces of 1.5 to 65 *billion* determinants - far beyond what real arithmetic
in this package (or any single machine) can hold.  Trace mode executes the
*same parallel schedule* as the numeric driver (static beta-beta phase,
DDI-gathered dynamically load-balanced mixed-spin task pool, vector
symmetrization, Davidson-step vector operations, restart I/O) through the
same discrete-event engine, but charges kernel cost models with *exact
combinatorial sizes* instead of doing arithmetic:

* string counts per irrep come from the dynamic-programming counter in
  :mod:`repro.core.strings` (no enumeration - works at n = 66),
* DGEMM/indexed-update/gather/communication times come from the calibrated
  :class:`repro.x1.machine.X1Config` rates,
* communication volumes follow the paper's own model (Table 1): the
  mixed-spin routine moves 3 * Nci * n_alpha elements per iteration with the
  DGEMM algorithm (gather of the N-1 intermediate plus a get+put accumulate)
  versus Nci * n_alpha * (n - n_alpha) with the MOC algorithm's collective
  gathers, which is what makes the paper's "communication cost reduced by
  about a factor of 25" claim reproducible,
* the MOC same-spin routine charges the *replicated* double-excitation-list
  regeneration identically on every rank - the Amdahl term that makes its
  Fig. 4 curve flat.

Symmetry blocking reduces both vector sizes (factor ~|G|) and the dense
block dimensions (the (pq) x (rs) integral blocks shrink by ~|G| per side),
which is how a 62%-of-peak sustained rate emerges rather than an
unconditional-peak fantasy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import comb

import numpy as np

from ..core.strings import count_strings_by_irrep
from ..molecule.symmetry import PointGroup
from ..obs.accounting import account_trace_result
from ..x1.ddi import DynamicLoadBalancer, block_ranges
from ..x1.engine import DROPPED, Engine, SymmetricHeap
from ..x1.machine import X1Config
from .taskpool import Task, build_task_pool, publish_pool_metrics

__all__ = ["FCISpaceSpec", "TraceResult", "TraceFCI", "homonuclear_diatomic_irreps", "atom_irreps"]


def homonuclear_diatomic_irreps(n_orbitals: int, seed: int = 0) -> np.ndarray:
    """Synthetic but realistic D2h orbital-irrep assignment for X2 molecules.

    A correlation-consistent basis on a homonuclear diatomic yields roughly
    equal sigma_g/sigma_u stacks, pi_u/pi_g pairs split over (B2u, B3u) /
    (B2g, B3g), and small delta contributions in (B1g, Au).  Proportions
    below follow cc-pVTZ-like shell composition; the CI-space *sizes* they
    generate match the paper's quoted dimensions to within a few percent,
    which is what the cost model needs.
    """
    # D2h irrep ids: 0 Ag, 1 B1g, 2 B2g, 3 B3g, 4 Au, 5 B1u, 6 B2u, 7 B3u
    weights = np.array([0.22, 0.045, 0.10, 0.10, 0.045, 0.22, 0.135, 0.135])
    counts = np.floor(weights * n_orbitals).astype(int)
    while counts.sum() < n_orbitals:
        counts[int(np.argmax(weights * n_orbitals - counts))] += 1
    rng = np.random.default_rng(seed)
    irreps = np.repeat(np.arange(8), counts)
    rng.shuffle(irreps)
    return irreps


def atom_irreps(n_orbitals: int, seed: int = 0) -> np.ndarray:
    """Synthetic D2h orbital irreps for an atom (s+p+d+f shells).

    Gerade irreps dominate (s and d shells); ungerade ones hold the p and f
    stacks.
    """
    weights = np.array([0.28, 0.07, 0.07, 0.07, 0.06, 0.15, 0.15, 0.15])
    counts = np.floor(weights * n_orbitals).astype(int)
    while counts.sum() < n_orbitals:
        counts[int(np.argmax(weights * n_orbitals - counts))] += 1
    rng = np.random.default_rng(seed)
    irreps = np.repeat(np.arange(8), counts)
    rng.shuffle(irreps)
    return irreps


@dataclass
class FCISpaceSpec:
    """Combinatorial description of a (possibly huge) FCI space."""

    n_orbitals: int
    n_alpha: int
    n_beta: int
    point_group: str = "C1"
    orbital_irreps: np.ndarray | None = None
    target_irrep: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        self.group = PointGroup.get(self.point_group)
        if self.orbital_irreps is None:
            self.orbital_irreps = np.zeros(self.n_orbitals, dtype=np.int64)
        self.orbital_irreps = np.asarray(self.orbital_irreps, dtype=np.int64)
        if self.orbital_irreps.size != self.n_orbitals:
            raise ValueError("need one irrep per orbital")
        pt = self.group.product_table()
        self.product_table = pt
        G = self.group.n_irreps
        self.na_by_irrep = np.array(
            [
                int(c)
                for c in count_strings_by_irrep(
                    self.n_orbitals, self.n_alpha, self.orbital_irreps, pt, G
                )
            ],
            dtype=float,
        )
        self.nb_by_irrep = np.array(
            [
                int(c)
                for c in count_strings_by_irrep(
                    self.n_orbitals, self.n_beta, self.orbital_irreps, pt, G
                )
            ],
            dtype=float,
        )
        if self.n_beta >= 2:
            self.nk_b_by_irrep = np.array(
                [
                    int(c)
                    for c in count_strings_by_irrep(
                        self.n_orbitals, self.n_beta - 2, self.orbital_irreps, pt, G
                    )
                ],
                dtype=float,
            )
        else:
            self.nk_b_by_irrep = np.zeros(G)
        if self.n_alpha >= 2:
            self.nk_a_by_irrep = np.array(
                [
                    int(c)
                    for c in count_strings_by_irrep(
                        self.n_orbitals, self.n_alpha - 2, self.orbital_irreps, pt, G
                    )
                ],
                dtype=float,
            )
        else:
            self.nk_a_by_irrep = np.zeros(G)
        # orbital-pair counts per irrep
        self.pair_by_irrep = np.zeros(G)
        for q in range(self.n_orbitals):
            for s in range(q):
                r = pt[self.orbital_irreps[q], self.orbital_irreps[s]]
                self.pair_by_irrep[r] += 1
        self.orbpair_by_irrep = np.zeros(G)  # ordered (p, q) pairs incl p == q
        for p in range(self.n_orbitals):
            for q in range(self.n_orbitals):
                r = pt[self.orbital_irreps[p], self.orbital_irreps[q]]
                self.orbpair_by_irrep[r] += 1

    # -- dimensions ----------------------------------------------------------
    @property
    def n_alpha_strings(self) -> float:
        return float(comb(self.n_orbitals, self.n_alpha))

    @property
    def n_beta_strings(self) -> float:
        return float(comb(self.n_orbitals, self.n_beta))

    def ci_dimension(self) -> float:
        """Symmetry-blocked determinant count of the target irrep."""
        pt = self.product_table
        G = self.group.n_irreps
        total = 0.0
        for ra in range(G):
            rb = int(pt[ra, self.target_irrep])
            total += self.na_by_irrep[ra] * self.nb_by_irrep[rb]
        return total

    def beta_len_for_alpha_irrep(self, ra: int) -> float:
        rb = int(self.product_table[ra, self.target_irrep])
        return self.nb_by_irrep[rb]

    def describe(self) -> str:
        return (
            f"{self.name or 'FCI'}({self.n_alpha + self.n_beta},{self.n_orbitals}) "
            f"{self.group.name}/{self.group.irrep_names[self.target_irrep]}: "
            f"{self.ci_dimension():,.0f} determinants"
        )


@dataclass
class TraceResult:
    """One simulated sigma-build (+ update step) at paper scale."""

    spec_name: str
    n_msps: int
    algorithm: str
    elapsed: float
    phase_seconds: dict[str, float]
    phase_gflops_per_msp: dict[str, float]
    load_imbalance: float
    comm_bytes: float
    total_flops: float
    io_seconds: float

    @property
    def sustained_gflops_per_msp(self) -> float:
        return self.total_flops / self.elapsed / self.n_msps / 1e9 if self.elapsed else 0.0

    @property
    def aggregate_tflops(self) -> float:
        return self.total_flops / self.elapsed / 1e12 if self.elapsed else 0.0


class TraceFCI:
    """Cost-model execution of one FCI iteration on the simulated X1."""

    def __init__(
        self,
        spec: FCISpaceSpec,
        config: X1Config,
        *,
        algorithm: str = "dgemm",
        n_fine_per_proc: int = 16,
        n_large_per_proc: int = 3,
        n_small_per_proc: int = 4,
        mixed_flop_factor: float = 1.1,
        samespin_flop_factor: float = 1.15,
        io_bytes_per_iteration: float | None = None,
        units_per_pool: int | None = None,
        telemetry=None,
        tracer=None,
        faults=None,
    ):
        if algorithm not in ("dgemm", "moc"):
            raise ValueError("algorithm must be 'dgemm' or 'moc'")
        self.spec = spec
        self.config = config
        self.algorithm = algorithm
        self.telemetry = telemetry
        self.faults = faults
        self.tracer = tracer if tracer is not None else (telemetry.tracer if telemetry else None)
        self.mixed_flop_factor = mixed_flop_factor
        self.samespin_flop_factor = samespin_flop_factor
        # restart/checkpoint traffic per iteration: calibrated against the
        # paper's Table 3 disk-I/O entry (11 s at 246 MB/s for the 64.9e9-
        # determinant C2 run -> ~0.042 bytes per determinant per iteration)
        if io_bytes_per_iteration is None:
            io_bytes_per_iteration = 0.042 * spec.ci_dimension()
        self.io_bytes = io_bytes_per_iteration
        P = config.n_msps
        G = spec.group.n_irreps

        # --- per-rank row census: each irrep block distributed separately ---
        self.rows_per_rank = [
            {
                ra: _share(spec.na_by_irrep[ra], P, r)
                for ra in range(G)
                if spec.na_by_irrep[ra] > 0
            }
            for r in range(P)
        ]
        self.local_elements = [
            sum(cnt * spec.beta_len_for_alpha_irrep(ra) for ra, cnt in rows.items())
            for rows in self.rows_per_rank
        ]
        self.ci_dim = spec.ci_dimension()

        # --- mixed-spin task pool over "alpha occupation set" units ---
        # one unit = a bundle of alpha rows of one irrep; unit cost = its
        # sigma elements.  Units per irrep proportional to block size.
        n_units = units_per_pool or max(P * n_fine_per_proc * 2, 64)
        unit_irreps = []
        unit_costs = []
        for ra in range(G):
            na_r = spec.na_by_irrep[ra]
            if na_r <= 0:
                continue
            share = max(int(round(n_units * na_r / spec.n_alpha_strings)), 1)
            rows_each = na_r / share
            blen = spec.beta_len_for_alpha_irrep(ra)
            for _ in range(share):
                unit_irreps.append(ra)
                unit_costs.append(rows_each * max(blen, 1.0))
        self.unit_irreps = np.array(unit_irreps)
        self.unit_rows = np.array(
            [
                spec.na_by_irrep[ra] / max(1, (self.unit_irreps == ra).sum())
                for ra in self.unit_irreps
            ]
        )
        self.tasks: list[Task] = build_task_pool(
            np.asarray(unit_costs),
            P,
            n_fine_per_proc=n_fine_per_proc,
            n_large_per_proc=n_large_per_proc,
            n_small_per_proc=n_small_per_proc,
        )
        self._unit_costs = np.asarray(unit_costs)
        if self.telemetry:
            publish_pool_metrics(self.telemetry.registry, self.tasks, "taskpool.mixed")

    # -- cost helpers --------------------------------------------------------
    def _bb_cost(self, elements: float, spin: str = "b") -> tuple[float, float]:
        """(seconds, flops) of the same-spin DGEMM routine over `elements`
        local sigma elements (sum over rows of their beta-block lengths)."""
        spec, cfg = self.spec, self.config
        G = spec.group.n_irreps
        nk = spec.nk_b_by_irrep if spin == "b" else spec.nk_a_by_irrep
        if nk.sum() <= 0:
            return 0.0, 0.0
        pt = spec.product_table
        # per sigma element: sum_rk NK[rk] * npair_irr[rk x rb]^2 * 2 / Nb[rb]
        # averaged over the target blocks; we fold it into an effective
        # flops-per-element rate computed exactly from the irrep census.
        flops_per_elem = 0.0
        weight = 0.0
        for ra in range(G):
            na_r = spec.na_by_irrep[ra]
            if na_r <= 0:
                continue
            rb = int(pt[ra, spec.target_irrep])
            nb_r = spec.nb_by_irrep[rb]
            if nb_r <= 0:
                continue
            per_row = 2.0 * sum(
                nk[rk] * spec.pair_by_irrep[int(pt[rk, rb])] ** 2
                for rk in range(G)
            )
            flops_per_elem += na_r * per_row  # per row; convert below
            weight += na_r * nb_r
        if weight <= 0:
            return 0.0, 0.0
        flops_per_elem /= weight
        flops = self.samespin_flop_factor * flops_per_elem * elements
        avg_pair_block = float(np.mean(spec.pair_by_irrep[spec.pair_by_irrep > 0]))
        rate = cfg.dgemm_rate(
            int(avg_pair_block), int(max(elements / max(avg_pair_block, 1), 1)), int(avg_pair_block)
        )
        k2 = spec.n_beta if spin == "b" else spec.n_alpha
        kk2 = k2 * (k2 - 1) / 2
        gather = 2.0 * elements * kk2  # D build + sigma scatter
        seconds = flops / rate + cfg.gather_time(gather)
        return seconds, flops

    def _bb_cost_moc(self, elements: float, spin: str = "b") -> tuple[float, float]:
        """MOC same-spin: replicated element generation + indexed updates."""
        spec, cfg = self.spec, self.config
        k = spec.n_beta if spin == "b" else spec.n_alpha
        if k < 2:
            return 0.0, 0.0
        n = spec.n_orbitals
        nstr = spec.n_beta_strings if spin == "b" else spec.n_alpha_strings
        kk2 = k * (k - 1) / 2
        vv2 = (n - k + 2) * (n - k + 1) / 2
        # regenerating the entire double-excitation list: *scalar* code,
        # replicated on every rank (the Amdahl bottleneck the paper Fig. 4
        # exposes) - this term does NOT shrink with P
        n_elements_list = nstr * kk2 * vv2
        t_replicated = n_elements_list / cfg.scalar_element_rate
        # indexed multiply-add updates over local sigma elements
        connected = kk2 * vv2 / spec.group.n_irreps
        updates = elements * connected
        flops = 2.0 * updates
        t_updates = cfg.indexed_update_time(updates)
        return t_replicated + t_updates, flops

    def _mixed_task_cost(self, task: Task) -> tuple[float, float, float, float]:
        """(compute_s, flops, gather_bytes, acc_bytes) for one task."""
        spec, cfg = self.spec, self.config
        G = spec.group.n_irreps
        n = spec.n_orbitals
        elements = float(self._unit_costs[task.start : task.stop].sum())
        if self.algorithm == "dgemm":
            # paper Table 1: operation count ~ Nci n^2 na nb, further reduced
            # by the integral-block symmetry factor 1/G
            flops = (
                self.mixed_flop_factor
                * elements
                * n
                * n
                * spec.n_alpha
                * spec.n_beta
                / G
            )
            blk = n * n / G
            rate = cfg.dgemm_rate(int(blk), int(max(elements * spec.n_alpha / blk, 1)), int(blk))
            seconds = flops / rate
            seconds += cfg.gather_time(2.0 * elements * spec.n_alpha)
            gather_bytes = 8.0 * elements * spec.n_alpha  # paper Table 1: Nci*Na
            acc_bytes = 2.0 * 8.0 * elements * spec.n_alpha  # DDI_ACC get+put
        else:
            na, nb = spec.n_alpha, spec.n_beta
            ops = elements * na * (n - na) * nb * (n - nb) / G
            flops = 2.0 * ops
            seconds = cfg.indexed_update_time(ops)
            gather_bytes = 8.0 * elements * na * (n - na)  # no N-1 reuse
            acc_bytes = 2.0 * 8.0 * elements * spec.n_alpha
        return seconds, flops, gather_bytes, acc_bytes

    # -- one simulated iteration ----------------------------------------------
    def run_iteration(self, davidson_vector_ops: int = 6) -> TraceResult:
        spec, cfg = self.spec, self.config
        P = cfg.n_msps
        heap = SymmetricHeap(P)
        dlb = DynamicLoadBalancer(heap)
        n_tasks = len(self.tasks)
        tasks = self.tasks
        rng = np.random.default_rng(1234)
        gather_targets = rng.integers(0, P, size=n_tasks)
        acc_targets = rng.integers(0, P, size=n_tasks)
        same_spin_both = spec.n_alpha != spec.n_beta
        algo = self.algorithm
        kern = "DGEMM" if algo == "dgemm" else "MOC"

        def program(proc, _heap):
            r = proc.rank
            local_elems = self.local_elements[r]

            # ---- same-spin phase (static, local) ----
            if algo == "dgemm":
                t, fl = self._bb_cost(local_elems, "b")
            else:
                t, fl = self._bb_cost_moc(local_elems, "b")
            if t > 0:
                yield proc.compute(t, flops=fl, label="beta-beta", name=f"{kern} beta-beta")
            if same_spin_both:
                if algo == "dgemm":
                    t, fl = self._bb_cost(local_elems, "a")
                    # transposed access: gather a column block (distributed
                    # transpose), accumulate back
                    nbytes = 8.0 * local_elems
                    yield proc.get(int((r + 1) % P), "", n_bytes=nbytes, label="alpha-alpha")
                else:
                    t, fl = self._bb_cost_moc(local_elems, "a")
                if t > 0:
                    yield proc.compute(t, flops=fl, label="alpha-alpha", name=f"{kern} alpha-alpha")
                if algo == "dgemm":
                    yield proc.get(int((r + 2) % P), "", n_bytes=local_elems * 8.0, label="alpha-alpha")
                    yield proc.put(int((r + 2) % P), "", n_bytes=local_elems * 8.0, label="alpha-alpha")
            yield proc.barrier()

            # ---- mixed-spin phase (dynamic task pool) ----
            while True:
                tid = yield from dlb.inext(proc, label="alpha-beta")
                if tid >= n_tasks:
                    break
                task = tasks[tid]
                seconds, flops, gbytes, abytes = self._mixed_task_cost(task)
                yield proc.span_begin("DDI_GET", label="alpha-beta")
                yield proc.get(
                    int(gather_targets[tid]), "", n_bytes=gbytes, label="alpha-beta"
                )
                yield proc.span_end()
                yield proc.compute(seconds, flops=flops, label="alpha-beta", name=f"{kern} alpha-beta")
                owner = int(acc_targets[tid])
                mutex = 777000 + owner // cfg.msps_per_node
                yield proc.span_begin("DDI_ACC", label="alpha-beta")
                yield proc.lock(mutex, label="alpha-beta")
                yield proc.get(owner, "", n_bytes=abytes / 2, label="alpha-beta")
                yield proc.put(owner, "", n_bytes=abytes / 2, label="alpha-beta")
                yield proc.quiet(label="alpha-beta")
                yield proc.unlock(mutex, label="alpha-beta")
                yield proc.span_end()
            yield proc.barrier()

            # ---- vector symmetrization ----
            if not same_spin_both and algo == "dgemm":
                # spin-symmetry completion sigma += eps * sigma_bb^T: a
                # distributed transpose of the local block plus stream passes
                yield proc.get(int((r + 3) % P), "", n_bytes=8.0 * local_elems, label="vector-symm")
                yield proc.compute(
                    cfg.stream_time(local_elems, 3.0), label="vector-symm"
                )
            else:
                yield proc.compute(
                    cfg.stream_time(local_elems, 2.0), label="vector-symm"
                )
            yield proc.barrier()

            # ---- eigensolver vector operations (axpy/dot/normalize) ----
            yield proc.compute(
                cfg.stream_time(local_elems, float(davidson_vector_ops)),
                label="vector-ops",
            )
            yield proc.barrier()

            # ---- restart I/O (shared filesystem, serialized) ----
            fi = self.faults
            retries = fi.max_retries if fi is not None else 1
            for attempt in range(retries):
                res = yield proc.io(self.io_bytes / P, write=True, label="disk-io")
                if res is not DROPPED:
                    if fi is not None and attempt:
                        fi.note_recovered("retried_io", attempt)
                    break
            else:
                raise RuntimeError(
                    f"rank {r}: restart write failed after {retries} attempts"
                )

        engine = Engine(cfg, heap, tracer=self.tracer, faults=self.faults)
        stats = engine.run([program] * P)
        phase: dict[str, float] = {}
        for s in stats:
            for k, v in s.phase_times.items():
                phase[k] = max(phase.get(k, 0.0), v)
        # per-phase sustained rate: aggregate flops of the phase / (P * t_max)
        flops_by_phase: dict[str, float] = {}
        for s in stats:
            for k, v in s.phase_flops.items():
                flops_by_phase[k] = flops_by_phase.get(k, 0.0) + v
        phase_rates = {
            k: flops_by_phase.get(k, 0.0) / (P * phase[k]) / 1e9 if phase[k] else 0.0
            for k in phase
        }
        total_flops = sum(s.flops for s in stats)
        comm_bytes = sum(s.bytes_received + s.bytes_sent for s in stats)
        io_seconds = max(s.io for s in stats)
        result = TraceResult(
            spec_name=spec.name or spec.describe(),
            n_msps=P,
            algorithm=self.algorithm,
            elapsed=engine.elapsed(),
            phase_seconds=phase,
            phase_gflops_per_msp=phase_rates,
            load_imbalance=engine.load_imbalance(),
            comm_bytes=comm_bytes,
            total_flops=total_flops,
            io_seconds=io_seconds,
        )
        if self.telemetry:
            account_trace_result(self.telemetry.registry, result)
        return result


    def run_calculation(self, n_iterations: int = 25) -> dict:
        """Simulate a full tightly-converged calculation.

        The paper's C2 run needed 25 iterations of the automatically
        adjusted single-vector method to reach a 1e-5 residual norm;
        returns aggregate wall-clock, flops and traffic for ``n_iterations``
        identical sigma-build/update cycles (the per-iteration schedule is
        stationary for a single-vector method).
        """
        if n_iterations < 1:
            raise ValueError("need at least one iteration")
        one = self.run_iteration()
        return {
            "iterations": n_iterations,
            "seconds_per_iteration": one.elapsed,
            "total_seconds": one.elapsed * n_iterations,
            "total_hours": one.elapsed * n_iterations / 3600.0,
            "total_comm_bytes": one.comm_bytes * n_iterations,
            "aggregate_tflops": one.aggregate_tflops,
            "iteration": one,
        }


def _share(total: float, n_parts: int, part: int) -> float:
    base = total / n_parts
    return base
