"""Parallel FCI on the simulated Cray-X1: numeric and trace drivers."""

from .taskpool import Task, build_task_pool, pool_statistics
from .pfci import ParallelReport, ParallelSigma
from .trace import (
    FCISpaceSpec,
    TraceFCI,
    TraceResult,
    atom_irreps,
    homonuclear_diatomic_irreps,
)
from .perfmodel import PerfModelRow, alpha_beta_model, measured_counts

__all__ = [
    "Task",
    "build_task_pool",
    "pool_statistics",
    "ParallelReport",
    "ParallelSigma",
    "FCISpaceSpec",
    "TraceFCI",
    "TraceResult",
    "atom_irreps",
    "homonuclear_diatomic_irreps",
    "PerfModelRow",
    "alpha_beta_model",
    "measured_counts",
]
