"""Parallel FCI: numeric and trace drivers on pluggable execution backends.

The numeric driver (:class:`ParallelSigma`) runs the paper's rank
decomposition on the simulated Cray-X1 (virtual time), on real OS
processes over shared memory (:mod:`repro.parallel.shm`), or on real OS
processes behind a TCP coordinator (:mod:`repro.parallel.sockets`); the
:class:`~repro.parallel.backend.Backend` protocol is the seam, and
:mod:`repro.parallel.rankwork` is the one decomposition + per-rank
program every real-process substrate executes.
"""

from .backend import Backend, SigmaRun, backend_names, make_backend
from .rankwork import SigmaDecomposition, build_sigma_decomposition, run_rank_sigma
from .taskpool import Task, build_task_pool, pool_statistics
from .pfci import ParallelReport, ParallelSigma
from .trace import (
    FCISpaceSpec,
    TraceFCI,
    TraceResult,
    atom_irreps,
    homonuclear_diatomic_irreps,
)
from .perfmodel import PerfModelRow, alpha_beta_model, measured_counts

__all__ = [
    "Backend",
    "SigmaRun",
    "backend_names",
    "make_backend",
    "SigmaDecomposition",
    "build_sigma_decomposition",
    "run_rank_sigma",
    "Task",
    "build_task_pool",
    "pool_statistics",
    "ParallelReport",
    "ParallelSigma",
    "FCISpaceSpec",
    "TraceFCI",
    "TraceResult",
    "atom_irreps",
    "homonuclear_diatomic_irreps",
    "PerfModelRow",
    "alpha_beta_model",
    "measured_counts",
]
