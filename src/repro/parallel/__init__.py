"""Parallel FCI: numeric and trace drivers on pluggable execution backends.

The numeric driver (:class:`ParallelSigma`) runs the paper's rank
decomposition either on the simulated Cray-X1 (virtual time) or on real
OS processes over shared memory (:mod:`repro.parallel.shm`); the
:class:`~repro.parallel.backend.Backend` protocol is the seam.
"""

from .backend import Backend, SigmaRun, backend_names, make_backend
from .taskpool import Task, build_task_pool, pool_statistics
from .pfci import ParallelReport, ParallelSigma
from .trace import (
    FCISpaceSpec,
    TraceFCI,
    TraceResult,
    atom_irreps,
    homonuclear_diatomic_irreps,
)
from .perfmodel import PerfModelRow, alpha_beta_model, measured_counts

__all__ = [
    "Backend",
    "SigmaRun",
    "backend_names",
    "make_backend",
    "Task",
    "build_task_pool",
    "pool_statistics",
    "ParallelReport",
    "ParallelSigma",
    "FCISpaceSpec",
    "TraceFCI",
    "TraceResult",
    "atom_irreps",
    "homonuclear_diatomic_irreps",
    "PerfModelRow",
    "alpha_beta_model",
    "measured_counts",
]
