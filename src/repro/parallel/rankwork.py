"""Rank-level sigma work shared by the real-process execution backends.

The ``shm`` and ``sockets`` backends distribute the *same* decomposition:
the serial kernel's canonical column blocks (:func:`repro.core.kernels
.column_blocks`) are the unit of distribution — same-spin terms
round-robin statically over them, the mixed-spin term runs a dynamically
load-balanced pool of column-block *spans* built by the same size-ordered
aggregation (:func:`repro.parallel.taskpool.build_task_pool`) the
simulated MSPs use.  Because every block is a *whole* canonical column
block, each DGEMM sees exactly the operands the serial kernel would give
it, and the parent's left-to-right reduction of the four owned outputs
(``one`` → ``aa`` → ``bb``:sup:`T` → ``mix``) reproduces the serial
accumulation order — which together make the result bitwise-identical to
``sigma_dgemm`` for any worker count.

This module is that shared decomposition and per-rank program in one
place, so a new substrate (sockets today, MPI tomorrow) cannot drift from
the bitwise contract by re-implementing it: the substrate only decides
*where* the output arrays live (shared-memory segments for ``shm``, local
buffers shipped over TCP for ``sockets``) and *how* tasks are claimed
(the backend's ``fetch_add`` verb).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.kernels import (
    SigmaCounters,
    _alpha_layout,
    _beta_layout,
    column_blocks,
    sigma_sweeps,
)
from ..core.plans import SigmaPlan
from .taskpool import build_task_pool

__all__ = ["SigmaDecomposition", "build_sigma_decomposition", "run_rank_sigma"]


@dataclass(frozen=True)
class SigmaDecomposition:
    """How one sigma evaluation is carved across worker ranks.

    ``aa_blocks``/``bb_blocks`` are the serial kernel's canonical column
    blocks over the beta/alpha axes (round-robined across ranks);
    ``tasks`` are (start, stop) spans of ``aa_blocks`` indices claimed
    dynamically through ``fetch_add`` for the mixed-spin term.
    """

    aa_blocks: list[tuple[int, int]]
    bb_blocks: list[tuple[int, int]]
    tasks: list[tuple[int, int]]

    def owned_aa_blocks(self, rank: int, n_workers: int) -> list[tuple[int, int]]:
        return self.aa_blocks[rank::n_workers]

    def owned_bb_blocks(self, rank: int, n_workers: int) -> list[tuple[int, int]]:
        return self.bb_blocks[rank::n_workers]

    def task_column_span(self, tid: int) -> tuple[int, int]:
        """The contiguous beta-column range task ``tid`` writes (its owned
        window of the ``mix`` output)."""
        blo, bhi = self.tasks[tid]
        return self.aa_blocks[blo][0], self.aa_blocks[bhi - 1][1]


def build_sigma_decomposition(
    plan: SigmaPlan, n_workers: int, block_columns: int
) -> SigmaDecomposition:
    """The one decomposition both real-process backends execute.

    Cost of a mixed-spin block ~ its GEMM work (width x alpha dimension);
    the pool parameters are fixed here so every backend aggregates the
    identical spans.
    """
    na, nb = plan.shape
    aa_blocks = column_blocks(nb, block_columns)
    bb_blocks = column_blocks(na, block_columns)
    block_costs = np.array([(hi - lo) * na for lo, hi in aa_blocks], float)
    tasks = build_task_pool(
        block_costs,
        n_workers,
        n_fine_per_proc=2,
        n_large_per_proc=1,
        n_small_per_proc=2,
    )
    return SigmaDecomposition(aa_blocks, bb_blocks, [(t.start, t.stop) for t in tasks])


def run_rank_sigma(
    rank: int,
    plan: SigmaPlan,
    C_stack: np.ndarray,
    outs: dict[str, np.ndarray],
    fetch_add,
    *,
    block_columns: int,
    n_workers: int,
    aa_blocks: list[tuple[int, int]],
    bb_blocks: list[tuple[int, int]],
    tasks: list[tuple[int, int]],
    counters: SigmaCounters,
    phase_times: dict[str, float],
    per_task_seconds: float = 0.0,
    kernel: str = "dgemm",
) -> tuple[int, list[int]]:
    """Execute one rank's share of a sigma evaluation, in place.

    ``outs`` maps ``one``/``aa``/``mix`` to (na, nb) arrays and ``bb`` to
    an (nb, na) array (beta-beta works on the transposed matrix); each
    phase writes only this rank's disjoint owned windows of them, so two
    ranks never touch the same element.  ``fetch_add`` is the backend's
    atomic task-claim verb.  ``per_task_seconds`` is a chaos/test hook: a
    sleep inside every claimed mixed-spin task that widens the span window
    so fault tests can reliably kill a worker *mid-span*.

    ``kernel`` selects the sigma sweep implementation (``"dgemm"`` or
    ``"compiled"``); both run operand-identical DGEMMs over the same
    blocks, so the bitwise contract holds for either choice.

    Returns ``(n_tasks_done, claimed_task_ids)``.
    """
    bc = block_columns
    na, nb = plan.shape
    same_spin_stack, mixed_spin_stack = sigma_sweeps(kernel)

    # one-electron alpha + beta: rank 0, exactly the serial prologue
    if rank == 0:
        t0 = time.perf_counter()
        one = np.asarray(plan.Ta @ _alpha_layout(C_stack))
        one = one.reshape(na, 1, nb).transpose(1, 0, 2)
        one = one + np.asarray(
            plan.Tb @ _beta_layout(C_stack)
        ).reshape(nb, 1, na).transpose(1, 2, 0)
        outs["one"][...] = one[0]
        phase_times["one-electron"] = time.perf_counter() - t0

    # alpha-alpha doubles: this rank's round-robin share of the beta-axis
    # column blocks, stored into disjoint owned windows of `aa`
    my_aa = aa_blocks[rank::n_workers]
    if plan.same_a is not None and my_aa:
        t0 = time.perf_counter()
        same_spin_stack(
            plan.same_a,
            plan.w_matrix,
            C_stack,
            bc,
            counters,
            col_blocks=my_aa,
            out=outs["aa"][None],
        )
        phase_times["alpha-alpha"] = time.perf_counter() - t0

    # beta-beta doubles on the transposed stack (paper Fig. 2a), blocks
    # over the alpha axis
    my_bb = bb_blocks[rank::n_workers]
    if plan.same_b is not None and my_bb:
        t0 = time.perf_counter()
        rows_stack = np.ascontiguousarray(C_stack.transpose(0, 2, 1))
        same_spin_stack(
            plan.same_b,
            plan.w_matrix,
            rows_stack,
            bc,
            counters,
            col_blocks=my_bb,
            out=outs["bb"][None],
        )
        phase_times["beta-beta"] = time.perf_counter() - t0

    # mixed-spin: dynamic task pool over column-block spans
    t0 = time.perf_counter()
    mix_out = outs["mix"][None]
    claimed: list[int] = []
    while True:
        tid = fetch_add()
        if tid >= len(tasks):
            break
        blo, bhi = tasks[tid]
        if per_task_seconds > 0.0:
            time.sleep(per_task_seconds)
        mixed_spin_stack(
            plan,
            C_stack,
            bc,
            counters,
            col_blocks=aa_blocks[blo:bhi],
            out=mix_out,
        )
        claimed.append(tid)
    phase_times["alpha-beta"] = time.perf_counter() - t0
    return len(claimed), claimed
