"""Discrete-event SPMD engine for the simulated Cray-X1.

Each MSP rank runs a Python generator ("rank program") that yields
:class:`Op` requests - compute for some virtual time, one-sided get/put,
atomic fetch-add, mutex lock/unlock, barrier, memory fence (quiet), or
shared-filesystem I/O.  The engine advances per-rank virtual clocks, resolves
contention (remote-memory port occupancy, mutex queues, the serialized
dynamic-load-balancing counter, shared I/O bandwidth) in virtual-time order,
and gathers per-rank statistics.

Numeric mode and trace mode share this engine: ops carry an optional real
payload (numpy arrays read from / written to the symmetric heap) so the very
same schedule either performs the real arithmetic (validated against the
serial kernels) or only advances clocks at paper scale.

Fault semantics (``faults`` - a :class:`repro.faults.FaultInjector`):

* **rank death** is fail-stop at op granularity: an op issued before the
  death time completes (its heap side effects were applied when it was
  issued), but the rank issues nothing after it.  Death releases the rank
  from barrier accounting and mutex wait queues; its heap segments stay
  readable (node memory outlives the processor).
* **mutex leases**: every grant is timestamped; when the owner dies, the
  engine schedules a revocation at ``max(death, grant + lease)`` and hands
  the lock to the next live waiter - a dead rank can never deadlock the
  machine.
* **dropped / delayed / corrupted transfers** apply to *remote* one-sided
  ops only; a dropped (or timed-out) op charges its timeout and resolves to
  the :data:`DROPPED` sentinel so the DDI layer can retry.  The atomic
  fetch-add (the DLB counter) is never dropped, matching SHMEM semantics.

With ``faults=None`` (the default) none of these paths exist: event order,
virtual times, and numeric results are bit-identical to the fault-free
engine.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

import numpy as np

from .machine import X1Config

__all__ = ["Op", "SymmetricHeap", "RankStats", "Engine", "Proc", "DROPPED"]

_DEFAULT_MUTEX_LEASE = 250e-6


class _Dropped:
    """Sentinel resolved from a one-sided op the network lost."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "DROPPED"

    def __bool__(self) -> bool:
        return False


DROPPED = _Dropped()


@dataclass
class Op:
    """One request yielded by a rank program."""

    kind: str
    target: int = -1
    name: str = ""
    key: Any = None
    value: Any = None
    n_bytes: float = 0.0
    seconds: float = 0.0
    mutex: int = -1
    write: bool = False
    label: str = ""


class SymmetricHeap:
    """Named per-rank arrays (SHMEM-style symmetric allocation).

    In numeric mode every rank's segment is a real numpy array; in trace mode
    segments tagged numeric=False exist only as shapes.  Small control
    arrays (locks, counters) are always real so synchronization semantics are
    exact in both modes.

    Mutex ids are allocated *per heap* (see :meth:`next_mutex_base`) so two
    independent simulations in one process can never collide on a lock.
    """

    def __init__(self, n_ranks: int):
        self.n_ranks = n_ranks
        self._arrays: dict[str, list[np.ndarray | None]] = {}
        self._shapes: dict[str, tuple[tuple[int, ...], Any]] = {}
        self._next_mutex = 1000
        self._next_name_id = 0

    def next_mutex_base(self) -> int:
        """A fresh, heap-unique base for a block of up to 10000 mutex ids."""
        base = self._next_mutex * 10000
        self._next_mutex += 1
        return base

    def unique_name(self, prefix: str) -> str:
        """A heap-unique segment name (for control arrays like DLB counters)."""
        name = f"{prefix}{self._next_name_id}"
        self._next_name_id += 1
        return name

    def alloc(self, name: str, shape, dtype=np.float64, numeric: bool = True) -> None:
        if name in self._arrays:
            raise KeyError(f"heap segment {name!r} already allocated")
        shape = tuple(int(s) for s in np.atleast_1d(shape))
        self._shapes[name] = (shape, dtype)
        if numeric:
            self._arrays[name] = [np.zeros(shape, dtype=dtype) for _ in range(self.n_ranks)]
        else:
            self._arrays[name] = [None] * self.n_ranks

    def alloc_per_rank(self, name: str, shapes: Iterable, dtype=np.float64, numeric: bool = True) -> None:
        """Allocate with a different shape on every rank (block-distributed)."""
        shapes = list(shapes)
        if len(shapes) != self.n_ranks:
            raise ValueError("need one shape per rank")
        if name in self._arrays:
            raise KeyError(f"heap segment {name!r} already allocated")
        self._shapes[name] = (tuple(shapes[0]) if shapes else (), dtype)
        if numeric:
            self._arrays[name] = [np.zeros(s, dtype=dtype) for s in shapes]
        else:
            self._arrays[name] = [None] * self.n_ranks

    def alloc_segments(self, name: str, segments: list[np.ndarray]) -> None:
        """Install externally-owned arrays as the per-rank segments.

        The storage-layer hook: a :class:`repro.x1.ddi.DDIArray` backed by a
        CI-vector store hands row-block views of the store's array here, so
        the simulated machine's "distributed memory" can live wherever the
        store puts it (RAM, or an mmapped file for out-of-core runs).  The
        caller keeps ownership; the heap never frees these."""
        if len(segments) != self.n_ranks:
            raise ValueError("need one segment per rank")
        if name in self._arrays:
            raise KeyError(f"heap segment {name!r} already allocated")
        self._shapes[name] = (
            tuple(segments[0].shape) if segments else (),
            segments[0].dtype if segments else np.float64,
        )
        self._arrays[name] = list(segments)

    def segment(self, name: str, rank: int) -> np.ndarray | None:
        return self._arrays[name][rank]

    def is_numeric(self, name: str) -> bool:
        return self._arrays[name][0] is not None

    def read(self, name: str, rank: int, key) -> np.ndarray | None:
        arr = self._arrays[name][rank]
        if arr is None:
            return None
        return np.array(arr[key] if key is not None else arr, copy=True)

    def write(self, name: str, rank: int, key, value) -> None:
        arr = self._arrays[name][rank]
        if arr is None:
            return
        if key is None:
            arr[...] = value
        else:
            arr[key] = value

    def add(self, name: str, rank: int, key, value) -> None:
        arr = self._arrays[name][rank]
        if arr is None:
            return
        if key is None:
            arr[...] += value
        else:
            arr[key] += value


@dataclass
class RankStats:
    """Per-rank virtual-time accounting."""

    compute: float = 0.0
    communication: float = 0.0
    wait: float = 0.0  # contention: lock queues, port busy, barrier skew
    io: float = 0.0
    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    flops: float = 0.0
    finish_time: float = 0.0
    last_heartbeat: float = 0.0  # virtual time of the rank's latest completed op
    phase_times: dict[str, float] = field(default_factory=dict)
    phase_flops: dict[str, float] = field(default_factory=dict)

    def charge_phase(self, label: str, dt: float, flops: float = 0.0) -> None:
        if label:
            self.phase_times[label] = self.phase_times.get(label, 0.0) + dt
            if flops:
                self.phase_flops[label] = self.phase_flops.get(label, 0.0) + flops


class Proc:
    """Op constructors bound to one rank (syntactic sugar for programs)."""

    def __init__(self, rank: int, n_ranks: int):
        self.rank = rank
        self.n_ranks = n_ranks

    @staticmethod
    def compute(seconds: float, flops: float = 0.0, label: str = "", name: str = "") -> Op:
        return Op(kind="compute", seconds=float(seconds), value=flops, label=label, name=name)

    @staticmethod
    def get(target: int, name: str, key=None, n_bytes: float = 0.0, label: str = "") -> Op:
        return Op(kind="get", target=target, name=name, key=key, n_bytes=n_bytes, label=label)

    @staticmethod
    def put(target: int, name: str, key=None, value=None, n_bytes: float = 0.0, label: str = "") -> Op:
        return Op(kind="put", target=target, name=name, key=key, value=value, n_bytes=n_bytes, label=label)

    @staticmethod
    def putm(target: int, writes, n_bytes: float = 0.0, label: str = "") -> Op:
        """Atomic multi-segment put: all of ``writes`` = [(name, key, value),
        ...] land together or (under injected faults) not at all - the unit
        of idempotent data+commit-flag publication."""
        return Op(kind="putm", target=target, value=list(writes), n_bytes=n_bytes, label=label)

    @staticmethod
    def fadd(target: int, name: str, key: int = 0, value: float = 1, label: str = "") -> Op:
        return Op(kind="fadd", target=target, name=name, key=key, value=value, label=label)

    @staticmethod
    def lock(mutex: int, label: str = "") -> Op:
        return Op(kind="lock", mutex=mutex, label=label)

    @staticmethod
    def unlock(mutex: int, label: str = "") -> Op:
        return Op(kind="unlock", mutex=mutex, label=label)

    @staticmethod
    def barrier(label: str = "") -> Op:
        return Op(kind="barrier", label=label)

    @staticmethod
    def quiet(label: str = "") -> Op:
        return Op(kind="quiet", label=label)

    @staticmethod
    def io(n_bytes: float, write: bool, label: str = "io") -> Op:
        return Op(kind="io", n_bytes=n_bytes, write=write, label=label)

    @staticmethod
    def failures(label: str = "heartbeat") -> Op:
        """Heartbeat probe: resolves to the frozenset of dead ranks."""
        return Op(kind="failures", label=label)

    @staticmethod
    def span_begin(name: str, label: str = "") -> Op:
        """Open a named tracer span (zero virtual time; no-op untraced)."""
        return Op(kind="span_begin", name=name, label=label)

    @staticmethod
    def span_end() -> Op:
        """Close the innermost tracer span (zero virtual time)."""
        return Op(kind="span_end")


Program = Callable[[Proc, SymmetricHeap], Generator[Op, Any, None]]


class Engine:
    """Runs P rank programs to completion in virtual time.

    ``tracer`` (any :class:`repro.obs.tracer.SpanTracer`) receives one span
    per op in virtual time - compute, SHMEM get/put/fadd, mutex waits,
    barrier skew, I/O - plus the DDI protocol spans opened with
    ``span_begin``/``span_end`` ops.  The default (None) emits nothing and
    costs a single identity check per op.

    ``faults`` (any :class:`repro.faults.FaultInjector`) perturbs the run
    with the injector's plan; None (the default) leaves the schedule and
    every numeric result bit-identical to the fault-free engine.
    """

    def __init__(self, config: X1Config, heap: SymmetricHeap, tracer=None, faults=None):
        if heap.n_ranks != config.n_msps:
            raise ValueError("heap rank count must match config.n_msps")
        self.config = config
        self.heap = heap
        self.tracer = tracer
        self.faults = faults
        # an injector whose plan injects nothing is bypassed entirely on the
        # per-op hot path - attached-but-idle hooks must cost one None check,
        # exactly like faults=None
        self._fi_active = (
            faults
            if faults is not None
            and (faults.plan.any_faults() or faults.plan.op_timeout is not None)
            else None
        )
        self.n_ranks = config.n_msps
        self.stats = [RankStats() for _ in range(self.n_ranks)]
        self._port_free = [0.0] * self.n_ranks  # remote-memory port occupancy
        self._io_free = 0.0  # shared filesystem
        self._mutex_owner: dict[int, int] = {}
        self._mutex_granted_at: dict[int, float] = {}
        self._mutex_queue: dict[int, list[tuple[float, int, str]]] = {}
        self._barrier_waiting: list[tuple[float, int]] = []
        self._done = [False] * self.n_ranks
        self._dead = [False] * self.n_ranks
        self._alive = self.n_ranks
        self._n_events = 0
        # fault events: (time, seq, kind, payload) with kind "death"/"revoke"
        self._fault_events: list[tuple[float, int, str, int]] = []
        self._fault_seq = 0

    @property
    def dead_ranks(self) -> frozenset[int]:
        return frozenset(r for r in range(self.n_ranks) if self._dead[r])

    def _push_fault_event(self, t: float, kind: str, payload: int) -> None:
        heapq.heappush(self._fault_events, (t, self._fault_seq, kind, payload))
        self._fault_seq += 1

    def run(self, programs: list[Program]) -> list[RankStats]:
        """Execute one program per rank; returns per-rank statistics."""
        if len(programs) != self.n_ranks:
            raise ValueError("need exactly one program per rank")
        gens = []
        for r, prog in enumerate(programs):
            gens.append(prog(Proc(r, self.n_ranks), self.heap))
        clocks = [0.0] * self.n_ranks
        results: list[Any] = [None] * self.n_ranks
        queue: list[tuple[float, int, int]] = []
        seq = 0
        for r in range(self.n_ranks):
            heapq.heappush(queue, (0.0, seq, r))
            seq += 1
        if self.faults is not None:
            for r in range(self.n_ranks):
                dt = self.faults.death_time(r)
                if dt is not None:
                    self._push_fault_event(float(dt), "death", r)

        while queue or self._fault_events:
            # injected events (deaths, lease revocations) fire in time order
            # before any program op at the same or a later virtual time;
            # without faults this loop never runs.
            while self._fault_events and (
                not queue or self._fault_events[0][0] <= queue[0][0]
            ):
                t, _, kind, payload = heapq.heappop(self._fault_events)
                if kind == "death":
                    self._kill_rank(payload, t, queue, clocks, results)
                else:
                    self._revoke_mutex(payload, t, queue, clocks, results)
            if not queue:
                continue
            clock, _, rank = heapq.heappop(queue)
            if self._dead[rank]:
                continue  # the rank died while this op was in flight
            clocks[rank] = clock
            try:
                op = gens[rank].send(results[rank])
            except StopIteration:
                self._done[rank] = True
                self.stats[rank].finish_time = clock
                self._alive -= 1
                if self._barrier_waiting and len(self._barrier_waiting) == self._alive:
                    self._release_barrier(queue, clocks, results)
                    seq += len(clocks)
                continue
            results[rank] = None
            self._n_events += 1
            requeue_at = self._handle(op, rank, clocks, results, queue)
            if requeue_at is not None:
                self.stats[rank].last_heartbeat = requeue_at
                heapq.heappush(queue, (requeue_at, seq, rank))
                seq += 1
        if self._alive > 0:
            raise RuntimeError(
                f"deadlock: {self._alive} ranks blocked (barrier/mutex mismatch)"
            )
        return self.stats

    # -- fault machinery ---------------------------------------------------
    def _kill_rank(self, rank: int, t: float, queue, clocks, results) -> None:
        """Fail-stop ``rank`` at virtual time ``t`` (no-op if it finished)."""
        if self._done[rank] or self._dead[rank]:
            return
        self._dead[rank] = True
        self._done[rank] = True
        self.stats[rank].finish_time = t
        self._alive -= 1
        if self.faults is not None:
            self.faults.note_injected("rank_death")
        if self.tracer is not None:
            self.tracer.instant(rank, "fault:rank_death", t)
        # the corpse neither waits on locks nor counts toward barriers
        for mid in list(self._mutex_queue):
            self._mutex_queue[mid] = [
                w for w in self._mutex_queue[mid] if w[1] != rank
            ]
        lease = (
            self.faults.mutex_lease
            if self.faults is not None and self.faults.mutex_lease is not None
            else _DEFAULT_MUTEX_LEASE
        )
        for mid, owner in list(self._mutex_owner.items()):
            if owner == rank:
                grant_t = self._mutex_granted_at.get(mid, t)
                self._push_fault_event(max(t, grant_t + lease), "revoke", mid)
        was_waiting = any(r == rank for _, r in self._barrier_waiting)
        if was_waiting:
            self._barrier_waiting = [
                (w, r) for w, r in self._barrier_waiting if r != rank
            ]
        if self._barrier_waiting and len(self._barrier_waiting) == self._alive:
            self._release_barrier(queue, clocks, results)

    def _revoke_mutex(self, mid: int, t: float, queue, clocks, results) -> None:
        """Expire the lease on a mutex held by a dead rank; grant the next
        live waiter so the machine keeps making progress."""
        owner = self._mutex_owner.get(mid)
        if owner is None or not self._dead[owner]:
            return  # released naturally (or re-granted) before lease expiry
        del self._mutex_owner[mid]
        self._mutex_granted_at.pop(mid, None)
        if self.faults is not None:
            self.faults.note_recovered("mutex_revoked")
        if self.tracer is not None:
            self.tracer.instant(owner, "fault:mutex_revoked", t, args={"mutex": mid})
        waiters = self._mutex_queue.get(mid)
        while waiters:
            wait_since, next_rank, wait_label = waiters.pop(0)
            if self._dead[next_rank]:
                continue
            grant = t + self.config.atomic_overhead
            self._mutex_owner[mid] = next_rank
            self._mutex_granted_at[mid] = grant
            self.stats[next_rank].wait += grant - wait_since
            clocks[next_rank] = grant
            results[next_rank] = None
            if self.tracer is not None:
                self.tracer.complete(
                    next_rank,
                    "mutex_wait",
                    wait_label or "mutex",
                    wait_since,
                    grant,
                    args={"mutex": mid, "held_by": owner, "revoked": True},
                )
            heapq.heappush(queue, (grant, self._n_events, next_rank))
            self._n_events += 1
            break

    # -- op handling -------------------------------------------------------
    def _handle(self, op: Op, rank: int, clocks, results, queue) -> float | None:
        cfg = self.config
        st = self.stats[rank]
        tr = self.tracer
        fi = self._fi_active
        now = clocks[rank]
        if op.kind == "compute":
            seconds = op.seconds
            stall = 0.0
            if fi is not None:
                stall = fi.op_delay(rank, "compute", seconds, now)
            st.compute += seconds
            st.wait += stall
            st.flops += float(op.value or 0.0)
            st.charge_phase(op.label, seconds + stall, float(op.value or 0.0))
            end = now + seconds + stall
            if tr is not None:
                tr.complete(
                    rank,
                    op.name or op.label or "compute",
                    op.label or "compute",
                    now,
                    end,
                    args={"flops": float(op.value)} if op.value else None,
                )
            return end

        if op.kind == "span_begin":
            if tr is not None:
                tr.begin(rank, op.name, now, op.label)
            return now

        if op.kind == "span_end":
            if tr is not None:
                tr.end(rank, now)
            return now

        if op.kind in ("get", "put", "putm"):
            nbytes = float(op.n_bytes)
            if not nbytes and op.name:
                probe = self.heap.segment(op.name, op.target)
                if probe is not None:
                    sub = probe[op.key] if op.key is not None else probe
                    nbytes = float(np.asarray(sub).nbytes)
            start = now + cfg.transfer_latency(rank, op.target)
            begin = start
            if op.target != rank:
                begin = max(start, self._port_free[op.target])
            dur = cfg.transfer_time(rank, op.target, nbytes)
            failed = False
            if fi is not None and op.target != rank:
                dur += fi.op_delay(rank, op.kind, dur, now)
                timeout = fi.op_timeout
                if fi.should_drop(rank, "get" if op.kind == "get" else "put"):
                    failed = True
                    if timeout is not None:
                        dur = min(dur, timeout)
                elif timeout is not None and dur > timeout:
                    failed = True
                    dur = timeout
                    fi.note_injected("op_timeout")
            end = begin + dur
            if op.target != rank:
                self._port_free[op.target] = end
            wait = begin - start
            st.wait += wait
            st.communication += end - now - wait
            st.charge_phase(op.label, end - now)
            if tr is not None:
                names = {"get": "SHMEM_GET", "put": "SHMEM_PUT", "putm": "SHMEM_PUTV"}
                args = {"target": op.target, "bytes": nbytes, "port_wait": wait}
                if failed:
                    args["dropped"] = True
                tr.complete(rank, names[op.kind], op.label or "shmem", now, end, args=args)
                if failed:
                    tr.instant(rank, f"fault:dropped_{op.kind}", end)
            if failed:
                results[rank] = DROPPED
                return end
            if op.kind == "get":
                st.bytes_received += nbytes
                if op.name:
                    data = self.heap.read(op.name, op.target, op.key)
                    if fi is not None and op.target != rank:
                        data = fi.maybe_corrupt(rank, data)
                    results[rank] = data
            elif op.kind == "put":
                st.bytes_sent += nbytes
                if op.name and op.value is not None:
                    self.heap.write(op.name, op.target, op.key, op.value)
            else:  # putm: all writes land atomically
                st.bytes_sent += nbytes
                for name, key, value in op.value:
                    if value is not None:
                        self.heap.write(name, op.target, key, value)
            return end

        if op.kind == "fadd":
            start = now + cfg.transfer_latency(rank, op.target)
            begin = max(start, self._port_free[op.target]) if op.target != rank else start
            end = begin + cfg.atomic_overhead
            if op.target != rank:
                self._port_free[op.target] = end
            st.wait += begin - start
            st.communication += end - now - (begin - start)
            st.charge_phase(op.label, end - now)
            if tr is not None:
                tr.complete(
                    rank,
                    "SHMEM_FADD",
                    op.label or "atomic",
                    now,
                    end,
                    args={"target": op.target, "port_wait": begin - start},
                )
            arr = self.heap.segment(op.name, op.target)
            if arr is None:
                raise RuntimeError("fadd requires a numeric heap segment")
            old = arr[op.key]
            arr[op.key] = old + op.value
            results[rank] = old
            return end

        if op.kind == "lock":
            mid = op.mutex
            if mid not in self._mutex_owner:
                self._mutex_owner[mid] = rank
                jitter = fi.mutex_delay(rank, now) if fi is not None else 0.0
                end = now + cfg.atomic_overhead + jitter
                self._mutex_granted_at[mid] = end
                st.communication += cfg.atomic_overhead
                st.wait += jitter
                st.charge_phase(op.label, cfg.atomic_overhead + jitter)
                if tr is not None:
                    tr.complete(rank, "mutex_lock", op.label or "mutex", now, end, args={"mutex": mid})
                return end
            self._mutex_queue.setdefault(mid, []).append((now, rank, op.label))
            return None  # parked until unlock

        if op.kind == "unlock":
            mid = op.mutex
            if self._mutex_owner.get(mid) != rank:
                raise RuntimeError(f"rank {rank} unlocking mutex {mid} it does not own")
            del self._mutex_owner[mid]
            self._mutex_granted_at.pop(mid, None)
            end = now + cfg.atomic_overhead
            st.communication += cfg.atomic_overhead
            if tr is not None:
                tr.complete(rank, "mutex_unlock", op.label or "mutex", now, end, args={"mutex": mid})
            waiters = self._mutex_queue.get(mid)
            if waiters:
                wait_since, next_rank, wait_label = waiters.pop(0)
                self._mutex_owner[mid] = next_rank
                jitter = fi.mutex_delay(next_rank, end) if fi is not None else 0.0
                grant = max(end, wait_since) + cfg.atomic_overhead + jitter
                self._mutex_granted_at[mid] = grant
                self.stats[next_rank].wait += grant - wait_since
                clocks[next_rank] = grant
                if tr is not None:
                    tr.complete(
                        next_rank,
                        "mutex_wait",
                        wait_label or "mutex",
                        wait_since,
                        grant,
                        args={"mutex": mid, "held_by": rank},
                    )
                heapq.heappush(queue, (grant, self._n_events, next_rank))
            return end

        if op.kind == "barrier":
            self._barrier_waiting.append((now, rank))
            n_done = sum(self._done)
            if len(self._barrier_waiting) == self.n_ranks - n_done:
                self._release_barrier(queue, clocks, results)
            return None

        if op.kind == "quiet":
            dt = self.config.latency_local
            st.communication += dt
            if tr is not None:
                tr.complete(rank, "SHMEM_QUIET", op.label or "shmem", now, now + dt)
            return now + dt

        if op.kind == "io":
            begin = max(now, self._io_free)
            end = begin + cfg.io_time(op.n_bytes, op.write)
            self._io_free = end
            st.wait += begin - now
            st.io += end - begin
            st.charge_phase(op.label, end - now)
            failed = fi is not None and fi.io_fails(rank)
            if tr is not None:
                args = {"bytes": float(op.n_bytes), "queue_wait": begin - now}
                if failed:
                    args["failed"] = True
                tr.complete(
                    rank,
                    "io_write" if op.write else "io_read",
                    op.label or "io",
                    now,
                    end,
                    args=args,
                )
                if failed:
                    tr.instant(rank, "fault:io_error", end)
            if failed:
                results[rank] = DROPPED
            return end

        if op.kind == "failures":
            dt = self.config.latency_local
            st.communication += dt
            dead = self.dead_ranks
            if tr is not None:
                tr.complete(
                    rank,
                    "heartbeat_check",
                    op.label or "heartbeat",
                    now,
                    now + dt,
                    args={"dead": sorted(dead)} if dead else None,
                )
            results[rank] = dead
            return now + dt

        raise ValueError(f"unknown op kind {op.kind!r}")

    def _release_barrier(self, queue, clocks, results) -> None:
        if not self._barrier_waiting:
            return
        t = max(w for w, _ in self._barrier_waiting) + self.config.latency_remote
        tr = self.tracer
        for w, r in self._barrier_waiting:
            self.stats[r].wait += t - w
            clocks[r] = t
            results[r] = None
            if tr is not None:
                tr.complete(r, "barrier", "sync", w, t)
            heapq.heappush(queue, (t, self._n_events, r))
            self._n_events += 1
        self._barrier_waiting = []

    # -- reporting ---------------------------------------------------------
    @property
    def n_events(self) -> int:
        return self._n_events

    def elapsed(self) -> float:
        """Virtual wall-clock: the latest rank finish time."""
        return max(s.finish_time for s in self.stats)

    def aggregate_flops(self) -> float:
        return sum(s.flops for s in self.stats)

    def load_imbalance(self) -> float:
        """Max finish time minus mean finish time across ranks."""
        finishes = [s.finish_time for s in self.stats]
        return max(finishes) - sum(finishes) / len(finishes)
