"""DDI-style distributed arrays over the simulated SHMEM engine.

The Distributed Data Interface (paper ref. [17], a Global Arrays derivative)
provides one-sided access to block-distributed arrays.  On the Cray-X1 it
maps to SHMEM; the two operations the FCI code uses are

* DDI_GET - one-sided gather of remote rows,
* DDI_ACC - one-sided accumulate, implemented exactly as the paper
  describes: acquire the remote node's mutex, SHMEM_GET the patch, add
  locally, SHMEM_PUT it back, SHMEM_QUIET, release the mutex - which is why
  "the remote accumulation actually involves twice the amount of
  communication in remote get",

plus the dynamic-load-balancing counter served by SHMEM atomic fetch-add
(paper: SHMEM_SWAP).

All methods are generators intended for ``yield from`` inside rank programs.
"""

from __future__ import annotations

import itertools

import numpy as np

from .engine import Proc, SymmetricHeap

__all__ = ["DDIArray", "DynamicLoadBalancer", "block_ranges"]

_mutex_ids = itertools.count(1000)


def block_ranges(n_items: int, n_blocks: int) -> list[tuple[int, int]]:
    """Contiguous near-even split of range(n_items) into n_blocks pieces."""
    base, extra = divmod(n_items, n_blocks)
    out = []
    start = 0
    for b in range(n_blocks):
        size = base + (1 if b < extra else 0)
        out.append((start, start + size))
        start += size
    return out


class DDIArray:
    """A 2-D array distributed over ranks by contiguous row blocks."""

    def __init__(
        self,
        heap: SymmetricHeap,
        name: str,
        n_rows: int,
        n_cols: int,
        *,
        numeric: bool = True,
        msps_per_node: int = 4,
    ):
        self.heap = heap
        self.name = name
        self.msps_per_node = max(1, int(msps_per_node))
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.numeric = numeric
        self.ranges = block_ranges(self.n_rows, heap.n_ranks)
        self._row_owner = np.empty(self.n_rows, dtype=np.int64)
        for r, (lo, hi) in enumerate(self.ranges):
            self._row_owner[lo:hi] = r
        heap.alloc_per_rank(
            name,
            [(hi - lo, self.n_cols) for lo, hi in self.ranges],
            numeric=numeric,
        )
        # one mutex per *node* (paper: DDI_ACC locks the remote node)
        self._mutex_base = next(_mutex_ids) * 10000

    # -- local access -------------------------------------------------------
    def local_block(self, rank: int) -> np.ndarray | None:
        return self.heap.segment(self.name, rank)

    def local_range(self, rank: int) -> tuple[int, int]:
        return self.ranges[rank]

    def owner_of(self, row: int) -> int:
        return int(self._row_owner[row])

    def set_local(self, rank: int, data: np.ndarray) -> None:
        blk = self.local_block(rank)
        if blk is not None:
            blk[...] = data

    def _group_by_owner(self, rows: np.ndarray):
        rows = np.asarray(rows, dtype=np.int64)
        owners = self._row_owner[rows]
        order = np.argsort(owners, kind="stable")
        rows_sorted = rows[order]
        owners_sorted = owners[order]
        bounds = np.searchsorted(owners_sorted, np.arange(self.heap.n_ranks + 1))
        groups = []
        for r in range(self.heap.n_ranks):
            lo, hi = bounds[r], bounds[r + 1]
            if hi > lo:
                groups.append((r, rows_sorted[lo:hi], order[lo:hi]))
        return groups

    # -- one-sided operations (generators; use with ``yield from``) ---------
    def iget_rows(self, proc: Proc, rows, label: str = "gather"):
        """DDI_GET of a row list; returns (len(rows), n_cols) in numeric mode."""
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty((rows.size, self.n_cols)) if self.numeric else None
        yield proc.span_begin("DDI_GET", label=label)
        for owner, grp_rows, positions in self._group_by_owner(rows):
            lo = self.ranges[owner][0]
            local = grp_rows - lo
            nbytes = local.size * self.n_cols * 8.0
            data = yield proc.get(
                owner,
                self.name,
                key=(local, slice(None)) if self.numeric else None,
                n_bytes=nbytes,
                label=label,
            )
            if out is not None:
                out[positions] = data
        yield proc.span_end()
        return out

    def iget_col_block(self, proc: Proc, col_lo: int, col_hi: int, label: str = "gather"):
        """DDI_GET of a full column block (all rows) - the distributed
        transpose building block; returns (n_rows, col_hi-col_lo) numeric."""
        width = col_hi - col_lo
        out = np.empty((self.n_rows, width)) if self.numeric else None
        yield proc.span_begin("DDI_GET", label=label)
        for owner, (lo, hi) in enumerate(self.ranges):
            if hi <= lo:
                continue
            nbytes = (hi - lo) * width * 8.0
            data = yield proc.get(
                owner,
                self.name,
                key=(slice(None), slice(col_lo, col_hi)) if self.numeric else None,
                n_bytes=nbytes,
                label=label,
            )
            if out is not None:
                out[lo:hi] = data
        yield proc.span_end()
        return out

    def iacc_col_block(self, proc: Proc, col_lo: int, col_hi: int, data, label: str = "accumulate"):
        """DDI_ACC of a full column block into every owner's local rows."""
        width = col_hi - col_lo
        yield proc.span_begin("DDI_ACC", label=label)
        for owner, (lo, hi) in enumerate(self.ranges):
            if hi <= lo:
                continue
            nbytes = (hi - lo) * width * 8.0
            mutex = self._mutex_base + owner // self.msps_per_node
            key = (slice(None), slice(col_lo, col_hi)) if self.numeric else None
            yield proc.lock(mutex, label=label)
            remote = yield proc.get(owner, self.name, key=key, n_bytes=nbytes, label=label)
            updated = remote + data[lo:hi] if self.numeric and data is not None else None
            yield proc.put(owner, self.name, key=key, value=updated, n_bytes=nbytes, label=label)
            yield proc.quiet(label=label)
            yield proc.unlock(mutex, label=label)
        yield proc.span_end()

    def iacc_rows(self, proc: Proc, rows, data, label: str = "accumulate"):
        """DDI_ACC: the paper's lock/get/add/put/quiet/unlock protocol."""
        rows = np.asarray(rows, dtype=np.int64)
        yield proc.span_begin("DDI_ACC", label=label)
        for owner, grp_rows, positions in self._group_by_owner(rows):
            lo = self.ranges[owner][0]
            local = grp_rows - lo
            nbytes = local.size * self.n_cols * 8.0
            mutex = self._mutex_base + owner // self.msps_per_node
            yield proc.lock(mutex, label=label)
            remote = yield proc.get(
                owner,
                self.name,
                key=(local, slice(None)) if self.numeric else None,
                n_bytes=nbytes,
                label=label,
            )
            if self.numeric and data is not None:
                updated = remote + data[positions]
            else:
                updated = None
            yield proc.put(
                owner,
                self.name,
                key=(local, slice(None)) if self.numeric else None,
                value=updated,
                n_bytes=nbytes,
                label=label,
            )
            yield proc.quiet(label=label)
            yield proc.unlock(mutex, label=label)
        yield proc.span_end()


class DynamicLoadBalancer:
    """Centralized task counter (manager/worker, paper section 3.3).

    The counter lives on rank 0 and is advanced with the engine's atomic
    fetch-add, which serializes competing requests at rank 0's memory port -
    reproducing the contention behaviour of the SHMEM_SWAP-based DDI
    implementation.
    """

    _ids = itertools.count()

    def __init__(self, heap: SymmetricHeap, name: str | None = None):
        self.name = name or f"_dlb_{next(self._ids)}"
        heap.alloc(self.name, (1,), dtype=np.int64, numeric=True)
        self.heap = heap

    def reset(self) -> None:
        for r in range(self.heap.n_ranks):
            seg = self.heap.segment(self.name, r)
            if seg is not None:
                seg[0] = 0

    def inext(self, proc: Proc, label: str = "dlb"):
        """Fetch the next global task number (generator)."""
        old = yield proc.fadd(0, self.name, key=0, value=1, label=label)
        return int(old)
