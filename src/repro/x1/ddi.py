"""DDI-style distributed arrays over the simulated SHMEM engine.

The Distributed Data Interface (paper ref. [17], a Global Arrays derivative)
provides one-sided access to block-distributed arrays.  On the Cray-X1 it
maps to SHMEM; the two operations the FCI code uses are

* DDI_GET - one-sided gather of remote rows,
* DDI_ACC - one-sided accumulate, implemented exactly as the paper
  describes: acquire the remote node's mutex, SHMEM_GET the patch, add
  locally, SHMEM_PUT it back, SHMEM_QUIET, release the mutex - which is why
  "the remote accumulation actually involves twice the amount of
  communication in remote get",

plus the dynamic-load-balancing counter served by SHMEM atomic fetch-add
(paper: SHMEM_SWAP).

All methods are generators intended for ``yield from`` inside rank programs.

Robustness: when a :class:`repro.faults.FaultInjector` is attached, the
engine may resolve a one-sided op to :data:`DROPPED`; every get/put here
then retries with exponential backoff (charged to the virtual clock as
``*:retry`` compute, counted under ``faults.recovered.retried_*``) up to the
plan's retry budget before raising :class:`DDICommError`.  Retries inside
the DDI_ACC protocol are safe because the node mutex is held throughout.
The ``*_once`` variants add a per-tag commit flag written *atomically* with
the data (one multi-segment put), making accumulation idempotent: a task
requeued after its owner died mid-protocol lands exactly once.
"""

from __future__ import annotations

import numpy as np

from .engine import DROPPED, Proc, SymmetricHeap

__all__ = ["DDIArray", "DynamicLoadBalancer", "DDICommError", "block_ranges"]


class DDICommError(RuntimeError):
    """A one-sided op kept failing after the full retry budget."""


def block_ranges(n_items: int, n_blocks: int) -> list[tuple[int, int]]:
    """Contiguous near-even split of range(n_items) into n_blocks pieces."""
    base, extra = divmod(n_items, n_blocks)
    out = []
    start = 0
    for b in range(n_blocks):
        size = base + (1 if b < extra else 0)
        out.append((start, start + size))
        start += size
    return out


class DDIArray:
    """A 2-D array distributed over ranks by contiguous row blocks."""

    def __init__(
        self,
        heap: SymmetricHeap,
        name: str,
        n_rows: int,
        n_cols: int,
        *,
        numeric: bool = True,
        msps_per_node: int = 4,
        faults=None,
        store=None,
    ):
        """``store`` (a dense-layout :class:`repro.core.vectors.CIVectorStore`
        of shape (n_rows, n_cols)) backs the distributed array: every rank's
        segment becomes a row-block *view* into the store's array, so an
        out-of-core ``MmapStore`` puts the whole distributed vector on disk
        while the one-sided verbs operate on it unchanged (an ``np.memmap``
        slice is an ndarray).  None keeps plain per-rank heap arrays."""
        self.heap = heap
        self.name = name
        self.msps_per_node = max(1, int(msps_per_node))
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.numeric = numeric
        self.faults = faults
        self.store = store
        self.ranges = block_ranges(self.n_rows, heap.n_ranks)
        self._row_owner = np.empty(self.n_rows, dtype=np.int64)
        for r, (lo, hi) in enumerate(self.ranges):
            self._row_owner[lo:hi] = r
        if store is not None:
            backing = store.as_ndarray().reshape(self.n_rows, self.n_cols)
            heap.alloc_segments(name, [backing[lo:hi] for lo, hi in self.ranges])
        else:
            heap.alloc_per_rank(
                name,
                [(hi - lo, self.n_cols) for lo, hi in self.ranges],
                numeric=numeric,
            )
        # one mutex per *node* (paper: DDI_ACC locks the remote node);
        # the id block is heap-unique so two simulations never collide.
        self._mutex_base = heap.next_mutex_base()
        self.tags_name: str | None = None
        self.n_tags = 0

    # -- local access -------------------------------------------------------
    def local_block(self, rank: int) -> np.ndarray | None:
        return self.heap.segment(self.name, rank)

    def local_range(self, rank: int) -> tuple[int, int]:
        return self.ranges[rank]

    def owner_of(self, row: int) -> int:
        return int(self._row_owner[row])

    def node_mutex(self, owner: int) -> int:
        return self._mutex_base + owner // self.msps_per_node

    def set_local(self, rank: int, data: np.ndarray) -> None:
        blk = self.local_block(rank)
        if blk is not None:
            blk[...] = data

    def _group_by_owner(self, rows: np.ndarray):
        rows = np.asarray(rows, dtype=np.int64)
        owners = self._row_owner[rows]
        order = np.argsort(owners, kind="stable")
        rows_sorted = rows[order]
        owners_sorted = owners[order]
        bounds = np.searchsorted(owners_sorted, np.arange(self.heap.n_ranks + 1))
        groups = []
        for r in range(self.heap.n_ranks):
            lo, hi = bounds[r], bounds[r + 1]
            if hi > lo:
                groups.append((r, rows_sorted[lo:hi], order[lo:hi]))
        return groups

    # -- retry machinery ----------------------------------------------------
    def _payload_bad(self, result, kind: str) -> bool:
        """NaN-poisoned get payloads are detectable corruption: refetch.

        Only consulted with an injector attached, so the fault-free path
        never pays the finiteness scan.  (Bit-flips that stay finite are
        invisible here by design - catching those is the solvers' watchdog's
        job, same as on real hardware.)
        """
        if kind != "get" or not isinstance(result, np.ndarray):
            return False
        if np.isfinite(result).all():
            return False
        self.faults.note_recovered("refetched_corrupt")
        return True

    def _reliable(self, proc: Proc, op_factory, kind: str, label: str):
        """Issue ``op_factory()`` until it succeeds (generator).

        With no injector attached a drop is impossible, so the fault-free
        path costs one identity check per op.  Each retry backs off
        exponentially in virtual time (visible in the trace as ``*:retry``
        compute) and is counted under ``faults.recovered.retried_<kind>``;
        NaN-corrupted get payloads are refetched on the same budget.
        """
        result = yield op_factory()
        fi = self.faults
        if result is not DROPPED and (fi is None or not self._payload_bad(result, kind)):
            return result
        attempts = 0
        while True:
            attempts += 1
            if fi is None or attempts > fi.max_retries:
                raise DDICommError(
                    f"{kind} on {self.name!r} still failing after {attempts - 1} retries"
                )
            backoff = fi.retry_backoff * (2.0 ** (attempts - 1))
            yield proc.compute(backoff, label=f"{label}:retry")
            result = yield op_factory()
            if result is DROPPED:
                continue
            if not self._payload_bad(result, kind):
                break
        fi.note_recovered(f"retried_{kind}", attempts)
        return result

    # -- one-sided operations (generators; use with ``yield from``) ---------
    def iget_rows(self, proc: Proc, rows, label: str = "gather"):
        """DDI_GET of a row list; returns (len(rows), n_cols) in numeric mode."""
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty((rows.size, self.n_cols)) if self.numeric else None
        yield proc.span_begin("DDI_GET", label=label)
        for owner, grp_rows, positions in self._group_by_owner(rows):
            lo = self.ranges[owner][0]
            local = grp_rows - lo
            nbytes = local.size * self.n_cols * 8.0
            key = (local, slice(None)) if self.numeric else None
            data = yield from self._reliable(
                proc,
                lambda: proc.get(owner, self.name, key=key, n_bytes=nbytes, label=label),
                "get",
                label,
            )
            if out is not None:
                out[positions] = data
        yield proc.span_end()
        return out

    def iget_col_block(self, proc: Proc, col_lo: int, col_hi: int, label: str = "gather"):
        """DDI_GET of a full column block (all rows) - the distributed
        transpose building block; returns (n_rows, col_hi-col_lo) numeric."""
        width = col_hi - col_lo
        out = np.empty((self.n_rows, width)) if self.numeric else None
        yield proc.span_begin("DDI_GET", label=label)
        for owner, (lo, hi) in enumerate(self.ranges):
            if hi <= lo:
                continue
            nbytes = (hi - lo) * width * 8.0
            key = (slice(None), slice(col_lo, col_hi)) if self.numeric else None
            data = yield from self._reliable(
                proc,
                lambda: proc.get(owner, self.name, key=key, n_bytes=nbytes, label=label),
                "get",
                label,
            )
            if out is not None:
                out[lo:hi] = data
        yield proc.span_end()
        return out

    def iacc_col_block(self, proc: Proc, col_lo: int, col_hi: int, data, label: str = "accumulate"):
        """DDI_ACC of a full column block into every owner's local rows."""
        width = col_hi - col_lo
        yield proc.span_begin("DDI_ACC", label=label)
        for owner, (lo, hi) in enumerate(self.ranges):
            if hi <= lo:
                continue
            nbytes = (hi - lo) * width * 8.0
            mutex = self.node_mutex(owner)
            key = (slice(None), slice(col_lo, col_hi)) if self.numeric else None
            yield proc.lock(mutex, label=label)
            remote = yield from self._reliable(
                proc,
                lambda: proc.get(owner, self.name, key=key, n_bytes=nbytes, label=label),
                "get",
                label,
            )
            updated = remote + data[lo:hi] if self.numeric and data is not None else None
            yield from self._reliable(
                proc,
                lambda: proc.put(owner, self.name, key=key, value=updated, n_bytes=nbytes, label=label),
                "put",
                label,
            )
            yield proc.quiet(label=label)
            yield proc.unlock(mutex, label=label)
        yield proc.span_end()

    def iacc_rows(self, proc: Proc, rows, data, label: str = "accumulate"):
        """DDI_ACC: the paper's lock/get/add/put/quiet/unlock protocol."""
        rows = np.asarray(rows, dtype=np.int64)
        yield proc.span_begin("DDI_ACC", label=label)
        for owner, grp_rows, positions in self._group_by_owner(rows):
            lo = self.ranges[owner][0]
            local = grp_rows - lo
            nbytes = local.size * self.n_cols * 8.0
            mutex = self.node_mutex(owner)
            key = (local, slice(None)) if self.numeric else None
            yield proc.lock(mutex, label=label)
            remote = yield from self._reliable(
                proc,
                lambda: proc.get(owner, self.name, key=key, n_bytes=nbytes, label=label),
                "get",
                label,
            )
            if self.numeric and data is not None:
                updated = remote + data[positions]
            else:
                updated = None
            yield from self._reliable(
                proc,
                lambda: proc.put(owner, self.name, key=key, value=updated, n_bytes=nbytes, label=label),
                "put",
                label,
            )
            yield proc.quiet(label=label)
            yield proc.unlock(mutex, label=label)
        yield proc.span_end()

    # -- idempotent (exactly-once) accumulation -----------------------------
    def alloc_commit_tags(self, n_tags: int) -> None:
        """Allocate per-(tag, owner) commit flags on every rank's heap.

        Tag ``t`` for owner ``o`` lives at ``o``'s segment index ``t``; it is
        written atomically *with* the accumulated data (one multi-segment
        put under the node mutex), so a commit either fully happened or not
        at all - the invariant behind exactly-once task requeue.
        """
        self.tags_name = f"{self.name}::tags"
        self.n_tags = int(n_tags)
        self.heap.alloc(self.tags_name, (max(1, self.n_tags),), dtype=np.float64)

    def _require_tags(self) -> str:
        if self.tags_name is None:
            raise RuntimeError("call alloc_commit_tags() before *_once operations")
        return self.tags_name

    def _reliable_tags(self, proc: Proc, op_factory, label: str):
        """Reliable get of commit flags, refetching implausible values.

        A stored flag is exactly 0.0 or 1.0; any other value (a bit-flipped
        read) must not drive a commit decision - acting on a corrupted flag
        read is how double accumulation sneaks in.
        """
        fi = self.faults
        attempts = 0
        while True:
            raw = yield from self._reliable(proc, op_factory, "get", label)
            if fi is None or np.isin(raw, (0.0, 1.0)).all():
                return raw
            fi.note_recovered("refetched_corrupt")
            attempts += 1
            if attempts > fi.max_retries:
                raise DDICommError(
                    f"commit tags of {self.name!r} unreadable after {attempts - 1} refetches"
                )
            yield proc.compute(fi.retry_backoff, label=f"{label}:retry")

    def iread_tag(self, proc: Proc, owner: int, tag: int, label: str = "commit-tag"):
        """Read one commit flag from ``owner`` (reliable; generator)."""
        tags = self._require_tags()
        raw = yield from self._reliable_tags(
            proc,
            lambda: proc.get(owner, tags, key=slice(tag, tag + 1), n_bytes=8.0, label=label),
            label,
        )
        return bool(raw[0] != 0.0)

    def iget_tags(self, proc: Proc, owners=None, label: str = "commit-tags"):
        """Gather all commit flags from ``owners`` (default: every rank).

        Returns an (n_owners, n_tags) boolean array in owner order.  Only
        meaningful in a write-quiescent window (between barriers) - callers
        use it to compute an identical uncommitted-work list on every rank.
        """
        tags = self._require_tags()
        owners = list(range(self.heap.n_ranks)) if owners is None else list(owners)
        out = np.zeros((len(owners), max(1, self.n_tags)), dtype=bool)
        yield proc.span_begin("DDI_GET", label=label)
        for i, owner in enumerate(owners):
            raw = yield from self._reliable_tags(
                proc,
                lambda: proc.get(owner, tags, key=slice(None), n_bytes=8.0 * max(1, self.n_tags), label=label),
                label,
            )
            out[i] = raw != 0.0
        yield proc.span_end()
        return out

    def iacc_rows_once(self, proc: Proc, rows, data, tag: int, label: str = "accumulate"):
        """Exactly-once DDI_ACC: skip owners whose commit flag for ``tag``
        is already set; otherwise add and publish data+flag atomically."""
        tags = self._require_tags()
        rows = np.asarray(rows, dtype=np.int64)
        yield proc.span_begin("DDI_ACC", label=label)
        for owner, grp_rows, positions in self._group_by_owner(rows):
            lo = self.ranges[owner][0]
            local = grp_rows - lo
            nbytes = local.size * self.n_cols * 8.0
            mutex = self.node_mutex(owner)
            key = (local, slice(None)) if self.numeric else None
            yield proc.lock(mutex, label=label)
            committed = yield from self.iread_tag(proc, owner, tag, label=label)
            if committed:
                if self.faults is not None:
                    self.faults.note_recovered("acc_dedup")
                yield proc.unlock(mutex, label=label)
                continue
            remote = yield from self._reliable(
                proc,
                lambda: proc.get(owner, self.name, key=key, n_bytes=nbytes, label=label),
                "get",
                label,
            )
            if self.numeric and data is not None:
                updated = remote + data[positions]
            else:
                updated = None
            writes = [(self.name, key, updated), (tags, slice(tag, tag + 1), 1.0)]
            yield from self._reliable(
                proc,
                lambda: proc.putm(owner, writes, n_bytes=nbytes + 8.0, label=label),
                "put",
                label,
            )
            yield proc.quiet(label=label)
            yield proc.unlock(mutex, label=label)
        yield proc.span_end()

    def iacc_col_block_once(
        self, proc: Proc, col_lo: int, col_hi: int, data, tag: int, label: str = "accumulate"
    ):
        """Exactly-once DDI_ACC of a full column block (tag per owner)."""
        tags = self._require_tags()
        width = col_hi - col_lo
        yield proc.span_begin("DDI_ACC", label=label)
        for owner, (lo, hi) in enumerate(self.ranges):
            if hi <= lo:
                continue
            nbytes = (hi - lo) * width * 8.0
            mutex = self.node_mutex(owner)
            key = (slice(None), slice(col_lo, col_hi)) if self.numeric else None
            yield proc.lock(mutex, label=label)
            committed = yield from self.iread_tag(proc, owner, tag, label=label)
            if committed:
                if self.faults is not None:
                    self.faults.note_recovered("acc_dedup")
                yield proc.unlock(mutex, label=label)
                continue
            remote = yield from self._reliable(
                proc,
                lambda: proc.get(owner, self.name, key=key, n_bytes=nbytes, label=label),
                "get",
                label,
            )
            updated = remote + data[lo:hi] if self.numeric and data is not None else None
            writes = [(self.name, key, updated), (tags, slice(tag, tag + 1), 1.0)]
            yield from self._reliable(
                proc,
                lambda: proc.putm(owner, writes, n_bytes=nbytes + 8.0, label=label),
                "put",
                label,
            )
            yield proc.quiet(label=label)
            yield proc.unlock(mutex, label=label)
        yield proc.span_end()

    def iput_block_once(self, proc: Proc, owner: int, value, tag: int, label: str = "publish"):
        """Exactly-once *overwrite* of ``owner``'s whole local block.

        Used when the value is recomputable and idempotent by construction
        (e.g. a rank's beta-beta sigma block): any rank can publish the
        block on the owner's behalf, and the atomic data+flag put means a
        half-dead publisher never leaves a flag without its data.
        """
        tags = self._require_tags()
        lo, hi = self.ranges[owner]
        nbytes = (hi - lo) * self.n_cols * 8.0
        mutex = self.node_mutex(owner)
        yield proc.lock(mutex, label=label)
        committed = yield from self.iread_tag(proc, owner, tag, label=label)
        if committed:
            if self.faults is not None:
                self.faults.note_recovered("acc_dedup")
            yield proc.unlock(mutex, label=label)
            return
        writes = [
            (self.name, None, value if self.numeric else None),
            (tags, slice(tag, tag + 1), 1.0),
        ]
        yield from self._reliable(
            proc,
            lambda: proc.putm(owner, writes, n_bytes=nbytes + 8.0, label=label),
            "put",
            label,
        )
        yield proc.quiet(label=label)
        yield proc.unlock(mutex, label=label)


class DynamicLoadBalancer:
    """Centralized task counter (manager/worker, paper section 3.3).

    The counter lives on rank 0 and is advanced with the engine's atomic
    fetch-add, which serializes competing requests at rank 0's memory port -
    reproducing the contention behaviour of the SHMEM_SWAP-based DDI
    implementation.  The fetch-add is never dropped by fault injection
    (SHMEM atomics are reliable), so the counter needs no retry path.
    """

    def __init__(self, heap: SymmetricHeap, name: str | None = None):
        self.name = name or heap.unique_name("_dlb_")
        heap.alloc(self.name, (1,), dtype=np.int64, numeric=True)
        self.heap = heap

    def reset(self) -> None:
        for r in range(self.heap.n_ranks):
            seg = self.heap.segment(self.name, r)
            if seg is not None:
                seg[0] = 0

    def inext(self, proc: Proc, label: str = "dlb"):
        """Fetch the next global task number (generator)."""
        old = yield proc.fadd(0, self.name, key=0, value=1, label=label)
        return int(old)
