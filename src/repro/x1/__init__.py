"""Simulated Cray-X1: machine model, discrete-event engine, SHMEM/DDI."""

from .machine import X1Config
from .engine import Engine, Op, Proc, RankStats, SymmetricHeap
from .ddi import DDIArray, DynamicLoadBalancer, block_ranges

__all__ = [
    "X1Config",
    "Engine",
    "Op",
    "Proc",
    "RankStats",
    "SymmetricHeap",
    "DDIArray",
    "DynamicLoadBalancer",
    "block_ranges",
]
