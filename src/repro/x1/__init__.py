"""Simulated Cray-X1: machine model, discrete-event engine, SHMEM/DDI."""

from .machine import X1Config
from .engine import DROPPED, Engine, Op, Proc, RankStats, SymmetricHeap
from .ddi import DDIArray, DDICommError, DynamicLoadBalancer, block_ranges

__all__ = [
    "X1Config",
    "DROPPED",
    "Engine",
    "Op",
    "Proc",
    "RankStats",
    "SymmetricHeap",
    "DDIArray",
    "DDICommError",
    "DynamicLoadBalancer",
    "block_ranges",
]
