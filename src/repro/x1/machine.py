"""Cray-X1 machine model: topology and kernel cost functions.

The X1 node has four multi-streaming processors (MSPs) sharing flat local
memory; each MSP is four single-streaming vector processors (SSPs) plus a
cache (the paper quotes 1 MB).  At 800 MHz with 16 floating-point results
per clock an MSP peaks at 12.8 GFLOP/s.

Kernel rates follow the paper and its ref. [20] (Worley & Dunigan, "Early
evaluation of the Cray X1 at ORNL"):

* DGEMM attains 10-11 GFLOP/s per MSP once matrices pass ~300x300 and ramps
  up from small sizes - modeled as a saturating efficiency curve,
* out-of-cache DAXPY realizes ~2 GFLOP/s per MSP (the MOC kernel's fate),
* vector gather/scatter and block copies run at memory-stream rates,
* indexed (gather-modify-scatter) updates run at a fraction of DAXPY.

All times are seconds of virtual machine time; the discrete-event engine in
:mod:`repro.x1.engine` advances per-MSP clocks with them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["X1Config"]


@dataclass(frozen=True)
class X1Config:
    """Machine and kernel-rate parameters of the simulated Cray-X1."""

    n_msps: int = 16
    msps_per_node: int = 4
    ssps_per_msp: int = 4
    clock_hz: float = 800e6
    flops_per_clock: float = 16.0  # per MSP: 4 SSPs x 2 pipes x MADD

    cache_bytes: int = 1 << 20  # per MSP (paper section 3.1)

    # computational kernel rates (per MSP)
    dgemm_peak_fraction: float = 0.82  # asymptotic ~10.5 GF/s (paper: 10-11)
    dgemm_half_size: float = 42.0  # effective matrix size at half efficiency
    daxpy_out_of_cache: float = 2.0e9  # FLOP/s, paper ref [20]
    daxpy_in_cache: float = 6.4e9
    indexed_update_rate: float = 0.9e9  # updates/s: gather-modify-scatter
    gather_rate: float = 2.5e9  # elements/s for vector gather/scatter
    memory_bandwidth: float = 26e9  # bytes/s streaming per MSP
    element_fn_rate: float = 0.5e9  # elements/s for vectorizable list work
    scalar_element_rate: float = 25e6  # elements/s for scalar Slater-Condon
    # element generation (the MOC same-spin routine's replicated work)

    # interconnect (per-MSP effective rates)
    node_bandwidth: float = 10.0e9  # bytes/s within an SMP node
    link_bandwidth: float = 2.0e9  # bytes/s off node
    latency_local: float = 1.5e-6  # s, one-sided op setup within node
    latency_remote: float = 5.0e-6  # s, one-sided op setup across network
    atomic_overhead: float = 2.0e-6  # s, SHMEM_SWAP / lock arbitration

    # shared filesystem (paper Table 3: 293 MB/s read, 246 MB/s write)
    io_read_bandwidth: float = 293e6
    io_write_bandwidth: float = 246e6

    def __post_init__(self) -> None:
        if self.n_msps < 1:
            raise ValueError("need at least one MSP")
        if self.msps_per_node < 1:
            raise ValueError("need at least one MSP per node")

    # --- topology --------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return -(-self.n_msps // self.msps_per_node)

    def node_of(self, rank: int) -> int:
        return rank // self.msps_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s of one MSP (12.8 GF/s for the default X1 numbers)."""
        return self.clock_hz * self.flops_per_clock

    @property
    def aggregate_peak_flops(self) -> float:
        return self.peak_flops * self.n_msps

    # --- kernel time models ----------------------------------------------
    def dgemm_rate(self, m: int, n: int, k: int) -> float:
        """Effective DGEMM FLOP rate for an (m x k) @ (k x n) product."""
        if min(m, n, k) <= 0:
            return self.peak_flops
        size = (float(m) * float(n) * float(k)) ** (1.0 / 3.0)
        eff = self.dgemm_peak_fraction * size / (size + self.dgemm_half_size)
        return self.peak_flops * eff

    def dgemm_time(self, m: int, n: int, k: int) -> float:
        flops = 2.0 * float(m) * float(n) * float(k)
        return flops / self.dgemm_rate(m, n, k)

    def daxpy_time(self, n_elements: float, in_cache: bool = False) -> float:
        rate = self.daxpy_in_cache if in_cache else self.daxpy_out_of_cache
        return 2.0 * float(n_elements) / rate

    def indexed_update_time(self, n_updates: float) -> float:
        """Indexed multiply-add (the MOC kernel)."""
        return float(n_updates) / self.indexed_update_rate

    def gather_time(self, n_elements: float) -> float:
        """Local vector gather or scatter of n_elements doubles."""
        return float(n_elements) / self.gather_rate

    def copy_time(self, n_bytes: float) -> float:
        return float(n_bytes) / self.memory_bandwidth

    def stream_time(self, n_elements: float, n_passes: float = 1.0) -> float:
        """Streaming vector operations (axpy-free passes over memory)."""
        return 8.0 * float(n_elements) * float(n_passes) / self.memory_bandwidth

    # --- communication time models ----------------------------------------
    def transfer_time(self, src: int, dst: int, n_bytes: float) -> float:
        if src == dst:
            return self.copy_time(n_bytes)
        bw = self.node_bandwidth if self.same_node(src, dst) else self.link_bandwidth
        return float(n_bytes) / bw

    def transfer_latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return self.latency_local if self.same_node(src, dst) else self.latency_remote

    def io_time(self, n_bytes: float, write: bool) -> float:
        """Shared-filesystem access (aggregate bandwidth, not per MSP)."""
        bw = self.io_write_bandwidth if write else self.io_read_bandwidth
        return float(n_bytes) / bw

    def describe(self) -> str:
        return (
            f"X1Config({self.n_msps} MSPs on {self.n_nodes} nodes, "
            f"{self.peak_flops / 1e9:.1f} GF/s per MSP, "
            f"{self.aggregate_peak_flops / 1e12:.2f} TF/s aggregate)"
        )
