"""Thread-safe metrics registry: counters, gauges, histograms, timers.

Metric names are dotted paths (``"sigma.dgemm.flops"``); the registry is a
flat name -> metric map guarded by one re-entrant lock, so concurrent
benchmark threads and the (single-threaded) simulator can share one
registry.  A process-wide singleton is available through
:func:`get_registry` / :func:`set_registry`, but every consumer also accepts
an explicit registry so tests can stay hermetic.

``snapshot()`` returns plain JSON-serializable dicts; ``to_json()`` is the
canonical machine-readable export the benchmark harness embeds in
``benchmarks/results/*.json``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Series",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


class Counter:
    """Monotonically increasing count (FLOPs, bytes, calls)."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """Last-written value (rates, sizes, imbalance)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self._value}


class Histogram:
    """Streaming summary of observations (count/sum/min/max/mean/std).

    Keeps O(1) state (Welford) rather than raw samples, so per-iteration
    solver quantities can be observed millions of times.
    """

    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            delta = value - self._mean
            self._mean += delta / self.count
            self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self._m2 / self.count) if self.count > 1 else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "std": self.std,
        }


class Timer(Histogram):
    """Histogram of durations with a context-manager / decorator interface.

    Wall-clock by default (``time.perf_counter``); pass explicit durations
    to :meth:`observe` to account *virtual* (simulated) seconds with the
    same metric type.
    """

    kind = "timer"

    def time(self) -> "_TimerContext":
        return _TimerContext(self)

    def __call__(self, fn):
        def wrapped(*args, **kwargs):
            with self.time():
                return fn(*args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "timed")
        return wrapped


class _TimerContext:
    def __init__(self, timer: Timer):
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class Series:
    """Append-only list of structured records (per-iteration telemetry)."""

    kind = "series"

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._records: list[dict[str, Any]] = []

    def append(self, **record: Any) -> None:
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> list[dict[str, Any]]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "records": list(self._records)}


class MetricsRegistry:
    """Flat, thread-safe name -> metric map with JSON export."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, Any] = {}

    def _get_or_create(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, cls) and not (
                cls is Histogram and isinstance(metric, Timer)
            ):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get_or_create(name, Timer)

    def series(self, name: str) -> Series:
        return self._get_or_create(name, Series)

    def get(self, name: str):
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def to_json(self, indent: int | None = 2) -> str:
        def default(obj):
            try:
                return float(obj)
            except (TypeError, ValueError):
                return str(obj)

        return json.dumps(self.snapshot(), indent=indent, default=default)


_global_lock = threading.Lock()
_global_registry: MetricsRegistry | None = None


def get_registry() -> MetricsRegistry:
    """Process-wide singleton registry (created on first use)."""
    global _global_registry
    with _global_lock:
        if _global_registry is None:
            _global_registry = MetricsRegistry()
        return _global_registry


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Replace the singleton (pass None to reset); returns the old one."""
    global _global_registry
    with _global_lock:
        old = _global_registry
        _global_registry = registry
        return old
