"""Span tracers for the simulated X1: Chrome trace-event export.

The discrete-event engine (:mod:`repro.x1.engine`) reports everything that
happens on every MSP rank in *virtual* seconds: compute ops, one-sided
SHMEM get/put, atomic fetch-add, mutex acquisition waits, barrier skew and
shared-filesystem I/O, plus the DDI-level protocol spans (DDI_GET, DDI_ACC)
opened by :mod:`repro.x1.ddi`.  A tracer turns that stream into a timeline.

:class:`ChromeTracer` records the stream and exports the Chrome
trace-event format (the ``traceEvents`` array understood by
``chrome://tracing`` and https://ui.perfetto.dev): one process for the
simulated machine, one thread track per MSP rank, complete ("X") events
for engine ops and nested begin/end ("B"/"E") pairs for DDI protocol
spans.  Virtual seconds map to trace microseconds.

:class:`NullTracer` is the zero-cost default - the engine guards every
callback behind ``tracer is not None``, so by default no tracer code runs
at all; NullTracer exists for subclassing and for call-compatible stubs.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["SpanTracer", "NullTracer", "ChromeTracer"]

_US = 1e6  # virtual seconds -> trace microseconds


class SpanTracer:
    """Interface the engine drives; all timestamps are virtual seconds."""

    def complete(
        self,
        rank: int,
        name: str,
        cat: str,
        start: float,
        end: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        """One finished span [start, end) on ``rank``'s track."""

    def instant(self, rank: int, name: str, ts: float, args: dict[str, Any] | None = None) -> None:
        """A zero-duration marker."""

    def begin(self, rank: int, name: str, ts: float, cat: str = "") -> None:
        """Open a nested span (closed by the next :meth:`end` on the rank)."""

    def end(self, rank: int, ts: float, args: dict[str, Any] | None = None) -> None:
        """Close the innermost open span on ``rank``."""


class NullTracer(SpanTracer):
    """Explicit no-op tracer (the default behaviour when tracer=None)."""


class ChromeTracer(SpanTracer):
    """Records spans and exports Chrome trace-event JSON.

    Parameters
    ----------
    process_name:
        Label of the single trace process (the simulated machine).
    min_duration:
        Spans shorter than this (virtual seconds) are dropped to keep
        traces of fine-grained runs viewable; 0 keeps everything.
    """

    def __init__(self, process_name: str = "simulated Cray-X1", min_duration: float = 0.0):
        self.process_name = process_name
        self.min_duration = float(min_duration)
        self._events: list[dict[str, Any]] = []
        self._open: dict[int, list[dict[str, Any]]] = {}
        self._ranks: set[int] = set()

    # -- SpanTracer interface ------------------------------------------------
    def complete(self, rank, name, cat, start, end, args=None):
        if end - start < self.min_duration:
            return
        self._ranks.add(rank)
        ev = {
            "name": name,
            "cat": cat or "op",
            "ph": "X",
            "ts": start * _US,
            "dur": max(end - start, 0.0) * _US,
            "pid": 0,
            "tid": int(rank),
        }
        if args:
            ev["args"] = dict(args)
        self._events.append(ev)

    def instant(self, rank, name, ts, args=None):
        self._ranks.add(rank)
        ev = {
            "name": name,
            "cat": "marker",
            "ph": "i",
            "ts": ts * _US,
            "pid": 0,
            "tid": int(rank),
            "s": "t",
        }
        if args:
            ev["args"] = dict(args)
        self._events.append(ev)

    def begin(self, rank, name, ts, cat=""):
        self._ranks.add(rank)
        ev = {
            "name": name,
            "cat": cat or "protocol",
            "ph": "B",
            "ts": ts * _US,
            "pid": 0,
            "tid": int(rank),
        }
        self._events.append(ev)
        self._open.setdefault(rank, []).append(ev)

    def end(self, rank, ts, args=None):
        stack = self._open.get(rank)
        if not stack:
            return  # unmatched end: tolerate rather than corrupt the trace
        opened = stack.pop()
        ev = {
            "name": opened["name"],
            "cat": opened["cat"],
            "ph": "E",
            "ts": ts * _US,
            "pid": 0,
            "tid": int(rank),
        }
        if args:
            ev["args"] = dict(args)
        self._events.append(ev)

    # -- queries -------------------------------------------------------------
    @property
    def n_events(self) -> int:
        return len(self._events)

    def events(self, rank: int | None = None) -> list[dict[str, Any]]:
        if rank is None:
            return list(self._events)
        return [e for e in self._events if e["tid"] == rank]

    def span_names(self) -> set[str]:
        return {e["name"] for e in self._events}

    def total_duration(self, name_prefix: str) -> float:
        """Summed virtual seconds of all complete spans named ``prefix*``."""
        return (
            sum(e["dur"] for e in self._events if e["ph"] == "X" and e["name"].startswith(name_prefix))
            / _US
        )

    # -- export --------------------------------------------------------------
    def export(self) -> dict[str, Any]:
        """The Chrome trace-event document (a plain dict)."""
        meta: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "args": {"name": self.process_name},
            }
        ]
        for rank in sorted(self._ranks):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": int(rank),
                    "args": {"name": f"MSP {rank}"},
                }
            )
            meta.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": 0,
                    "tid": int(rank),
                    "args": {"sort_index": int(rank)},
                }
            )
        # stable per-rank time order (B before E at equal ts is preserved by
        # the stable sort because events were appended in causal order)
        body = sorted(self._events, key=lambda e: (e["tid"], e["ts"]))
        return {"traceEvents": meta + body, "displayTimeUnit": "ms"}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.export(), indent=indent)

    def write(self, path) -> str:
        """Write the trace JSON; returns the path written."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
        return str(path)
