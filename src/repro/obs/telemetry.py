"""The Telemetry facade the solver stack threads through its layers.

One object carries the whole observability configuration:

    from repro.obs import Telemetry, ChromeTracer
    tel = Telemetry(tracer=ChromeTracer())
    result = FCISolver(mol, telemetry=tel).run()
    tel.registry.snapshot()          # metrics: FLOPs, bytes, iterations
    tel.tracer.write("trace.json")   # if a tracer was attached

Disabled telemetry is the default everywhere (``telemetry=None`` or
:data:`NULL_TELEMETRY`): instrumented code guards each emission with a
plain truthiness check (``if telemetry: ...``), so the disabled path costs
one branch and allocates nothing - solver results are bitwise identical
with and without the hooks compiled in.
"""

from __future__ import annotations

import logging
from typing import Any

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Series, Timer
from .tracer import SpanTracer

__all__ = ["Telemetry", "NULL_TELEMETRY"]

logger = logging.getLogger("repro.obs")

SOLVER_SERIES = "solver.iterations"


class Telemetry:
    """Bundle of a metrics registry, an optional tracer, and an on/off bit.

    Parameters
    ----------
    enabled:
        False produces the no-op instance: every method returns immediately
        and ``bool(telemetry)`` is False, which is what instrumented code
        branches on.
    registry:
        Metrics sink; a fresh private :class:`MetricsRegistry` by default.
    tracer:
        Optional :class:`repro.obs.tracer.SpanTracer` handed to the
        simulated-X1 engine by the parallel drivers.
    on_iteration:
        Optional callable invoked with each per-iteration record dict right
        after it is appended to the ``solver.iterations`` series.  This is
        the streaming hook: the service layer uses it to push live
        telemetry to clients without polling the registry.
    """

    def __init__(
        self,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        *,
        on_iteration=None,
    ):
        self.enabled = bool(enabled)
        self.registry = registry if registry is not None else (MetricsRegistry() if enabled else None)
        self.tracer = tracer
        self.on_iteration = on_iteration

    def __bool__(self) -> bool:
        return self.enabled

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Telemetry({state}, tracer={type(self.tracer).__name__ if self.tracer else None})"

    # -- metric shortcuts ----------------------------------------------------
    def counter(self, name: str) -> Counter | None:
        return self.registry.counter(name) if self.enabled else None

    def gauge(self, name: str) -> Gauge | None:
        return self.registry.gauge(name) if self.enabled else None

    def histogram(self, name: str) -> Histogram | None:
        return self.registry.histogram(name) if self.enabled else None

    def timer(self, name: str) -> Timer | None:
        return self.registry.timer(name) if self.enabled else None

    def series(self, name: str) -> Series | None:
        return self.registry.series(name) if self.enabled else None

    # -- structured emissions ------------------------------------------------
    def solver_iteration(
        self,
        method: str,
        iteration: int,
        energy: float,
        residual_norm: float,
        **extra: Any,
    ) -> None:
        """Per-iteration eigensolver telemetry (residual, energy, lambda...)."""
        if not self.enabled:
            return
        record = dict(
            method=method,
            iteration=int(iteration),
            energy=float(energy),
            residual_norm=float(residual_norm),
            **{k: (float(v) if isinstance(v, (int, float)) else v) for k, v in extra.items()},
        )
        self.registry.series(SOLVER_SERIES).append(**record)
        if self.on_iteration is not None:
            self.on_iteration(record)
        self.registry.counter("solver.iterations.count").inc()
        self.registry.histogram("solver.residual_norm").observe(residual_norm)
        logger.debug(
            "%s iteration %d: E=%.12f |r|=%.3e", method, iteration, energy, residual_norm
        )

    def solver_result(
        self,
        method: str,
        energy: float,
        converged: bool,
        n_iterations: int,
        n_sigma: int,
        dimension: int | None = None,
    ) -> None:
        """Final-result telemetry emitted once per eigensolve."""
        if not self.enabled:
            return
        self.registry.counter("solver.solves").inc()
        self.registry.gauge("solver.energy").set(energy)
        self.registry.gauge("solver.converged").set(1.0 if converged else 0.0)
        self.registry.counter("solver.total_iterations").inc(n_iterations)
        self.registry.counter("solver.total_sigma_builds").inc(n_sigma)
        if dimension is not None:
            self.registry.gauge("solver.ci_dimension").set(dimension)
        logger.info(
            "%s solve: E=%.12f, %d iterations, %d sigma builds, converged=%s",
            method,
            energy,
            n_iterations,
            n_sigma,
            converged,
        )

    def iterations(self) -> list[dict[str, Any]]:
        """Recorded per-iteration records (empty when disabled)."""
        if not self.enabled:
            return []
        series = self.registry.get(SOLVER_SERIES)
        return series.records if series is not None else []

    # -- export ---------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        return self.registry.snapshot() if self.enabled else {}

    def to_json(self, indent: int | None = 2) -> str:
        return self.registry.to_json(indent) if self.enabled else "{}"


NULL_TELEMETRY = Telemetry(enabled=False)
"""The shared disabled instance; safe to pass anywhere a Telemetry is taken."""
