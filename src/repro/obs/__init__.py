"""repro.obs: telemetry, tracing, and FLOP/byte accounting.

The paper's headline results are *measurements* - GF/MSP per routine,
communication volume per iteration, load imbalance, iteration counts - so
the reproduction carries a first-class observability layer:

* :mod:`repro.obs.metrics` - a thread-safe metrics registry (counters,
  gauges, histograms, wall/virtual-time timers) with JSON serialization,
* :mod:`repro.obs.tracer` - a span-based tracer for the discrete-event
  simulated X1 that exports Chrome trace-event JSON (viewable in
  ``chrome://tracing`` / Perfetto): per-MSP tracks of compute ops, SHMEM
  get/put, DDI_GET/DDI_ACC protocols, mutex waits, barriers and I/O in
  virtual time,
* :mod:`repro.obs.accounting` - the single audited FLOP/byte accounting
  path behind every GF-rate and communication-volume figure (Table 1,
  Table 3, Figs 4-5),
* :mod:`repro.obs.telemetry` - the :class:`Telemetry` facade the solver
  stack accepts (``FCISolver(..., telemetry=...)``) and the no-op default
  that keeps the library zero-cost when observability is off.

Everything here is a leaf of the package graph: nothing in ``repro.obs``
imports solver, kernel, or simulator modules, so any layer may use it.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer, get_registry, set_registry
from .tracer import ChromeTracer, NullTracer, SpanTracer
from .accounting import (
    FlopLedger,
    account_parallel_report,
    account_sigma_dgemm,
    account_sigma_moc,
    account_trace_result,
    dgemm_mixed_spin_flops,
    dgemm_same_spin_flops,
    gflops_rate,
)
from .telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "SpanTracer",
    "NullTracer",
    "ChromeTracer",
    "FlopLedger",
    "gflops_rate",
    "dgemm_mixed_spin_flops",
    "dgemm_same_spin_flops",
    "account_sigma_dgemm",
    "account_sigma_moc",
    "account_parallel_report",
    "account_trace_result",
    "Telemetry",
    "NULL_TELEMETRY",
]
