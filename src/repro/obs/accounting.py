"""The audited FLOP/byte accounting path behind every performance figure.

Historically each benchmark re-derived GF-rates and communication volumes
with its own arithmetic; this module is the single place where

* kernel counters (:class:`repro.core.sigma_dgemm.SigmaCounters`,
  :class:`repro.core.sigma_moc.MOCCounters`) are converted into registry
  metrics,
* simulator results (``ParallelReport``, ``TraceResult``) are folded into
  the same metric names, and
* the closed-form operation counts of the paper's Table 1 are available for
  cross-checking the measured counters (the test suite asserts the two
  agree exactly on small FCI spaces).

Only duck-typed values cross this boundary - ``repro.obs`` never imports
kernel or simulator modules, so it remains a leaf every layer can use.

Canonical metric names
----------------------
========================  =========  =========================================
name                      kind       meaning
------------------------  ---------  -----------------------------------------
sigma.<algo>.calls        counter    sigma evaluations accounted
sigma.<algo>.flops        counter    kernel floating-point operations
sigma.<algo>.seconds      timer      wall seconds per evaluation
sigma.dgemm.gemm_calls    counter    dense DGEMM invocations (E = W.D / G.D)
sigma.dgemm.gather_elems  counter    vector-gather traffic (elements)
sigma.dgemm.scatter_elems counter    vector-scatter traffic (elements)
sigma.moc.indexed_ops     counter    indexed multiply-add updates
integrals.quartets.computed counter  shell quartets evaluated by the ERI engine
integrals.quartets.screened counter  shell quartets skipped by Schwarz screening
integrals.eri.flops       counter    dense-contraction FLOPs of ERI assembly
integrals.eri.bytes       counter    gather/operand traffic of ERI assembly
integrals.eri.seconds     timer      wall seconds per ERI assembly
integrals.mo_transform.flops counter AO->MO quarter-transformation FLOPs
x1.virtual_seconds        counter    simulated wall-clock, summed over runs
x1.flops                  counter    simulated FLOPs (all ranks)
x1.bytes_sent             counter    one-sided put/acc traffic (bytes)
x1.bytes_received         counter    one-sided get traffic (bytes)
x1.bytes_communicated     counter    sent + received
x1.load_imbalance         histogram  per-run max-minus-mean finish skew (s)
x1.gflops_per_msp         gauge      sustained per-MSP rate of the last run
x1.aggregate_tflops       gauge      aggregate rate of the last run
========================  =========  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from .metrics import MetricsRegistry

__all__ = [
    "FlopLedger",
    "gflops_rate",
    "dgemm_mixed_spin_flops",
    "dgemm_same_spin_flops",
    "moc_mixed_spin_ops",
    "eri_quartet_flops",
    "mo_transform_flops",
    "account_sigma_dgemm",
    "account_sigma_moc",
    "account_eri",
    "account_mo_transform",
    "account_parallel_report",
    "account_trace_result",
]


def gflops_rate(flops: float, seconds: float) -> float:
    """FLOPs over seconds in GF/s (0 for degenerate inputs)."""
    return flops / seconds / 1e9 if seconds > 0 else 0.0


# -- closed-form operation counts (the audited Table-1 model) ----------------


def dgemm_mixed_spin_flops(n_orbitals: int, nci: float) -> float:
    """Exact DGEMM FLOPs of the mixed-spin routine on an unblocked space.

    The E = G.D product is an (n^2 x n^2) @ (n^2 x Nci) DGEMM evaluated in
    column blocks: 2 n^4 Nci multiply-adds total.  This is what
    ``SigmaCounters.dgemm_flops`` accumulates for the alpha-beta term, and
    the (2 n^2 / (n_a n_b))-fold refinement of the paper's order-of-
    magnitude entry ~ Nci n^2 n_a n_b.
    """
    n = float(n_orbitals)
    return 2.0 * n**4 * float(nci)


def dgemm_same_spin_flops(n_pairs: int, n_reduced: int, n_columns: float) -> float:
    """Exact DGEMM FLOPs of one same-spin routine call.

    E = W.D with W (n_pairs x n_pairs) and D (n_pairs x n_reduced*n_columns):
    2 * n_pairs^2 * NK * M multiply-adds, the quantity
    ``SigmaCounters.dgemm_flops`` accumulates for each same-spin term.
    """
    return 2.0 * float(n_pairs) ** 2 * float(n_reduced) * float(n_columns)


def moc_mixed_spin_ops(n_orbitals: int, n_alpha: int, n_beta: int, nci: float) -> float:
    """Paper Table 1: indexed ops of the MOC alpha-beta routine."""
    n = n_orbitals
    return float(nci) * n_alpha * (n - n_alpha) * n_beta * (n - n_beta)


def eri_quartet_flops(
    npair_bra: int,
    npair_ket: int,
    ncomp_bra: int,
    ncomp_ket: int,
    nherm_bra: int,
    nherm_ket: int,
) -> float:
    """Exact multiply-add count of one batched ERI shell quartet.

    The batched engine evaluates two dense contractions per quartet: the
    broadcast GEMM folding the (signed) ket Hermite coefficients into the
    windowed R lattice (2 * npair_bra * npair_ket * ncomp_ket * nherm_ket
    * nherm_bra) and the bra-side GEMM (2 * npair_bra * nherm_bra *
    ncomp_bra * ncomp_ket).  ``nherm_*`` are the flattened Hermite lattice
    sizes (l_a + l_b + 1)^3.  This is the quantity
    ``EriStats.flops`` accumulates, cross-checked by the test suite.
    """
    ket_gemm = 2.0 * npair_bra * npair_ket * ncomp_ket * nherm_ket * nherm_bra
    bra_gemm = 2.0 * npair_bra * nherm_bra * ncomp_bra * ncomp_ket
    return ket_gemm + bra_gemm


def mo_transform_flops(n_ao: int, n_mo: int) -> float:
    """Multiply-add count of the four AO->MO quarter transformations.

    Step k contracts an (n_ao^(4-k+1) x n_mo^(k-1)) tensor with the
    (n_ao x n_mo) coefficient matrix: 2 * n_ao^(5-k) * n_mo^k each.
    """
    a, m = float(n_ao), float(n_mo)
    return 2.0 * (a**4 * m + a**3 * m**2 + a**2 * m**3 + a * m**4)


@dataclass
class FlopLedger:
    """A self-describing FLOP/byte tally for one accounted activity."""

    name: str
    flops: float = 0.0
    bytes_moved: float = 0.0
    seconds: float = 0.0
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        return gflops_rate(self.flops, self.seconds)

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved (inf when nothing moved)."""
        return self.flops / self.bytes_moved if self.bytes_moved else float("inf")

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "seconds": self.seconds,
            "gflops": self.gflops,
            "detail": dict(self.detail),
        }


# -- kernel counter accounting ----------------------------------------------


def account_sigma_dgemm(
    registry: MetricsRegistry,
    counters: Mapping[str, float] | Any,
    wall_seconds: float,
    calls: int = 1,
) -> FlopLedger:
    """Fold one instrumented ``sigma_dgemm`` evaluation into the registry.

    ``counters`` is a ``SigmaCounters`` instance or its ``as_dict()``.
    ``calls`` is the number of sigma evaluations the counters cover - a
    batched kernel accounts k vectors in one go.
    """
    c = counters.as_dict() if hasattr(counters, "as_dict") else dict(counters)
    flops = float(c.get("dgemm_flops", 0.0))
    gathers = float(c.get("gather_elements", 0.0))
    scatters = float(c.get("scatter_elements", 0.0))
    registry.counter("sigma.dgemm.calls").inc(calls)
    registry.counter("sigma.dgemm.flops").inc(flops)
    registry.counter("sigma.dgemm.gemm_calls").inc(float(c.get("dgemm_calls", 0.0)))
    registry.counter("sigma.dgemm.gather_elems").inc(gathers)
    registry.counter("sigma.dgemm.scatter_elems").inc(scatters)
    registry.timer("sigma.dgemm.seconds").observe(wall_seconds)
    return FlopLedger(
        name="sigma.dgemm",
        flops=flops,
        bytes_moved=8.0 * (gathers + scatters),
        seconds=wall_seconds,
        detail={"gather_elements": gathers, "scatter_elements": scatters},
    )


def account_sigma_moc(
    registry: MetricsRegistry,
    counters: Mapping[str, float] | Any,
    wall_seconds: float,
    calls: int = 1,
) -> FlopLedger:
    """Fold one instrumented ``sigma_moc`` evaluation into the registry.

    ``calls`` is the number of sigma evaluations the counters cover.
    """
    c = counters.as_dict() if hasattr(counters, "as_dict") else dict(counters)
    indexed = float(c.get("indexed_ops", 0.0))
    elements = float(c.get("matrix_elements_computed", 0.0))
    registry.counter("sigma.moc.calls").inc(calls)
    registry.counter("sigma.moc.indexed_ops").inc(indexed)
    registry.counter("sigma.moc.matrix_elements").inc(elements)
    registry.counter("sigma.moc.flops").inc(2.0 * indexed)
    registry.timer("sigma.moc.seconds").observe(wall_seconds)
    return FlopLedger(
        name="sigma.moc",
        flops=2.0 * indexed,
        bytes_moved=8.0 * 3.0 * indexed,  # gather-modify-scatter per update
        seconds=wall_seconds,
        detail={"indexed_ops": indexed, "matrix_elements": elements},
    )


def account_eri(
    registry: MetricsRegistry,
    stats: Mapping[str, float] | Any,
    wall_seconds: float,
) -> FlopLedger:
    """Fold one ERI assembly into the registry.

    ``stats`` is an :class:`repro.integrals.two_electron.EriStats` instance
    or its ``as_dict()``.
    """
    s = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
    flops = float(s.get("flops", 0.0))
    bytes_moved = float(s.get("bytes_moved", 0.0))
    computed = float(s.get("quartets_computed", 0.0))
    screened = float(s.get("quartets_screened", 0.0))
    registry.counter("integrals.eri.assemblies").inc()
    registry.counter("integrals.quartets.computed").inc(computed)
    registry.counter("integrals.quartets.screened").inc(screened)
    registry.counter("integrals.eri.flops").inc(flops)
    registry.counter("integrals.eri.bytes").inc(bytes_moved)
    registry.timer("integrals.eri.seconds").observe(wall_seconds)
    return FlopLedger(
        name="integrals.eri",
        flops=flops,
        bytes_moved=bytes_moved,
        seconds=wall_seconds,
        detail={"quartets_computed": computed, "quartets_screened": screened},
    )


def account_mo_transform(
    registry: MetricsRegistry, n_ao: int, n_mo: int, wall_seconds: float
) -> FlopLedger:
    """Fold one AO->MO integral transformation into the registry."""
    flops = mo_transform_flops(n_ao, n_mo)
    bytes_moved = 8.0 * (float(n_ao) ** 4 + float(n_mo) ** 4)
    registry.counter("integrals.mo_transform.calls").inc()
    registry.counter("integrals.mo_transform.flops").inc(flops)
    registry.timer("integrals.mo_transform.seconds").observe(wall_seconds)
    return FlopLedger(
        name="integrals.mo_transform",
        flops=flops,
        bytes_moved=bytes_moved,
        seconds=wall_seconds,
        detail={"n_ao": float(n_ao), "n_mo": float(n_mo)},
    )


# -- simulator accounting -----------------------------------------------------


def _account_x1_run(
    registry: MetricsRegistry,
    *,
    elapsed: float,
    flops: float,
    bytes_sent: float,
    bytes_received: float,
    n_msps: int,
    load_imbalance: float | None = None,
    phase_seconds: Mapping[str, float] | None = None,
) -> FlopLedger:
    comm = bytes_sent + bytes_received
    registry.counter("x1.runs").inc()
    registry.counter("x1.virtual_seconds").inc(elapsed)
    registry.counter("x1.flops").inc(flops)
    registry.counter("x1.bytes_sent").inc(bytes_sent)
    registry.counter("x1.bytes_received").inc(bytes_received)
    registry.counter("x1.bytes_communicated").inc(comm)
    if load_imbalance is not None:
        registry.histogram("x1.load_imbalance").observe(load_imbalance)
    per_msp = gflops_rate(flops, elapsed) / max(n_msps, 1)
    registry.gauge("x1.gflops_per_msp").set(per_msp)
    registry.gauge("x1.aggregate_tflops").set(gflops_rate(flops, elapsed) / 1e3)
    detail: dict[str, float] = {"n_msps": float(n_msps)}
    if phase_seconds:
        for phase, seconds in phase_seconds.items():
            registry.counter(f"x1.phase.{phase}.seconds").inc(seconds)
            detail[f"phase.{phase}"] = float(seconds)
    return FlopLedger(
        name="x1.run",
        flops=flops,
        bytes_moved=comm,
        seconds=elapsed,
        detail=detail,
    )


def account_parallel_report(registry: MetricsRegistry, report: Any, n_msps: int = 1) -> FlopLedger:
    """Account a numeric-mode ``ParallelReport`` (duck-typed)."""
    return _account_x1_run(
        registry,
        elapsed=report.elapsed,
        flops=report.flops,
        bytes_sent=report.bytes_communicated,
        bytes_received=0.0,
        n_msps=n_msps,
        load_imbalance=report.load_imbalance,
        phase_seconds=report.phase_times,
    )


def account_trace_result(registry: MetricsRegistry, result: Any) -> FlopLedger:
    """Account a paper-scale ``TraceResult`` (duck-typed)."""
    return _account_x1_run(
        registry,
        elapsed=result.elapsed,
        flops=result.total_flops,
        bytes_sent=result.comm_bytes,
        bytes_received=0.0,
        n_msps=result.n_msps,
        load_imbalance=result.load_imbalance,
        phase_seconds=result.phase_seconds,
    )
