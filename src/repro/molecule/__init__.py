"""Molecular geometry and abelian point-group symmetry."""

from .geometry import Atom, Molecule
from .symmetry import POINT_GROUPS, PointGroup, ao_representation, assign_orbital_irreps

__all__ = [
    "Atom",
    "Molecule",
    "POINT_GROUPS",
    "PointGroup",
    "ao_representation",
    "assign_orbital_irreps",
]
