"""Molecular geometry: atoms, coordinates, nuclear repulsion."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..basis.data import atomic_number, build_basis
from ..basis.shell import BasisSet

__all__ = ["Atom", "Molecule"]

ANGSTROM_TO_BOHR = 1.0 / 0.52917721092


@dataclass(frozen=True)
class Atom:
    symbol: str
    position: tuple[float, float, float]  # Bohr

    @property
    def Z(self) -> int:
        return atomic_number(self.symbol)


@dataclass
class Molecule:
    """A molecule: atoms (positions in Bohr), charge and spin multiplicity."""

    atoms: list[Atom]
    charge: int = 0
    multiplicity: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise ValueError("multiplicity must be >= 1")
        ne = self.n_electrons
        if (ne - (self.multiplicity - 1)) % 2 != 0:
            raise ValueError(
                f"{ne} electrons incompatible with multiplicity {self.multiplicity}"
            )

    @classmethod
    def from_atoms(
        cls,
        spec: list[tuple[str, tuple[float, float, float]]],
        *,
        charge: int = 0,
        multiplicity: int = 1,
        unit: str = "bohr",
        name: str = "",
    ) -> "Molecule":
        """Construct from [(symbol, (x, y, z)), ...]; unit 'bohr' or 'angstrom'."""
        scale = 1.0 if unit.lower().startswith("b") else ANGSTROM_TO_BOHR
        atoms = [
            Atom(sym, (x * scale, y * scale, z * scale)) for sym, (x, y, z) in spec
        ]
        return cls(atoms=atoms, charge=charge, multiplicity=multiplicity, name=name)

    @property
    def n_atoms(self) -> int:
        return len(self.atoms)

    @property
    def n_electrons(self) -> int:
        return sum(a.Z for a in self.atoms) - self.charge

    @property
    def n_alpha(self) -> int:
        ne = self.n_electrons
        return (ne + self.multiplicity - 1) // 2

    @property
    def n_beta(self) -> int:
        return self.n_electrons - self.n_alpha

    def coordinates(self) -> np.ndarray:
        return np.array([a.position for a in self.atoms], dtype=float)

    def charges(self) -> list[tuple[float, np.ndarray]]:
        """[(Z, position)] list suitable for nuclear-attraction integrals."""
        return [(float(a.Z), np.asarray(a.position)) for a in self.atoms]

    def nuclear_repulsion(self) -> float:
        """Nuclear repulsion energy in Hartree."""
        e = 0.0
        coords = self.coordinates()
        zs = [a.Z for a in self.atoms]
        for i in range(self.n_atoms):
            for j in range(i):
                r = np.linalg.norm(coords[i] - coords[j])
                if r < 1e-10:
                    raise ValueError(f"atoms {i} and {j} coincide")
                e += zs[i] * zs[j] / r
        return e

    def basis(self, name: str = "sto-3g") -> BasisSet:
        """Build a named basis set on this geometry."""
        return build_basis(
            [(a.symbol, np.asarray(a.position)) for a in self.atoms], name
        )

    def __repr__(self) -> str:
        label = self.name or "".join(a.symbol for a in self.atoms)
        return (
            f"Molecule({label}, {self.n_electrons} electrons, charge={self.charge}, "
            f"2S+1={self.multiplicity})"
        )
