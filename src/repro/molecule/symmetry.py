"""Abelian point-group symmetry (D2h and its subgroups).

All groups handled here are subgroups of D2h, whose operations act on
Cartesian coordinates as sign flips of (x, y, z).  An operation is encoded as
a 3-bit *flip mask* (bit 0 = flip x, bit 1 = flip y, bit 2 = flip z);
composition of operations is XOR of masks.  Irreducible representations are
the homomorphisms G -> {+-1}; for such elementary abelian 2-groups the irrep
product is again XOR on a canonical set of representatives, which is the
property the CI code relies on (the symmetry of a determinant string is the
XOR-product of its occupied orbitals' irreps).

Cartesian Gaussian basis functions transform diagonally under these
operations up to an atom permutation, which makes constructing the AO
representation matrices exact and cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..basis.shell import BasisSet

__all__ = ["PointGroup", "POINT_GROUPS", "ao_representation", "assign_orbital_irreps"]

# Operation flip-masks (bit 0 = flip x, bit 1 = flip y, bit 2 = flip z).
_E, _SGX, _SGY, _SGZ = 0b000, 0b001, 0b010, 0b100  # sigma_yz flips x, etc.
_C2Z, _C2Y, _C2X, _I = 0b011, 0b101, 0b110, 0b111

_OP_NAMES = {
    _E: "E",
    _C2Z: "C2z",
    _C2Y: "C2y",
    _C2X: "C2x",
    _I: "i",
    _SGZ: "s_xy",
    _SGY: "s_xz",
    _SGX: "s_yz",
}

_GROUP_OPS = {
    "C1": [_E],
    "Ci": [_E, _I],
    "Cs": [_E, _SGZ],
    "C2": [_E, _C2Z],
    "C2v": [_E, _C2Z, _SGY, _SGX],
    "C2h": [_E, _C2Z, _I, _SGZ],
    "D2": [_E, _C2Z, _C2Y, _C2X],
    "D2h": [_E, _C2Z, _C2Y, _C2X, _I, _SGZ, _SGY, _SGX],
}

_D2H_IRREP_NAMES = ["Ag", "B1g", "B2g", "B3g", "Au", "B1u", "B2u", "B3u"]
_IRREP_NAMES = {
    "C1": ["A"],
    "Ci": ["Ag", "Au"],
    "Cs": ["A'", 'A"'],
    "C2": ["A", "B"],
    "C2v": ["A1", "A2", "B1", "B2"],
    "C2h": ["Ag", "Bg", "Au", "Bu"],
    "D2": ["A", "B1", "B2", "B3"],
    "D2h": _D2H_IRREP_NAMES,
}


def _character(r: int, g: int) -> int:
    """Character of irrep representative r at operation g: (-1)^popcount(r&g)."""
    return -1 if bin(r & g).count("1") & 1 else 1


@dataclass
class PointGroup:
    """An abelian point group with XOR irrep algebra.

    Attributes
    ----------
    name:
        Group label (C1, Ci, Cs, C2, C2v, C2h, D2, D2h).
    ops:
        Flip masks of the group operations (identity first).
    irrep_names:
        Irrep labels, index = irrep id.
    """

    name: str
    ops: list[int]
    irrep_names: list[str]
    _reps: list[int]  # canonical character representatives, one per irrep

    @classmethod
    def get(cls, name: str) -> "PointGroup":
        key = name.strip()
        # normalize case, e.g. 'd2h' -> 'D2h'
        for known in _GROUP_OPS:
            if known.lower() == key.lower():
                key = known
                break
        else:
            raise KeyError(f"unknown point group {name!r}; known: {list(_GROUP_OPS)}")
        ops = _GROUP_OPS[key]
        # Canonical irrep representatives: the r in 0..7 whose restriction to
        # the group's ops are pairwise distinct, smallest representatives
        # first, in an order consistent with the conventional irrep labels.
        reps: list[int] = []
        seen: set[tuple[int, ...]] = set()
        for r in range(8):
            fingerprint = tuple(_character(r, g) for g in ops)
            if fingerprint not in seen:
                seen.add(fingerprint)
                reps.append(r)
            if len(reps) == len(ops):
                break
        return cls(
            name=key, ops=list(ops), irrep_names=_IRREP_NAMES[key], _reps=reps
        )

    @property
    def n_irreps(self) -> int:
        return len(self._reps)

    def character(self, irrep: int, op_index: int) -> int:
        """Character of irrep id at the op_index-th operation."""
        return _character(self._reps[irrep], self.ops[op_index])

    def product(self, irrep_a: int, irrep_b: int) -> int:
        """Irrep id of the direct product (XOR algebra)."""
        r = self._reps[irrep_a] ^ self._reps[irrep_b]
        fp = tuple(_character(r, g) for g in self.ops)
        for idx, rr in enumerate(self._reps):
            if tuple(_character(rr, g) for g in self.ops) == fp:
                return idx
        raise RuntimeError("irrep product not found (corrupt group)")

    def product_table(self) -> np.ndarray:
        n = self.n_irreps
        return np.array(
            [[self.product(a, b) for b in range(n)] for a in range(n)], dtype=np.int64
        )

    def irrep_id(self, name: str) -> int:
        for idx, nm in enumerate(self.irrep_names):
            if nm.lower() == name.strip().lower():
                return idx
        raise KeyError(f"irrep {name!r} not in {self.name}: {self.irrep_names}")

    def op_names(self) -> list[str]:
        return [_OP_NAMES[g] for g in self.ops]


POINT_GROUPS = list(_GROUP_OPS)


def _apply_flip(mask: int, xyz: np.ndarray) -> np.ndarray:
    out = xyz.copy()
    for axis in range(3):
        if mask & (1 << axis):
            out[..., axis] = -out[..., axis]
    return out


def ao_representation(
    basis: BasisSet, coords: np.ndarray, op_mask: int, tol: float = 1e-8
) -> np.ndarray:
    """Representation matrix T(g) of one operation in the Cartesian AO basis.

    ``(T c)`` transforms MO coefficient vectors; column mu of T holds the
    image of basis function mu.  Raises if the operation does not map the
    atomic framework onto itself.
    """
    coords = np.asarray(coords, dtype=float)
    imgs = _apply_flip(op_mask, coords)
    # atom permutation
    perm = np.full(len(coords), -1, dtype=int)
    for i, pos in enumerate(imgs):
        d = np.linalg.norm(coords - pos[None, :], axis=1)
        j = int(np.argmin(d))
        if d[j] > tol:
            raise ValueError(
                f"operation {_OP_NAMES[op_mask]} does not preserve the geometry"
            )
        perm[i] = j
    n = basis.nbf
    T = np.zeros((n, n))
    for mu, bf in enumerate(basis.functions):
        i, j, k = bf.lmn
        sign = 1.0
        if op_mask & 1 and i % 2:
            sign = -sign
        if op_mask & 2 and j % 2:
            sign = -sign
        if op_mask & 4 and k % 2:
            sign = -sign
        # find the matching function on the image atom
        target_atom = perm[bf.atom_index] if bf.atom_index >= 0 else bf.atom_index
        found = False
        for nu, bf2 in enumerate(basis.functions):
            if (
                bf2.atom_index == target_atom
                and bf2.lmn == bf.lmn
                and bf2.shell_index != -1
                and basis.functions[nu].shell_index
                == _image_shell(basis, bf.shell_index, bf.atom_index, target_atom)
            ):
                T[nu, mu] = sign
                found = True
                break
        if not found:
            raise RuntimeError("no image basis function found; basis not symmetric")
    return T


def _image_shell(
    basis: BasisSet, shell_index: int, atom_index: int, target_atom: int
) -> int:
    """Index of the shell on target_atom matching shell_index on atom_index.

    Assumes identical shell layout per symmetry-equivalent atom (true for the
    per-atom basis builders in this package): the image shell has the same
    ordinal position among its atom's shells.
    """
    src_shells = [i for i, sh in enumerate(basis.shells) if sh.atom_index == atom_index]
    dst_shells = [i for i, sh in enumerate(basis.shells) if sh.atom_index == target_atom]
    pos = src_shells.index(shell_index)
    return dst_shells[pos]


def assign_orbital_irreps(
    group: PointGroup,
    basis: BasisSet,
    coords: np.ndarray,
    C: np.ndarray,
    S: np.ndarray,
    orbital_energies: np.ndarray | None = None,
    degeneracy_tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetrize molecular orbitals and assign irrep ids.

    Returns (C_sym, irreps).  Orbitals within a degenerate energy block are
    rotated so each one transforms as a single irrep; non-degenerate orbitals
    of a symmetric Fock operator already do.
    """
    nmo = C.shape[1]
    Ts = [ao_representation(basis, coords, g) for g in group.ops]
    if orbital_energies is None:
        blocks = [[i] for i in range(nmo)]
    else:
        blocks = []
        cur = [0]
        for i in range(1, nmo):
            if abs(orbital_energies[i] - orbital_energies[i - 1]) < degeneracy_tol:
                cur.append(i)
            else:
                blocks.append(cur)
                cur = [i]
        blocks.append(cur)
    C_out = C.copy()
    irreps = np.full(nmo, -1, dtype=int)
    for block in blocks:
        sub = C_out[:, block]
        # per-irrep projector expressed in the block subspace
        remaining = list(range(len(block)))
        new_cols = []
        new_irr = []
        for r in range(group.n_irreps):
            if not remaining:
                break
            P = np.zeros((len(block), len(block)))
            for gi, T in enumerate(Ts):
                chi = group.character(r, gi)
                P += chi * (sub.T @ S @ (T @ sub))
            P /= len(group.ops)
            evals, evecs = np.linalg.eigh(0.5 * (P + P.T))
            for col in range(len(block)):
                if evals[col] > 0.5:
                    vec = sub @ evecs[:, col]
                    nrm = float(vec @ S @ vec)
                    new_cols.append(vec / np.sqrt(nrm))
                    new_irr.append(r)
        if len(new_cols) != len(block):
            raise ValueError(
                "could not symmetrize orbital block; geometry/group mismatch?"
            )
        for k, i in enumerate(block):
            C_out[:, i] = new_cols[k]
            irreps[i] = new_irr[k]
    # verify
    for gi, T in enumerate(Ts):
        diag = np.einsum("mi,mn,ni->i", C_out, S @ T, C_out)
        expected = np.array(
            [group.character(irreps[i], gi) for i in range(nmo)], dtype=float
        )
        if not np.allclose(diag, expected, atol=1e-6):
            raise ValueError("orbital symmetrization failed verification")
    return C_out, irreps
