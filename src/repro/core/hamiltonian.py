"""Slater-Condon matrix elements, dense Hamiltonian builds, and diagonals.

The dense build is the *independent* validation reference for the sigma
kernels: it computes every <I|H|J> element directly from the Slater-Condon
rules on bitmask determinants, with signs obtained by explicit sequential
application of second-quantized operators.  The matrix-free kernels in
``sigma_moc``/``sigma_dgemm`` must agree with it to machine precision.
"""

from __future__ import annotations

import numpy as np

from ..scf.mo import MOIntegrals
from .strings import StringSpace

__all__ = [
    "apply_annihilation",
    "apply_creation",
    "det_matrix_element",
    "build_dense_hamiltonian",
    "hamiltonian_diagonal",
]


def _popcount_below(mask: int, orb: int) -> int:
    return bin(mask & ((1 << orb) - 1)).count("1")


def apply_annihilation(mask: int, orb: int) -> tuple[int, int]:
    """Apply a_orb; returns (new_mask, sign) with sign 0 if vanishing."""
    bit = 1 << orb
    if not mask & bit:
        return mask, 0
    sign = -1 if _popcount_below(mask, orb) & 1 else 1
    return mask & ~bit, sign


def apply_creation(mask: int, orb: int) -> tuple[int, int]:
    """Apply a+_orb; returns (new_mask, sign) with sign 0 if vanishing."""
    bit = 1 << orb
    if mask & bit:
        return mask, 0
    sign = -1 if _popcount_below(mask, orb) & 1 else 1
    return mask | bit, sign


def _occ_list(mask: int) -> list[int]:
    out = []
    p = 0
    while mask:
        if mask & 1:
            out.append(p)
        mask >>= 1
        p += 1
    return out


def _single_sign(bra: int, ket: int, p: int, h: int) -> int:
    """Sign of <bra| a+_p a_h |ket> (assumed non-zero)."""
    m, s1 = apply_annihilation(ket, h)
    m, s2 = apply_creation(m, p)
    assert m == bra
    return s1 * s2


def det_matrix_element(
    mo: MOIntegrals, ia: int, ib: int, ja: int, jb: int
) -> float:
    """<(ia, ib)| H |(ja, jb)> for determinant bitmask pairs (no e_core)."""
    h, g = mo.h, mo.g
    da = bin(ia ^ ja).count("1") // 2
    db = bin(ib ^ jb).count("1") // 2
    n_diff = da + db
    if n_diff > 2:
        return 0.0

    if n_diff == 0:
        occ_a = _occ_list(ia)
        occ_b = _occ_list(ib)
        val = sum(h[p, p] for p in occ_a) + sum(h[p, p] for p in occ_b)
        for i, p in enumerate(occ_a):
            for q in occ_a[:i]:
                val += g[p, p, q, q] - g[p, q, q, p]
        for i, p in enumerate(occ_b):
            for q in occ_b[:i]:
                val += g[p, p, q, q] - g[p, q, q, p]
        for p in occ_a:
            for q in occ_b:
                val += g[p, p, q, q]
        return float(val)

    if n_diff == 1:
        if da == 1:
            same, same_j, other_occ = ia, ja, _occ_list(ib)
        else:
            same, same_j, other_occ = ib, jb, _occ_list(ia)
        hole = _occ_list(same_j & ~same)[0]
        part = _occ_list(same & ~same_j)[0]
        sign = _single_sign(same, same_j, part, hole)
        occ_same = _occ_list(same_j)
        val = h[part, hole]
        for k in occ_same:
            if k == hole:
                continue
            val += g[part, hole, k, k] - g[part, k, k, hole]
        for k in other_occ:
            val += g[part, hole, k, k]
        return float(sign * val)

    # n_diff == 2
    if da == 2 or db == 2:
        bra, ket = (ia, ja) if da == 2 else (ib, jb)
        holes = _occ_list(ket & ~bra)
        parts = _occ_list(bra & ~ket)
        h1, h2 = holes
        p1, p2 = parts
        m, s1 = apply_annihilation(ket, h1)
        m, s2 = apply_annihilation(m, h2)
        m, s3 = apply_creation(m, p2)
        m, s4 = apply_creation(m, p1)
        assert m == bra
        sign = s1 * s2 * s3 * s4
        return float(sign * (g[p1, h1, p2, h2] - g[p1, h2, p2, h1]))

    # one alpha single, one beta single
    hole_a = _occ_list(ja & ~ia)[0]
    part_a = _occ_list(ia & ~ja)[0]
    hole_b = _occ_list(jb & ~ib)[0]
    part_b = _occ_list(ib & ~jb)[0]
    sa = _single_sign(ia, ja, part_a, hole_a)
    sb = _single_sign(ib, jb, part_b, hole_b)
    return float(sa * sb * g[part_a, hole_a, part_b, hole_b])


def build_dense_hamiltonian(
    mo: MOIntegrals, space_a: StringSpace, space_b: StringSpace
) -> np.ndarray:
    """Dense H over the full determinant grid, row index = ia * nb + ib.

    Validation-only: dimensions beyond a few thousand will be slow/large.
    """
    na, nb = space_a.size, space_b.size
    dim = na * nb
    H = np.zeros((dim, dim))
    ma, mb = space_a.masks, space_b.masks
    for ia in range(na):
        for ib in range(nb):
            row = ia * nb + ib
            for ja in range(na):
                dalpha = bin(int(ma[ia]) ^ int(ma[ja])).count("1")
                if dalpha > 4:
                    continue
                for jb in range(nb):
                    col = ja * nb + jb
                    if col > row:
                        continue
                    val = det_matrix_element(
                        mo, int(ma[ia]), int(mb[ib]), int(ma[ja]), int(mb[jb])
                    )
                    H[row, col] = val
                    H[col, row] = val
    return H


def hamiltonian_diagonal(
    mo: MOIntegrals, space_a: StringSpace, space_b: StringSpace
) -> np.ndarray:
    """Diagonal <I|H|I> for all determinants, shape (na, nb) (no e_core).

    Vectorized through occupancy matrices:

        diag(Ia, Ib) = 1a.hdiag + 1b.hdiag
                     + 1/2 1a.(J-K).1a + 1/2 1b.(J-K).1b + 1a.J.1b

    where J_pq = (pp|qq), K_pq = (pq|qp) and 1a/1b are occupancy vectors.
    """
    hdiag = np.diag(mo.h)
    Jm = np.einsum("ppqq->pq", mo.g)
    Km = np.einsum("pqqp->pq", mo.g)
    Oa = space_a.occupancy_matrix()
    Ob = space_b.occupancy_matrix()
    one_body = (Oa @ hdiag)[:, None] + (Ob @ hdiag)[None, :]
    JK = Jm - Km
    same_a = 0.5 * np.einsum("ip,pq,iq->i", Oa, JK, Oa, optimize=True)
    same_b = 0.5 * np.einsum("ip,pq,iq->i", Ob, JK, Ob, optimize=True)
    # the p = q self-terms cancel in J - K exactly, so no correction needed
    cross = Oa @ Jm @ Ob.T
    return one_body + same_a[:, None] + same_b[None, :] + cross
