"""Block (multi-root) Davidson for several lowest eigenpairs.

Extension beyond the paper (which targets the lowest root only): a blocked
subspace iteration returning the k lowest eigenstates - used to resolve
excited states and spin gaps, e.g. the CN+ singlet-triplet splitting that
makes the paper's Table-2 system so hard for single-vector solvers.

``sigma_fn`` may be any callable; when it is a
:class:`repro.core.operator.HamiltonianOperator` (anything exposing
``apply_batch``) the block's outstanding sigma vectors are evaluated in one
*batched* kernel sweep per iteration - the mixed-spin and same-spin DGEMMs
run once with k-times-wider right-hand sides instead of k separate sweeps,
with bitwise-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .model_space import DiagonalPreconditioner

__all__ = ["MultiRootResult", "davidson_multiroot"]


@dataclass
class MultiRootResult:
    """k lowest eigenpairs from a block Davidson iteration."""

    energies: np.ndarray  # (k,)
    vectors: list[np.ndarray]
    converged: bool
    n_iterations: int
    n_sigma: int
    residual_norms: np.ndarray  # (k,) final residuals
    history: list[np.ndarray] = field(default_factory=list)


def _orthonormalize(vecs: list[np.ndarray], against: list[np.ndarray]) -> list[np.ndarray]:
    out = []
    basis = list(against)
    for v in vecs:
        w = v.copy()
        for _ in range(2):
            for b in basis:
                w -= (b @ w) * b
        nrm = np.linalg.norm(w)
        if nrm > 1e-10:
            w /= nrm
            out.append(w)
            basis.append(w)
    return out


def davidson_multiroot(
    sigma_fn: Callable[[np.ndarray], np.ndarray],
    guesses: list[np.ndarray],
    precond: DiagonalPreconditioner,
    *,
    n_roots: int | None = None,
    energy_tol: float = 1e-9,
    residual_tol: float = 1e-5,
    max_iterations: int = 80,
    max_subspace: int | None = None,
    store=None,
) -> MultiRootResult:
    """Block Davidson for the ``n_roots`` lowest eigenpairs.

    ``guesses`` seed the subspace (at least n_roots of them); preconditioned
    residuals of all unconverged roots are appended every iteration.

    ``store`` (a :class:`repro.core.vectors.CIVectorStore` template) holds
    the block subspace - the k-times-larger version of Davidson's memory
    hog; values are copied in bit-for-bit so a ``DenseStore`` run matches
    ``store=None`` exactly.
    """
    if not guesses:
        raise ValueError("need at least one guess vector")
    shape = guesses[0].shape
    k = n_roots or len(guesses)
    if len(guesses) < k:
        raise ValueError("need at least n_roots guess vectors")
    max_subspace = max_subspace or max(8 * k, 24)
    held: list = []  # store-backed buffers keeping subspace payloads alive

    def _hold(x: np.ndarray) -> np.ndarray:
        if store is None:
            return x
        buf = store.allocate()
        buf.write(x)
        held.append(buf)
        return buf.as_ndarray().ravel()

    def _release() -> list:
        drop, held[:] = held[:], []
        return drop

    basis: list[np.ndarray] = [
        _hold(b) for b in _orthonormalize([g.ravel() for g in guesses], [])
    ]
    if len(basis) < k:
        raise ValueError("guess vectors are linearly dependent")
    sigmas: list[np.ndarray] = []
    prev = np.full(k, np.inf)
    n_sigma = 0
    history: list[np.ndarray] = []
    theta = np.zeros(k)
    ritz = [basis[i] for i in range(k)]
    rnorms = np.full(k, np.inf)

    apply_batch = getattr(sigma_fn, "apply_batch", None)

    for it in range(1, max_iterations + 1):
        if apply_batch is not None and len(basis) - len(sigmas) > 1:
            pending = np.stack(
                [b.reshape(shape) for b in basis[len(sigmas):]]
            )
            batch = apply_batch(pending)
            sigmas.extend(_hold(row) for row in batch.reshape(batch.shape[0], -1))
            n_sigma += batch.shape[0]
        while len(sigmas) < len(basis):
            sigmas.append(_hold(sigma_fn(basis[len(sigmas)].reshape(shape)).ravel()))
            n_sigma += 1
        m = len(basis)
        Hs = np.empty((m, m))
        for i in range(m):
            for j in range(m):
                Hs[i, j] = basis[i] @ sigmas[j]
        Hs = 0.5 * (Hs + Hs.T)
        evals, evecs = np.linalg.eigh(Hs)
        theta = evals[:k]
        history.append(theta.copy())
        ritz = []
        h_ritz = []
        for r in range(k):
            c = evecs[:, r]
            ritz.append(sum(ci * b for ci, b in zip(c, basis)))
            h_ritz.append(sum(ci * s for ci, s in zip(c, sigmas)))
        residuals = [h_ritz[r] - theta[r] * ritz[r] for r in range(k)]
        rnorms = np.array([np.linalg.norm(r) for r in residuals])
        if np.all(np.abs(theta - prev) < energy_tol) and np.all(rnorms < residual_tol):
            for buf in _release():
                buf.close()
            return MultiRootResult(
                energies=theta,
                vectors=[v.reshape(shape) for v in ritz],
                converged=True,
                n_iterations=it,
                n_sigma=n_sigma,
                residual_norms=rnorms,
                history=history,
            )
        prev = theta.copy()

        new = []
        for r in range(k):
            if rnorms[r] < residual_tol:
                continue
            t = precond.solve(residuals[r].reshape(shape), float(theta[r])).ravel()
            new.append(t)
        if m + len(new) > max_subspace:
            # collapse to the Ritz vectors, keeping the new directions;
            # store-backed buffers of the abandoned subspace are reclaimed
            old = _release()
            basis = [_hold(b) for b in _orthonormalize(ritz, [])]
            sigmas = []
            for buf in old:
                buf.close()
        added = _orthonormalize(new, basis)
        if not added:
            break
        basis.extend(_hold(a) for a in added)

    for buf in _release():
        buf.close()
    return MultiRootResult(
        energies=theta,
        vectors=[v.reshape(shape) for v in ritz],
        converged=bool(np.all(rnorms < residual_tol)),
        n_iterations=max_iterations,
        n_sigma=n_sigma,
        residual_norms=rnorms,
        history=history,
    )
