"""Iterate guards: fail fast and loudly instead of converging to garbage.

Two failure modes matter for long CI campaigns:

* **non-finite iterates** - a NaN/Inf smuggled into sigma (bit-flipped
  payload, overflow in a kernel) silently poisons every later iteration;
  the energy and residual norm are O(1) sentinels for the whole vector, so
  checking them each iteration is free,
* **energy divergence** - the variational energy can only go down for exact
  arithmetic, so an iterate whose energy rises far above the best seen so
  far means the iteration is broken (corrupt vector, bad step), not slowly
  converging.  The watchdog threshold is generous (many Hartree) - it only
  exists to kill clearly-wrecked campaigns, never to second-guess normal
  non-monotonic single-vector convergence.

Detections are counted under ``faults.detected.*`` in the telemetry's
metrics registry; combined with checkpointing, a tripped guard costs one
restart instead of a silently wrong energy.
"""

from __future__ import annotations

import math

__all__ = [
    "IterateGuard",
    "SolverGuardError",
    "NonFiniteIterateError",
    "EnergyDivergenceError",
]

DEFAULT_DIVERGENCE_THRESHOLD = 100.0  # Hartree above the best energy seen


class SolverGuardError(RuntimeError):
    """An iterate guard tripped; ``iteration`` is the offending iteration."""

    def __init__(self, message: str, iteration: int):
        super().__init__(message)
        self.iteration = iteration


class NonFiniteIterateError(SolverGuardError):
    """NaN or Inf showed up in the iterate's energy or residual."""


class EnergyDivergenceError(SolverGuardError):
    """The energy rose implausibly far above the best value seen."""


class IterateGuard:
    """Per-solve watchdog; call :meth:`check` once per iteration.

    ``divergence_threshold=None`` disables the divergence watchdog (the
    non-finite check has no tunable and is always on).
    """

    def __init__(
        self,
        divergence_threshold: float | None = DEFAULT_DIVERGENCE_THRESHOLD,
        telemetry=None,
    ):
        self.divergence_threshold = divergence_threshold
        self.telemetry = telemetry
        self._best = math.inf

    def _count(self, kind: str) -> None:
        if self.telemetry:
            self.telemetry.registry.counter(f"faults.detected.{kind}").inc()

    def check(self, iteration: int, energy: float, rnorm: float) -> None:
        if not (math.isfinite(energy) and math.isfinite(rnorm)):
            self._count("nonfinite_iterate")
            raise NonFiniteIterateError(
                f"iteration {iteration}: non-finite iterate "
                f"(E={energy!r}, |r|={rnorm!r}) - payload corruption or overflow",
                iteration,
            )
        if (
            self.divergence_threshold is not None
            and energy - self._best > self.divergence_threshold
        ):
            self._count("energy_divergence")
            raise EnergyDivergenceError(
                f"iteration {iteration}: energy {energy:.6f} rose "
                f"{energy - self._best:.3f} Eh above the best seen "
                f"({self._best:.6f}) - iteration is broken, aborting",
                iteration,
            )
        if energy < self._best:
            self._best = energy
