"""The paper's automatically adjusted single-vector diagonalization method.

The new approximation is built with an adaptive step length (eq. 13),

    C(n+1) = S(n) (C(n) + lambda(n) t(n)),

where t(n) is the Olsen correction.  The optimal step would come from
diagonalizing the 2x2 matrix in span{C(n), t(n)}, but its (t, H t) element
cannot be formed without storing a second Hamiltonian product - exactly the
memory/IO cost the method is designed to avoid.  The paper's device (eqs.
14-15): at iteration n+1 the *already computed* energy E(n+1) reveals the
missing element of iteration n,

    <t|H|t> = ( E(n+1)/S^2 - E(n) - 2 lambda <C|H|t> ) / lambda^2,

so the 2x2 problem of iteration n is diagonalized retroactively and its
optimal mixing ratio becomes the step length of iteration n+1:
lambda(n+1) = lambda_opt(n).  The first iteration uses a crude estimate
<t|H0|t> from the preconditioner.

Only C, sigma and scratch the size of one CI vector are alive at any time.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .checkpoint import Checkpointer, CheckpointState
from .guards import DEFAULT_DIVERGENCE_THRESHOLD, IterateGuard
from .model_space import DiagonalPreconditioner
from .olsen import SolveResult, olsen_correction
from .operator import SigmaFn

__all__ = ["auto_adjusted_solve"]


def _optimal_step(
    e_cc: float, e_ct: float, e_tt: float, t_norm2: float, on_fallback=None
) -> float:
    """Mixing ratio of the lowest root of the 2x2 pencil in span{C, t}.

    Solves [[e_cc, e_ct], [e_ct, e_tt]] x = mu [[1, 0], [0, t_norm2]] x and
    returns lambda = x_t / x_C for the lowest root mu.

    When the 2x2 solve is ill-conditioned - non-finite inputs (the eq. 14
    retroactive recovery divides by lambda^2), a numerically vanishing
    correction norm, an eigensolver failure, or a lowest root with no C
    component - the method degrades to a plain Olsen step (lambda = 1) and
    reports it through ``on_fallback(reason)``.
    """
    if not all(map(np.isfinite, (e_cc, e_ct, e_tt, t_norm2))) or t_norm2 <= 0.0:
        if on_fallback:
            on_fallback("non_finite_2x2")
        return 1.0
    A = np.array([[e_cc, e_ct], [e_ct, e_tt]])
    B = np.array([[1.0, 0.0], [0.0, t_norm2]])
    try:
        evals, evecs = scipy.linalg.eigh(A, B)
    except (np.linalg.LinAlgError, ValueError):
        if on_fallback:
            on_fallback("eigh_failed")
        return 1.0
    vec = evecs[:, 0]
    if abs(vec[0]) < 1e-12:
        if on_fallback:
            on_fallback("degenerate_root")
        return 1.0
    return float(vec[1] / vec[0])


def auto_adjusted_solve(
    sigma_fn: SigmaFn,
    guess: np.ndarray,
    precond: DiagonalPreconditioner,
    *,
    energy_tol: float = 1e-10,
    residual_tol: float = 1e-5,
    max_iterations: int = 60,
    max_step: float = 4.0,
    telemetry=None,
    checkpoint: Checkpointer | None = None,
    divergence_threshold: float | None = DEFAULT_DIVERGENCE_THRESHOLD,
    store=None,
) -> SolveResult:
    """Automatically adjusted single-vector iteration (paper section 2.2).

    ``telemetry`` (a :class:`repro.obs.Telemetry`) records one
    ``solver.iterations`` sample per iteration (energy, residual norm and
    the step length lambda used to *reach* the current iterate); None
    disables all instrumentation.

    ``checkpoint`` (a :class:`Checkpointer`) persists the method's whole
    restart state - the CI vector plus the eq. 14-15 scalars - after each
    iteration, which is exactly the paper's selling point: one vector is
    all a multi-week campaign needs to survive.  A resumed solve replays
    the exact iteration sequence of an uninterrupted one.  Ill-conditioned
    2x2 subspace solves fall back to a plain Olsen step (lambda = 1),
    counted under ``faults.recovered.lambda_fallback``.

    ``store`` (a :class:`repro.core.vectors.CIVectorStore` template) keeps
    the current iterate in store-backed memory between iterations; values
    are copied in bit-for-bit, so a ``DenseStore`` run is bitwise-identical
    to ``store=None``.  Checkpoints written under a store carry its kind.
    """
    ck_kind = store.kind if store is not None else "dense"
    C_buf = store.allocate() if store is not None else None

    def _hold(x: np.ndarray) -> np.ndarray:
        if C_buf is None:
            return x
        C_buf.write(x)
        return C_buf.as_ndarray()

    def _emit(x: np.ndarray) -> np.ndarray:
        """Materialize the result and release the store buffer."""
        if C_buf is None:
            return x
        out = np.array(x)
        C_buf.close()
        return out

    C = guess / np.linalg.norm(guess)
    energies: list[float] = []
    rnorms: list[float] = []
    n_sigma = 0

    prev: dict | None = None  # state of the previous iteration
    lam = 1.0
    e = 0.0
    start_it = 0
    if checkpoint is not None:
        state = checkpoint.restore("auto", store_kind=ck_kind)
        if state is not None:
            C = np.asarray(state.vector).reshape(guess.shape)
            prev = state.meta.get("prev")
            lam = state.meta.get("lambda", 1.0)
            energies = list(state.energies)
            rnorms = list(state.residual_norms)
            n_sigma = state.n_sigma
            start_it = state.iteration
            if energies:
                # seed the result energy so a resume whose iteration budget
                # is already exhausted reports the checkpointed energy
                # instead of a fresh 0.0
                e = float(energies[-1])
    C = _hold(C)

    def on_fallback(reason: str) -> None:
        if telemetry:
            telemetry.registry.counter("faults.recovered.lambda_fallback").inc()
            telemetry.registry.counter(f"faults.detected.{reason}").inc()

    guard = IterateGuard(divergence_threshold, telemetry=telemetry)
    last_state: CheckpointState | None = None
    last_saved = True
    for it in range(start_it + 1, max_iterations + 1):
        sigma = sigma_fn(C)
        n_sigma += 1
        e = float(np.vdot(C, sigma))
        rnorm = float(np.linalg.norm(sigma - e * C))
        energies.append(e)
        rnorms.append(rnorm)
        if telemetry:
            telemetry.solver_iteration("auto", it, e, rnorm, lam=lam)
        guard.check(it, e, rnorm)
        if (
            prev is not None
            and abs(e - prev["energy"]) < energy_tol
            and rnorm < residual_tol
        ):
            if checkpoint is not None:
                # converged states may fall off the ``every`` grid; force
                # the save so the final answer is always durable
                checkpoint.maybe_save(
                    CheckpointState(
                        method="auto",
                        iteration=it,
                        n_sigma=n_sigma,
                        vector=C,
                        meta={"prev": prev, "lambda": lam},
                        energies=energies,
                        residual_norms=rnorms,
                        store_kind=ck_kind,
                    ),
                    force=True,
                )
            return SolveResult(
                energy=e,
                vector=_emit(C),
                converged=True,
                n_iterations=it,
                n_sigma=n_sigma,
                energies=energies,
                residual_norms=rnorms,
                method="auto",
            )

        t = olsen_correction(C, sigma, e, precond)
        t_norm2 = float(np.vdot(t, t))
        e_ct = float(np.vdot(sigma, t))  # <C|H|t>

        if prev is None:
            # crude first-iteration estimate: <t|H|t> ~ <t|H0|t>
            e_tt = float(np.vdot(t, precond.apply_h0(t)))
            lam = _optimal_step(e, e_ct, e_tt, max(t_norm2, 1e-300), on_fallback)
        else:
            # eq. 14: recover <t|H|t> of the *previous* iteration from the
            # current energy, then eq. 15: lambda(n+1) = lambda_opt(n).
            lp = prev["lambda"]
            s2 = prev["s2"]  # S^2 of the previous normalization
            e_tt_prev = (e / s2 - prev["energy"] - 2.0 * lp * prev["e_ct"]) / (lp * lp)
            lam = _optimal_step(
                prev["energy"], prev["e_ct"], e_tt_prev, prev["t_norm2"], on_fallback
            )
        if not np.isfinite(lam) or lam == 0.0:
            on_fallback("degenerate_step")
            lam = 1.0
        lam = float(np.clip(lam, -max_step, max_step))

        new = C + lam * t
        nrm2 = 1.0 + lam * lam * t_norm2  # <C|t> = 0
        prev = {
            "energy": e,
            "e_ct": e_ct,
            "t_norm2": t_norm2,
            "lambda": lam,
            "s2": 1.0 / nrm2,
        }
        C = _hold(new / np.sqrt(nrm2))
        if checkpoint is not None:
            last_state = CheckpointState(
                method="auto",
                iteration=it,
                n_sigma=n_sigma,
                vector=C,
                meta={"prev": prev, "lambda": lam},
                energies=energies,
                residual_norms=rnorms,
                store_kind=ck_kind,
            )
            last_saved = checkpoint.maybe_save(last_state)

    if checkpoint is not None and last_state is not None and not last_saved:
        # the budget ran out on an off-grid iteration: keep the final state
        checkpoint.maybe_save(last_state, force=True)
    return SolveResult(
        energy=e,
        vector=_emit(C),
        converged=False,
        n_iterations=max_iterations,
        n_sigma=n_sigma,
        energies=energies,
        residual_norms=rnorms,
        method="auto",
    )
