"""Reduced density matrices of CI vectors."""

from __future__ import annotations

import numpy as np

from .problem import CIProblem

__all__ = ["one_rdm", "natural_orbitals"]


def one_rdm(problem: CIProblem, C: np.ndarray) -> np.ndarray:
    """Spin-traced one-particle density matrix gamma_pq = <C|E_pq|C>."""
    n = problem.n
    gamma = np.zeros((n, n))
    for table, mat in ((problem.singles_a, C), (problem.singles_b, C.T)):
        # <C|E_pq|C> = sum_entries sign * <C_target, C_source> over the other
        # spin's dimension
        dots = np.einsum(
            "em,em->e", mat[table.target, :], mat[table.source, :], optimize=True
        )
        np.add.at(gamma, (table.p, table.q), table.sign * dots)
    return gamma


def natural_orbitals(problem: CIProblem, C: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Natural occupation numbers (descending) and orbitals from the 1-RDM."""
    gamma = one_rdm(problem, C)
    occ, vecs = np.linalg.eigh(0.5 * (gamma + gamma.T))
    order = np.argsort(occ)[::-1]
    return occ[order], vecs[:, order]
