"""Memory-footprint model: why the single-vector method exists.

The paper (section 2.2): "The limiting factor in FCI calculations is the
storage of subspace vectors in the iterative Davidson diagonalization
method.  On most supercomputers, the I/O bandwidth is so limited that
storing the subspace vectors on disk implies a huge waste of computing
resources."

This module quantifies that argument for any CI dimension and machine: the
distributed-vector storage of each method, the per-MSP footprint, and the
virtual time an I/O-backed Davidson subspace would cost at measured
filesystem rates - the numbers that make 65 billion determinants feasible
only for the single-vector scheme.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from ..x1.machine import X1Config

__all__ = ["MethodFootprint", "method_footprints", "davidson_io_penalty"]

logger = logging.getLogger(__name__)

_BYTES = 8.0


@dataclass
class MethodFootprint:
    """Vector storage of one diagonalization method."""

    method: str
    n_vectors: float  # CI-vector-equivalents held at once
    total_bytes: float
    bytes_per_msp: float
    resident_bytes: float = -1.0  # RAM actually pinned (storage-backend aware)

    def __post_init__(self) -> None:
        if self.resident_bytes < 0:
            # dense storage: everything the method holds is resident
            self.resident_bytes = self.total_bytes

    @property
    def resident_bytes_per_msp(self) -> float:
        """RAM pinned per MSP: the storage-backend-aware budgeting figure."""
        return self.resident_bytes * self.bytes_per_msp / max(self.total_bytes, 1e-300)

    def fits(self, memory_per_msp: float) -> bool:
        """Whether the *resident* per-MSP footprint fits the given RAM.

        Pre-storage-layer this compared the full logical footprint; with an
        out-of-core backend only the pinned fraction competes for RAM.
        """
        return self.resident_bytes_per_msp <= memory_per_msp


def method_footprints(
    ci_dimension: float,
    n_msps: int,
    *,
    davidson_subspace: int = 12,
    working_copies: float = 1.0,
    store_kind: str = "dense",
) -> list[MethodFootprint]:
    """Storage of Davidson vs Olsen-type vs auto single-vector methods.

    Davidson holds the basis AND its sigma images (2 x subspace); every
    single-vector scheme holds C, sigma and one correction scratch.
    ``working_copies`` adds the gather/update work area every method needs.

    ``store_kind`` selects the CI-vector storage backend the budget should
    assume (see :mod:`repro.core.vectors`).  The *logical* footprint is the
    same for every backend; what changes is ``resident_bytes``, the RAM a
    method actually pins: dense pins everything, while "mmap" keeps the
    held vectors in reclaimable page cache and pins only the
    ``working_copies`` scratch - the figure
    :meth:`~repro.core.plans.SigmaPlan.default_block_columns` subtracts
    from its budget.
    """
    if ci_dimension <= 0 or n_msps < 1:
        raise ValueError("need a positive CI dimension and MSP count")
    rows = []
    for method, vectors in [
        ("davidson (subspace m=%d)" % davidson_subspace, 2.0 * davidson_subspace),
        ("olsen single-vector", 3.0),
        ("auto single-vector (paper)", 3.0),
    ]:
        n_vec = vectors + working_copies
        total = n_vec * ci_dimension * _BYTES
        if store_kind == "mmap":
            # held vectors live in page cache; only working scratch is pinned
            resident = working_copies * ci_dimension * _BYTES
        else:
            resident = total
        rows.append(
            MethodFootprint(
                method=method,
                n_vectors=n_vec,
                total_bytes=total,
                bytes_per_msp=total / n_msps,
                resident_bytes=resident,
            )
        )
    logger.debug(
        "footprints for dim=%.3g on %d MSPs: %s",
        ci_dimension,
        n_msps,
        [(r.method, r.bytes_per_msp) for r in rows],
    )
    return rows


def davidson_io_penalty(
    ci_dimension: float,
    config: X1Config,
    *,
    davidson_subspace: int = 12,
    n_iterations: int = 25,
) -> float:
    """Seconds of filesystem traffic for a disk-backed Davidson subspace.

    Per iteration the subspace method must stream the basis and sigma
    vectors (read) and append the new pair (write); at the paper's measured
    293/246 MB/s shared-filesystem rates this is the "huge waste of
    computing resources" the single-vector method eliminates.
    """
    vec_bytes = ci_dimension * _BYTES
    per_iter = davidson_subspace * vec_bytes / config.io_read_bandwidth
    per_iter += 2.0 * vec_bytes / config.io_write_bandwidth
    return per_iter * n_iterations
