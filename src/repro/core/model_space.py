"""Model-space preconditioner for the single-vector and Davidson solvers.

The paper (section 4): "In all the calculations a model space is selected to
improve the convergence.  Inside the model space the exact Hamiltonian is
used to compute the correction vector; outside the model space the diagonal
elements are used."

Concretely this is an approximation H0 of H that equals the exact Hamiltonian
block over the ``size`` determinants with the lowest diagonal elements and
diag(H) elsewhere; ``solve`` applies (H0 - shift)^-1 to a CI vector.
"""

from __future__ import annotations

import numpy as np

from .hamiltonian import det_matrix_element
from .problem import CIProblem

__all__ = ["ModelSpacePreconditioner", "DiagonalPreconditioner"]


class DiagonalPreconditioner:
    """Plain Davidson preconditioner: H0 = diag(H)."""

    def __init__(self, problem: CIProblem, *, floor: float = 1e-8):
        self.problem = problem
        self.diag = problem.diagonal
        self.floor = floor

    def solve(self, R: np.ndarray, shift: float) -> np.ndarray:
        """(H0 - shift)^-1 R, with small denominators floored."""
        den = self.diag - shift
        den = np.where(np.abs(den) < self.floor, np.sign(den) * self.floor + (den == 0) * self.floor, den)
        return R / den

    def apply_h0(self, X: np.ndarray) -> np.ndarray:
        """H0 X (used for the crude first-iteration <t|H|t> estimate)."""
        return self.diag * X


class ModelSpacePreconditioner(DiagonalPreconditioner):
    """H0 = exact H inside a small model space, diag(H) outside."""

    def __init__(self, problem: CIProblem, size: int = 50, *, floor: float = 1e-8):
        super().__init__(problem, floor=floor)
        na, nb = problem.shape
        diag = self.diag.ravel().copy()
        mask = problem.symmetry_mask
        if mask is not None:
            # never select symmetry-forbidden determinants
            diag = np.where(mask.ravel(), diag, np.inf)
        size = min(size, int(np.isfinite(diag).sum()))
        if size < 1:
            raise ValueError("model space must contain at least one determinant")
        sel = np.argsort(diag, kind="stable")[:size]
        self.selection = np.sort(sel)
        ia = self.selection // nb
        ib = self.selection % nb
        ma, mb = problem.space_a.masks, problem.space_b.masks
        H = np.empty((size, size))
        for i in range(size):
            for j in range(i + 1):
                v = det_matrix_element(
                    problem.mo,
                    int(ma[ia[i]]),
                    int(mb[ib[i]]),
                    int(ma[ia[j]]),
                    int(mb[ib[j]]),
                )
                H[i, j] = v
                H[j, i] = v
        self.h_model = H
        self.size = size

    def solve(self, R: np.ndarray, shift: float) -> np.ndarray:
        out = super().solve(R, shift)
        flat = out.ravel()
        rflat = R.ravel()
        A = self.h_model - shift * np.eye(self.size)
        try:
            xm = np.linalg.solve(A, rflat[self.selection])
        except np.linalg.LinAlgError:
            # singular shift: fall back to regularized solve
            xm = np.linalg.lstsq(A, rflat[self.selection], rcond=None)[0]
        flat[self.selection] = xm
        return out

    def apply_h0(self, X: np.ndarray) -> np.ndarray:
        out = self.diag * X
        flat = out.ravel()
        xflat = X.ravel()
        flat[self.selection] = self.h_model @ xflat[self.selection]
        return out

    def ground_state_guess(self) -> np.ndarray:
        """Initial CI vector: lowest eigenvector of the model-space block."""
        evals, evecs = np.linalg.eigh(self.h_model)
        guess = np.zeros(self.problem.dimension)
        guess[self.selection] = evecs[:, 0]
        return guess.reshape(self.problem.shape)
