"""Excitation tables: the coupling-coefficient machinery of the FCI kernels.

Two tables are built per string space:

* :class:`SingleExcitationTable` - all non-vanishing E_pq = a+_p a_q actions,
  including the diagonal p = q.  This is the "B" coefficient matrix of the
  paper's mixed-spin routine (eq. 4) and also drives the one-electron term.
* :class:`DoubleAnnihilationTable` - all non-vanishing a_s a_q (q > s)
  actions mapping k-electron strings to the (k-2)-electron intermediate
  space.  These are the "A"/"B" coupling matrices of the same-spin routine
  (eqs. 7-9); the same table serves the gather (annihilation) and the
  scatter (creation, read backwards) steps.

Sign conventions: orbitals are ordered ascending in the creation-operator
product defining a string, |J> = a+_{o_0} a+_{o_1} ... |vac> with
o_0 < o_1 < ...; the sign of a_q |J> is (-1)^(number of occupied orbitals
below q).

Tables are built by vectorized NumPy over whole string spaces, pyscf
``gen_linkstr_index``-style; the sign rules simplify because occupations
are stored ascending, so removing the b-th occupied orbital always costs
(-1)^b.  The original per-string Python loops are retained as
``_loop_*_arrays`` oracles so tests can pin the vectorized builders
bit-for-bit against first-principles bit twiddling.
"""

from __future__ import annotations

import numpy as np

from .strings import StringSpace

__all__ = [
    "SingleExcitationTable",
    "DoubleAnnihilationTable",
    "SingleAnnihilationTable",
]


def _popcount_below(mask: int, orb: int) -> int:
    return bin(mask & ((1 << orb) - 1)).count("1")


def _mask_lookup(space: StringSpace):
    """Return a vectorized mask -> string-index map for ``space``.

    ``space.masks`` is in lexical (rank) order, not ascending mask order, so
    lookups go through an argsort + searchsorted pair.
    """
    order = np.argsort(space.masks, kind="stable")
    sorted_masks = space.masks[order]

    def lookup(masks: np.ndarray) -> np.ndarray:
        flat = masks.ravel()
        pos = np.searchsorted(sorted_masks, flat)
        return order[pos].reshape(masks.shape)

    return lookup


def _empty_single_excitation_arrays():
    z = np.empty(0, dtype=np.int64)
    return z, z.copy(), z.copy(), z.copy(), np.empty(0, dtype=np.int8)


def _single_excitation_arrays(space: StringSpace):
    """Vectorized (source, target, p, q, sign) arrays for all E_pq entries.

    Entry order matches the reference loop: source string ascending, then q
    over the ascending occupation list, then p ascending over the orbitals
    free in mask\\{q} (which includes p = q).  For each (j, q) there are
    exactly n - k + 1 candidate p's, so every string contributes the same
    k * (n - k + 1) rows and the result is a dense reshape, no compaction.
    """
    n, k = space.n, space.k
    nstr = space.size
    if k == 0:
        return _empty_single_excitation_arrays()
    occs = space.occupations[:, :k].astype(np.int64)
    masks = space.masks
    occmat = space.occupancy_matrix().astype(np.int64)
    # exclusive prefix sum: cnt_below[j, p] = #occupied orbitals of j below p
    cnt_below = np.cumsum(occmat, axis=1) - occmat
    # ascending free orbitals of each string: exactly n - k zeros per row,
    # and nonzero() walks row-major so the reshape keeps them sorted
    free = np.nonzero(occmat == 0)[1].reshape(nstr, n - k).astype(np.int64)
    # candidate p's per (j, q): sorted(free(mask) | {q}), shape (nstr, k, n-k+1)
    cand = np.concatenate(
        [np.broadcast_to(free[:, None, :], (nstr, k, n - k)), occs[:, :, None]],
        axis=2,
    )
    cand = np.sort(cand, axis=2)
    per = n - k + 1
    # total sign parity: a_q on the b-th ascending occupied orbital costs
    # (-1)^b, and a+_p on mask\{q} costs (-1)^(cnt_below(mask, p) - [q < p])
    cb = np.take_along_axis(cnt_below, cand.reshape(nstr, k * per), axis=1)
    exponent = (
        cb.reshape(nstr, k, per)
        - (occs[:, :, None] < cand)
        + (np.arange(k, dtype=np.int64) & 1)[None, :, None]
    )
    sign = np.where(exponent & 1, -1, 1).astype(np.int8)
    m1 = masks[:, None] & ~(np.int64(1) << occs)
    m2 = m1[:, :, None] | (np.int64(1) << cand)
    target = _mask_lookup(space)(m2)
    source = np.broadcast_to(np.arange(nstr, dtype=np.int64)[:, None, None], m2.shape)
    qcol = np.broadcast_to(occs[:, :, None], m2.shape)
    return (
        np.ascontiguousarray(source).ravel(),
        target.ravel(),
        cand.ravel(),
        np.ascontiguousarray(qcol).ravel(),
        sign.ravel(),
    )


def _loop_single_excitation_arrays(space: StringSpace):
    """Reference per-string Python loop builder (oracle for tests)."""
    n, k = space.n, space.k
    nstr = space.size
    cap = nstr * (k * (n - k) + k) if k else 0
    source = np.empty(cap, dtype=np.int64)
    target = np.empty(cap, dtype=np.int64)
    pp = np.empty(cap, dtype=np.int64)
    qq = np.empty(cap, dtype=np.int64)
    sg = np.empty(cap, dtype=np.int8)
    idx = 0
    index = space._index
    masks = space.masks
    occs = space.occupations
    for j in range(nstr):
        mask = int(masks[j])
        occ = occs[j]
        for q in occ:
            q = int(q)
            m1 = mask & ~(1 << q)
            s1 = -1 if _popcount_below(mask, q) & 1 else 1
            for p in range(n):
                if m1 & (1 << p):
                    continue
                m2 = m1 | (1 << p)
                s2 = -1 if _popcount_below(m1, p) & 1 else 1
                source[idx] = j
                target[idx] = index[m2]
                pp[idx] = p
                qq[idx] = q
                sg[idx] = s1 * s2
                idx += 1
    return source[:idx], target[:idx], pp[:idx], qq[:idx], sg[:idx]


def _single_annihilation_arrays(space: StringSpace, reduced_space: StringSpace):
    """Vectorized (source, target, orb, sign) arrays for all a_p entries."""
    nstr, k = space.size, space.k
    occs = space.occupations[:, :k].astype(np.int64)
    m2 = space.masks[:, None] & ~(np.int64(1) << occs)
    target = _mask_lookup(reduced_space)(m2)
    source = np.broadcast_to(np.arange(nstr, dtype=np.int64)[:, None], m2.shape)
    sgn_b = np.where(np.arange(k, dtype=np.int64) & 1, -1, 1).astype(np.int8)
    sign = np.broadcast_to(sgn_b[None, :], m2.shape)
    return (
        np.ascontiguousarray(source).ravel(),
        target.ravel(),
        occs.ravel(),
        np.ascontiguousarray(sign).ravel(),
    )


def _loop_single_annihilation_arrays(space: StringSpace, reduced_space: StringSpace):
    """Reference per-string Python loop builder (oracle for tests)."""
    nstr, k = space.size, space.k
    source = np.empty(nstr * k, dtype=np.int64)
    target = np.empty(nstr * k, dtype=np.int64)
    orb = np.empty(nstr * k, dtype=np.int64)
    sg = np.empty(nstr * k, dtype=np.int8)
    idx = 0
    rindex = reduced_space._index
    for j in range(nstr):
        mask = int(space.masks[j])
        for p in space.occupations[j]:
            p = int(p)
            source[idx] = j
            target[idx] = rindex[mask & ~(1 << p)]
            orb[idx] = p
            sg[idx] = -1 if _popcount_below(mask, p) & 1 else 1
            idx += 1
    return source[:idx], target[:idx], orb[:idx], sg[:idx]


def _double_annihilation_arrays(space: StringSpace, reduced_space: StringSpace):
    """Vectorized (source, target, q, s, sign, pair) arrays for a_s a_q, q > s.

    With ascending occupations the sign is position-only: removing the
    bq-th orbital costs (-1)^bq, and removing the bs-th (bs < bq, so the
    first removal happened entirely above it) costs (-1)^bs, independent of
    which string the pair came from.
    """
    nstr, k = space.size, space.k
    # (bq, bs) with bs < bq, bq-major ascending - same order as the loop
    bqs, bss = np.tril_indices(k, -1)
    bqs = bqs.astype(np.int64)
    bss = bss.astype(np.int64)
    occs = space.occupations[:, :k].astype(np.int64)
    q = occs[:, bqs]
    s = occs[:, bss]
    m2 = space.masks[:, None] & ~(np.int64(1) << q) & ~(np.int64(1) << s)
    target = _mask_lookup(reduced_space)(m2)
    source = np.broadcast_to(np.arange(nstr, dtype=np.int64)[:, None], m2.shape)
    sgn_row = np.where((bqs + bss) & 1, -1, 1).astype(np.int8)
    sign = np.broadcast_to(sgn_row[None, :], m2.shape)
    pair = q * (q - 1) // 2 + s
    return (
        np.ascontiguousarray(source).ravel(),
        target.ravel(),
        q.ravel(),
        s.ravel(),
        np.ascontiguousarray(sign).ravel(),
        pair.ravel(),
    )


def _loop_double_annihilation_arrays(space: StringSpace, reduced_space: StringSpace):
    """Reference per-string Python loop builder (oracle for tests)."""
    nstr, k = space.size, space.k
    npairs_per_string = k * (k - 1) // 2
    cap = nstr * npairs_per_string
    source = np.empty(cap, dtype=np.int64)
    target = np.empty(cap, dtype=np.int64)
    qq = np.empty(cap, dtype=np.int64)
    ss = np.empty(cap, dtype=np.int64)
    sg = np.empty(cap, dtype=np.int8)
    pair = np.empty(cap, dtype=np.int64)
    idx = 0
    rindex = reduced_space._index
    masks = space.masks
    occs = space.occupations
    for j in range(nstr):
        mask = int(masks[j])
        occ = occs[j]
        for bq in range(k):
            q = int(occ[bq])
            s1 = -1 if _popcount_below(mask, q) & 1 else 1
            m1 = mask & ~(1 << q)
            for bs in range(bq):
                s = int(occ[bs])  # s < q
                s2 = -1 if _popcount_below(m1, s) & 1 else 1
                m2 = m1 & ~(1 << s)
                source[idx] = j
                target[idx] = rindex[m2]
                qq[idx] = q
                ss[idx] = s
                sg[idx] = s1 * s2
                pair[idx] = q * (q - 1) // 2 + s
                idx += 1
    return source[:idx], target[:idx], qq[:idx], ss[:idx], sg[:idx], pair[:idx]


class SingleExcitationTable:
    """All (J, I, p, q, sign) with a+_p a_q |J> = sign |I>.

    Stored as flat int arrays (``source``, ``target``, ``p``, ``q``,
    ``sign``), plus a CSR-style grouping by the (p, q) pair for kernels that
    iterate orbital pairs (the MOC mixed-spin routine).
    """

    def __init__(self, space: StringSpace):
        self.space = space
        n = space.n
        source, target, pp, qq, sg = _single_excitation_arrays(space)
        self.source = source
        self.target = target
        self.p = pp
        self.q = qq
        self.sign = sg
        self.n_entries = int(source.size)
        # group rows by (p, q)
        key = self.p * n + self.q
        order = np.argsort(key, kind="stable")
        self._order = order
        sorted_key = key[order]
        boundaries = np.searchsorted(sorted_key, np.arange(n * n + 1))
        self._pq_start = boundaries

    def rows_for_pq(self, p: int, q: int) -> np.ndarray:
        """Row indices (into the flat arrays) of all entries with this (p, q)."""
        n = self.space.n
        if not 0 <= p < n:
            raise ValueError(f"orbital p={p} out of range: expected 0 <= p < {n}")
        if not 0 <= q < n:
            raise ValueError(f"orbital q={q} out of range: expected 0 <= q < {n}")
        key = p * n + q
        lo, hi = self._pq_start[key], self._pq_start[key + 1]
        return self._order[lo:hi]

    def as_dense_operator(self, p: int, q: int) -> np.ndarray:
        """Dense matrix of E_pq in this string space (testing aid)."""
        nstr = self.space.size
        M = np.zeros((nstr, nstr))
        rows = self.rows_for_pq(p, q)
        M[self.target[rows], self.source[rows]] = self.sign[rows]
        return M


class SingleAnnihilationTable:
    """All (J, K, p, sign) with a_p |J> = sign |K>, grouped by orbital p.

    K lives in the (k-1)-electron space.  Read backwards the same table gives
    the creation map <J| a+_p |K> = sign.  Used by the spin-flip operators
    (S+/S-) and the N-1-electron intermediate bookkeeping of the trace-mode
    cost model.
    """

    def __init__(self, space: StringSpace, reduced_space: StringSpace | None = None):
        if space.k < 1:
            raise ValueError("annihilation needs at least one electron")
        self.space = space
        self.reduced_space = reduced_space or StringSpace(space.n, space.k - 1)
        if self.reduced_space.n != space.n or self.reduced_space.k != space.k - 1:
            raise ValueError("reduced space does not match")
        n = space.n
        source, target, orb, sg = _single_annihilation_arrays(
            space, self.reduced_space
        )
        self.source = source
        self.target = target
        self.orb = orb
        self.sign = sg
        self.n_entries = int(source.size)
        order = np.argsort(orb, kind="stable")
        self._order = order
        bounds = np.searchsorted(orb[order], np.arange(n + 1))
        self._orb_start = bounds

    def rows_for_orbital(self, p: int) -> np.ndarray:
        n = self.space.n
        if not 0 <= p < n:
            raise ValueError(f"orbital p={p} out of range: expected 0 <= p < {n}")
        lo, hi = self._orb_start[p], self._orb_start[p + 1]
        return self._order[lo:hi]


class DoubleAnnihilationTable:
    """All (J, K, q, s, sign) with a_s a_q |J> = sign |K>, for q > s.

    K lives in the (k-2)-electron intermediate space (attribute
    ``reduced_space``).  Pair index ``pair`` enumerates (q, s) with q > s as
    pair = q(q-1)/2 + s, matching the packed triangular layout of the
    antisymmetrized integral matrix W used by the same-spin DGEMM kernel.
    """

    def __init__(self, space: StringSpace, reduced_space: StringSpace | None = None):
        if space.k < 2:
            raise ValueError("double annihilation needs at least two electrons")
        self.space = space
        self.reduced_space = reduced_space or StringSpace(space.n, space.k - 2)
        if self.reduced_space.n != space.n or self.reduced_space.k != space.k - 2:
            raise ValueError("reduced space does not match")
        source, target, qq, ss, sg, pair = _double_annihilation_arrays(
            space, self.reduced_space
        )
        self.source = source
        self.target = target
        self.q = qq
        self.s = ss
        self.sign = sg
        self.pair = pair
        self.n_entries = int(source.size)

    @property
    def n_pairs(self) -> int:
        n = self.space.n
        return n * (n - 1) // 2
