"""Excitation tables: the coupling-coefficient machinery of the FCI kernels.

Two tables are built per string space:

* :class:`SingleExcitationTable` - all non-vanishing E_pq = a+_p a_q actions,
  including the diagonal p = q.  This is the "B" coefficient matrix of the
  paper's mixed-spin routine (eq. 4) and also drives the one-electron term.
* :class:`DoubleAnnihilationTable` - all non-vanishing a_s a_q (q > s)
  actions mapping k-electron strings to the (k-2)-electron intermediate
  space.  These are the "A"/"B" coupling matrices of the same-spin routine
  (eqs. 7-9); the same table serves the gather (annihilation) and the
  scatter (creation, read backwards) steps.

Sign conventions: orbitals are ordered ascending in the creation-operator
product defining a string, |J> = a+_{o_0} a+_{o_1} ... |vac> with
o_0 < o_1 < ...; the sign of a_q |J> is (-1)^(number of occupied orbitals
below q).
"""

from __future__ import annotations

import numpy as np

from .strings import StringSpace

__all__ = [
    "SingleExcitationTable",
    "DoubleAnnihilationTable",
    "SingleAnnihilationTable",
]


def _popcount_below(mask: int, orb: int) -> int:
    return bin(mask & ((1 << orb) - 1)).count("1")


class SingleExcitationTable:
    """All (J, I, p, q, sign) with a+_p a_q |J> = sign |I>.

    Stored as flat int arrays (``source``, ``target``, ``p``, ``q``,
    ``sign``), plus a CSR-style grouping by the (p, q) pair for kernels that
    iterate orbital pairs (the MOC mixed-spin routine).
    """

    def __init__(self, space: StringSpace):
        self.space = space
        n, k = space.n, space.k
        nstr = space.size
        cap = nstr * (k * (n - k) + k) if k else 0
        source = np.empty(cap, dtype=np.int64)
        target = np.empty(cap, dtype=np.int64)
        pp = np.empty(cap, dtype=np.int64)
        qq = np.empty(cap, dtype=np.int64)
        sg = np.empty(cap, dtype=np.int8)
        idx = 0
        index = space._index
        masks = space.masks
        occs = space.occupations
        for j in range(nstr):
            mask = int(masks[j])
            occ = occs[j]
            for q in occ:
                q = int(q)
                m1 = mask & ~(1 << q)
                s1 = -1 if _popcount_below(mask, q) & 1 else 1
                for p in range(n):
                    if m1 & (1 << p):
                        continue
                    m2 = m1 | (1 << p)
                    s2 = -1 if _popcount_below(m1, p) & 1 else 1
                    source[idx] = j
                    target[idx] = index[m2]
                    pp[idx] = p
                    qq[idx] = q
                    sg[idx] = s1 * s2
                    idx += 1
        self.source = source[:idx]
        self.target = target[:idx]
        self.p = pp[:idx]
        self.q = qq[:idx]
        self.sign = sg[:idx]
        self.n_entries = idx
        # group rows by (p, q)
        key = self.p * n + self.q
        order = np.argsort(key, kind="stable")
        self._order = order
        sorted_key = key[order]
        boundaries = np.searchsorted(sorted_key, np.arange(n * n + 1))
        self._pq_start = boundaries

    def rows_for_pq(self, p: int, q: int) -> np.ndarray:
        """Row indices (into the flat arrays) of all entries with this (p, q)."""
        n = self.space.n
        key = p * n + q
        lo, hi = self._pq_start[key], self._pq_start[key + 1]
        return self._order[lo:hi]

    def as_dense_operator(self, p: int, q: int) -> np.ndarray:
        """Dense matrix of E_pq in this string space (testing aid)."""
        nstr = self.space.size
        M = np.zeros((nstr, nstr))
        rows = self.rows_for_pq(p, q)
        M[self.target[rows], self.source[rows]] = self.sign[rows]
        return M


class SingleAnnihilationTable:
    """All (J, K, p, sign) with a_p |J> = sign |K>, grouped by orbital p.

    K lives in the (k-1)-electron space.  Read backwards the same table gives
    the creation map <J| a+_p |K> = sign.  Used by the spin-flip operators
    (S+/S-) and the N-1-electron intermediate bookkeeping of the trace-mode
    cost model.
    """

    def __init__(self, space: StringSpace, reduced_space: StringSpace | None = None):
        if space.k < 1:
            raise ValueError("annihilation needs at least one electron")
        self.space = space
        self.reduced_space = reduced_space or StringSpace(space.n, space.k - 1)
        if self.reduced_space.n != space.n or self.reduced_space.k != space.k - 1:
            raise ValueError("reduced space does not match")
        nstr, k, n = space.size, space.k, space.n
        source = np.empty(nstr * k, dtype=np.int64)
        target = np.empty(nstr * k, dtype=np.int64)
        orb = np.empty(nstr * k, dtype=np.int64)
        sg = np.empty(nstr * k, dtype=np.int8)
        idx = 0
        rindex = self.reduced_space._index
        for j in range(nstr):
            mask = int(space.masks[j])
            for p in space.occupations[j]:
                p = int(p)
                source[idx] = j
                target[idx] = rindex[mask & ~(1 << p)]
                orb[idx] = p
                sg[idx] = -1 if _popcount_below(mask, p) & 1 else 1
                idx += 1
        self.source = source
        self.target = target
        self.orb = orb
        self.sign = sg
        self.n_entries = idx
        order = np.argsort(orb, kind="stable")
        self._order = order
        bounds = np.searchsorted(orb[order], np.arange(n + 1))
        self._orb_start = bounds

    def rows_for_orbital(self, p: int) -> np.ndarray:
        lo, hi = self._orb_start[p], self._orb_start[p + 1]
        return self._order[lo:hi]


class DoubleAnnihilationTable:
    """All (J, K, q, s, sign) with a_s a_q |J> = sign |K>, for q > s.

    K lives in the (k-2)-electron intermediate space (attribute
    ``reduced_space``).  Pair index ``pair`` enumerates (q, s) with q > s as
    pair = q(q-1)/2 + s, matching the packed triangular layout of the
    antisymmetrized integral matrix W used by the same-spin DGEMM kernel.
    """

    def __init__(self, space: StringSpace, reduced_space: StringSpace | None = None):
        if space.k < 2:
            raise ValueError("double annihilation needs at least two electrons")
        self.space = space
        self.reduced_space = reduced_space or StringSpace(space.n, space.k - 2)
        if self.reduced_space.n != space.n or self.reduced_space.k != space.k - 2:
            raise ValueError("reduced space does not match")
        nstr = space.size
        k = space.k
        npairs_per_string = k * (k - 1) // 2
        cap = nstr * npairs_per_string
        source = np.empty(cap, dtype=np.int64)
        target = np.empty(cap, dtype=np.int64)
        qq = np.empty(cap, dtype=np.int64)
        ss = np.empty(cap, dtype=np.int64)
        sg = np.empty(cap, dtype=np.int8)
        pair = np.empty(cap, dtype=np.int64)
        idx = 0
        rindex = self.reduced_space._index
        masks = space.masks
        occs = space.occupations
        for j in range(nstr):
            mask = int(masks[j])
            occ = occs[j]
            for bq in range(k):
                q = int(occ[bq])
                s1 = -1 if _popcount_below(mask, q) & 1 else 1
                m1 = mask & ~(1 << q)
                for bs in range(bq):
                    s = int(occ[bs])  # s < q
                    s2 = -1 if _popcount_below(m1, s) & 1 else 1
                    m2 = m1 & ~(1 << s)
                    source[idx] = j
                    target[idx] = rindex[m2]
                    qq[idx] = q
                    ss[idx] = s
                    sg[idx] = s1 * s2
                    pair[idx] = q * (q - 1) // 2 + s
                    idx += 1
        self.source = source[:idx]
        self.target = target[:idx]
        self.q = qq[:idx]
        self.s = ss[:idx]
        self.sign = sg[:idx]
        self.pair = pair[:idx]
        self.n_entries = idx

    @property
    def n_pairs(self) -> int:
        n = self.space.n
        return n * (n - 1) // 2
