"""Minimum-operation-count (MOC) sigma vector: the paper's baseline.

This is the classical determinant-driven algorithm the paper compares
against (its refs [2-7]): only non-zero Hamiltonian matrix elements are
formed, and the sigma vector is updated by indexed multiply-and-add (DAXPY
over the opposite-spin dimension per connected string pair).

Characteristic costs reproduced here on purpose:

* the same-spin routine regenerates the *entire* double-excitation list of
  every string on every call - the redundant computation that, replicated
  across processors, destroys the parallel scaling of MOC codes (paper
  Fig. 4, beta-beta MOC curve);
* the mixed-spin routine loops orbital pairs (p, q), gathers the C rows
  addressed by every alpha single excitation with that pair, and applies the
  beta single-excitation list with integral weights via indexed updates -
  operation count Nci * na(n-na) * nb(n-nb) (paper Table 1).

Numerically it agrees with ``sigma_dgemm`` to machine precision; it is the
*kernel structure* (indexed updates vs. dense DGEMM) that differs, which is
what the Cray-X1 cost model charges differently.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs.accounting import account_sigma_moc
from .problem import CIProblem
from .sigma_dgemm import one_electron_operators

__all__ = ["sigma_moc", "MOCCounters"]


class MOCCounters:
    """Operation/traffic counters for one MOC sigma evaluation."""

    def __init__(self) -> None:
        self.indexed_ops = 0
        self.matrix_elements_computed = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "indexed_ops": self.indexed_ops,
            "matrix_elements_computed": self.matrix_elements_computed,
        }


def _same_spin_moc(
    problem: CIProblem,
    space,
    C_rows: np.ndarray,
    counters: MOCCounters | None,
) -> np.ndarray:
    """Same-spin two-electron term acting on the row strings of C_rows.

    Regenerates every string's double-excitation list on the fly (per call).
    """
    n = space.n
    k = space.k
    if k < 2:
        return np.zeros_like(C_rows)
    W = problem.w_matrix
    nstr = space.size
    out = np.zeros_like(C_rows)
    masks = space.masks
    occs = space.occupations
    index = space._index

    def pair_index(a: int, b: int) -> int:  # a > b
        return a * (a - 1) // 2 + b

    for j in range(nstr):
        mask = int(masks[j])
        occ = [int(o) for o in occs[j]]
        # accumulate H[I, j] for all same-spin-connected I
        vals = np.zeros(nstr)
        for bq in range(k):
            q = occ[bq]
            m1, s1 = _annihilate(mask, q)
            for bs in range(bq):
                s = occ[bs]
                m2, s2 = _annihilate(m1, s)
                qs = pair_index(q, s)
                free = [p for p in range(n) if not (m2 >> p) & 1]
                for ip, p in enumerate(free):  # p > r: a+_p applied last
                    for r in free[:ip]:
                        m3, s3 = _create(m2, r)
                        m4, s4 = _create(m3, p)
                        i_idx = index[m4]
                        vals[i_idx] += s1 * s2 * s3 * s4 * W[pair_index(p, r), qs]
                        if counters is not None:
                            counters.matrix_elements_computed += 1
        nz = np.nonzero(vals)[0]
        out[nz, :] += vals[nz, None] * C_rows[j, :]
        if counters is not None:
            counters.indexed_ops += nz.size * C_rows.shape[1]
    return out


def _annihilate(mask: int, orb: int) -> tuple[int, int]:
    sign = -1 if bin(mask & ((1 << orb) - 1)).count("1") & 1 else 1
    return mask & ~(1 << orb), sign


def _create(mask: int, orb: int) -> tuple[int, int]:
    sign = -1 if bin(mask & ((1 << orb) - 1)).count("1") & 1 else 1
    return mask | (1 << orb), sign


def _mixed_spin_moc(
    problem: CIProblem,
    C: np.ndarray,
    counters: MOCCounters | None,
    row_block: int = 512,
) -> np.ndarray:
    """Mixed-spin term via per-(p,q) gathered alpha rows and indexed beta updates."""
    n = problem.n
    ta, tb = problem.singles_a, problem.singles_b
    g = problem.mo.g
    nb = problem.space_b.size
    sigma = np.zeros_like(C)

    # beta table sorted by target; constant segment length per target
    per_b = tb.n_entries // tb.space.size
    ord_b = np.argsort(tb.target, kind="stable")
    b_src = tb.source[ord_b]
    b_r = tb.p[ord_b]
    b_s = tb.q[ord_b]
    b_sgn = tb.sign[ord_b].astype(np.float64)

    for p in range(n):
        for q in range(n):
            rows = ta.rows_for_pq(p, q)
            if rows.size == 0:
                continue
            src_a = ta.source[rows]
            tgt_a = ta.target[rows]
            sgn_a = ta.sign[rows].astype(np.float64)
            wb = g[p, q, b_r, b_s] * b_sgn  # weights per beta entry
            for lo in range(0, rows.size, row_block):
                hi = min(lo + row_block, rows.size)
                V = sgn_a[lo:hi, None] * C[src_a[lo:hi], :]
                T = V[:, b_src] * wb[None, :]
                Wm = T.reshape(hi - lo, nb, per_b).sum(axis=2)
                sigma[tgt_a[lo:hi], :] += Wm
                if counters is not None:
                    counters.indexed_ops += (hi - lo) * b_src.size
    return sigma


def sigma_moc(
    problem: CIProblem,
    C: np.ndarray,
    *,
    counters: MOCCounters | None = None,
    telemetry=None,
) -> np.ndarray:
    """Full sigma = H C with the minimum-operation-count algorithm.

    ``telemetry`` routes indexed-op counts and wall time through the
    audited accounting path (:mod:`repro.obs.accounting`); the default None
    skips all instrumentation.
    """
    if telemetry and counters is None:
        counters = MOCCounters()
    t0 = time.perf_counter() if telemetry else 0.0
    na, nb = problem.shape
    if C.shape != (na, nb):
        raise ValueError(f"C must have shape {(na, nb)}, got {C.shape}")
    Ta, Tb = one_electron_operators(problem)
    sigma = np.asarray(Ta @ C)
    sigma += np.asarray(Tb @ C.T).T
    if problem.n_alpha >= 2:
        sigma += _same_spin_moc(problem, problem.space_a, C, counters)
    if problem.n_beta >= 2:
        sigma += _same_spin_moc(
            problem, problem.space_b, np.ascontiguousarray(C.T), counters
        ).T
    sigma += _mixed_spin_moc(problem, C, counters)
    if telemetry:
        account_sigma_moc(telemetry.registry, counters, time.perf_counter() - t0)
    return sigma
