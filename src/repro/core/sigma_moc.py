"""Minimum-operation-count (MOC) sigma vector: the paper's baseline.

This is the classical determinant-driven algorithm the paper compares
against (its refs [2-7]): only non-zero Hamiltonian matrix elements are
formed, and the sigma vector is updated by indexed multiply-and-add (DAXPY
over the opposite-spin dimension per connected string pair).

Characteristic costs reproduced here on purpose:

* the same-spin routine regenerates the *entire* double-excitation list of
  every string on every call - the redundant computation that, replicated
  across processors, destroys the parallel scaling of MOC codes (paper
  Fig. 4, beta-beta MOC curve);
* the mixed-spin routine loops orbital pairs (p, q), gathers the C rows
  addressed by every alpha single excitation with that pair, and applies the
  beta single-excitation list with integral weights via indexed updates -
  operation count Nci * na(n-na) * nb(n-nb) (paper Table 1).

Numerically it agrees with ``sigma_dgemm`` to machine precision; it is the
*kernel structure* (indexed updates vs. dense DGEMM) that differs, which is
what the Cray-X1 cost model charges differently.

The implementation lives in :class:`repro.core.kernels.MocKernel`; this
module is the stable functional entry point.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs.accounting import account_sigma_moc
from .kernels import MocKernel, MOCCounters
from .plans import SigmaPlan
from .problem import CIProblem

__all__ = ["sigma_moc", "MOCCounters"]


def sigma_moc(
    problem: CIProblem,
    C: np.ndarray,
    *,
    counters: MOCCounters | None = None,
    telemetry=None,
) -> np.ndarray:
    """Full sigma = H C with the minimum-operation-count algorithm.

    ``telemetry`` routes indexed-op counts and wall time through the
    audited accounting path (:mod:`repro.obs.accounting`); the default None
    skips all instrumentation.
    """
    if telemetry and counters is None:
        counters = MOCCounters()
    t0 = time.perf_counter() if telemetry else 0.0
    kernel = MocKernel(SigmaPlan.for_problem(problem))
    sigma = kernel.apply(C, counters)
    if telemetry:
        account_sigma_moc(telemetry.registry, counters, time.perf_counter() - t0)
    return sigma
