"""Olsen's single-vector correction and iteration (paper eqs. 11-12).

The correction vector for approximate eigenpair (E, C) is

    t = -(H0 - E~)^-1 (H - E~) C,   E~ = E + Delta,

where Delta (the first-order eigenvalue correction, paper eq. 12) is chosen
so that <C|t> = 0:

    Delta = <C| (H0-E)^-1 (H-E) |C> / <C| (H0-E)^-1 |C>.

``olsen_solve`` implements the plain single-vector iteration
C <- normalize(C + lambda t); the original scheme uses lambda = 1 and, as the
paper's Table 2 shows, frequently fails to converge tightly; the "modified"
scheme damps with a fixed lambda (0.7 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .checkpoint import Checkpointer, CheckpointState
from .guards import DEFAULT_DIVERGENCE_THRESHOLD, IterateGuard
from .model_space import DiagonalPreconditioner
from .operator import SigmaFn

__all__ = ["olsen_correction", "olsen_solve", "SolveResult"]


def olsen_correction(
    C: np.ndarray,
    sigma: np.ndarray,
    energy: float,
    precond: DiagonalPreconditioner,
) -> np.ndarray:
    """Olsen correction vector, orthogonal to C by construction."""
    residual = sigma - energy * C
    x_r = precond.solve(residual, energy)
    x_c = precond.solve(C, energy)
    denom = float(np.vdot(C, x_c))
    if abs(denom) < 1e-300:
        return -x_r
    delta = float(np.vdot(C, x_r)) / denom
    return -x_r + delta * x_c


@dataclass
class SolveResult:
    """Outcome of an iterative eigensolve."""

    energy: float
    vector: np.ndarray
    converged: bool
    n_iterations: int
    n_sigma: int
    energies: list[float] = field(default_factory=list)
    residual_norms: list[float] = field(default_factory=list)
    method: str = ""

    def __repr__(self) -> str:
        tag = "converged" if self.converged else "NOT converged"
        return (
            f"SolveResult({self.method}: E={self.energy:.10f}, "
            f"{self.n_iterations} iterations, {tag})"
        )


def olsen_solve(
    sigma_fn: SigmaFn,
    guess: np.ndarray,
    precond: DiagonalPreconditioner,
    *,
    step: float = 1.0,
    energy_tol: float = 1e-10,
    residual_tol: float = 1e-5,
    max_iterations: int = 60,
    telemetry=None,
    checkpoint: Checkpointer | None = None,
    divergence_threshold: float | None = DEFAULT_DIVERGENCE_THRESHOLD,
    store=None,
) -> SolveResult:
    """Single-vector Olsen iteration with fixed mixing step ``step``.

    step=1.0 reproduces the original Olsen scheme; step=0.7 the paper's
    "modified" damped variant.  Convergence requires *both* the energy change
    below ``energy_tol`` and the residual norm below ``residual_tol``
    (matching the paper's tightly-converged criterion).

    ``telemetry`` (a :class:`repro.obs.Telemetry`) records one
    ``solver.iterations`` sample per iteration; None disables all
    instrumentation.  ``checkpoint`` (a :class:`Checkpointer`) persists the
    full restart state (C, previous energy, histories) each iteration and
    resumes from it when present - an interrupted-plus-resumed solve
    replays the exact iteration sequence of an uninterrupted one.  Iterates
    are watched by :class:`repro.core.guards.IterateGuard`.

    ``store`` (a :class:`repro.core.vectors.CIVectorStore` template) keeps
    the current iterate in store-backed memory between iterations; values
    are copied in bit-for-bit, so a ``DenseStore`` run is bitwise-identical
    to ``store=None``.  Checkpoints written under a store carry its kind.
    """
    ck_kind = store.kind if store is not None else "dense"
    C_buf = store.allocate() if store is not None else None

    def _hold(x: np.ndarray) -> np.ndarray:
        if C_buf is None:
            return x
        C_buf.write(x)
        return C_buf.as_ndarray()

    def _emit(x: np.ndarray) -> np.ndarray:
        """Materialize the result and release the store buffer."""
        if C_buf is None:
            return x
        out = np.array(x)
        C_buf.close()
        return out

    C = guess / np.linalg.norm(guess)
    energies: list[float] = []
    rnorms: list[float] = []
    prev_e = np.inf
    n_sigma = 0
    start_it = 0
    if checkpoint is not None:
        state = checkpoint.restore("olsen", store_kind=ck_kind)
        if state is not None:
            C = np.asarray(state.vector).reshape(guess.shape)
            prev_e = state.meta.get("prev_e", np.inf)
            energies = list(state.energies)
            rnorms = list(state.residual_norms)
            n_sigma = state.n_sigma
            start_it = state.iteration
    C = _hold(C)
    guard = IterateGuard(divergence_threshold, telemetry=telemetry)
    last_state: CheckpointState | None = None
    last_saved = True
    for it in range(start_it + 1, max_iterations + 1):
        sigma = sigma_fn(C)
        n_sigma += 1
        e = float(np.vdot(C, sigma))
        rnorm = float(np.linalg.norm(sigma - e * C))
        energies.append(e)
        rnorms.append(rnorm)
        if telemetry:
            telemetry.solver_iteration("olsen", it, e, rnorm, lam=step)
        guard.check(it, e, rnorm)
        if abs(e - prev_e) < energy_tol and rnorm < residual_tol:
            if checkpoint is not None:
                # converged states may fall off the ``every`` grid; force
                # the save so the final answer is always durable
                checkpoint.maybe_save(
                    CheckpointState(
                        method="olsen",
                        iteration=it,
                        n_sigma=n_sigma,
                        vector=C,
                        meta={"prev_e": e, "step": step},
                        energies=energies,
                        residual_norms=rnorms,
                        store_kind=ck_kind,
                    ),
                    force=True,
                )
            return SolveResult(
                energy=e,
                vector=_emit(C),
                converged=True,
                n_iterations=it,
                n_sigma=n_sigma,
                energies=energies,
                residual_norms=rnorms,
                method=f"olsen(step={step})",
            )
        prev_e = e
        t = olsen_correction(C, sigma, e, precond)
        C = C + step * t
        C /= np.linalg.norm(C)
        C = _hold(C)
        if checkpoint is not None:
            last_state = CheckpointState(
                method="olsen",
                iteration=it,
                n_sigma=n_sigma,
                vector=C,
                meta={"prev_e": prev_e, "step": step},
                energies=energies,
                residual_norms=rnorms,
                store_kind=ck_kind,
            )
            last_saved = checkpoint.maybe_save(last_state)
    if checkpoint is not None and last_state is not None and not last_saved:
        # the budget ran out on an off-grid iteration: keep the final state
        checkpoint.maybe_save(last_state, force=True)
    return SolveResult(
        # a resume whose iteration budget is already exhausted must report
        # the checkpointed energy, not crash on an empty history
        energy=energies[-1] if energies else 0.0,
        vector=_emit(C),
        converged=False,
        n_iterations=max_iterations,
        n_sigma=n_sigma,
        energies=energies,
        residual_norms=rnorms,
        method=f"olsen(step={step})",
    )
