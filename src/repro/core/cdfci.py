"""CDFCI: coordinate-descent FCI on a sparse CI-vector store.

The storage-layer counterpoint to the paper's dense distributed vectors
(PAPERS.md: "CDFCI: High-Performance Parallel Software for Many-Body
Large-Scale Eigenvalue Problems").  Instead of streaming whole CI vectors
through batched DGEMMs, coordinate descent touches *one determinant per
update*: pick the coordinate k with the largest Rayleigh-quotient gradient
|b_k - rho c_k| (where b = H c), minimize rho(c + alpha e_k) exactly along
that coordinate, and scatter the single Hamiltonian column H e_k into b.
Both c and b live in slot-aligned :class:`repro.core.vectors.SparseStore`
siblings, so the solver's working set is the determinants that matter, not
the full CI dimension.

Two properties this implementation guarantees:

* **Variational at every step.**  The tracked scalars cc = <c|c> and
  chc = <c|H|c> are updated with an *exactly recomputed* (Hc)_k (the
  freshly assembled column dotted into c), never the cached b_k - so
  rho = chc/cc is the true Rayleigh quotient of a real vector even after
  top-k compaction has made frontier entries of b stale, and the reported
  energy can never undershoot the FCI ground state.
* **Exact-replay resume.**  A checkpoint carries the coordinate arrays of
  both c and b plus the scalar recursion state; a killed-and-resumed solve
  replays bitwise the iteration sequence of an uninterrupted one (the same
  contract olsen/auto established for dense checkpoints).

Columns are assembled from the *same* compiled :class:`SigmaPlan` pieces the
DGEMM kernels consume - the one-electron CSR operators, the same-spin
operator applied to an identity block, and the mixed-spin singles tables
against the G supermatrix - so CDFCI energies are consistent with
``sigma_dgemm`` by construction, which the differential tests pin.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .checkpoint import Checkpointer, CheckpointState
from .olsen import SolveResult
from .plans import SigmaPlan
from .vectors import SparseStore
from .kernels import same_spin_sigma

__all__ = ["HamiltonianColumns", "cdfci_solve"]


def _by_source(half, n_strings: int):
    """Re-sort a MixedSpinHalfPlan by *source* string, with an indptr.

    The kernels consume the halves target-sorted (scatter order); column
    assembly needs "all singles leaving string s" instead.
    """
    order = np.argsort(half.source, kind="stable")
    src = half.source[order]
    indptr = np.searchsorted(src, np.arange(n_strings + 1))
    return half.target[order], half.pq[order], half.sign[order], indptr


class HamiltonianColumns:
    """Sparse columns H e_k assembled from the compiled sigma plan.

    For determinant k = (ia, ib) the column splits exactly like the kernel
    decomposition of sigma:

    * alpha part  (rows (ja, ib)): column ia of A_a = Ta + same-spin-alpha,
      the same-spin operator materialized once by applying
      :func:`~repro.core.kernels.same_spin_sigma` to the identity,
    * beta part   (rows (ia, jb)): column ib of A_b = Tb + same-spin-beta,
    * mixed part  (rows (ja, jb)): for every alpha single ia->ja (pair pq,
      sign sa) and beta single ib->jb (pair rs, sign sb), the entry
      sa * sb * G[pq, rs] - an outer product over the two singles lists.

    Duplicate row keys between the parts (the diagonal, p=q singles)
    accumulate, exactly as the kernels' additive pipeline does.
    """

    def __init__(self, problem):
        self.problem = problem
        plan = SigmaPlan.for_problem(problem)
        self.plan = plan
        na, nb = plan.shape
        self.shape = (na, nb)
        bc = plan.default_block_columns()

        def _spin_matrix(T, splan, nstr):
            dense = np.asarray(T.todense())
            if splan is not None:
                dense += same_spin_sigma(splan, plan.w_matrix, np.eye(nstr), bc, None)
            return sp.csc_matrix(dense)

        self.A_alpha = _spin_matrix(plan.Ta, plan.same_a, na)
        self.A_beta = _spin_matrix(plan.Tb, plan.same_b, nb)
        self.G = plan.g_matrix
        (self._a_tgt, self._a_pq, self._a_sgn, self._a_ptr) = _by_source(
            plan.scatter_a, na
        )
        (self._b_tgt, self._b_pq, self._b_sgn, self._b_ptr) = _by_source(
            plan.gather_b, nb
        )
        mask = problem.symmetry_mask
        self._mask_flat = None if mask is None else np.asarray(mask).ravel()

    def column(self, key: int) -> tuple[np.ndarray, np.ndarray]:
        """(flat keys, values) of H e_key; duplicate keys must be summed."""
        na, nb = self.shape
        ia, ib = divmod(int(key), nb)

        Aa = self.A_alpha
        lo, hi = Aa.indptr[ia], Aa.indptr[ia + 1]
        keys_a = Aa.indices[lo:hi].astype(np.int64) * nb + ib
        vals_a = Aa.data[lo:hi]

        Ab = self.A_beta
        lo, hi = Ab.indptr[ib], Ab.indptr[ib + 1]
        keys_b = ia * nb + Ab.indices[lo:hi].astype(np.int64)
        vals_b = Ab.data[lo:hi]

        fa, fb = self._a_ptr[ia], self._a_ptr[ia + 1]
        ea, eb = self._b_ptr[ib], self._b_ptr[ib + 1]
        ja = self._a_tgt[fa:fb].astype(np.int64)
        jb = self._b_tgt[ea:eb].astype(np.int64)
        block = (self._a_sgn[fa:fb, None] * self._b_sgn[None, ea:eb]) * self.G[
            np.ix_(self._a_pq[fa:fb], self._b_pq[ea:eb])
        ]
        keys_m = (ja[:, None] * nb + jb[None, :]).ravel()
        vals_m = block.ravel()

        keys = np.concatenate([keys_a, keys_b, keys_m])
        vals = np.concatenate([vals_a, vals_b, vals_m])
        if self._mask_flat is not None:
            allowed = self._mask_flat[keys]
            keys, vals = keys[allowed], vals[allowed]
        return keys, vals

    def diagonal_element(self, key: int) -> float:
        kk, vv = self.column(key)
        return float(vv[kk == key].sum())


def _line_minimum(chc: float, cc: float, bk: float, ck: float, d: float) -> float:
    """alpha minimizing rho(c + alpha e_k) = (chc+2a bk+a^2 d)/(cc+2a ck+a^2).

    Stationary points solve A2 a^2 + B2 a + C2 = 0 with
    A2 = d ck - bk, B2 = d cc - chc, C2 = bk cc - chc ck; the minimizing
    root is selected by evaluating rho.  Degenerate cases (gradient already
    zero, c parallel to e_k) return 0.0.
    """
    A2 = d * ck - bk
    B2 = d * cc - chc
    C2 = bk * cc - chc * ck
    roots: list[float] = []
    if abs(A2) > 1e-300:
        disc = B2 * B2 - 4.0 * A2 * C2
        if disc < 0.0:
            return 0.0
        r = np.sqrt(disc)
        roots = [(-B2 + r) / (2.0 * A2), (-B2 - r) / (2.0 * A2)]
    elif abs(B2) > 1e-300:
        roots = [-C2 / B2]
    best, best_rho = 0.0, chc / cc
    for a in roots:
        if not np.isfinite(a):
            continue
        denom = cc + 2.0 * a * ck + a * a
        if denom <= 1e-300:
            continue
        rho = (chc + 2.0 * a * bk + a * a * d) / denom
        if rho < best_rho:
            best, best_rho = float(a), rho
    return best


def _compact_protecting_support(c: SparseStore, b: SparseStore, capacity: int) -> int:
    """Trim the shared index to ``capacity`` slots without ever dropping a
    determinant that carries coefficient weight: the c-support is protected,
    the b-only frontier is ranked by |b| (stable, hence deterministic)."""
    vals_c, vals_b = c.values, b.values
    protected = np.nonzero(vals_c != 0.0)[0]
    n_free = capacity - protected.size
    if n_free <= 0:
        keep = protected
    else:
        frontier = np.nonzero(vals_c == 0.0)[0]
        ranked = frontier[np.argsort(-np.abs(vals_b[frontier]), kind="stable")[:n_free]]
        keep = np.concatenate([protected, ranked])
    return b.compact_slots(keep)


def cdfci_solve(
    problem,
    *,
    capacity: int | None = None,
    energy_tol: float = 1e-10,
    residual_tol: float = 1e-5,
    max_iterations: int = 60,
    updates_per_iteration: int = 64,
    guess: np.ndarray | None = None,
    telemetry=None,
    checkpoint: Checkpointer | None = None,
    columns: HamiltonianColumns | None = None,
    on_iteration=None,
) -> SolveResult:
    """Coordinate-descent FCI ground state on sparse stores.

    One "iteration" is a sweep of ``updates_per_iteration`` coordinate
    updates (so iteration counts are loosely comparable with the dense
    solvers' sigma counts); ``n_sigma`` in the result reports the number of
    Hamiltonian *columns* assembled, the unit of work replacing full sigma
    evaluations.  ``capacity`` bounds the live determinant count via
    support-protecting top-k compaction; None lets the frontier grow.

    ``guess`` seeds the starting determinant (its largest-|weight| entry);
    the default is the lowest-diagonal determinant.  ``on_iteration`` is an
    injection point called after each sweep with ``(iteration, energy)`` -
    the chaos harness kills solves from it.  ``checkpoint`` persists the
    full coordinate state; resume replays the exact update sequence.
    """
    cols = columns if columns is not None else HamiltonianColumns(problem)
    na, nb = cols.shape

    c = SparseStore((na, nb), capacity=capacity)
    b = c.sibling()

    diag = np.asarray(problem.diagonal, dtype=np.float64).ravel().copy()
    if cols._mask_flat is not None:
        diag = np.where(cols._mask_flat, diag, np.inf)

    energies: list[float] = []
    rnorms: list[float] = []
    n_updates = 0
    start_it = 0
    prev_e = np.inf
    restored = None
    if checkpoint is not None:
        restored = checkpoint.restore("cdfci", store_kind="sparse")
    if restored is not None and "keys" in restored.arrays:
        keys = restored.arrays["keys"].astype(np.int64)
        c.scatter_add(keys, restored.arrays["c"])
        b.scatter_add(keys, restored.arrays["b"])
        cc = float(restored.meta["cc"])
        chc = float(restored.meta["chc"])
        prev_e = float(restored.meta.get("prev_e", np.inf))
        energies = list(restored.energies)
        rnorms = list(restored.residual_norms)
        n_updates = restored.n_sigma
        start_it = restored.iteration
    else:
        if guess is not None:
            k0 = int(np.argmax(np.abs(np.asarray(guess).ravel())))
        else:
            k0 = int(np.argmin(diag))
        c.set(k0, 1.0)
        kk, vv = cols.column(k0)
        b.scatter_add(kk, vv)
        n_updates = 1
        cc = 1.0
        chc = b.get(k0)  # = H[k0, k0]

    e = chc / cc
    converged = False
    it = start_it
    for it in range(start_it + 1, max_iterations + 1):
        for _ in range(updates_per_iteration):
            rho = chc / cc
            grad = b.values - rho * c.values
            slot = int(np.argmax(np.abs(grad)))
            key = int(b.keys[slot])

            kk, vv = cols.column(key)
            d = float(vv[kk == key].sum())
            # exact (Hc)_k from the fresh column - immune to frontier
            # staleness, which keeps chc the true <c|H|c> (variational)
            bk = float(vv @ c.get_many(kk))
            ck = c.get(key)
            alpha = _line_minimum(chc, cc, bk, ck, d)
            n_updates += 1
            if alpha == 0.0:
                break
            c.add_at(key, alpha)
            b.set(key, bk)  # heal any stale cached value before the update
            b.scatter_add(kk, alpha * vv)
            cc += 2.0 * alpha * ck + alpha * alpha
            chc += 2.0 * alpha * bk + alpha * alpha * d
            if capacity is not None and b.nnz > capacity:
                _compact_protecting_support(c, b, capacity)

        e = chc / cc
        grad = b.values - e * c.values
        rnorm = float(np.linalg.norm(grad)) / float(np.sqrt(cc))
        energies.append(e)
        rnorms.append(rnorm)
        if telemetry:
            telemetry.solver_iteration(
                "cdfci", it, e, rnorm, nnz=c.nnz, updates=n_updates
            )
        converged = abs(e - prev_e) < energy_tol and rnorm < residual_tol
        prev_e = e
        if checkpoint is not None:
            checkpoint.maybe_save(
                CheckpointState(
                    method="cdfci",
                    iteration=it,
                    n_sigma=n_updates,
                    vector=c.as_ndarray() / np.sqrt(cc),
                    meta={"cc": cc, "chc": chc, "prev_e": prev_e},
                    energies=energies,
                    residual_norms=rnorms,
                    store_kind="sparse",
                    arrays={
                        "keys": c.keys.copy(),
                        "c": c.values.copy(),
                        "b": b.values.copy(),
                    },
                ),
                force=converged,
            )
        if on_iteration is not None:
            on_iteration(it, e)
        if converged:
            break

    vector = (c.as_ndarray() / np.sqrt(cc)).reshape(na, nb)
    c.close()
    b.close()
    return SolveResult(
        energy=e,
        vector=vector,
        converged=converged,
        n_iterations=it,
        n_sigma=n_updates,
        energies=energies,
        residual_norms=rnorms,
        method="cdfci",
    )
