"""HamiltonianOperator: one sigma operator for every solver and driver.

Composes, in a fixed order, everything the eigensolvers previously wired up
as ad-hoc closures:

    sigma = kernel(C)                              (plan-driven H C)
          + spin_penalty * (S^2 C - s2_target C)   (optional state targeting)
    sigma = P_irrep sigma                          (optional symmetry projection)

plus observability: cumulative kernel counters, call/batch counts, and
per-evaluation FLOP/byte/time accounting through
:mod:`repro.obs.accounting` when a telemetry object is attached.

The operator is callable (``op(C)``) so it drops into every solver that
expects a plain ``sigma_fn``, and exposes ``apply_batch(C_stack)`` so block
solvers (multiroot Davidson) evaluate k sigma vectors through one batched
kernel sweep - k-times-wider DGEMM right-hand sides instead of k separate
sweeps, with bitwise-identical results.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from .kernels import SigmaKernel, make_kernel
from .plans import SigmaPlan
from .spin import SpinOperator
from .vectors import as_dense_array

__all__ = ["HamiltonianOperator", "SigmaFn"]

# what every eigensolver accepts: sigma = f(C) on one (na, nb) CI vector.
# A HamiltonianOperator satisfies it; block solvers additionally use its
# apply_batch when present.
SigmaFn = Callable[[np.ndarray], np.ndarray]


class HamiltonianOperator:
    """sigma = H C (plus optional spin penalty and symmetry projection).

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.CIProblem`.
    kernel:
        A registered kernel name ("dgemm", "compiled", "moc") or a ready
        :class:`~repro.core.kernels.SigmaKernel` instance.  Names are
        resolved through the kernel registry against the problem's cached
        :class:`~repro.core.plans.SigmaPlan`.
    block_columns:
        Column-block width for the kernel; None uses the plan's
        memory-budget heuristic (:meth:`SigmaPlan.default_block_columns`).
    spin_penalty, s2_target:
        When ``spin_penalty`` is non-zero, adds
        ``spin_penalty * (S^2 C - s2_target C)`` to shift states of the
        wrong spin multiplicity up in energy.
    project_symmetry:
        Apply the problem's irrep projection to the result (a no-op when
        the problem has no symmetry mask).
    telemetry:
        Optional :class:`repro.obs.Telemetry`; every evaluation is then
        accounted through the audited path.  None is a strict no-op.
    """

    def __init__(
        self,
        problem,
        kernel: str | SigmaKernel = "dgemm",
        *,
        block_columns: int | None = None,
        spin_penalty: float = 0.0,
        s2_target: float = 0.0,
        project_symmetry: bool = True,
        telemetry=None,
        spin_operator: SpinOperator | None = None,
    ):
        self.problem = problem
        self.plan = SigmaPlan.for_problem(problem)
        if isinstance(kernel, str):
            kernel = make_kernel(kernel, self.plan, block_columns=block_columns)
        self.kernel = kernel
        self.spin_penalty = float(spin_penalty)
        self.s2_target = float(s2_target)
        self.project_symmetry = project_symmetry
        self.telemetry = telemetry
        self._spin_op = spin_operator
        if self.spin_penalty and self._spin_op is None:
            self._spin_op = SpinOperator(problem)
        self.counters = kernel.make_counters()
        self.n_calls = 0
        self.n_batches = 0

    @property
    def shape(self) -> tuple[int, int]:
        return self.problem.shape

    def _decorate(self, C: np.ndarray, sigma: np.ndarray) -> np.ndarray:
        """Spin penalty + symmetry projection for one vector, in the order
        the pre-refactor solver closures applied them."""
        if self.spin_penalty:
            sigma = sigma + self.spin_penalty * (
                self._spin_op.apply_s2(C) - self.s2_target * C
            )
        if self.project_symmetry and self.problem.symmetry_mask is not None:
            sigma = self.problem.project_symmetry(sigma)
        return sigma

    def apply_batch(self, C_stack: np.ndarray) -> np.ndarray:
        """sigma for a (k, na, nb) stack of CI vectors via one kernel sweep."""
        C_stack = np.asarray(C_stack)
        k = C_stack.shape[0]
        fresh = self.kernel.make_counters()
        t0 = time.perf_counter() if self.telemetry else 0.0
        sigma = self.kernel.apply_batch(C_stack, fresh)
        for i in range(k):
            sigma[i] = self._decorate(C_stack[i], sigma[i])
        self.counters.add(fresh)
        self.n_calls += k
        self.n_batches += 1
        if self.telemetry:
            self.kernel.account(
                self.telemetry.registry, fresh, time.perf_counter() - t0, calls=k
            )
        return sigma

    def apply(self, C) -> np.ndarray:
        """sigma for one (na, nb) CI vector.

        ``C`` may be a plain ndarray or any
        :class:`repro.core.vectors.CIVectorStore` - dense and mmap stores
        pass their backing array through zero-copy (an ``np.memmap`` *is*
        an ndarray, so the kernels stream its pages block by block), a
        sparse store is densified first.
        """
        C = np.asarray(as_dense_array(C))
        fresh = self.kernel.make_counters()
        t0 = time.perf_counter() if self.telemetry else 0.0
        sigma = self._decorate(C, self.kernel.apply(C, fresh))
        self.counters.add(fresh)
        self.n_calls += 1
        self.n_batches += 1
        if self.telemetry:
            self.kernel.account(
                self.telemetry.registry, fresh, time.perf_counter() - t0
            )
        return sigma

    __call__ = apply

    def __repr__(self) -> str:
        bits = [f"kernel={self.kernel.name!r}"]
        if self.spin_penalty:
            bits.append(f"spin_penalty={self.spin_penalty}")
        if self.project_symmetry and self.problem.symmetry_mask is not None:
            bits.append("projected")
        return f"HamiltonianOperator({', '.join(bits)}, calls={self.n_calls})"
