"""Molecular properties from CI wavefunctions (dipole moments)."""

from __future__ import annotations

import numpy as np

from ..integrals.multipole import dipole as dipole_integrals
from ..molecule.geometry import Molecule
from .problem import CIProblem
from .rdm import one_rdm

__all__ = ["dipole_moment"]


def dipole_moment(
    mol: Molecule,
    basis_name: str,
    mo_coeff: np.ndarray,
    problem: CIProblem,
    ci_vector: np.ndarray,
    n_frozen: int = 0,
) -> np.ndarray:
    """Dipole moment vector (atomic units) of a CI state.

    mu = sum_A Z_A R_A - [ 2 sum_core d_ii + tr(gamma_active d_active) ]

    where d are MO-basis dipole integrals; ``mo_coeff`` must be the same
    orbitals the CI problem was built in (before frozen-core slicing).
    """
    basis = mol.basis(basis_name)
    d_ao = dipole_integrals(basis)
    C = np.asarray(mo_coeff)
    d_mo = np.einsum("cmn,mp,nq->cpq", d_ao, C, C, optimize=True)

    gamma = one_rdm(problem, ci_vector) / float(np.vdot(ci_vector, ci_vector))
    a = slice(n_frozen, n_frozen + problem.n)
    electronic = np.einsum("cpq,pq->c", d_mo[:, a, a], gamma)
    if n_frozen:
        f = slice(0, n_frozen)
        electronic = electronic + 2.0 * np.einsum("cii->c", d_mo[:, f, f])
    nuclear = np.zeros(3)
    for z, pos in mol.charges():
        nuclear += z * np.asarray(pos)
    return nuclear - electronic
