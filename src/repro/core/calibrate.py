"""Approximate correlation methods calibrated against FCI.

The paper's title - *calibrating quantum chemistry* - refers to FCI's role
as the exact reference against which approximate methods are measured.
This module supplies the standard ladder to calibrate:

* **MP2** - second-order Moller-Plesset perturbation theory (closed shell,
  canonical orbitals),
* **CISD** - configuration interaction with singles and doubles, realized
  as a determinant-level truncation of the FCI space (excitation level <= 2
  from the reference determinant) solved with the same Davidson machinery,
* **CISD+Q** - the renormalized Davidson size-consistency correction
  E_Q = (1 - c0^2) (E_CISD - E_ref).

All three reuse the FCI sigma kernels and string spaces, so agreement of
the full-excitation limit with FCI is an internal consistency test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scf.mo import MOIntegrals
from .davidson import davidson_solve
from .model_space import ModelSpacePreconditioner
from .olsen import SolveResult
from .problem import CIProblem
from .sigma_dgemm import sigma_dgemm

__all__ = ["mp2_energy", "TruncatedCI", "cisd", "CalibrationResult"]


def mp2_energy(mo: MOIntegrals, mo_energy: np.ndarray, n_occ: int) -> float:
    """Closed-shell MP2 correlation energy from canonical MO integrals.

    ``mo_energy`` are the orbital energies matching ``mo`` (after any
    frozen-core slicing); ``n_occ`` counts doubly-occupied active orbitals.
    """
    n = mo.n_orbitals
    if n_occ <= 0 or n_occ >= n:
        raise ValueError("MP2 needs both occupied and virtual orbitals")
    eps = np.asarray(mo_energy, dtype=float)
    if eps.size != n:
        raise ValueError("need one orbital energy per active orbital")
    o = slice(0, n_occ)
    v = slice(n_occ, n)
    # (ia|jb) in chemists' notation
    g_ovov = mo.g[o, v, o, v]
    d = (
        eps[o][:, None, None, None]
        + eps[o][None, None, :, None]
        - eps[v][None, :, None, None]
        - eps[v][None, None, None, :]
    )
    t = g_ovov / d
    e2 = 2.0 * np.sum(t * g_ovov) - np.sum(
        t * g_ovov.transpose(0, 3, 2, 1)
    )
    return float(e2)


@dataclass
class CalibrationResult:
    """One truncated-CI solve."""

    energy: float  # total (includes e_core)
    correlation: float  # vs the reference determinant
    solve: SolveResult
    c0: float  # reference-determinant weight
    dimension: int


class TruncatedCI:
    """Excitation-truncated CI on top of the FCI machinery.

    Masks the FCI determinant grid to excitation level <= ``max_excitation``
    relative to the aufbau reference determinant and runs Davidson with the
    projected sigma.  max_excitation = 2 is CISD; n_electrons recovers FCI.
    """

    def __init__(self, problem: CIProblem, max_excitation: int):
        if max_excitation < 0:
            raise ValueError("excitation level must be non-negative")
        self.problem = problem
        self.max_excitation = max_excitation
        ref_a = int(problem.space_a.masks[0])
        ref_b = int(problem.space_b.masks[0])
        exc_a = np.array(
            [bin(int(m) ^ ref_a).count("1") // 2 for m in problem.space_a.masks]
        )
        exc_b = np.array(
            [bin(int(m) ^ ref_b).count("1") // 2 for m in problem.space_b.masks]
        )
        self.mask = (exc_a[:, None] + exc_b[None, :]) <= max_excitation
        sym = problem.symmetry_mask
        if sym is not None:
            self.mask &= sym

    @property
    def dimension(self) -> int:
        return int(self.mask.sum())

    def project(self, C: np.ndarray) -> np.ndarray:
        out = C.copy()
        out[~self.mask] = 0.0
        return out

    def solve(
        self,
        *,
        model_space_size: int = 50,
        energy_tol: float = 1e-10,
        residual_tol: float = 1e-6,
        max_iterations: int = 100,
    ) -> CalibrationResult:
        problem = self.problem

        def sigma_fn(C: np.ndarray) -> np.ndarray:
            return self.project(sigma_dgemm(problem, self.project(C)))

        pre = ModelSpacePreconditioner(
            problem, min(model_space_size, self.dimension)
        )
        guess = self.project(pre.ground_state_guess())
        nrm = np.linalg.norm(guess)
        if nrm < 1e-12:
            guess = np.zeros(problem.shape)
            guess[0, 0] = 1.0
        else:
            guess /= nrm
        res = davidson_solve(
            sigma_fn,
            guess,
            pre,
            energy_tol=energy_tol,
            residual_tol=residual_tol,
            max_iterations=max_iterations,
        )
        e_ref = float(problem.diagonal[0, 0])
        c0 = float(res.vector[0, 0]) / float(np.linalg.norm(res.vector))
        return CalibrationResult(
            energy=res.energy + problem.mo.e_core,
            correlation=res.energy - e_ref,
            solve=res,
            c0=abs(c0),
            dimension=self.dimension,
        )


def cisd(problem: CIProblem, **kwargs) -> tuple[CalibrationResult, float]:
    """CISD energy plus the renormalized Davidson +Q correction.

    Returns (cisd_result, davidson_q_correction); total CISD+Q energy is
    ``cisd_result.energy + correction``.
    """
    result = TruncatedCI(problem, 2).solve(**kwargs)
    c0sq = result.c0**2
    if c0sq < 0.25:
        # the renormalized correction is meaningless once the reference
        # determinant no longer dominates (strongly multireference regime)
        return result, float("nan")
    q = (1.0 - c0sq) / c0sq * result.correlation
    return result, float(q)
