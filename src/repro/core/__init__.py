"""FCI core: strings, sigma kernels, diagonalization methods, driver."""

from .strings import (
    StringSpace,
    ci_dimension,
    count_strings_by_irrep,
    fci_space_size,
    string_irrep,
)
from .excitations import DoubleAnnihilationTable, SingleExcitationTable
from .hamiltonian import (
    build_dense_hamiltonian,
    det_matrix_element,
    hamiltonian_diagonal,
)
from .problem import CIProblem
from .plans import LinkIndexTables, SigmaPlan, build_g_matrix, build_w_matrix
from .kernels import (
    HAVE_NUMBA,
    CompiledKernel,
    DgemmKernel,
    MocKernel,
    SigmaKernel,
    kernel_names,
    make_kernel,
)
from .operator import HamiltonianOperator
from .sigma_dgemm import SigmaCounters, one_electron_operators, sigma_dgemm
from .sigma_moc import MOCCounters, sigma_moc
from .model_space import DiagonalPreconditioner, ModelSpacePreconditioner
from .checkpoint import CheckpointError, Checkpointer, CheckpointState
from .guards import (
    EnergyDivergenceError,
    IterateGuard,
    NonFiniteIterateError,
    SolverGuardError,
)
from .olsen import SolveResult, olsen_correction, olsen_solve
from .davidson import davidson_solve
from .auto_single import auto_adjusted_solve
from .vectors import (
    CIVectorStore,
    DenseStore,
    MmapStore,
    SparseStore,
    as_dense_array,
    make_store,
    publish_store_metrics,
    register_store,
    store_kinds,
)
from .cdfci import HamiltonianColumns, cdfci_solve
from .spin import SpinOperator, apply_s2, s_plus, s_squared
from .rdm import natural_orbitals, one_rdm
from .multiroot import MultiRootResult, davidson_multiroot
from .calibrate import CalibrationResult, TruncatedCI, cisd, mp2_energy
from .properties import dipole_moment
from .memory import MethodFootprint, davidson_io_penalty, method_footprints
from .solver import (
    FCIResult,
    FCISolver,
    MultiRootFCIResult,
    fci,
    method_names,
    register_method,
)

__all__ = [
    "StringSpace",
    "ci_dimension",
    "count_strings_by_irrep",
    "fci_space_size",
    "string_irrep",
    "DoubleAnnihilationTable",
    "SingleExcitationTable",
    "build_dense_hamiltonian",
    "det_matrix_element",
    "hamiltonian_diagonal",
    "CIProblem",
    "SigmaPlan",
    "LinkIndexTables",
    "build_w_matrix",
    "build_g_matrix",
    "SigmaKernel",
    "DgemmKernel",
    "CompiledKernel",
    "MocKernel",
    "HAVE_NUMBA",
    "kernel_names",
    "make_kernel",
    "HamiltonianOperator",
    "SigmaCounters",
    "one_electron_operators",
    "sigma_dgemm",
    "MOCCounters",
    "sigma_moc",
    "DiagonalPreconditioner",
    "ModelSpacePreconditioner",
    "CheckpointError",
    "Checkpointer",
    "CheckpointState",
    "EnergyDivergenceError",
    "IterateGuard",
    "NonFiniteIterateError",
    "SolverGuardError",
    "SolveResult",
    "olsen_correction",
    "olsen_solve",
    "davidson_solve",
    "auto_adjusted_solve",
    "CIVectorStore",
    "DenseStore",
    "MmapStore",
    "SparseStore",
    "as_dense_array",
    "make_store",
    "publish_store_metrics",
    "register_store",
    "store_kinds",
    "HamiltonianColumns",
    "cdfci_solve",
    "SpinOperator",
    "apply_s2",
    "s_plus",
    "s_squared",
    "natural_orbitals",
    "one_rdm",
    "MultiRootResult",
    "davidson_multiroot",
    "CalibrationResult",
    "TruncatedCI",
    "cisd",
    "mp2_energy",
    "dipole_moment",
    "MethodFootprint",
    "davidson_io_penalty",
    "method_footprints",
    "MultiRootFCIResult",
    "FCIResult",
    "FCISolver",
    "fci",
    "method_names",
    "register_method",
]
