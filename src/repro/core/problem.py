"""CIProblem: one FCI eigenproblem with lazily-built coupling tables.

Bundles the MO integrals, the alpha/beta string spaces, the excitation
tables, and the derived integral matrices that the sigma kernels share:

* ``w_matrix`` - the packed antisymmetrized two-electron matrix
  W[(p>r),(q>s)] = (pq|rs) - (ps|rq) of the same-spin routine (paper eq. 8),
* ``g_matrix`` - the (n^2, n^2) chemists-notation integral matrix of the
  mixed-spin routine (paper eq. 5).

CI vectors are (n_alpha_strings, n_beta_strings) arrays; the paper's
"coefficients matrix with rows and columns indexed by beta and alpha
strings" is the transpose of this layout, a pure bookkeeping choice (we
distribute alpha *rows* where the paper distributes alpha *columns*).
"""

from __future__ import annotations

import numpy as np

from ..scf.mo import MOIntegrals
from .excitations import DoubleAnnihilationTable, SingleExcitationTable
from .hamiltonian import hamiltonian_diagonal
from .strings import StringSpace

__all__ = ["CIProblem"]


class CIProblem:
    """An FCI problem: integrals + string spaces + cached coupling tables."""

    def __init__(
        self,
        mo: MOIntegrals,
        n_alpha: int,
        n_beta: int,
        *,
        target_irrep: int | None = None,
        product_table: np.ndarray | None = None,
    ):
        if n_alpha < n_beta:
            raise ValueError("convention: n_alpha >= n_beta")
        self.mo = mo
        self.n = mo.n_orbitals
        self.n_alpha = n_alpha
        self.n_beta = n_beta
        self.space_a = StringSpace(self.n, n_alpha)
        self.space_b = (
            self.space_a
            if n_beta == n_alpha
            else StringSpace(self.n, n_beta)
        )
        self.target_irrep = target_irrep
        self.product_table = product_table
        self._singles_a: SingleExcitationTable | None = None
        self._singles_b: SingleExcitationTable | None = None
        self._doubles_a: DoubleAnnihilationTable | None = None
        self._doubles_b: DoubleAnnihilationTable | None = None
        self._w: np.ndarray | None = None
        self._gmat: np.ndarray | None = None
        self._diag: np.ndarray | None = None
        self._sym_mask: np.ndarray | None = None

    # --- sizes ---------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.space_a.size, self.space_b.size)

    @property
    def dimension(self) -> int:
        na, nb = self.shape
        return na * nb

    # --- lazy tables ----------------------------------------------------
    @property
    def singles_a(self) -> SingleExcitationTable:
        if self._singles_a is None:
            self._singles_a = SingleExcitationTable(self.space_a)
        return self._singles_a

    @property
    def singles_b(self) -> SingleExcitationTable:
        if self._singles_b is None:
            if self.space_b is self.space_a:
                self._singles_b = self.singles_a
            else:
                self._singles_b = SingleExcitationTable(self.space_b)
        return self._singles_b

    @property
    def doubles_a(self) -> DoubleAnnihilationTable:
        if self._doubles_a is None:
            self._doubles_a = DoubleAnnihilationTable(self.space_a)
        return self._doubles_a

    @property
    def doubles_b(self) -> DoubleAnnihilationTable:
        if self._doubles_b is None:
            if self.space_b is self.space_a:
                self._doubles_b = self.doubles_a
            else:
                self._doubles_b = DoubleAnnihilationTable(self.space_b)
        return self._doubles_b

    # --- derived integral matrices ---------------------------------------
    @property
    def w_matrix(self) -> np.ndarray:
        """W[(p>r),(q>s)] = (pq|rs) - (ps|rq), packed triangular pairs."""
        if self._w is None:
            from .plans import build_w_matrix  # local import: plans imports excitations

            self._w = build_w_matrix(self.mo.g)
        return self._w

    @property
    def g_matrix(self) -> np.ndarray:
        """Chemists' (pq|rs) reshaped to (n^2, n^2)."""
        if self._gmat is None:
            from .plans import build_g_matrix

            self._gmat = build_g_matrix(self.mo.g)
        return self._gmat

    @property
    def sigma_plan(self):
        """The problem's cached :class:`~repro.core.plans.SigmaPlan`.

        Compiled on first access and reused by every kernel, operator, and
        simulated rank thereafter (same object each time).
        """
        from .plans import SigmaPlan

        return SigmaPlan.for_problem(self)

    # --- diagonal & symmetry ---------------------------------------------
    @property
    def diagonal(self) -> np.ndarray:
        """H diagonal as an (na, nb) array (no e_core)."""
        if self._diag is None:
            self._diag = hamiltonian_diagonal(self.mo, self.space_a, self.space_b)
        return self._diag

    @property
    def symmetry_mask(self) -> np.ndarray | None:
        """Boolean (na, nb) mask of symmetry-allowed determinants, or None."""
        if self.target_irrep is None or self.mo.orbital_irreps is None:
            return None
        if self._sym_mask is None:
            pt = self.product_table
            if pt is None:
                raise ValueError("product_table required for symmetry blocking")
            ia = self.space_a.irreps(self.mo.orbital_irreps, pt)
            ib = self.space_b.irreps(self.mo.orbital_irreps, pt)
            self._sym_mask = pt[ia[:, None], ib[None, :]] == self.target_irrep
        return self._sym_mask

    def project_symmetry(self, C: np.ndarray) -> np.ndarray:
        """Zero symmetry-forbidden coefficients (the 'vector symm' step)."""
        mask = self.symmetry_mask
        if mask is None:
            return C
        out = C.copy()
        out[~mask] = 0.0
        return out

    def symmetry_dimension(self) -> int:
        mask = self.symmetry_mask
        if mask is None:
            return self.dimension
        return int(mask.sum())

    def random_vector(self, seed: int = 0) -> np.ndarray:
        """Normalized random CI vector (symmetry-projected if applicable)."""
        rng = np.random.default_rng(seed)
        C = rng.standard_normal(self.shape)
        C = self.project_symmetry(C)
        return C / np.linalg.norm(C)

    def __repr__(self) -> str:
        na, nb = self.shape
        return (
            f"CIProblem(n={self.n}, na={self.n_alpha}, nb={self.n_beta}, "
            f"dim={na}x{nb}={self.dimension})"
        )
