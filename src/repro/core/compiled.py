"""Numba-jitted gather/scatter primitives for the compiled sigma kernel.

The DGEMM sweeps of :class:`~repro.core.kernels.DgemmKernel` spend their
non-BLAS time in NumPy fancy indexing: the same-spin gather into the packed
(pairs x NK, m) intermediate, its reshaped segment-sum scatter, and the
mixed-spin D-fill / E-drain.  The loops below run those steps as compiled
machine code over the plan's :class:`~repro.core.plans.LinkIndexTables`
(per-string rectangular views), while the DGEMMs themselves stay the exact
``np.matmul`` calls of the NumPy kernel.

Bitwise contract: every accumulation below follows
:func:`~repro.core.kernels._segment_sum` semantics - the first term is
copied, later terms are added one at a time in ascending entry order - and
the gathers are pure assignments to unique slots.  Operand-identical DGEMMs
plus order-identical scatters make the jitted path bitwise-identical to
``DgemmKernel``, not merely close.

numba is optional.  This module never imports it unconditionally: when it
is missing, ``HAVE_NUMBA`` is False, the primitives are ``None``, and the
compiled kernel falls back to the NumPy sweeps (the same code path as
``DgemmKernel``).  Nothing else in the package may import numba directly.
"""

from __future__ import annotations

__all__ = [
    "HAVE_NUMBA",
    "NUMBA_VERSION",
    "same_spin_gather",
    "same_spin_scatter",
    "mixed_spin_gather",
    "mixed_spin_scatter",
]

try:  # pragma: no cover - exercised per-environment, not per-test
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    numba = None
    HAVE_NUMBA = False

NUMBA_VERSION = getattr(numba, "__version__", None)

if HAVE_NUMBA:  # pragma: no cover - requires the optional numba lane
    _jit = numba.njit(cache=True, fastmath=False)

    @_jit
    def same_spin_gather(D, key, sign, C_rows, lo, m):
        """D[v, key[j, t], c] = sign[j, t] * C_rows[v, j, lo + c].

        ``key`` entries are unique per (j, t) so this is a pure scatter-free
        assignment; D must be zeroed by the caller (rows no entry addresses
        feed the DGEMM as zeros, exactly like the NumPy gather).
        """
        kvec = C_rows.shape[0]
        nstr = key.shape[0]
        kk2 = key.shape[1]
        for v in range(kvec):
            for j in range(nstr):
                for t in range(kk2):
                    row = key[j, t]
                    s = sign[j, t]
                    for c in range(m):
                        D[v, row, c] = s * C_rows[v, j, lo + c]

    @_jit
    def same_spin_scatter(out, key, sign, E, lo, m):
        """out[v, j, lo+c] = sum_t sign[j, t] * E[v, key[j, t], c].

        First term copied, later terms added in ascending t - the exact
        left-to-right order of ``_segment_sum``, element for element.
        """
        kvec = E.shape[0]
        nstr = key.shape[0]
        kk2 = key.shape[1]
        for v in range(kvec):
            for j in range(nstr):
                for c in range(m):
                    acc = sign[j, 0] * E[v, key[j, 0], c]
                    for t in range(1, kk2):
                        acc += sign[j, t] * E[v, key[j, t], c]
                    out[v, j, lo + c] = acc

    @_jit
    def mixed_spin_gather(D, src, pq, sign, C_stack, lo, m):
        """D[v, pq[jb, t], jb - lo, a] = sign[jb, t] * C_stack[v, a, src[jb, t]].

        ``jb`` walks the beta column block [lo, lo + m); (jb, pq) pairs are
        unique, so again a pure assignment into a caller-zeroed D.
        """
        kvec = C_stack.shape[0]
        na = C_stack.shape[1]
        per = pq.shape[1]
        for v in range(kvec):
            for jb in range(lo, lo + m):
                for t in range(per):
                    col = pq[jb, t]
                    s = sign[jb, t]
                    sb = src[jb, t]
                    for a in range(na):
                        D[v, col, jb - lo, a] = s * C_stack[v, a, sb]

    @_jit
    def mixed_spin_scatter(sigma, src, pq, sign, E, lo, m):
        """sigma[v, ja, lo+c] += sum_t sign[ja, t] * E[v, pq[ja, t], c, src[ja, t]].

        Same first-copy-then-add order as the NumPy segment sum, and the
        block total is added to sigma exactly once per element, matching
        ``sigma[:, :, lo:hi] += _segment_sum(...)``.
        """
        kvec = E.shape[0]
        na = pq.shape[0]
        per = pq.shape[1]
        for v in range(kvec):
            for ja in range(na):
                for c in range(m):
                    acc = sign[ja, 0] * E[v, pq[ja, 0], c, src[ja, 0]]
                    for t in range(1, per):
                        acc += sign[ja, t] * E[v, pq[ja, t], c, src[ja, t]]
                    sigma[v, ja, lo + c] += acc

else:
    same_spin_gather = None
    same_spin_scatter = None
    mixed_spin_gather = None
    mixed_spin_scatter = None
