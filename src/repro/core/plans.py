"""Precompiled sigma plans: the sparse index structure, built once.

The paper's whole point is that sigma = H C becomes fast when the sparse
coupling structure is *precomputed once* and the per-iteration work is pure
gather / DGEMM / scatter.  A :class:`SigmaPlan` is that precomputation made
explicit: for one :class:`~repro.core.problem.CIProblem` it compiles

* the one-electron CSR operators T_sigma[I,J] = sum_pq h_pq <I|E_pq|J>,
* the mixed-spin gather/scatter tables re-sorted by target string (so the
  kernels can slice whole blocks of beta columns / alpha rows with constant
  segment length, paper eqs. 4-6),
* the same-spin ``key`` arrays (pair * NK + target) addressing the packed
  (pairs x N-2-strings) intermediate, with float signs (paper eqs. 7-9),
* the W supermatrix W[(p>r),(q>s)] = (pq|rs) - (ps|rq) and the (n^2, n^2)
  chemists-notation G matrix,

and caches all of it on the problem (``SigmaPlan.for_problem``), so every
solver iteration, every batch column, and every simulated MSP rank reuses
one immutable plan instead of re-deriving tables in the hot path.

The plan is consumed by :mod:`repro.core.kernels` (the ``SigmaKernel``
implementations) and by :class:`repro.parallel.pfci.ParallelSigma`, which
replicates the same plan on every simulated rank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .excitations import DoubleAnnihilationTable, SingleExcitationTable

__all__ = [
    "SigmaPlan",
    "SameSpinPlan",
    "MixedSpinHalfPlan",
    "LinkIndexTables",
    "SameSpinLink",
    "SinglesLink",
    "build_w_matrix",
    "build_g_matrix",
    "one_electron_csr",
    "DEFAULT_BLOCK_BUDGET_MB",
]

DEFAULT_BLOCK_BUDGET_MB = 256
_MAX_BLOCK_COLUMNS = 1024


def build_w_matrix(g: np.ndarray) -> np.ndarray:
    """W[(p>r),(q>s)] = (pq|rs) - (ps|rq), packed triangular pairs.

    Vectorized build: pairs are enumerated (1,0), (2,0), (2,1), ... exactly
    like ``np.tril_indices`` so the layout matches
    :attr:`repro.core.excitations.DoubleAnnihilationTable.pair`.
    """
    n = g.shape[0]
    p, r = np.tril_indices(n, -1)
    return (
        g[p[:, None], p[None, :], r[:, None], r[None, :]]
        - g[p[:, None], r[None, :], r[:, None], p[None, :]]
    )


def build_g_matrix(g: np.ndarray) -> np.ndarray:
    """Chemists' (pq|rs) reshaped to a contiguous (n^2, n^2) DGEMM operand."""
    n = g.shape[0]
    return np.ascontiguousarray(g.reshape(n * n, n * n))


def one_electron_csr(h: np.ndarray, table: SingleExcitationTable) -> sp.csr_matrix:
    """Sparse one-electron operator T[I,J] = sum_pq h_pq <I|E_pq|J>."""
    vals = h[table.p, table.q] * table.sign
    n = table.space.size
    return sp.csr_matrix((vals, (table.target, table.source)), shape=(n, n))


@dataclass
class SameSpinPlan:
    """Precompiled addressing for one same-spin (alpha-alpha or beta-beta) term.

    ``key = pair * NK + target`` is unique per table entry, so the gather into
    the packed (n_pairs * NK, m) intermediate is a plain fancy assignment and
    the scatter is a reshaped segment sum - no indexed accumulate.
    """

    key: np.ndarray  # pair * NK + target, int64, one per table entry
    source: np.ndarray  # source string of each entry
    sign: np.ndarray  # float64 signs (pre-cast once)
    n_pairs: int  # n(n-1)/2 packed orbital pairs
    n_reduced: int  # NK: size of the N-2-electron intermediate space
    n_strings: int
    pairs_per_string: int  # k(k-1)/2
    n_entries: int

    @classmethod
    def from_table(cls, table: DoubleAnnihilationTable) -> "SameSpinPlan":
        k = table.space.k
        NK = table.reduced_space.size
        return cls(
            key=table.pair * NK + table.target,
            source=table.source,
            sign=table.sign.astype(np.float64),
            n_pairs=table.n_pairs,
            n_reduced=NK,
            n_strings=table.space.size,
            pairs_per_string=k * (k - 1) // 2,
            n_entries=table.n_entries,
        )


@dataclass
class MixedSpinHalfPlan:
    """One spin side of the mixed-spin term, re-sorted by target string.

    Every target string has the same number of entries (``per``), so sorted
    order lets the kernels slice whole blocks of targets: contiguous gather
    segments on the beta side, reshaped segment sums on the alpha side.
    """

    source: np.ndarray
    target: np.ndarray
    p: np.ndarray
    q: np.ndarray
    pq: np.ndarray  # p * n + q, flat orbital-pair index
    sign: np.ndarray  # float64 signs (pre-cast once)
    per: int  # entries per target string
    n_entries: int

    @classmethod
    def from_table(cls, table: SingleExcitationTable) -> "MixedSpinHalfPlan":
        n = table.space.n
        order = np.argsort(table.target, kind="stable")
        p = table.p[order]
        q = table.q[order]
        return cls(
            source=table.source[order],
            target=table.target[order],
            p=p,
            q=q,
            pq=p * n + q,
            sign=table.sign[order].astype(np.float64),
            per=table.n_entries // table.space.size,
            n_entries=table.n_entries,
        )


@dataclass
class SameSpinLink:
    """Per-string link-index view of a :class:`SameSpinPlan`.

    pyscf ``gen_linkstr_index`` idiom: the flat entry arrays are source-major
    with a constant k(k-1)/2 entries per string, so reshaping to
    (n_strings, pairs_per_string) is free (views, no copy) and gives compiled
    gather/scatter loops a rectangular table indexed by string.
    """

    key: np.ndarray  # (n_strings, pairs_per_string) int64, pair * NK + target
    sign: np.ndarray  # (n_strings, pairs_per_string) float64

    @classmethod
    def from_plan(cls, splan: SameSpinPlan) -> "SameSpinLink":
        nstr, kk2 = splan.n_strings, splan.pairs_per_string
        return cls(
            key=splan.key.reshape(nstr, kk2),
            sign=splan.sign.reshape(nstr, kk2),
        )


@dataclass
class SinglesLink:
    """Per-target-string link-index view of a :class:`MixedSpinHalfPlan`.

    The half plan is already target-sorted with a constant ``per`` entries
    per target string, so the (n_strings, per) tables are reshape views of
    the flat arrays.  Row ``t`` lists all (source, pq, sign) with
    <t| E_pq |source> = sign - exactly what the compiled beta-gather and
    alpha-scatter loops walk string-by-string.
    """

    source: np.ndarray  # (n_strings, per) int64
    pq: np.ndarray  # (n_strings, per) int64, p * n + q
    sign: np.ndarray  # (n_strings, per) float64

    @classmethod
    def from_half(cls, half: MixedSpinHalfPlan, n_strings: int) -> "SinglesLink":
        per = half.per
        return cls(
            source=half.source.reshape(n_strings, per),
            pq=half.pq.reshape(n_strings, per),
            sign=half.sign.reshape(n_strings, per),
        )


@dataclass
class LinkIndexTables:
    """All per-string link tables of one plan, for compiled kernels.

    Every array is a reshape *view* of the corresponding :class:`SigmaPlan`
    array (zero copies, zero extra bytes), so building these is O(1); they
    exist to give jitted loops rectangular per-string indexing instead of
    flat segment arithmetic.  Cached on the plan via
    :attr:`SigmaPlan.link_tables`.
    """

    same_a: SameSpinLink | None
    same_b: SameSpinLink | None
    scatter_a: SinglesLink
    gather_b: SinglesLink

    @classmethod
    def from_plan(cls, plan: "SigmaPlan") -> "LinkIndexTables":
        na, nb = plan.shape
        same_a = SameSpinLink.from_plan(plan.same_a) if plan.same_a is not None else None
        if plan.same_b is None:
            same_b = None
        elif plan.same_b is plan.same_a:
            same_b = same_a
        else:
            same_b = SameSpinLink.from_plan(plan.same_b)
        scatter_a = SinglesLink.from_half(plan.scatter_a, na)
        gather_b = (
            scatter_a
            if plan.gather_b is plan.scatter_a
            else SinglesLink.from_half(plan.gather_b, nb)
        )
        return cls(
            same_a=same_a, same_b=same_b, scatter_a=scatter_a, gather_b=gather_b
        )


class SigmaPlan:
    """Everything a sigma kernel needs, compiled once per CI problem.

    Parameters
    ----------
    problem:
        The CI eigenproblem.
    reuse_problem_cache:
        When True (the default), the plan reuses the excitation tables and
        derived integral matrices already cached on the problem.  When False
        it recompiles *everything* from scratch - the mode the
        ``bench_sigma_plan`` benchmark uses to price the pre-refactor
        rebuild-per-call behaviour.
    """

    def __init__(self, problem, *, reuse_problem_cache: bool = True):
        self.problem = problem
        self.n = problem.n
        self.shape = problem.shape
        if reuse_problem_cache:
            singles_a = problem.singles_a
            singles_b = problem.singles_b
            doubles_a = problem.doubles_a if problem.n_alpha >= 2 else None
            doubles_b = problem.doubles_b if problem.n_beta >= 2 else None
            w = problem.w_matrix
            gmat = problem.g_matrix
        else:
            singles_a = SingleExcitationTable(problem.space_a)
            singles_b = (
                singles_a
                if problem.space_b is problem.space_a
                else SingleExcitationTable(problem.space_b)
            )
            doubles_a = (
                DoubleAnnihilationTable(problem.space_a)
                if problem.n_alpha >= 2
                else None
            )
            if problem.n_beta < 2:
                doubles_b = None
            elif problem.space_b is problem.space_a:
                doubles_b = doubles_a
            else:
                doubles_b = DoubleAnnihilationTable(problem.space_b)
            w = build_w_matrix(problem.mo.g)
            gmat = build_g_matrix(problem.mo.g)
        self.singles_a = singles_a
        self.singles_b = singles_b
        self.w_matrix = w
        self.g_matrix = gmat
        h = problem.mo.h
        self.Ta = one_electron_csr(h, singles_a)
        self.Tb = self.Ta if singles_b is singles_a else one_electron_csr(h, singles_b)
        # mixed-spin: alpha side scatters, beta side gathers (paper eqs. 4-6)
        self.scatter_a = MixedSpinHalfPlan.from_table(singles_a)
        self.gather_b = (
            self.scatter_a
            if singles_b is singles_a
            else MixedSpinHalfPlan.from_table(singles_b)
        )
        self.same_a = SameSpinPlan.from_table(doubles_a) if doubles_a is not None else None
        if doubles_b is None:
            self.same_b = None
        elif doubles_b is doubles_a:
            self.same_b = self.same_a
        else:
            self.same_b = SameSpinPlan.from_table(doubles_b)

    @classmethod
    def for_problem(cls, problem) -> "SigmaPlan":
        """The problem's cached plan, compiling it on first use.

        Repeated calls return the *same object*, which is what makes every
        solver iteration (and every rank of :class:`ParallelSigma`) reuse
        one set of tables instead of rebuilding them per sigma evaluation.
        """
        plan = getattr(problem, "_sigma_plan", None)
        if plan is None:
            plan = cls(problem)
            problem._sigma_plan = plan
        return plan

    @property
    def link_tables(self) -> LinkIndexTables:
        """pyscf ``link_index``-style per-string tables, built lazily, cached.

        Pure reshape views of the plan's flat arrays, so the first access
        costs O(1) and nothing is double counted in :attr:`nbytes`.
        """
        tables = getattr(self, "_link_tables", None)
        if tables is None:
            tables = LinkIndexTables.from_plan(self)
            self._link_tables = tables
        return tables

    @property
    def nbytes(self) -> int:
        """Total bytes held by the plan's compiled arrays.

        The cache-accounting figure for content-addressed plan stores (the
        service layer's artifact cache budgets and reports eviction on it):
        the W/G supermatrices, the one-electron CSR operators, and every
        gather/scatter index array, counted once per distinct object
        (shared alpha/beta halves are not double counted).
        """
        seen: set[int] = set()
        total = 0

        def add(arr) -> None:
            nonlocal total
            if arr is None or id(arr) in seen:
                return
            seen.add(id(arr))
            total += int(arr.nbytes)

        add(self.w_matrix)
        add(self.g_matrix)
        for csr in {id(self.Ta): self.Ta, id(self.Tb): self.Tb}.values():
            add(csr.data)
            add(csr.indices)
            add(csr.indptr)
        for half in {id(self.scatter_a): self.scatter_a,
                     id(self.gather_b): self.gather_b}.values():
            for name in ("source", "target", "p", "q", "pq", "sign"):
                add(getattr(half, name))
        for splan in (self.same_a, self.same_b):
            if splan is not None:
                for name in ("key", "source", "sign"):
                    add(getattr(splan, name))
        return total

    def default_block_columns(
        self,
        *,
        memory_budget_mb: int = DEFAULT_BLOCK_BUDGET_MB,
        batch: int = 1,
        resident_bytes: int | None = None,
    ) -> int:
        """Column-block width sized so the D/E intermediates fit a budget.

        The dominant scratch is the mixed-spin pipeline's pair of dense
        intermediates D and E, each (n^2, m, batch * n_alpha_strings)
        float64; the same-spin pipeline needs (n_pairs * NK, m) for each.
        The returned ``m`` is the largest block for which both stay inside
        ``memory_budget_mb``, clamped to [1, 1024].  This is the default
        used by :class:`~repro.core.kernels.DgemmKernel`,
        :class:`~repro.core.solver.FCISolver`, and
        :class:`~repro.parallel.pfci.ParallelSigma` when ``block_columns``
        is not given explicitly.

        ``resident_bytes`` charges the CI vectors themselves against the
        budget - the solver passes the *resident* footprint its
        :class:`~repro.core.vectors.CIVectorStore` reports
        (``resident_nbytes``), not the logical vector size, so an
        out-of-core ``MmapStore`` campaign keeps the full scratch budget
        while a dense run leaves room for the vectors it actually pins in
        RAM.  Changing the block width never changes results: every kernel
        is bitwise-identical across ``block_columns`` (each output column
        of a wider DGEMM is the same dot product).
        """
        na, _ = self.shape
        nn = self.n * self.n
        per_col = 2 * 8 * nn * na * max(int(batch), 1)  # mixed-spin D + E
        for splan in (self.same_a, self.same_b):
            if splan is not None:
                per_col = max(per_col, 2 * 8 * splan.n_pairs * splan.n_reduced)
        budget = int(memory_budget_mb) * 2**20
        if resident_bytes:
            # never starve the kernel completely: keep at least 1 MiB of
            # scratch so pathological residencies degrade to m = small, not 0
            budget = max(budget - int(resident_bytes), 2**20)
        m = budget // per_col if per_col else _MAX_BLOCK_COLUMNS
        return int(min(max(m, 1), _MAX_BLOCK_COLUMNS))

    def __repr__(self) -> str:
        na, nb = self.shape
        return (
            f"SigmaPlan(n={self.n}, shape={na}x{nb}, "
            f"singles={self.scatter_a.n_entries}+{self.gather_b.n_entries}, "
            f"doubles={(self.same_a.n_entries if self.same_a else 0)}"
            f"+{(self.same_b.n_entries if self.same_b else 0)})"
        )
