"""High-level FCI driver: molecule -> SCF -> MO integrals -> eigen solve.

This is the main user-facing entry point of the library:

    from repro import Molecule, FCISolver
    mol = Molecule.from_atoms([("H", (0, 0, 0)), ("H", (0, 0, 1.4))])
    result = FCISolver(mol, basis="sto-3g").run()
    print(result.energy)
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from ..molecule.geometry import Molecule
from ..molecule.symmetry import PointGroup, ao_representation, assign_orbital_irreps
from ..scf.mo import MOIntegrals, freeze_core, transform
from ..scf.rhf import AOIntegrals, SCFResult, compute_ao_integrals, rhf
from ..scf.rohf import rohf
from .auto_single import auto_adjusted_solve
from .checkpoint import Checkpointer
from .davidson import davidson_solve
from .kernels import kernel_names
from .model_space import DiagonalPreconditioner, ModelSpacePreconditioner
from .olsen import SolveResult, olsen_solve
from .operator import HamiltonianOperator
from .problem import CIProblem
from .spin import SpinOperator
from .strings import string_irrep
from .vectors import make_store, publish_store_metrics, store_kinds

__all__ = [
    "FCISolver",
    "FCIResult",
    "MultiRootFCIResult",
    "fci",
    "register_method",
    "method_names",
]

logger = logging.getLogger(__name__)

# -- eigensolver method registry ------------------------------------------
# Mirrors the kernel registry in repro.core.kernels: methods register a
# dispatch function and FCISolver validates/routes by name, so adding a
# solver (the way cdfci does below) never edits the driver's if/elif chain.
_METHODS: dict = {}


def register_method(name: str):
    """Class-less registration decorator for eigensolver dispatchers.

    The registered callable is invoked as
    ``fn(solver, problem, sigma_fn, guess, precond, store, kwargs)`` and
    must return a :class:`~repro.core.olsen.SolveResult`.
    """

    def decorate(fn):
        _METHODS[name] = fn
        return fn

    return decorate


def method_names() -> tuple[str, ...]:
    """Registered eigensolver method names, sorted."""
    return tuple(sorted(_METHODS))


@register_method("davidson")
def _dispatch_davidson(solver, problem, sigma_fn, guess, precond, store, kwargs):
    return davidson_solve(sigma_fn, guess, precond, store=store, **kwargs)


@register_method("auto")
def _dispatch_auto(solver, problem, sigma_fn, guess, precond, store, kwargs):
    return auto_adjusted_solve(sigma_fn, guess, precond, store=store, **kwargs)


@register_method("olsen")
def _dispatch_olsen(solver, problem, sigma_fn, guess, precond, store, kwargs):
    return olsen_solve(sigma_fn, guess, precond, step=1.0, store=store, **kwargs)


@register_method("olsen-damped")
def _dispatch_olsen_damped(solver, problem, sigma_fn, guess, precond, store, kwargs):
    return olsen_solve(
        sigma_fn, guess, precond, step=solver.olsen_step, store=store, **kwargs
    )


@register_method("cdfci")
def _dispatch_cdfci(solver, problem, sigma_fn, guess, precond, store, kwargs):
    from .cdfci import cdfci_solve

    kwargs = dict(kwargs)
    kwargs.pop("telemetry", None)
    kwargs.pop("checkpoint", None)
    opts = dict(solver.vector_store or {})
    opts.pop("kind", None)
    return cdfci_solve(
        problem,
        guess=guess,
        telemetry=solver.telemetry,
        checkpoint=solver.checkpoint,
        **opts,
        **kwargs,
    )


@dataclass
class FCIResult:
    """Complete outcome of an FCI calculation."""

    energy: float  # total energy (electronic + core/nuclear)
    scf_energy: float
    correlation_energy: float
    vector: np.ndarray
    problem: CIProblem
    solve: SolveResult
    scf: SCFResult
    mo: MOIntegrals
    n_sigma: int
    s_squared: float

    def __repr__(self) -> str:
        return (
            f"FCIResult(E={self.energy:.10f}, Ecorr={self.correlation_energy:.8f}, "
            f"dim={self.problem.dimension}, iters={self.solve.n_iterations})"
        )


class FCISolver:
    """Configurable FCI calculation on a molecule.

    Parameters
    ----------
    mol:
        Molecule (defines electron count and spin through its multiplicity).
    basis:
        Basis-set name understood by :func:`repro.basis.build_basis`.
    frozen_core:
        Number of frozen doubly-occupied orbitals, or "auto" (one 1s core per
        non-hydrogen/helium atom).
    point_group:
        Optional abelian point group name; enables symmetry blocking.
    wavefunction_irrep:
        Target irrep name (requires point_group); default = irrep of the SCF
        determinant.
    algorithm:
        Name of a registered sigma kernel: "dgemm" (the paper's algorithm),
        "compiled" (link-index tables with numba-jitted gather/scatter,
        falling back to the NumPy sweeps - bitwise-identical to "dgemm" -
        when numba is not importable), or "moc" (baseline).  Validated
        against the kernel registry
        (:func:`repro.core.kernels.kernel_names`) at construction time.
    kernel:
        Alias for ``algorithm`` (the registry's own vocabulary);
        ``FCISolver(kernel="compiled")`` is the documented spelling.  When
        both are given, ``kernel`` wins.
    method:
        A registered eigensolver method (:func:`method_names`): "auto"
        (paper's automatically adjusted single-vector method), "davidson",
        "olsen", "olsen-damped", or "cdfci" (coordinate-descent FCI on a
        sparse store; incompatible with ``spin_penalty`` and ``parallel``).
    vector_store:
        CI-vector storage backend for the solver's held vectors: a
        registered store kind (:func:`repro.core.vectors.store_kinds` -
        "dense", "mmap", "sparse") or an option dict such as
        ``{"kind": "mmap", "directory": "/scratch"}``.  The default None
        keeps plain in-RAM arrays (bitwise identical to the
        pre-storage-layer behaviour, including the kernel block-width
        heuristic).  "mmap" keeps Davidson's subspace / the single-vector
        iterate out of core, and the kernel block budget is recomputed
        from the store's *resident* footprint.  ``method="cdfci"`` always
        solves on sparse stores; extra keys of the dict (e.g.
        ``capacity``) are forwarded to
        :func:`repro.core.cdfci.cdfci_solve`.
    block_columns:
        Column-block width of the sigma kernel's dense intermediates; the
        default None sizes it from a memory budget via
        :meth:`repro.core.plans.SigmaPlan.default_block_columns`.
    parallel:
        Run sigma through :class:`repro.parallel.ParallelSigma` instead of
        the serial kernel: an execution-backend name (``"simulated"`` for
        the discrete-event X1, ``"shm"`` for real worker processes over
        shared memory, ``"sockets"`` for real worker processes behind a
        TCP coordinator) or an option dict passed to ``ParallelSigma``
        (e.g. ``{"backend": "sockets", "n_workers": 4}``).  Requires
        ``algorithm="dgemm"`` or ``"compiled"`` (the parallel decomposition
        is the paper's DGEMM sigma; the compiled sweeps run it
        operand-identically); the default None keeps the serial kernel.
        Worker pools are shut down when :meth:`run` returns.
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  When given, per-iteration
        solver telemetry (energy, residual norm, step length) and
        per-sigma FLOP/byte accounting are recorded in its metrics
        registry.  The default None is a strict no-op: results are
        bitwise identical with and without telemetry.
    checkpoint:
        Optional checkpoint path (str/Path) or a preconfigured
        :class:`repro.core.checkpoint.Checkpointer`.  The eigensolve then
        persists its restart state (atomically, CRC-verified) after each
        iteration and resumes from the file when it exists, so an
        interrupted campaign restarts instead of starting over.
    """

    def __init__(
        self,
        mol: Molecule,
        basis: str = "sto-3g",
        *,
        frozen_core: int | str = 0,
        n_active: int | None = None,
        point_group: str | None = None,
        wavefunction_irrep: str | None = None,
        algorithm: str = "dgemm",
        kernel: str | None = None,
        method: str = "auto",
        vector_store: str | dict | None = None,
        block_columns: int | None = None,
        model_space_size: int = 50,
        spin_penalty: float = 0.0,
        olsen_step: float = 0.7,
        energy_tol: float = 1e-10,
        residual_tol: float = 1e-5,
        max_iterations: int = 60,
        ao_integrals: AOIntegrals | None = None,
        scf_result: SCFResult | None = None,
        parallel: str | dict | None = None,
        telemetry=None,
        checkpoint=None,
    ):
        if kernel is not None:
            algorithm = kernel
        # validate against the kernel registry at construction time, so an
        # unknown algorithm fails here instead of silently falling back later
        if algorithm not in kernel_names():
            raise ValueError(
                f"algorithm must be a registered sigma kernel "
                f"({', '.join(kernel_names())}); got {algorithm!r}"
            )
        if method not in _METHODS:
            raise ValueError(
                f"method must be a registered eigensolver "
                f"({', '.join(method_names())}); got {method!r}"
            )
        if vector_store is not None:
            if isinstance(vector_store, str):
                vector_store = {"kind": vector_store}
            if not isinstance(vector_store, dict) or "kind" not in vector_store:
                raise ValueError(
                    "vector_store must be a store kind, a dict with a 'kind' "
                    f"key, or None; got {vector_store!r}"
                )
            if vector_store["kind"] not in store_kinds():
                raise ValueError(
                    f"vector_store kind must be one of "
                    f"{', '.join(store_kinds())}; got {vector_store['kind']!r}"
                )
        if method == "cdfci":
            if vector_store is not None and vector_store["kind"] != "sparse":
                raise ValueError(
                    "cdfci solves on sparse stores; "
                    f"vector_store={vector_store['kind']!r} cannot apply"
                )
            if spin_penalty:
                raise ValueError(
                    "cdfci assembles bare Hamiltonian columns; it does not "
                    "support a spin penalty"
                )
            if parallel is not None:
                raise ValueError("cdfci does not run through ParallelSigma")
        elif vector_store is not None and vector_store["kind"] == "sparse":
            raise ValueError(
                "sparse stores back the cdfci method; dense iterative solvers "
                "need a dense or mmap vector_store"
            )
        self.vector_store = vector_store
        if parallel is not None:
            if algorithm not in ("dgemm", "compiled"):
                raise ValueError(
                    "parallel execution runs the DGEMM sigma decomposition "
                    "(kernel 'dgemm' or its operand-identical 'compiled' "
                    f"variant); it cannot be combined with algorithm={algorithm!r}"
                )
            from ..parallel.backend import backend_names

            if isinstance(parallel, str):
                parallel = {"backend": parallel}
            if not isinstance(parallel, dict):
                raise ValueError(
                    "parallel must be a backend name, an option dict, or None; "
                    f"got {parallel!r}"
                )
            name = parallel.get("backend", "simulated")
            if name not in backend_names():
                raise ValueError(
                    f"parallel backend must be one of "
                    f"{', '.join(backend_names())}; got {name!r}"
                )
        self.parallel = parallel
        self.mol = mol
        self.basis = basis
        self.frozen_core = frozen_core
        self.n_active = n_active
        self.point_group = point_group
        self.wavefunction_irrep = wavefunction_irrep
        self.algorithm = algorithm
        self.method = method
        self.block_columns = block_columns
        self.model_space_size = model_space_size
        self.spin_penalty = float(spin_penalty)
        self.olsen_step = olsen_step
        self.energy_tol = energy_tol
        self.residual_tol = residual_tol
        self.max_iterations = max_iterations
        self.telemetry = telemetry
        if checkpoint is None or isinstance(checkpoint, Checkpointer):
            self.checkpoint = checkpoint
        else:
            self.checkpoint = Checkpointer(checkpoint, telemetry=telemetry)
        self._ao = ao_integrals
        self._scf = scf_result

    # -- pipeline pieces ---------------------------------------------------
    def _n_frozen(self) -> int:
        if self.frozen_core == "auto":
            return sum(1 for a in self.mol.atoms if a.Z > 2)
        return int(self.frozen_core)

    def build_problem(self) -> tuple[CIProblem, SCFResult, MOIntegrals]:
        """Run SCF, transform integrals, and build the CI problem."""
        if self._ao is None:
            self._ao = compute_ao_integrals(
                self.mol,
                self.basis,
                registry=self.telemetry.registry if self.telemetry else None,
            )
        ao = self._ao

        group = None
        sym_ops = None
        if self.point_group is not None:
            group = PointGroup.get(self.point_group)
            bas = self.mol.basis(self.basis)
            sym_ops = [
                ao_representation(bas, self.mol.coordinates(), g) for g in group.ops
            ]

        if self._scf is None:
            if self.mol.multiplicity == 1:
                self._scf = rhf(self.mol, ao, symmetry_ops=sym_ops)
            else:
                self._scf = rohf(self.mol, ao, symmetry_ops=sym_ops)
        scf = self._scf
        if not scf.converged:
            raise RuntimeError("SCF did not converge; cannot define orbitals")

        orbital_irreps = None
        product_table = None
        target = None
        C_mo = scf.mo_coeff
        if group is not None:
            C_mo, orbital_irreps = assign_orbital_irreps(
                group,
                bas,
                self.mol.coordinates(),
                scf.mo_coeff,
                ao.S,
                scf.mo_energy,
            )
            product_table = group.product_table()
            if self.wavefunction_irrep is not None:
                target = group.irrep_id(self.wavefunction_irrep)
            else:
                # irrep of the SCF determinant: doubly-occupied orbitals
                # contribute trivially; singly occupied ones multiply up.
                na, nb = scf.n_alpha, scf.n_beta
                open_orbs = list(range(nb, na))
                target = string_irrep(open_orbs, orbital_irreps, product_table)

        mo = transform(ao, C_mo, orbital_irreps)
        nf = self._n_frozen()
        if nf or self.n_active is not None:
            if nf > self.mol.n_beta:
                raise ValueError("cannot freeze more orbitals than beta electrons")
            if self.n_active is not None and self.n_active < self.mol.n_alpha - nf:
                raise ValueError("active space too small for the electrons")
            mo = freeze_core(mo, nf, self.n_active)
        problem = CIProblem(
            mo,
            self.mol.n_alpha - nf,
            self.mol.n_beta - nf,
            target_irrep=target,
            product_table=product_table,
        )
        return problem, scf, mo

    def _make_store(self, problem: CIProblem):
        """The run's CI-vector store template, or None for plain arrays.

        ``None`` (the default backend) deliberately bypasses the store layer
        entirely so the solvers execute the exact pre-refactor code path;
        cdfci manages its own sparse stores.
        """
        if self.vector_store is None or self.method == "cdfci":
            return None
        opts = {k: v for k, v in self.vector_store.items() if k != "kind"}
        return make_store(self.vector_store["kind"], problem.shape, **opts)

    def _store_block_columns(self, problem: CIProblem) -> int | None:
        """Kernel block width, recomputed from the store's resident footprint.

        Only an *explicit* ``vector_store`` changes the heuristic: the
        default run must keep the pre-storage-layer block width so dense
        results stay bitwise identical.  Dense stores pin their full held
        vectors (C, sigma and a scratch per single-vector method - the
        subspace methods' extra holds only widen the block conservatively);
        mmap stores pin nothing, so only the kernels' in-flight working
        copy is charged.
        """
        if self.block_columns is not None or self.vector_store is None:
            return self.block_columns
        from .plans import SigmaPlan

        vec_bytes = 8 * problem.dimension
        if self.vector_store["kind"] == "mmap":
            resident = vec_bytes  # the kernels' in-flight working copy
        else:
            resident = 3 * vec_bytes
        return SigmaPlan.for_problem(problem).default_block_columns(
            resident_bytes=resident
        )

    def build_operator(self, problem: CIProblem, **overrides) -> HamiltonianOperator:
        """The solver's sigma operator for an already-built problem."""
        spin_op = SpinOperator(problem)
        s_target = 0.5 * (self.mol.multiplicity - 1)
        kwargs = dict(
            block_columns=self._store_block_columns(problem),
            spin_penalty=self.spin_penalty,
            s2_target=s_target * (s_target + 1.0),
            telemetry=self.telemetry,
            spin_operator=spin_op,
        )
        kwargs.update(overrides)
        kernel: str = self.algorithm
        if self.parallel is not None:
            from ..parallel import ParallelSigma

            popts = dict(self.parallel)
            popts.setdefault("backend", "simulated")
            if popts["backend"] == "simulated" and self.vector_store is not None:
                # the simulated machine's distributed C/sigma ride the same
                # storage backend as the solver's held vectors
                popts.setdefault("vector_store", dict(self.vector_store))
            popts.setdefault("kernel", self.algorithm)
            kernel = ParallelSigma(
                problem,
                block_columns=kwargs["block_columns"],
                telemetry=self.telemetry,
                **popts,
            )
        return HamiltonianOperator(problem, kernel, **kwargs)

    @staticmethod
    def _close_kernel(sigma_fn: HamiltonianOperator) -> None:
        """Shut down kernel-owned resources (the shm worker pool)."""
        close = getattr(sigma_fn.kernel, "close", None)
        if close is not None:
            close()

    def run(self, *, prebuilt=None) -> FCIResult:
        """Execute the full pipeline and return the converged result.

        ``prebuilt`` is an optional ``(problem, scf, mo)`` triple from an
        earlier :meth:`build_problem` - the service layer's content-addressed
        artifact cache hands the same compiled problem (whose cached
        :class:`~repro.core.plans.SigmaPlan` and excitation tables ride
        along) to every job that shares the molecule/basis/CI-space digest,
        so only the first job in a family pays the compilation.
        """
        problem, scf, mo = prebuilt if prebuilt is not None else self.build_problem()
        sigma_fn = self.build_operator(problem)
        try:
            return self._run_solve(problem, scf, mo, sigma_fn)
        finally:
            self._close_kernel(sigma_fn)

    def _run_solve(self, problem, scf, mo, sigma_fn) -> FCIResult:
        spin_op = sigma_fn._spin_op

        if self.model_space_size > 0:
            precond: DiagonalPreconditioner = ModelSpacePreconditioner(
                problem, self.model_space_size
            )
            guess = precond.ground_state_guess()
        else:
            precond = DiagonalPreconditioner(problem)
            flat = np.zeros(problem.dimension)
            diag = problem.diagonal.ravel().copy()
            mask = problem.symmetry_mask
            if mask is not None:
                diag = np.where(mask.ravel(), diag, np.inf)
            flat[int(np.argmin(diag))] = 1.0
            guess = flat.reshape(problem.shape)

        kwargs = dict(
            energy_tol=self.energy_tol,
            residual_tol=self.residual_tol,
            max_iterations=self.max_iterations,
            telemetry=self.telemetry,
            checkpoint=self.checkpoint,
        )
        store = self._make_store(problem)
        try:
            solve = _METHODS[self.method](
                self, problem, sigma_fn, guess, precond, store, kwargs
            )
        finally:
            if store is not None:
                if self.telemetry:
                    publish_store_metrics(self.telemetry.registry, [store])
                store.close()

        total = solve.energy + mo.e_core
        if self.telemetry:
            self.telemetry.solver_result(
                solve.method,
                total,
                solve.converged,
                solve.n_iterations,
                sigma_fn.n_calls,
                dimension=problem.dimension,
            )
        if not solve.converged:
            logger.warning(
                "FCI %s did not converge in %d iterations (E=%.10f)",
                solve.method,
                solve.n_iterations,
                total,
            )
        else:
            logger.info(
                "FCI %s converged: E=%.10f (%d iterations, dim %d)",
                solve.method,
                total,
                solve.n_iterations,
                problem.dimension,
            )
        return FCIResult(
            energy=total,
            scf_energy=scf.energy,
            correlation_energy=total - scf.energy,
            vector=solve.vector,
            problem=problem,
            solve=solve,
            scf=scf,
            mo=mo,
            n_sigma=sigma_fn.n_calls or solve.n_sigma,
            s_squared=spin_op.expectation(solve.vector),
        )


    def run_multiroot(self, n_roots: int) -> "MultiRootFCIResult":
        """Solve for the ``n_roots`` lowest states with block Davidson."""
        from .multiroot import davidson_multiroot

        problem, scf, mo = self.build_problem()
        spin_op = SpinOperator(problem)
        # multiroot targets all spins in the block: no spin penalty, and the
        # batched apply lets Davidson evaluate whole blocks in one sweep
        sigma_fn = self.build_operator(problem, spin_penalty=0.0)

        size = max(self.model_space_size, 4 * n_roots)
        precond = ModelSpacePreconditioner(problem, size)
        evals, evecs = np.linalg.eigh(precond.h_model)
        guesses = []
        for i in range(min(2 * n_roots, precond.size)):
            g = np.zeros(problem.dimension)
            g[precond.selection] = evecs[:, i]
            guesses.append(g.reshape(problem.shape))
        try:
            res = davidson_multiroot(
                sigma_fn,
                guesses,
                precond,
                n_roots=n_roots,
                energy_tol=self.energy_tol,
                residual_tol=self.residual_tol,
                max_iterations=self.max_iterations,
            )
        finally:
            self._close_kernel(sigma_fn)
        return MultiRootFCIResult(
            energies=res.energies + mo.e_core,
            vectors=res.vectors,
            s_squared=np.array([spin_op.expectation(v) for v in res.vectors]),
            converged=res.converged,
            n_iterations=res.n_iterations,
            problem=problem,
            scf=scf,
            mo=mo,
        )


@dataclass
class MultiRootFCIResult:
    """Several lowest FCI states of one molecule."""

    energies: np.ndarray
    vectors: list[np.ndarray]
    s_squared: np.ndarray
    converged: bool
    n_iterations: int
    problem: CIProblem
    scf: SCFResult
    mo: MOIntegrals

    def excitation_energies(self) -> np.ndarray:
        """Vertical excitation energies (Hartree) relative to the lowest root."""
        return self.energies - self.energies[0]


def fci(mol: Molecule, basis: str = "sto-3g", **kwargs) -> FCIResult:
    """One-call FCI: ``fci(mol, "sto-3g", method="davidson")``."""
    return FCISolver(mol, basis, **kwargs).run()
