"""Atomic, CRC-verified checkpointing of single-vector CI iterations.

The paper's method is *designed* for long campaigns: the whole restart state
of the automatically adjusted single-vector scheme is one CI vector plus a
handful of scalars (the retroactive 2x2 bookkeeping of eqs. 14-15).  This
module makes that restart state durable:

* a checkpoint is one ``.npz`` file holding the CI vector and a JSON header
  (method, iteration counters, method-specific scalars, energy/residual
  history),
* writes are atomic: serialize to ``<path>.tmp``, fsync, then
  ``os.replace`` - a crash mid-write never corrupts the previous good
  checkpoint,
* the vector payload carries a CRC32; a mismatch on load (torn write,
  bit-rot) raises :class:`CheckpointError`, and :meth:`Checkpointer.restore`
  degrades it to "no checkpoint" so a solve falls back to a fresh start
  instead of diverging from garbage.

Restarting olsen/auto from a checkpoint replays the *exact* iteration
sequence (floats round-trip losslessly through both the npz payload and the
JSON header), so an interrupted-plus-resumed solve takes no more total
iterations than an uninterrupted one.

Checkpoints are *store-typed* (see :mod:`repro.core.vectors`): the header
records which CI-vector storage backend wrote the state.  A dense restart
handed an out-of-core checkpoint refuses it as a typed mismatch (counted
under ``solver.checkpoint.store_mismatch``) instead of silently pulling a
bigger-than-RAM vector into memory; an mmap-backed restart resumes from a
``<path>.vec.npy`` sidecar that is CRC-verified in streamed chunks and then
memory-mapped read-only, so resume never materializes the full vector.
Solvers with extra restart payloads (CDFCI's coordinate arrays) ride along
in ``CheckpointState.arrays``, each CRC-verified like the vector.
"""

from __future__ import annotations

import json
import logging
import os
import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CheckpointState", "Checkpointer", "CheckpointError"]

logger = logging.getLogger(__name__)

_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """The checkpoint file is unreadable or fails its integrity check."""


@dataclass
class CheckpointState:
    """Everything needed to resume an iterative eigensolve."""

    method: str  # "olsen" | "auto" | "davidson" | "cdfci"
    iteration: int  # completed iterations
    n_sigma: int  # sigma evaluations so far
    vector: np.ndarray  # current CI iterate (post-update, normalized)
    meta: dict = field(default_factory=dict)  # method-specific scalars
    energies: list = field(default_factory=list)
    residual_norms: list = field(default_factory=list)
    store_kind: str = "dense"  # CI-vector storage backend that wrote this
    arrays: dict = field(default_factory=dict)  # extra named restart arrays


def _stream_crc32(path: str, chunk: int = 1 << 22) -> int:
    """CRC32 of a file computed in chunks - never the whole file in RAM."""
    crc = 0
    with open(path, "rb") as f:
        while True:
            block = f.read(chunk)
            if not block:
                return crc
            crc = zlib.crc32(block, crc)


class Checkpointer:
    """Saves/loads :class:`CheckpointState` at ``path`` atomically.

    ``every`` throttles :meth:`maybe_save` to every N-th iteration (the
    write is one CI vector, so every iteration is usually affordable - the
    point of the single-vector method).  ``telemetry`` (a
    :class:`repro.obs.Telemetry`) counts saves, restores, and rejected
    checkpoints in its metrics registry; None is a strict no-op.

    ``faults`` (a :class:`repro.faults.FaultInjector`) makes the save path
    chaos-testable: when the injector's seeded ``io_fails`` oracle fires,
    :meth:`save` raises :class:`OSError` *before* touching the file - the
    previous good checkpoint survives and the in-flight solve dies exactly
    the way a lost shared filesystem would kill it mid-campaign.  The
    service layer's crash-resume tests drive this hook.
    """

    def __init__(self, path, *, every: int = 1, telemetry=None, faults=None):
        self.path = os.fspath(path)
        self.every = max(1, int(every))
        self.telemetry = telemetry
        self.faults = faults

    def _count(self, name: str) -> None:
        if self.telemetry:
            self.telemetry.registry.counter(name).inc()

    def exists(self) -> bool:
        return os.path.exists(self.path)

    @property
    def sidecar_path(self) -> str:
        """Where an out-of-core checkpoint keeps its vector payload."""
        return self.path + ".vec.npy"

    def clear(self) -> None:
        """Remove the checkpoint file (e.g. after a converged campaign)."""
        if os.path.exists(self.path):
            os.remove(self.path)
        if os.path.exists(self.sidecar_path):
            os.remove(self.sidecar_path)

    def maybe_save(self, state: CheckpointState, *, force: bool = False) -> bool:
        """Save if the iteration falls on the ``every`` grid.

        ``force=True`` bypasses the grid — used by the solvers on
        convergence and at loop exit so the *final* state is always durable
        even when it lands off the ``every`` grid.
        """
        if not force and state.iteration % self.every:
            return False
        self.save(state)
        return True

    def _write_sidecar(self, vec: np.ndarray) -> int:
        """Atomically write the vector to ``<path>.vec.npy``; returns its CRC.

        The payload is streamed back for the CRC in fixed chunks, so the
        save path never needs a second full-vector buffer (``vec`` itself
        may be an ``np.memmap`` whose pages the OS already holds).
        """
        tmp = self.sidecar_path + ".tmp"
        mm = np.lib.format.open_memmap(
            tmp, mode="w+", dtype=np.float64, shape=vec.shape
        )
        mm[...] = vec
        mm.flush()
        del mm
        crc = _stream_crc32(tmp)
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self.sidecar_path)
        return crc

    def save(self, state: CheckpointState) -> None:
        """Atomically persist ``state`` (write-tmp, fsync, rename)."""
        if self.faults is not None and self.faults.io_fails(0):
            self._count("solver.checkpoint.io_errors")
            raise OSError(
                f"injected transient I/O error writing checkpoint {self.path!r}"
            )
        vec = np.ascontiguousarray(state.vector)
        out_of_core = state.store_kind == "mmap"
        extras = {
            name: np.ascontiguousarray(arr) for name, arr in state.arrays.items()
        }
        header = {
            "version": _FORMAT_VERSION,
            "method": state.method,
            "iteration": int(state.iteration),
            "n_sigma": int(state.n_sigma),
            "meta": state.meta,
            "energies": [float(e) for e in state.energies],
            "residual_norms": [float(r) for r in state.residual_norms],
            "shape": list(vec.shape),
            "dtype": str(vec.dtype),
            "store": state.store_kind,
            "arrays": {name: zlib.crc32(a.tobytes()) for name, a in extras.items()},
        }
        if out_of_core:
            # vector payload goes to the sidecar so a resume can map it
            # instead of loading it; the npz keeps header + small arrays
            header["crc32"] = self._write_sidecar(vec)
            header["vector_file"] = os.path.basename(self.sidecar_path)
            payload = np.zeros(0)
        else:
            header["crc32"] = zlib.crc32(vec.tobytes())
            payload = vec
        blob = json.dumps(header).encode()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as f:
            np.savez(
                f,
                vector=payload,
                header=np.frombuffer(blob, dtype=np.uint8),
                **{f"arr_{name}": a for name, a in extras.items()},
            )
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.path)
        self._count("solver.checkpoint.saves")

    def peek(self) -> dict | None:
        """The checkpoint's JSON header alone (no vector CRC verification).

        Cheap metadata for status displays - method, completed iterations,
        energy/residual history - or None when the file is absent or
        unreadable.  Use :meth:`load`/:meth:`restore` for verified state.
        """
        if not os.path.exists(self.path):
            return None
        try:
            with np.load(self.path) as z:
                header = json.loads(bytes(z["header"].tobytes()).decode())
        except Exception as exc:
            # a file that exists but cannot even surrender its header is
            # corrupt (truncated npz, torn write): a miss, never a crash
            logger.warning("unreadable checkpoint header %r: %s", self.path, exc)
            self._count("solver.checkpoint.peek_failed")
            return None
        # pre-store checkpoints carry no "store" key: they are dense
        header.setdefault("store", "dense")
        return header

    def load(self) -> CheckpointState | None:
        """Load and verify; None if absent, :class:`CheckpointError` if bad.

        An out-of-core ("mmap") checkpoint keeps its vector in the
        ``<path>.vec.npy`` sidecar: the CRC is verified by streaming the
        file in chunks and the vector is returned as a *read-only memory
        map* - resume never loads the full payload into RAM.
        """
        if not os.path.exists(self.path):
            return None
        try:
            with np.load(self.path) as z:
                vec = np.array(z["vector"])
                header = json.loads(bytes(z["header"].tobytes()).decode())
                extras = {
                    name: np.array(z[f"arr_{name}"])
                    for name in header.get("arrays", {})
                }
        except Exception as exc:  # torn write, not an npz, bad JSON, ...
            raise CheckpointError(f"unreadable checkpoint {self.path!r}: {exc}") from exc
        if header.get("version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path!r} has unsupported version {header.get('version')!r}"
            )
        store_kind = header.get("store", "dense")
        if store_kind == "mmap" and header.get("vector_file"):
            sidecar = self.sidecar_path
            if not os.path.exists(sidecar):
                raise CheckpointError(
                    f"checkpoint {self.path!r} lost its vector sidecar {sidecar!r}"
                )
            if _stream_crc32(sidecar) != header["crc32"]:
                raise CheckpointError(
                    f"checkpoint sidecar {sidecar!r} failed CRC32 verification"
                )
            vec = np.lib.format.open_memmap(sidecar, mode="r")
        elif zlib.crc32(vec.tobytes()) != header["crc32"]:
            raise CheckpointError(f"checkpoint {self.path!r} failed CRC32 verification")
        for name, crc in header.get("arrays", {}).items():
            if zlib.crc32(extras[name].tobytes()) != crc:
                raise CheckpointError(
                    f"checkpoint {self.path!r} array {name!r} failed CRC32 verification"
                )
        return CheckpointState(
            method=header["method"],
            iteration=header["iteration"],
            n_sigma=header["n_sigma"],
            vector=vec,
            meta=header["meta"],
            energies=header["energies"],
            residual_norms=header["residual_norms"],
            store_kind=store_kind,
            arrays=extras,
        )

    def restore(
        self, method: str | None = None, *, store_kind: str | None = None
    ) -> CheckpointState | None:
        """Best-effort load for a restart.

        A corrupt checkpoint is logged, counted, and treated as absent (a
        fresh start beats iterating from garbage); a checkpoint written by a
        *different* method contributes its vector as the initial guess but
        none of its scalar state.

        ``store_kind`` declares the restarting solver's CI-vector storage
        backend.  A checkpoint written by a *different* backend is refused
        before its payload is touched - counted under
        ``solver.checkpoint.store_mismatch`` and treated as absent - so a
        dense restart never silently loads an out-of-core vector into RAM.
        """
        if store_kind is not None:
            header = self.peek()
            if header is not None and header["store"] != store_kind:
                logger.warning(
                    "checkpoint %r was written by store %r; %r restart starts fresh",
                    self.path,
                    header["store"],
                    store_kind,
                )
                self._count("solver.checkpoint.store_mismatch")
                return None
        try:
            state = self.load()
        except CheckpointError as exc:
            logger.warning("ignoring bad checkpoint: %s", exc)
            self._count("solver.checkpoint.rejected")
            return None
        if state is None:
            return None
        if method is not None and state.method != method:
            logger.warning(
                "checkpoint %r was written by method %r; resuming %r from its vector only",
                self.path,
                state.method,
                method,
            )
            state = CheckpointState(
                method=method,
                iteration=0,
                n_sigma=0,
                vector=np.array(state.vector),
                store_kind=state.store_kind,
            )
        self._count("solver.checkpoint.restores")
        if self.telemetry:
            self.telemetry.registry.counter("faults.recovered.checkpoint_restart").inc()
        return state
