"""Alpha/beta occupation strings: enumeration, addressing, symmetry, counting.

A *string* is an occupation pattern of k electrons (of one spin) in n spatial
orbitals, encoded as an integer bitmask (bit p set = orbital p occupied).
Strings are enumerated in lexical order of their occupied-orbital lists,
which gives the standard binomial addressing scheme: the rank of a string
with occupied orbitals o_0 < o_1 < ... is sum_i C(o_i, i+1).

The CI coefficient "matrix" of the paper has rows and columns indexed by the
beta and alpha string spaces; this module provides those spaces, their irrep
structure for abelian point groups (string irrep = XOR-product of occupied
orbital irreps), and the dynamic-programming counter used by the trace-mode
benchmarks to size paper-scale CI spaces (for example FCI(8,66) in D2h)
without enumerating anything.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

__all__ = [
    "StringSpace",
    "string_irrep",
    "count_strings_by_irrep",
    "ci_dimension",
    "fci_space_size",
]


class StringSpace:
    """All C(n, k) occupation strings of k electrons in n orbitals.

    Attributes
    ----------
    n, k:
        Orbital and electron counts.
    masks:
        int64 bitmasks in lexical order, shape (size,).
    occupations:
        Occupied orbital lists, shape (size, k), ascending per row.
    """

    def __init__(self, n_orbitals: int, n_electrons: int):
        if not 0 <= n_electrons <= n_orbitals:
            raise ValueError(
                f"cannot place {n_electrons} electrons in {n_orbitals} orbitals"
            )
        if n_orbitals > 62:
            raise ValueError(
                "enumerated string spaces support at most 62 orbitals; "
                "use count_strings_by_irrep for larger spaces"
            )
        self.n = n_orbitals
        self.k = n_electrons
        size = comb(n_orbitals, n_electrons)
        self.occupations = np.empty((size, max(n_electrons, 1)), dtype=np.int64)
        if n_electrons == 0:
            self.occupations = np.zeros((1, 0), dtype=np.int64)
            self.masks = np.zeros(1, dtype=np.int64)
        else:
            occ = np.array(
                list(combinations(range(n_orbitals), n_electrons)), dtype=np.int64
            )
            # lexical order of occupation lists == ascending mask order for
            # combinations emitted by itertools over ascending orbitals?  Not
            # in general; sort by the binomial rank to pin the convention.
            ranks = np.zeros(size, dtype=np.int64)
            for i in range(n_electrons):
                ranks += np.array([comb(int(o), i + 1) for o in occ[:, i]])
            order = np.argsort(ranks, kind="stable")
            self.occupations = occ[order]
            self.masks = np.zeros(size, dtype=np.int64)
            for col in range(n_electrons):
                self.masks |= np.int64(1) << self.occupations[:, col].astype(np.int64)
        self._index: dict[int, int] = {int(m): i for i, m in enumerate(self.masks)}

    @property
    def size(self) -> int:
        return int(self.masks.size)

    def __len__(self) -> int:
        return self.size

    def index(self, mask: int) -> int:
        """Rank of a string bitmask in this space."""
        return self._index[int(mask)]

    def rank(self, occupied: tuple[int, ...]) -> int:
        """Binomial rank of an ascending occupied-orbital tuple."""
        return sum(comb(o, i + 1) for i, o in enumerate(occupied))

    def occ(self, i: int) -> np.ndarray:
        return self.occupations[i]

    def occupancy_matrix(self) -> np.ndarray:
        """Dense (size, n) 0/1 occupancy matrix (float64, for BLAS use)."""
        out = np.zeros((self.size, self.n))
        rows = np.repeat(np.arange(self.size), self.k) if self.k else np.empty(0, int)
        cols = self.occupations[:, : self.k].ravel() if self.k else np.empty(0, int)
        out[rows, cols] = 1.0
        return out

    def irreps(self, orbital_irreps: np.ndarray, product_table: np.ndarray) -> np.ndarray:
        """Irrep id of every string (XOR-product of occupied orbital irreps)."""
        orbital_irreps = np.asarray(orbital_irreps, dtype=np.int64)
        out = np.zeros(self.size, dtype=np.int64)
        for col in range(self.k):
            out = product_table[out, orbital_irreps[self.occupations[:, col]]]
        return out

    def __repr__(self) -> str:
        return f"StringSpace(n={self.n}, k={self.k}, size={self.size})"


def string_irrep(
    occupied, orbital_irreps: np.ndarray, product_table: np.ndarray
) -> int:
    """Irrep of a single occupation list."""
    irr = 0
    for o in occupied:
        irr = int(product_table[irr, int(orbital_irreps[int(o)])])
    return irr


def count_strings_by_irrep(
    n_orbitals: int,
    n_electrons: int,
    orbital_irreps,
    product_table: np.ndarray,
    n_irreps: int,
) -> np.ndarray:
    """Count strings per irrep by dynamic programming (no enumeration).

    Works for arbitrary orbital counts (used to size the paper's 66-orbital
    C2 space).  ``counts[r]`` = number of k-electron strings of irrep r.
    """
    orbital_irreps = np.asarray(orbital_irreps, dtype=np.int64)
    if orbital_irreps.size != n_orbitals:
        raise ValueError("need one irrep per orbital")
    # dp[e, r] = number of ways to place e electrons so far with product irrep r
    dp = np.zeros((n_electrons + 1, n_irreps), dtype=object)
    dp[0, 0] = 1
    for p in range(n_orbitals):
        rp = int(orbital_irreps[p])
        new = dp.copy()
        for e in range(min(p, n_electrons - 1), -1, -1):
            for r in range(n_irreps):
                if dp[e, r]:
                    new[e + 1, int(product_table[r, rp])] += dp[e, r]
        dp = new
    return np.array([int(dp[n_electrons, r]) for r in range(n_irreps)], dtype=object)


def ci_dimension(
    n_orbitals: int,
    n_alpha: int,
    n_beta: int,
    orbital_irreps=None,
    product_table: np.ndarray | None = None,
    n_irreps: int = 1,
    target_irrep: int = 0,
) -> int:
    """Number of determinants, optionally restricted to a target irrep."""
    if orbital_irreps is None:
        return comb(n_orbitals, n_alpha) * comb(n_orbitals, n_beta)
    if product_table is None:
        raise ValueError("product_table required with orbital_irreps")
    ca = count_strings_by_irrep(
        n_orbitals, n_alpha, orbital_irreps, product_table, n_irreps
    )
    cb = count_strings_by_irrep(
        n_orbitals, n_beta, orbital_irreps, product_table, n_irreps
    )
    total = 0
    for ra in range(n_irreps):
        for rb in range(n_irreps):
            if int(product_table[ra, rb]) == target_irrep:
                total += int(ca[ra]) * int(cb[rb])
    return total


def fci_space_size(n_orbitals: int, n_alpha: int, n_beta: int) -> int:
    """Unblocked FCI dimension C(n, na) * C(n, nb)."""
    return comb(n_orbitals, n_alpha) * comb(n_orbitals, n_beta)
