"""Davidson subspace diagonalization for the lowest eigenpair.

Per the paper's Table 2 setup: "In the subspace method, the Olsen correction
vector is used as a basis vector and the optimal step length for mixing the
correction vector with current approximation vector is computed at each
iteration by diagonalization of the [...] subspace."

This is the reference method the automatically adjusted single-vector scheme
is measured against.  It stores up to ``max_subspace`` basis and sigma
vectors (the memory cost the paper's single-vector method eliminates).
"""

from __future__ import annotations

import numpy as np

from .checkpoint import Checkpointer, CheckpointState
from .guards import DEFAULT_DIVERGENCE_THRESHOLD, IterateGuard
from .model_space import DiagonalPreconditioner
from .olsen import SolveResult, olsen_correction
from .operator import SigmaFn

__all__ = ["davidson_solve"]


def davidson_solve(
    sigma_fn: SigmaFn,
    guess: np.ndarray,
    precond: DiagonalPreconditioner,
    *,
    energy_tol: float = 1e-10,
    residual_tol: float = 1e-5,
    max_iterations: int = 60,
    max_subspace: int = 12,
    telemetry=None,
    checkpoint: Checkpointer | None = None,
    divergence_threshold: float | None = DEFAULT_DIVERGENCE_THRESHOLD,
    store=None,
) -> SolveResult:
    """Davidson iteration for the lowest eigenpair.

    ``sigma_fn`` is any sigma callable - typically a
    :class:`repro.core.operator.HamiltonianOperator`, which brings plan
    reuse, kernel counters, and telemetry accounting with it.

    Counts one "iteration" per sigma evaluation so iteration numbers are
    directly comparable with the single-vector methods (paper Table 2).

    ``telemetry`` (a :class:`repro.obs.Telemetry`) records one
    ``solver.iterations`` sample per iteration (energy, residual norm,
    subspace size); None disables all instrumentation.

    ``checkpoint`` (a :class:`Checkpointer`) saves the current Ritz vector
    each iteration; a restart collapses the subspace to that vector (the
    same state a ``max_subspace`` collapse would keep), so resumption costs
    at most the usual post-collapse re-expansion.  Iterates are watched by
    :class:`repro.core.guards.IterateGuard`.

    ``store`` (a :class:`repro.core.vectors.CIVectorStore` template) holds
    the subspace basis and sigma vectors - Davidson's O(2m vectors) memory
    hog, the cost the paper's single-vector method exists to avoid.  With an
    ``MmapStore`` template the subspace lives on disk and only the O(1)
    working pair plus kernel block intermediates stay resident; values are
    copied in by full-content assignment, so a ``DenseStore`` run is
    bitwise-identical to ``store=None``.  Checkpoints written under a store
    are typed with its kind (a mismatched restart starts fresh instead of
    loading the wrong representation).
    """
    shape = guess.shape
    ck_kind = store.kind if store is not None else "dense"
    held: list = []  # store-backed buffers keeping subspace payloads alive

    def _hold(x: np.ndarray) -> np.ndarray:
        """Move a raveled vector into store-backed memory (no-op storeless)."""
        if store is None:
            return x
        buf = store.allocate()
        buf.write(x)
        held.append(buf)
        return buf.as_ndarray().ravel()

    def _release() -> list:
        drop, held[:] = held[:], []
        return drop

    v = (guess / np.linalg.norm(guess)).ravel()
    energies: list[float] = []
    rnorms: list[float] = []
    prev_e = np.inf
    n_sigma = 0
    e = 0.0
    start_it = 0
    if checkpoint is not None:
        state = checkpoint.restore("davidson", store_kind=ck_kind)
        if state is not None:
            v = np.asarray(state.vector).ravel()
            v = v / np.linalg.norm(v)
            prev_e = state.meta.get("prev_e", np.inf)
            energies = list(state.energies)
            rnorms = list(state.residual_norms)
            n_sigma = state.n_sigma
            start_it = state.iteration
            if energies:
                # seed the result energy so a resume whose iteration budget
                # is already exhausted reports the checkpointed energy
                e = float(energies[-1])
    basis: list[np.ndarray] = [_hold(v)]
    sigmas: list[np.ndarray] = []
    ritz = v
    guard = IterateGuard(divergence_threshold, telemetry=telemetry)
    last_state: CheckpointState | None = None
    last_saved = True
    for it in range(start_it + 1, max_iterations + 1):
        # evaluate sigma of the newest basis vector
        sigmas.append(_hold(sigma_fn(basis[-1].reshape(shape)).ravel()))
        n_sigma += 1
        k = len(basis)
        Hs = np.empty((k, k))
        for i in range(k):
            for j in range(k):
                Hs[i, j] = float(basis[i] @ sigmas[j])
        Hs = 0.5 * (Hs + Hs.T)
        evals, evecs = np.linalg.eigh(Hs)
        e = float(evals[0])
        coeff = evecs[:, 0]
        ritz = sum(c * b for c, b in zip(coeff, basis))
        hritz = sum(c * s for c, s in zip(coeff, sigmas))
        residual = hritz - e * ritz
        rnorm = float(np.linalg.norm(residual))
        energies.append(e)
        rnorms.append(rnorm)
        if telemetry:
            telemetry.solver_iteration("davidson", it, e, rnorm, subspace=k)
        guard.check(it, e, rnorm)
        converged = abs(e - prev_e) < energy_tol and rnorm < residual_tol
        if checkpoint is not None:
            nrm = float(np.linalg.norm(ritz))
            last_state = CheckpointState(
                method="davidson",
                iteration=it,
                n_sigma=n_sigma,
                vector=(ritz / nrm).reshape(shape) if nrm else ritz.reshape(shape),
                meta={"prev_e": e},
                energies=energies,
                residual_norms=rnorms,
                store_kind=ck_kind,
            )
            # converged states may fall off the ``every`` grid; force the
            # save so the final answer is always durable
            last_saved = checkpoint.maybe_save(last_state, force=converged)
        if converged:
            for buf in _release():
                buf.close()
            return SolveResult(
                energy=e,
                vector=ritz.reshape(shape),
                converged=True,
                n_iterations=it,
                n_sigma=n_sigma,
                energies=energies,
                residual_norms=rnorms,
                method="davidson",
            )
        prev_e = e

        t = olsen_correction(
            ritz.reshape(shape), hritz.reshape(shape), e, precond
        ).ravel()

        if k >= max_subspace:
            # collapse to the current Ritz vector; store-backed subspace
            # buffers of the abandoned basis are reclaimed (on-disk blocks
            # for MmapStore, a no-op for DenseStore)
            old = _release()
            basis = [_hold(ritz / np.linalg.norm(ritz))]
            sigmas = [_hold(hritz / np.linalg.norm(ritz))]
            for buf in old:
                buf.close()
        # orthogonalize the correction against the basis (twice, for
        # numerical safety)
        for _ in range(2):
            for b in basis:
                t -= (b @ t) * b
        tnorm = np.linalg.norm(t)
        if tnorm < 1e-14:
            # subspace is numerically exhausted: converged as far as possible
            if checkpoint is not None and last_state is not None and not last_saved:
                checkpoint.maybe_save(last_state, force=True)
            for buf in _release():
                buf.close()
            return SolveResult(
                energy=e,
                vector=ritz.reshape(shape),
                converged=rnorm < residual_tol,
                n_iterations=it,
                n_sigma=n_sigma,
                energies=energies,
                residual_norms=rnorms,
                method="davidson",
            )
        basis.append(_hold(t / tnorm))
    if checkpoint is not None and last_state is not None and not last_saved:
        # the budget ran out on an off-grid iteration: keep the final state
        checkpoint.maybe_save(last_state, force=True)
    for buf in _release():
        buf.close()
    return SolveResult(
        energy=e,
        vector=ritz.reshape(shape),
        converged=False,
        n_iterations=max_iterations,
        n_sigma=n_sigma,
        energies=energies,
        residual_norms=rnorms,
        method="davidson",
    )
