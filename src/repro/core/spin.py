"""Spin operators on CI vectors: S+, S-, S^2 application and expectation.

S^2 = S_- S_+ + S_z (S_z + 1) with S_+ = sum_p a+_{p,alpha} a_{p,beta}.
Exact FCI eigenstates are spin eigenfunctions, which the test suite uses as
an invariant of the whole stack; ``apply_s2`` additionally enables a
level-shift spin penalty H + J (S^2 - S(S+1)) for targeting a specific spin
state in an Ms-degenerate spectrum (an extension beyond the paper, used by
the Table-2 benchmark to follow the singlet in CN+).

All maps are assembled from per-orbital single-annihilation tables and
applied as blocked fancy-index operations - no per-determinant Python loop.
"""

from __future__ import annotations

import numpy as np

from .excitations import SingleAnnihilationTable
from .problem import CIProblem
from .strings import StringSpace

__all__ = ["SpinOperator", "s_plus", "s_squared", "apply_s2"]


class SpinOperator:
    """Cached spin-flip tables for one CIProblem."""

    def __init__(self, problem: CIProblem):
        self.problem = problem
        n = problem.n
        na, nb = problem.n_alpha, problem.n_beta
        self.trivial = nb == 0 or na == n
        if self.trivial:
            return
        self.space_a_plus = StringSpace(n, na + 1)
        self.space_b_minus = StringSpace(n, nb - 1)
        # creation into alpha: read the annihilation table of (na+1) backwards
        self.ann_a_plus = SingleAnnihilationTable(self.space_a_plus, problem.space_a)
        self.ann_b = SingleAnnihilationTable(problem.space_b, self.space_b_minus)

    def s_plus(self, C: np.ndarray) -> np.ndarray:
        """S_+ C in the (na+1, nb-1) determinant space."""
        if self.trivial:
            raise ValueError("S+ annihilates this spin sector identically")
        out = np.zeros((self.space_a_plus.size, self.space_b_minus.size))
        for p in range(self.problem.n):
            ra = self.ann_a_plus.rows_for_orbital(p)
            rb = self.ann_b.rows_for_orbital(p)
            if ra.size == 0 or rb.size == 0:
                continue
            # <I_a| a+_p |J_a> = sign of a_p|I_a>; alpha gains p
            tgt_a = self.ann_a_plus.source[ra]
            src_a = self.ann_a_plus.target[ra]
            sgn_a = self.ann_a_plus.sign[ra].astype(np.float64)
            src_b = self.ann_b.source[rb]
            tgt_b = self.ann_b.target[rb]
            sgn_b = self.ann_b.sign[rb].astype(np.float64)
            block = C[np.ix_(src_a, src_b)] * sgn_a[:, None] * sgn_b[None, :]
            # target pairs are unique per p, so fancy += accumulates correctly
            out[np.ix_(tgt_a, tgt_b)] += block
        return out

    def s_minus_back(self, T: np.ndarray) -> np.ndarray:
        """S_- T, mapping (na+1, nb-1) back to the original (na, nb) space."""
        if self.trivial:
            raise ValueError("spin sector mismatch")
        out = np.zeros(self.problem.shape)
        for p in range(self.problem.n):
            ra = self.ann_a_plus.rows_for_orbital(p)
            rb = self.ann_b.rows_for_orbital(p)
            if ra.size == 0 or rb.size == 0:
                continue
            src_a = self.ann_a_plus.source[ra]
            tgt_a = self.ann_a_plus.target[ra]
            sgn_a = self.ann_a_plus.sign[ra].astype(np.float64)
            tgt_b = self.ann_b.source[rb]
            src_b = self.ann_b.target[rb]
            sgn_b = self.ann_b.sign[rb].astype(np.float64)
            block = T[np.ix_(src_a, src_b)] * sgn_a[:, None] * sgn_b[None, :]
            out[np.ix_(tgt_a, tgt_b)] += block
        return out

    def apply_s2(self, C: np.ndarray) -> np.ndarray:
        """S^2 C = S_- S_+ C + Ms (Ms + 1) C."""
        ms = 0.5 * (self.problem.n_alpha - self.problem.n_beta)
        out = ms * (ms + 1.0) * C
        if not self.trivial:
            out = out + self.s_minus_back(self.s_plus(C))
        return out

    def expectation(self, C: np.ndarray) -> float:
        norm2 = float(np.vdot(C, C))
        if norm2 == 0.0:
            raise ValueError("zero CI vector")
        ms = 0.5 * (self.problem.n_alpha - self.problem.n_beta)
        base = ms * (ms + 1.0)
        if self.trivial:
            return base
        plus = self.s_plus(C)
        return base + float(np.vdot(plus, plus)) / norm2


def s_plus(problem: CIProblem, C: np.ndarray):
    """Apply S_+; returns (vector, alpha_space, beta_space) of the image."""
    op = SpinOperator(problem)
    return op.s_plus(C), op.space_a_plus, op.space_b_minus


def apply_s2(problem: CIProblem, C: np.ndarray) -> np.ndarray:
    """S^2 C (builds tables on the fly; cache a SpinOperator for reuse)."""
    return SpinOperator(problem).apply_s2(C)


def s_squared(problem: CIProblem, C: np.ndarray) -> float:
    """<C|S^2|C> / <C|C>."""
    return SpinOperator(problem).expectation(C)
