"""Pluggable CI-vector storage: one protocol, three representations.

The paper's design is dominated by a single data structure - CI vectors
that barely fit the machine.  The X1 work distributes *dense* vectors
across nodes because one node cannot hold them; CDFCI-style solvers
(PAPERS.md) go the other way and keep only the determinants that matter in
a hash map; out-of-core work streams dense vectors through the batched
kernels from disk.  All three are the same object - a CI vector - with a
different storage contract, so this module makes the contract explicit:

* :class:`CIVectorStore` - the protocol every layer above the kernels
  programs against: allocate siblings, yield dense column blocks, axpy /
  dot / norm, iterate nonzeros, report logical vs *resident* bytes, flush
  durably.
* :class:`DenseStore` - today's behavior, a zero-copy wrap of an
  ``np.ndarray``.  Solver runs through a ``DenseStore`` are bitwise
  identical to pre-store runs (allocation plus full-content assignment
  preserves every bit).
* :class:`MmapStore` - a memory-mapped ``.npy`` vector.  The array the
  kernels consume is an ``np.memmap``, so the existing column-blocked
  sigma sweeps stream pages from disk: the OS working set is the block
  intermediates sized by ``block_columns``, not the full vector, and the
  payload survives the process (checkpoint-grade durability via
  :meth:`~MmapStore.flush`).
* :class:`SparseStore` - a hash-map coordinate representation (flat
  determinant index -> slot in growable value arrays) with top-k
  compaction, the CDFCI substrate.  Stores can share one index through
  :meth:`~SparseStore.sibling`, which keeps c and b = H c slot-aligned so
  coordinate-descent selection is vectorized.

Backends register by name (``register_store`` / ``make_store``), mirroring
the sigma-kernel registry, so drivers validate storage kinds the same way
they validate kernels.
"""

from __future__ import annotations

import os
import tempfile
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "CIVectorStore",
    "DenseStore",
    "MmapStore",
    "SparseStore",
    "register_store",
    "store_kinds",
    "make_store",
    "as_dense_array",
    "publish_store_metrics",
]

_ITEM = 8  # float64 payload bytes


@runtime_checkable
class CIVectorStore(Protocol):
    """What every CI-vector consumer may assume about a storage backend.

    ``shape`` is the logical (n_alpha_strings, n_beta_strings) CI matrix
    shape; ``nbytes`` the logical payload size; ``resident_nbytes`` the
    bytes *guaranteed resident in RAM* (dense: everything; mmap: nothing -
    page cache is reclaimable; sparse: the occupied slots).  The memory
    budgeting layer (:meth:`repro.core.plans.SigmaPlan.default_block_columns`)
    subtracts ``resident_nbytes``, never ``nbytes``, from its budget.
    """

    kind: str
    shape: tuple[int, ...]

    def allocate(self) -> "CIVectorStore": ...

    def as_ndarray(self) -> np.ndarray: ...

    def view_block(self, lo: int, hi: int) -> np.ndarray: ...

    def to_dense_block(self, lo: int, hi: int) -> np.ndarray: ...

    def axpy(self, alpha: float, other) -> None: ...

    def dot(self, other) -> float: ...

    def norm(self) -> float: ...

    def iter_nonzero(self) -> Iterator[tuple[tuple[int, int], float]]: ...

    @property
    def nbytes(self) -> int: ...

    @property
    def resident_nbytes(self) -> int: ...

    def flush(self) -> None: ...

    def close(self) -> None: ...


# -- registry -----------------------------------------------------------------

_REGISTRY: dict[str, type] = {}


def register_store(name: str):
    """Class decorator: register a CIVectorStore backend under ``name``."""

    def deco(cls):
        cls.kind = name
        _REGISTRY[name] = cls
        return cls

    return deco


def store_kinds() -> tuple[str, ...]:
    """Names of all registered CI-vector storage backends (sorted)."""
    return tuple(sorted(_REGISTRY))


def make_store(kind: str, shape, **options):
    """Construct a registered store by name, or raise listing the registry."""
    try:
        cls = _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown CI-vector store {kind!r}; registered stores: "
            f"{', '.join(store_kinds())}"
        ) from None
    return cls(tuple(int(s) for s in shape), **options)


def as_dense_array(vector) -> np.ndarray:
    """A dense ndarray view/copy of a store *or* a plain ndarray.

    Zero-copy for :class:`DenseStore` and :class:`MmapStore` (a memmap *is*
    an ndarray the kernels stream through); a densification for
    :class:`SparseStore`.  Plain ndarrays pass through untouched, which is
    what lets every sigma path accept either representation.
    """
    if isinstance(vector, np.ndarray):
        return vector
    return vector.as_ndarray()


def _other_array(other) -> np.ndarray:
    return other if isinstance(other, np.ndarray) else other.as_ndarray()


class _DenseLike:
    """Shared ndarray-backed implementation for DenseStore and MmapStore."""

    _arr: np.ndarray
    shape: tuple[int, ...]

    def as_ndarray(self) -> np.ndarray:
        return self._arr

    def _cols(self) -> np.ndarray:
        """The array with a last 'columns' axis (1-D vectors get one)."""
        return self._arr if self._arr.ndim > 1 else self._arr[:, None]

    def view_block(self, lo: int, hi: int) -> np.ndarray:
        """Writable view of columns [lo, hi) - the kernels' block unit."""
        return self._cols()[..., lo:hi]

    def to_dense_block(self, lo: int, hi: int) -> np.ndarray:
        return self.view_block(lo, hi)

    def write(self, values) -> None:
        """Full-content assignment (bit-preserving)."""
        self._arr[...] = np.asarray(values).reshape(self._arr.shape)

    def fill(self, value: float = 0.0) -> None:
        self._arr.fill(value)

    def axpy(self, alpha: float, other) -> None:
        src = _other_array(other).reshape(self._arr.shape)
        if alpha == 1.0:
            self._arr += src
        else:
            self._arr += alpha * src

    def scale(self, alpha: float) -> None:
        self._arr *= alpha

    def dot(self, other) -> float:
        return float(
            self._arr.ravel() @ _other_array(other).reshape(self._arr.shape).ravel()
        )

    def norm(self) -> float:
        return float(np.linalg.norm(self._arr))

    def iter_nonzero(self) -> Iterator[tuple[tuple[int, int], float]]:
        cols = self._cols()
        for idx in zip(*np.nonzero(cols)):
            yield (int(idx[0]), int(idx[-1])), float(cols[idx])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._arr))

    @property
    def nbytes(self) -> int:
        return int(self._arr.nbytes)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shape={self.shape}, nbytes={self.nbytes})"


@register_store("dense")
class DenseStore(_DenseLike):
    """In-RAM CI vector: a zero-copy wrap of (or a freshly zeroed) ndarray.

    ``DenseStore.wrap(arr)`` shares ``arr``'s buffer - mutations through the
    store are mutations of ``arr`` - which is how per-rank shared-memory
    segments and solver iterates become store views without a copy.
    """

    def __init__(self, shape, *, array: np.ndarray | None = None):
        self.shape = tuple(int(s) for s in shape)
        if array is None:
            array = np.zeros(self.shape)
        else:
            array = np.asarray(array)
            if array.shape != self.shape:
                raise ValueError(f"array shape {array.shape} != store shape {self.shape}")
            if array.dtype != np.float64:
                raise ValueError(f"CI vectors are float64, got {array.dtype}")
        self._arr = array

    @classmethod
    def wrap(cls, array: np.ndarray) -> "DenseStore":
        """Zero-copy store view of an existing float64 ndarray."""
        return cls(array.shape, array=array)

    def allocate(self) -> "DenseStore":
        return DenseStore(self.shape)

    @property
    def resident_nbytes(self) -> int:
        return self.nbytes

    def flush(self) -> None:  # RAM is as durable as the process; no-op
        pass

    def close(self) -> None:
        pass


@register_store("mmap")
class MmapStore(_DenseLike):
    """Disk-backed CI vector: one memory-mapped ``.npy`` file.

    The backing array is an ``np.memmap``, so every existing kernel and
    solver expression works unchanged while the OS pages blocks in and out;
    ``resident_nbytes`` is therefore 0 for the payload (page cache is
    reclaimable under memory pressure, which is the whole point).

    ``directory``: where sibling allocations land (a private temporary
    directory is created when omitted and removed on :meth:`close` of the
    store that owns it).  ``path``: open/create this exact file instead;
    ``mode="r+"`` reopens an existing vector (out-of-core checkpoint
    resume), ``"r"`` maps it read-only.
    """

    def __init__(self, shape, *, directory=None, path=None, mode: str = "w+"):
        self.shape = tuple(int(s) for s in shape)
        self._owned_tmp = None
        self._owns_file = path is None
        if path is None:
            if directory is None:
                self._owned_tmp = tempfile.TemporaryDirectory(prefix="civec-")
                directory = self._owned_tmp.name
            os.makedirs(directory, exist_ok=True)
            fd, path = tempfile.mkstemp(suffix=".npy", prefix="vec-", dir=directory)
            os.close(fd)
            mode = "w+"
        self.path = os.fspath(path)
        self.directory = os.path.dirname(self.path) if directory is None else os.fspath(directory)
        if mode == "w+":
            self._arr = np.lib.format.open_memmap(
                self.path, mode="w+", dtype=np.float64, shape=self.shape
            )
        else:
            self._arr = np.lib.format.open_memmap(self.path, mode=mode)
            if tuple(self._arr.shape) != self.shape:
                raise ValueError(
                    f"mmap file {self.path!r} holds shape {self._arr.shape}, "
                    f"expected {self.shape}"
                )

    def allocate(self) -> "MmapStore":
        return MmapStore(self.shape, directory=self.directory)

    @property
    def resident_nbytes(self) -> int:
        # the payload lives in reclaimable page cache; only bookkeeping is
        # pinned.  This is the figure the block-budget heuristic subtracts.
        return 0

    def flush(self) -> None:
        """Push dirty pages to the backing file (durability point)."""
        self._arr.flush()

    def close(self) -> None:
        """Drop the mapping and reclaim files this store created itself."""
        self._arr = np.zeros(self.shape)[:0]  # release the memmap reference
        if self._owned_tmp is not None:
            self._owned_tmp.cleanup()
            self._owned_tmp = None
        elif self._owns_file and os.path.exists(self.path):
            os.remove(self.path)

    def __repr__(self) -> str:
        return f"MmapStore(shape={self.shape}, path={self.path!r})"


# -- sparse backend -----------------------------------------------------------


class _SparseIndex:
    """Shared flat-key -> slot map for one family of aligned SparseStores."""

    def __init__(self):
        self.slots: dict[int, int] = {}
        self.keys = np.zeros(64, dtype=np.int64)
        self.n = 0
        self.members: list["SparseStore"] = []

    def _grow(self, need: int) -> None:
        cap = len(self.keys)
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        self.keys = np.resize(self.keys, cap)
        for store in self.members:
            store._vals = np.resize(store._vals, cap)
            store._vals[self.n:] = 0.0

    def ensure(self, key: int) -> int:
        slot = self.slots.get(key)
        if slot is None:
            slot = self.n
            self._grow(slot + 1)
            self.slots[key] = slot
            self.keys[slot] = key
            self.n += 1
        return slot

    def ensure_many(self, keys) -> np.ndarray:
        return np.fromiter(
            (self.ensure(int(k)) for k in keys), dtype=np.int64, count=len(keys)
        )

    def lookup_many(self, keys) -> np.ndarray:
        """Slots for keys, -1 where absent."""
        get = self.slots.get
        return np.fromiter(
            (get(int(k), -1) for k in keys), dtype=np.int64, count=len(keys)
        )

    def reindex(self, keep_slots: np.ndarray) -> None:
        """Compact every member store down to ``keep_slots`` (in order)."""
        new_keys = self.keys[keep_slots].copy()
        for store in self.members:
            kept = store._vals[keep_slots].copy()
            store._vals = np.zeros(max(64, len(self.keys)), dtype=np.float64)
            store._vals[: len(kept)] = kept
        self.keys[: len(new_keys)] = new_keys
        self.n = len(new_keys)
        self.slots = {int(k): i for i, k in enumerate(new_keys)}


@register_store("sparse")
class SparseStore:
    """Hash-map coordinate CI vector with top-k compaction.

    Keys are flat determinant indices ``ia * n_beta + ib``; values live in a
    growable float64 array addressed through a shared ``dict`` index.
    ``capacity`` bounds the live determinant count: :meth:`compact` keeps the
    ``capacity`` largest-|value| entries (stable order, so compaction is
    deterministic).  :meth:`sibling` creates a second store sharing this
    store's index - slot ``i`` means the same determinant in both - which is
    the layout CDFCI needs to keep c and b = H c aligned.
    """

    def __init__(self, shape, *, capacity: int | None = None, index=None):
        self.shape = tuple(int(s) for s in shape)
        self.capacity = int(capacity) if capacity else None
        self._index = index if index is not None else _SparseIndex()
        self._vals = np.zeros(max(64, len(self._index.keys)), dtype=np.float64)
        if index is not None and len(self._vals) < len(index.keys):
            self._vals = np.resize(self._vals, len(index.keys))
        self._index.members.append(self)

    # -- structure -----------------------------------------------------------
    @property
    def _ncols(self) -> int:
        return self.shape[-1] if len(self.shape) > 1 else 1

    @property
    def dimension(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nnz(self) -> int:
        return self._index.n

    @property
    def keys(self) -> np.ndarray:
        """Flat determinant indices of the occupied slots (shared order)."""
        return self._index.keys[: self._index.n]

    @property
    def values(self) -> np.ndarray:
        """Values aligned with :attr:`keys` (a live view - do not resize)."""
        return self._vals[: self._index.n]

    def sibling(self) -> "SparseStore":
        """A new store sharing this one's index (slot-aligned values)."""
        return SparseStore(self.shape, capacity=None, index=self._index)

    def allocate(self) -> "SparseStore":
        return SparseStore(self.shape, capacity=self.capacity)

    # -- element access ------------------------------------------------------
    def get(self, key: int) -> float:
        slot = self._index.slots.get(int(key))
        return float(self._vals[slot]) if slot is not None else 0.0

    def set(self, key: int, value: float) -> None:
        self._vals[self._index.ensure(int(key))] = value

    def add_at(self, key: int, value: float) -> None:
        self._vals[self._index.ensure(int(key))] += value

    def scatter_add(self, keys, values) -> None:
        """self[keys] += values (duplicate keys accumulate)."""
        slots = self._index.ensure_many(keys)
        np.add.at(self._vals, slots, values)

    def get_many(self, keys) -> np.ndarray:
        slots = self._index.lookup_many(keys)
        out = np.where(slots >= 0, self._vals[np.maximum(slots, 0)], 0.0)
        return out

    # -- protocol ops --------------------------------------------------------
    def write(self, values) -> None:
        """Replace contents with the nonzeros of a dense array."""
        arr = np.asarray(values).reshape(self.shape)
        flat = arr.ravel()
        nz = np.nonzero(flat)[0]
        self._index.reindex(np.zeros(0, dtype=np.int64))
        self.scatter_add(nz, flat[nz])

    def fill(self, value: float = 0.0) -> None:
        if value != 0.0:
            raise ValueError("a sparse store can only be cleared, not filled")
        self._vals[: self._index.n] = 0.0

    def as_ndarray(self) -> np.ndarray:
        dense = np.zeros(self.dimension)
        dense[self.keys] = self.values
        return dense.reshape(self.shape)

    def view_block(self, lo: int, hi: int) -> np.ndarray:
        return self.to_dense_block(lo, hi)

    def to_dense_block(self, lo: int, hi: int) -> np.ndarray:
        """Dense columns [lo, hi) - what a block-sweeping kernel consumes."""
        nc = self._ncols
        keys, vals = self.keys, self.values
        col = keys % nc
        mask = (col >= lo) & (col < hi)
        if len(self.shape) == 1:
            out = np.zeros(hi - lo)
            out[keys[mask] - lo] = vals[mask]
            return out
        out = np.zeros((self.shape[0], hi - lo))
        out[keys[mask] // nc, col[mask] - lo] = vals[mask]
        return out

    def axpy(self, alpha: float, other) -> None:
        if isinstance(other, SparseStore):
            self.scatter_add(other.keys, alpha * other.values)
        else:
            flat = _other_array(other).ravel()
            nz = np.nonzero(flat)[0]
            self.scatter_add(nz, alpha * flat[nz])

    def scale(self, alpha: float) -> None:
        self._vals[: self._index.n] *= alpha

    def dot(self, other) -> float:
        if isinstance(other, SparseStore):
            if other._index is self._index:
                return float(self.values @ other.values)
            a, b = (self, other) if self.nnz <= other.nnz else (other, self)
            return float(a.values @ b.get_many(a.keys))
        flat = _other_array(other).ravel()
        return float(self.values @ flat[self.keys])

    def norm(self) -> float:
        return float(np.linalg.norm(self.values))

    def iter_nonzero(self) -> Iterator[tuple[tuple[int, int], float]]:
        nc = self._ncols
        for key, val in zip(self.keys, self.values):
            if val != 0.0:
                yield (int(key) // nc, int(key) % nc), float(val)

    # -- compaction ----------------------------------------------------------
    def compact(self, capacity: int | None = None) -> int:
        """Keep the ``capacity`` largest-|value| entries; returns dropped count.

        Deterministic: ties break on slot order (stable sort), so two runs
        of one seed compact identically.  Sibling stores sharing the index
        are reindexed consistently (their values for dropped determinants
        are dropped too - CDFCI recomputes b after compacting c).
        """
        cap = capacity if capacity is not None else self.capacity
        if cap is None or self.nnz <= cap:
            return 0
        order = np.argsort(-np.abs(self.values), kind="stable")[:cap]
        keep = np.sort(order)  # preserve insertion order among the kept
        dropped = self.nnz - len(keep)
        self._index.reindex(keep)
        return dropped

    def compact_slots(self, keep: np.ndarray) -> int:
        """Compact to an explicit slot set (callers with their own ranking,
        e.g. CDFCI protecting the coefficient support while trimming the
        b = Hc frontier).  Sibling stores are reindexed consistently.
        Returns the number of dropped entries."""
        keep = np.sort(np.asarray(keep, dtype=np.int64))
        dropped = self.nnz - len(keep)
        self._index.reindex(keep)
        return dropped

    @property
    def nbytes(self) -> int:
        n = self._index.n
        return int(n * (_ITEM * len(self._index.members) + 8 + 64))  # vals+keys+dict

    @property
    def resident_nbytes(self) -> int:
        return self.nbytes

    def flush(self) -> None:
        pass

    def close(self) -> None:
        if self in self._index.members:
            self._index.members.remove(self)

    def __repr__(self) -> str:
        return (
            f"SparseStore(shape={self.shape}, nnz={self.nnz}, "
            f"capacity={self.capacity})"
        )


# -- observability ------------------------------------------------------------


def publish_store_metrics(registry, stores, prefix: str = "vectors") -> None:
    """Publish the storage layer's footprint gauges to a metrics registry.

    ``vectors.resident_bytes`` is the figure the memory-budget heuristic and
    dashboards watch: RAM actually pinned by CI vectors, which for an
    out-of-core campaign stays near zero while ``vectors.total_bytes``
    reports the logical problem size.
    """
    stores = [s for s in stores if s is not None]
    registry.gauge(f"{prefix}.resident_bytes").set(
        float(sum(s.resident_nbytes for s in stores))
    )
    registry.gauge(f"{prefix}.total_bytes").set(float(sum(s.nbytes for s in stores)))
    registry.gauge(f"{prefix}.count").set(float(len(stores)))
