"""DGEMM-based sigma vector: the paper's central algorithm.

sigma = H C is evaluated matrix-free in four pieces:

* one-electron  sum_pq h_pq (E^a_pq + E^b_pq),
* same-spin alpha-alpha and beta-beta two-electron terms through the
  N-2-electron intermediate string space (paper eqs. 7-9):

      D[(q>s), K] = sum_J  <J| a+_q a+_s |K>* C_J        (vector gather)
      E[(p>r), K] = sum_(q>s) W[(pr),(qs)] D[(qs), K]    (dense DGEMM)
      sigma_I    += sum_(p>r) <I| a+_p a+_r |K> E[(pr), K]  (scatter)

  with W[(pr),(qs)] = (pq|rs) - (ps|rq),
* the mixed-spin (alpha-beta) term through single-excitation gathers
  (paper eqs. 4-6):

      D[(rs), Ma, Kb] = sum_Mb <Kb|E^b_rs|Mb> C[Ma, Mb]   (gather)
      E[(pq), Ma, Kb] = sum_rs (pq|rs) D[(rs), Ma, Kb]    (dense DGEMM)
      sigma[Ka, Kb]  += sum_(pq),Ma <Ka|E^a_pq|Ma> E[(pq), Ma, Kb].

Every gather/scatter here is fully vectorized: because the intermediate keys
(pair, K) determine the source string uniquely, the gathers are plain fancy
assignments, and because every string has a constant number of table entries
the scatters are reshaped segment sums - no indexed accumulate (np.add.at)
appears on the hot path, mirroring how the paper replaces indexed
multiply-add by gather/DGEMM/scatter.

Work is blocked over columns of the CI matrix so the intermediates stay
cache-/memory-friendly; ``block_columns`` controls the block width.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from ..obs.accounting import account_sigma_dgemm
from .excitations import DoubleAnnihilationTable, SingleExcitationTable
from .problem import CIProblem

__all__ = ["sigma_dgemm", "one_electron_operators", "SigmaCounters"]


class SigmaCounters:
    """Accumulates operation/traffic counts of one sigma evaluation."""

    def __init__(self) -> None:
        self.dgemm_flops = 0
        self.gather_elements = 0
        self.scatter_elements = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "dgemm_flops": self.dgemm_flops,
            "gather_elements": self.gather_elements,
            "scatter_elements": self.scatter_elements,
        }


def one_electron_operators(problem: CIProblem) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Sparse one-electron operators T_sigma[I,J] = sum_pq h_pq <I|E_pq|J>."""
    h = problem.mo.h

    def build(table: SingleExcitationTable) -> sp.csr_matrix:
        vals = h[table.p, table.q] * table.sign
        n = table.space.size
        return sp.csr_matrix(
            (vals, (table.target, table.source)), shape=(n, n)
        )

    Ta = build(problem.singles_a)
    Tb = Ta if problem.space_b is problem.space_a else build(problem.singles_b)
    return Ta, Tb


def _same_spin_rows(
    table: DoubleAnnihilationTable,
    W: np.ndarray,
    C: np.ndarray,
    block_columns: int,
    counters: SigmaCounters | None,
) -> np.ndarray:
    """Same-spin contribution acting on the *row* strings of C.

    C has shape (n_strings_of_this_spin, M); the beta-beta routine passes the
    transposed CI matrix here, exactly like the paper's Fig. 2a which works
    on transposed local C and sigma blocks.
    """
    space = table.space
    k = space.k
    if k < 2:
        return np.zeros_like(C)
    NK = table.reduced_space.size
    npair = table.n_pairs
    nstr = space.size
    kk2 = k * (k - 1) // 2
    key = table.pair * NK + table.target  # unique per entry
    sgn = table.sign.astype(np.float64)
    M = C.shape[1]
    out = np.zeros_like(C)
    for lo in range(0, M, block_columns):
        hi = min(lo + block_columns, M)
        m = hi - lo
        D = np.zeros((npair * NK, m))
        D[key] = sgn[:, None] * C[table.source, lo:hi]
        E = (W @ D.reshape(npair, NK * m).reshape(npair, -1)).reshape(npair * NK, m)
        vals = sgn[:, None] * E[key]
        out[:, lo:hi] = vals.reshape(nstr, kk2, m).sum(axis=1)
        if counters is not None:
            counters.dgemm_flops += 2 * npair * npair * NK * m
            counters.gather_elements += table.n_entries * m
            counters.scatter_elements += table.n_entries * m
    return out


def _mixed_spin(
    problem: CIProblem,
    C: np.ndarray,
    block_columns: int,
    counters: SigmaCounters | None,
) -> np.ndarray:
    n = problem.n
    ta, tb = problem.singles_a, problem.singles_b
    G = problem.g_matrix
    na, nb = C.shape
    sigma = np.zeros_like(C)

    # beta-side gather data, sorted by target string so we can slice whole
    # blocks of beta columns; every target has the same number of entries.
    per_b = tb.n_entries // tb.space.size
    ord_b = np.argsort(tb.target, kind="stable")
    b_src = tb.source[ord_b]
    b_tgt = tb.target[ord_b]
    b_rs = (tb.p * n + tb.q)[ord_b]
    b_sgn = tb.sign[ord_b].astype(np.float64)

    # alpha-side scatter data, sorted by target string (segment sums).
    per_a = ta.n_entries // ta.space.size
    ord_a = np.argsort(ta.target, kind="stable")
    a_src = ta.source[ord_a]
    a_pq = (ta.p * n + ta.q)[ord_a]
    a_sgn = ta.sign[ord_a].astype(np.float64)

    for lo in range(0, nb, block_columns):
        hi = min(lo + block_columns, nb)
        m = hi - lo
        elo, ehi = lo * per_b, hi * per_b
        src, tgt = b_src[elo:ehi], b_tgt[elo:ehi]
        rs, sgn = b_rs[elo:ehi], b_sgn[elo:ehi]
        # D[(rs), kb_local, Ma]
        D = np.zeros((n * n, m, na))
        D[rs, tgt - lo] = sgn[:, None] * C[:, src].T
        E = (G @ D.reshape(n * n, m * na)).reshape(n * n, m, na)
        vals = a_sgn[:, None] * E[a_pq, :, a_src].reshape(ta.n_entries, m)
        sigma[:, lo:hi] += vals.reshape(na, per_a, m).sum(axis=1)
        if counters is not None:
            counters.dgemm_flops += 2 * (n * n) * (n * n) * m * na
            counters.gather_elements += (ehi - elo) * na
            counters.scatter_elements += ta.n_entries * m
    return sigma


def sigma_dgemm(
    problem: CIProblem,
    C: np.ndarray,
    *,
    block_columns: int = 64,
    counters: SigmaCounters | None = None,
    telemetry=None,
) -> np.ndarray:
    """Full sigma = H C with the DGEMM-based algorithm (no e_core shift).

    ``telemetry`` (a :class:`repro.obs.Telemetry`) folds this evaluation's
    FLOP/gather/scatter counts and wall time into its metrics registry
    through the audited accounting path; None (the default) skips all
    instrumentation.
    """
    if telemetry and counters is None:
        counters = SigmaCounters()
    t0 = time.perf_counter() if telemetry else 0.0
    na, nb = problem.shape
    if C.shape != (na, nb):
        raise ValueError(f"C must have shape {(na, nb)}, got {C.shape}")
    Ta, Tb = one_electron_operators(problem)
    sigma = np.asarray(Ta @ C)
    sigma += np.asarray(Tb @ C.T).T

    # same-spin alpha: operator acts on rows of C
    if problem.n_alpha >= 2:
        sigma += _same_spin_rows(
            problem.doubles_a, problem.w_matrix, C, block_columns, counters
        )
    # same-spin beta: act on rows of C^T
    if problem.n_beta >= 2:
        sigma += _same_spin_rows(
            problem.doubles_b,
            problem.w_matrix,
            np.ascontiguousarray(C.T),
            block_columns,
            counters,
        ).T

    sigma += _mixed_spin(problem, C, block_columns, counters)
    if telemetry:
        account_sigma_dgemm(telemetry.registry, counters, time.perf_counter() - t0)
    return sigma
