"""DGEMM-based sigma vector: the paper's central algorithm.

sigma = H C is evaluated matrix-free in four pieces:

* one-electron  sum_pq h_pq (E^a_pq + E^b_pq),
* same-spin alpha-alpha and beta-beta two-electron terms through the
  N-2-electron intermediate string space (paper eqs. 7-9):

      D[(q>s), K] = sum_J  <J| a+_q a+_s |K>* C_J        (vector gather)
      E[(p>r), K] = sum_(q>s) W[(pr),(qs)] D[(qs), K]    (dense DGEMM)
      sigma_I    += sum_(p>r) <I| a+_p a+_r |K> E[(pr), K]  (scatter)

  with W[(pr),(qs)] = (pq|rs) - (ps|rq),
* the mixed-spin (alpha-beta) term through single-excitation gathers
  (paper eqs. 4-6):

      D[(rs), Ma, Kb] = sum_Mb <Kb|E^b_rs|Mb> C[Ma, Mb]   (gather)
      E[(pq), Ma, Kb] = sum_rs (pq|rs) D[(rs), Ma, Kb]    (dense DGEMM)
      sigma[Ka, Kb]  += sum_(pq),Ma <Ka|E^a_pq|Ma> E[(pq), Ma, Kb].

This module is the stable functional entry point; the implementation lives
in the kernel/operator layer: :class:`repro.core.plans.SigmaPlan` compiles
the index structure once per problem (cached on the problem object), and
:class:`repro.core.kernels.DgemmKernel` performs the blocked
gather/DGEMM/scatter sweeps - batched over CI vectors when driven through
:class:`repro.core.operator.HamiltonianOperator`.  Calling ``sigma_dgemm``
repeatedly therefore no longer rebuilds tables in the hot path.

``block_columns`` controls the column-block width of the dense
intermediates; the default None uses the plan's memory-budget heuristic
(:meth:`SigmaPlan.default_block_columns`).
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from ..obs.accounting import account_sigma_dgemm
from .kernels import DgemmKernel, SigmaCounters
from .plans import SigmaPlan
from .problem import CIProblem

__all__ = ["sigma_dgemm", "one_electron_operators", "SigmaCounters"]


def one_electron_operators(problem: CIProblem) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Sparse one-electron operators T_sigma[I,J] = sum_pq h_pq <I|E_pq|J>.

    Returns the operators cached on the problem's :class:`SigmaPlan`.
    """
    plan = SigmaPlan.for_problem(problem)
    return plan.Ta, plan.Tb


def sigma_dgemm(
    problem: CIProblem,
    C: np.ndarray,
    *,
    block_columns: int | None = None,
    counters: SigmaCounters | None = None,
    telemetry=None,
) -> np.ndarray:
    """Full sigma = H C with the DGEMM-based algorithm (no e_core shift).

    ``telemetry`` (a :class:`repro.obs.Telemetry`) folds this evaluation's
    FLOP/gather/scatter counts and wall time into its metrics registry
    through the audited accounting path; None (the default) skips all
    instrumentation.
    """
    if telemetry and counters is None:
        counters = SigmaCounters()
    t0 = time.perf_counter() if telemetry else 0.0
    kernel = DgemmKernel(SigmaPlan.for_problem(problem), block_columns=block_columns)
    sigma = kernel.apply(C, counters)
    if telemetry:
        account_sigma_dgemm(telemetry.registry, counters, time.perf_counter() - t0)
    return sigma
