"""Sigma kernels: plan-driven, batched implementations of sigma = H C.

A :class:`SigmaKernel` consumes a precompiled :class:`~repro.core.plans.SigmaPlan`
and evaluates sigma for a *stack* of CI vectors at once:

* :class:`DgemmKernel` - the paper's algorithm.  Gather into dense
  intermediates, one DGEMM per column block, reshaped segment-sum scatter.
  Batching k vectors stacks the dense right-hand sides k-fold, so each
  column block issues *one* batched DGEMM over a k-times-larger right-hand
  side (a broadcasted matrix product, the dgemm_batch idiom) instead of k
  separate sweeps.  Each slice of the stacked product has operand-for-
  operand the same inputs as the single-vector DGEMM, which is what makes
  batched results bitwise-identical to a vector-at-a-time loop even though
  BLAS kernels round differently when a single GEMM is merely widened.
* :class:`MocKernel` - the minimum-operation-count baseline.  Batching still
  helps it honestly: the per-string same-spin matrix-element lists (the
  paper's replicated-work bottleneck) are generated once and applied to all
  k vectors, and the mixed-spin integral weights are formed once per (p, q).

Kernels are registered by name (``register_kernel``) so drivers validate and
construct them through one registry; every kernel guarantees that
``apply_batch(C_stack)`` is bitwise-identical to applying the vectors one at
a time (each output column of a wider DGEMM is the same dot product).

Counters (:class:`SigmaCounters`, :class:`MOCCounters`) record FLOPs,
gather/scatter traffic, and - new with the batched kernels - the number of
dense DGEMM invocations, which is how the test suite proves batched sigma
issues strictly fewer DGEMMs than a vector-at-a-time loop.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..obs.accounting import account_sigma_dgemm, account_sigma_moc
from . import compiled as _compiled
from .compiled import HAVE_NUMBA
from .plans import SameSpinLink, SameSpinPlan, SigmaPlan

__all__ = [
    "SigmaCounters",
    "MOCCounters",
    "SigmaKernel",
    "DgemmKernel",
    "CompiledKernel",
    "MocKernel",
    "register_kernel",
    "kernel_names",
    "make_kernel",
    "same_spin_sigma",
    "same_spin_sigma_stack",
    "mixed_spin_sigma_stack",
    "compiled_same_spin_sigma",
    "compiled_same_spin_sigma_stack",
    "compiled_mixed_spin_sigma_stack",
    "sigma_sweeps",
    "column_blocks",
    "HAVE_NUMBA",
]


class SigmaCounters:
    """Accumulates operation/traffic counts of sigma evaluations."""

    def __init__(self) -> None:
        self.dgemm_flops = 0
        self.dgemm_calls = 0
        self.gather_elements = 0
        self.scatter_elements = 0

    def add(self, other: "SigmaCounters") -> None:
        self.dgemm_flops += other.dgemm_flops
        self.dgemm_calls += other.dgemm_calls
        self.gather_elements += other.gather_elements
        self.scatter_elements += other.scatter_elements

    def as_dict(self) -> dict[str, int]:
        return {
            "dgemm_flops": self.dgemm_flops,
            "dgemm_calls": self.dgemm_calls,
            "gather_elements": self.gather_elements,
            "scatter_elements": self.scatter_elements,
        }


class MOCCounters:
    """Operation/traffic counters for MOC sigma evaluations."""

    def __init__(self) -> None:
        self.indexed_ops = 0
        self.matrix_elements_computed = 0

    def add(self, other: "MOCCounters") -> None:
        self.indexed_ops += other.indexed_ops
        self.matrix_elements_computed += other.matrix_elements_computed

    def as_dict(self) -> dict[str, int]:
        return {
            "indexed_ops": self.indexed_ops,
            "matrix_elements_computed": self.matrix_elements_computed,
        }


# -- registry -----------------------------------------------------------------

_REGISTRY: dict[str, type] = {}


def register_kernel(name: str):
    """Class decorator: register a SigmaKernel implementation under ``name``."""

    def deco(cls):
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def kernel_names() -> tuple[str, ...]:
    """Names of all registered sigma kernels (sorted)."""
    return tuple(sorted(_REGISTRY))


def make_kernel(name: str, plan: SigmaPlan, *, block_columns: int | None = None):
    """Construct a registered kernel by name, or raise listing the registry."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown sigma kernel {name!r}; registered kernels: "
            f"{', '.join(kernel_names())}"
        ) from None
    return cls(plan, block_columns=block_columns)


@runtime_checkable
class SigmaKernel(Protocol):
    """What a sigma kernel must provide to the operator/driver layer."""

    name: str
    plan: SigmaPlan

    def apply(self, C: np.ndarray, counters=None) -> np.ndarray: ...

    def apply_batch(self, C_stack: np.ndarray, counters=None) -> np.ndarray: ...

    def make_counters(self): ...

    def account(self, registry, counters, seconds: float, calls: int = 1): ...


# -- DGEMM kernel pieces ------------------------------------------------------


def _segment_sum(x: np.ndarray, axis: int) -> np.ndarray:
    """Left-to-right sum along ``axis``.

    ``np.sum`` groups additions differently depending on the *total* array
    shape (SIMD/pairwise blocking), so a batched reduction would not be
    bitwise-identical to the per-vector one.  Sequential elementwise adds
    are shape-independent, which is what keeps ``apply_batch`` exactly equal
    to a vector-at-a-time loop.  The reduced axis is short (entries per
    string), so this costs a handful of vectorized adds.
    """
    x = np.moveaxis(x, axis, 0)
    if x.shape[0] == 0:
        return np.zeros(x.shape[1:], dtype=x.dtype)
    out = x[0].copy()
    for i in range(1, x.shape[0]):
        out += x[i]
    return out


def same_spin_sigma(
    splan: SameSpinPlan,
    W: np.ndarray,
    C: np.ndarray,
    block_columns: int,
    counters: SigmaCounters | None,
) -> np.ndarray:
    """Same-spin contribution acting on the *row* strings of C (nstr, M).

    The beta-beta term passes the transposed CI matrix here, like the
    paper's Fig. 2a which works on transposed local C and sigma blocks.
    Batched callers simply pass M = k * n_columns stacked columns.
    """
    NK = splan.n_reduced
    npair = splan.n_pairs
    nstr = splan.n_strings
    kk2 = splan.pairs_per_string
    key = splan.key
    sgn = splan.sign
    src = splan.source
    M = C.shape[1]
    out = np.zeros_like(C)
    # scratch hoisted out of the sweep: reallocated only when the block
    # width changes (at most once, for a ragged final block) so a full
    # sweep costs O(1) allocations instead of one per block; refilling
    # with zeros keeps the gathered operands - and the result - bitwise
    # identical to a fresh buffer
    D = None
    for lo in range(0, M, block_columns):
        hi = min(lo + block_columns, M)
        m = hi - lo
        if D is None or D.shape[1] != m:
            D = np.zeros((npair * NK, m))
        else:
            D[...] = 0.0
        D[key] = sgn[:, None] * C[src, lo:hi]
        E = (W @ D.reshape(npair, NK * m)).reshape(npair * NK, m)
        vals = sgn[:, None] * E[key]
        out[:, lo:hi] = _segment_sum(vals.reshape(nstr, kk2, m), axis=1)
        if counters is not None:
            counters.dgemm_flops += 2 * npair * npair * NK * m
            counters.dgemm_calls += 1
            counters.gather_elements += splan.n_entries * m
            counters.scatter_elements += splan.n_entries * m
    return out


def column_blocks(n_columns: int, block_columns: int) -> list[tuple[int, int]]:
    """The (lo, hi) column blocks a kernel sweeps for an n_columns space.

    This is the canonical blocking every sigma sweep uses; distributing
    *whole* blocks across workers is what lets the shared-memory backend
    issue operand-identical DGEMMs and stay bitwise-equal to the serial
    kernel.
    """
    return [
        (lo, min(lo + block_columns, n_columns))
        for lo in range(0, n_columns, block_columns)
    ]


def same_spin_sigma_stack(
    splan: SameSpinPlan,
    W: np.ndarray,
    C_rows: np.ndarray,
    block_columns: int,
    counters: SigmaCounters | None,
    *,
    col_blocks: list[tuple[int, int]] | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Same-spin term for a (k, nstr, M) stack of row-major CI matrices.

    One batched DGEMM (broadcasted W @ D-stack) per column block; every
    slice of the stack sees exactly the single-vector operands, so the
    result is bitwise-identical to looping :func:`same_spin_sigma` over the
    k vectors while issuing k-times fewer DGEMM invocations.

    ``col_blocks`` restricts the sweep to a subset of the canonical
    :func:`column_blocks` (the shared-memory backend distributes whole
    blocks across workers; each block's operands — and therefore its
    rounding — are identical to the full serial sweep).  ``out`` writes
    results into a caller-provided array (e.g. a shared-memory segment)
    instead of allocating; only the swept blocks are touched.
    """
    NK = splan.n_reduced
    npair = splan.n_pairs
    nstr = splan.n_strings
    kk2 = splan.pairs_per_string
    key = splan.key
    sgn = splan.sign
    src = splan.source
    k, _, M = C_rows.shape
    if out is None:
        out = np.zeros_like(C_rows)
    if col_blocks is None:
        col_blocks = column_blocks(M, block_columns)
    # per-sweep scratch, reallocated only when the block width changes
    # (see same_spin_sigma); zero-refill keeps results bitwise identical
    D = None
    for lo, hi in col_blocks:
        m = hi - lo
        if D is None or D.shape[2] != m:
            D = np.zeros((k, npair * NK, m))
        else:
            D[...] = 0.0
        D[:, key] = sgn[None, :, None] * C_rows[:, src, lo:hi]
        E = np.matmul(W, D.reshape(k, npair, NK * m)).reshape(k, npair * NK, m)
        vals = sgn[None, :, None] * E[:, key]
        out[:, :, lo:hi] = _segment_sum(vals.reshape(k, nstr, kk2, m), axis=2)
        if counters is not None:
            counters.dgemm_flops += 2 * npair * npair * NK * m * k
            counters.dgemm_calls += 1
            counters.gather_elements += splan.n_entries * m * k
            counters.scatter_elements += splan.n_entries * m * k
    return out


def mixed_spin_sigma_stack(
    plan: SigmaPlan,
    C_stack: np.ndarray,
    block_columns: int,
    counters: SigmaCounters | None,
    *,
    col_blocks: list[tuple[int, int]] | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Mixed-spin (alpha-beta) term for a (k, na, nb) stack of CI vectors.

    The k dense intermediates are stacked and E = G.D runs as one batched
    DGEMM (broadcasted matrix product) per beta column block - one
    invocation over a k-times-larger right-hand side.  Slice i of every
    operand equals the single-vector case exactly, so the batch is
    bitwise-identical to a vector-at-a-time loop.

    ``col_blocks``/``out`` have the same contract as in
    :func:`same_spin_sigma_stack`: restrict the sweep to a subset of the
    canonical blocks and/or scatter into a caller-provided buffer, with
    per-block arithmetic unchanged.
    """
    n = plan.n
    na, nb = plan.shape
    k = C_stack.shape[0]
    gb = plan.gather_b
    sa = plan.scatter_a
    G = plan.g_matrix
    per_b, per_a = gb.per, sa.per
    sigma = np.zeros_like(C_stack) if out is None else out
    if col_blocks is None:
        col_blocks = column_blocks(nb, block_columns)
    for lo, hi in col_blocks:
        m = hi - lo
        elo, ehi = lo * per_b, hi * per_b
        src, tgt = gb.source[elo:ehi], gb.target[elo:ehi]
        rs, sgn = gb.pq[elo:ehi], gb.sign[elo:ehi]
        # D[vector, (rs), kb_local, Ma]
        D = np.zeros((k, n * n, m, na))
        D[:, rs, tgt - lo] = sgn[None, :, None] * C_stack[:, :, src].transpose(0, 2, 1)
        E = np.matmul(G, D.reshape(k, n * n, m * na)).reshape(k, n * n, m, na)
        # advanced axes 1 and 3 are separated by a slice: result (entries, k, m)
        vals = sa.sign[:, None, None] * E[:, sa.pq, :, sa.source]
        vals = vals.transpose(1, 0, 2).reshape(k, na, per_a, m)
        sigma[:, :, lo:hi] += _segment_sum(vals, axis=2)
        if counters is not None:
            counters.dgemm_flops += 2 * (n * n) * (n * n) * m * na * k
            counters.dgemm_calls += 1
            counters.gather_elements += (ehi - elo) * na * k
            counters.scatter_elements += sa.n_entries * m * k
    return sigma


# -- compiled (link-index) kernel pieces --------------------------------------


def _same_link(splan: SameSpinPlan) -> SameSpinLink:
    """The plan's cached per-string link view (reshapes, built once)."""
    link = getattr(splan, "_link", None)
    if link is None:
        link = SameSpinLink.from_plan(splan)
        splan._link = link
    return link


def compiled_same_spin_sigma_stack(
    splan: SameSpinPlan,
    W: np.ndarray,
    C_rows: np.ndarray,
    block_columns: int,
    counters: SigmaCounters | None,
    *,
    col_blocks: list[tuple[int, int]] | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """:func:`same_spin_sigma_stack` with jitted gather/scatter loops.

    The DGEMM is the same ``np.matmul`` over the same zero-padded D, and
    the jitted scatter accumulates in ``_segment_sum``'s left-to-right
    order, so the result is bitwise-identical to the NumPy sweep whether or
    not numba is importable; without numba this *is* the NumPy sweep.
    """
    if not HAVE_NUMBA:
        return same_spin_sigma_stack(
            splan, W, C_rows, block_columns, counters,
            col_blocks=col_blocks, out=out,
        )
    NK = splan.n_reduced
    npair = splan.n_pairs
    link = _same_link(splan)
    k, _, M = C_rows.shape
    if out is None:
        out = np.zeros_like(C_rows)
    if col_blocks is None:
        col_blocks = column_blocks(M, block_columns)
    D = None
    for lo, hi in col_blocks:
        m = hi - lo
        if D is None or D.shape[2] != m:
            D = np.zeros((k, npair * NK, m))
        else:
            D[...] = 0.0
        _compiled.same_spin_gather(D, link.key, link.sign, C_rows, lo, m)
        E = np.matmul(W, D.reshape(k, npair, NK * m)).reshape(k, npair * NK, m)
        _compiled.same_spin_scatter(out, link.key, link.sign, E, lo, m)
        if counters is not None:
            counters.dgemm_flops += 2 * npair * npair * NK * m * k
            counters.dgemm_calls += 1
            counters.gather_elements += splan.n_entries * m * k
            counters.scatter_elements += splan.n_entries * m * k
    return out


def compiled_same_spin_sigma(
    splan: SameSpinPlan,
    W: np.ndarray,
    C: np.ndarray,
    block_columns: int,
    counters: SigmaCounters | None,
) -> np.ndarray:
    """:func:`same_spin_sigma` with jitted gather/scatter loops."""
    if not HAVE_NUMBA:
        return same_spin_sigma(splan, W, C, block_columns, counters)
    return compiled_same_spin_sigma_stack(
        splan, W, np.ascontiguousarray(C)[None], block_columns, counters
    )[0]


def compiled_mixed_spin_sigma_stack(
    plan: SigmaPlan,
    C_stack: np.ndarray,
    block_columns: int,
    counters: SigmaCounters | None,
    *,
    col_blocks: list[tuple[int, int]] | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """:func:`mixed_spin_sigma_stack` with jitted D-fill and E-drain loops.

    Walks the plan's cached :class:`~repro.core.plans.LinkIndexTables`
    (per-string views of the target-sorted halves); same bitwise contract
    as :func:`compiled_same_spin_sigma_stack`.
    """
    if not HAVE_NUMBA:
        return mixed_spin_sigma_stack(
            plan, C_stack, block_columns, counters,
            col_blocks=col_blocks, out=out,
        )
    n = plan.n
    na, nb = plan.shape
    k = C_stack.shape[0]
    links = plan.link_tables
    gb, sa = links.gather_b, links.scatter_a
    per_b, per_a = gb.pq.shape[1], sa.pq.shape[1]
    G = plan.g_matrix
    sigma = np.zeros_like(C_stack) if out is None else out
    if col_blocks is None:
        col_blocks = column_blocks(nb, block_columns)
    D = None
    for lo, hi in col_blocks:
        m = hi - lo
        if D is None or D.shape[2] != m:
            D = np.zeros((k, n * n, m, na))
        else:
            D[...] = 0.0
        if per_b:
            _compiled.mixed_spin_gather(D, gb.source, gb.pq, gb.sign, C_stack, lo, m)
        E = np.matmul(G, D.reshape(k, n * n, m * na)).reshape(k, n * n, m, na)
        if per_a:
            _compiled.mixed_spin_scatter(sigma, sa.source, sa.pq, sa.sign, E, lo, m)
        if counters is not None:
            counters.dgemm_flops += 2 * (n * n) * (n * n) * m * na * k
            counters.dgemm_calls += 1
            counters.gather_elements += m * per_b * na * k
            counters.scatter_elements += plan.scatter_a.n_entries * m * k
    return sigma


def sigma_sweeps(kernel: str):
    """(same_spin_stack, mixed_spin_stack) sweep pair for a kernel name.

    How :mod:`repro.parallel.rankwork` dispatches per-rank work: the
    ``"compiled"`` sweeps run operand-identical DGEMMs with order-identical
    scatters, so any mix of compiled and NumPy ranks stays bitwise-equal to
    the serial kernel.
    """
    if kernel == "compiled":
        return compiled_same_spin_sigma_stack, compiled_mixed_spin_sigma_stack
    if kernel == "dgemm":
        return same_spin_sigma_stack, mixed_spin_sigma_stack
    raise ValueError(
        f"no sigma sweeps for kernel {kernel!r}; expected 'dgemm' or 'compiled'"
    )


def _check_stack(C_stack: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    C_stack = np.ascontiguousarray(C_stack, dtype=np.float64)
    if C_stack.ndim != 3 or C_stack.shape[1:] != shape:
        raise ValueError(
            f"C_stack must have shape (k, {shape[0]}, {shape[1]}), got {C_stack.shape}"
        )
    return C_stack


def _alpha_layout(C_stack: np.ndarray) -> np.ndarray:
    """(k, na, nb) -> (na, k*nb): alpha strings as rows, batched columns."""
    k, na, nb = C_stack.shape
    return np.ascontiguousarray(C_stack.transpose(1, 0, 2).reshape(na, k * nb))


def _beta_layout(C_stack: np.ndarray) -> np.ndarray:
    """(k, na, nb) -> (nb, k*na): beta strings as rows, batched columns."""
    k, na, nb = C_stack.shape
    return np.ascontiguousarray(C_stack.transpose(2, 0, 1).reshape(nb, k * na))


@register_kernel("dgemm")
class DgemmKernel:
    """The paper's gather/DGEMM/scatter sigma, batched over CI vectors.

    ``block_columns`` defaults to the plan's memory-budget heuristic
    (:meth:`SigmaPlan.default_block_columns`).
    """

    # sweep hooks: subclasses swap in operand-identical compiled variants
    _same_stack = staticmethod(same_spin_sigma_stack)
    _mixed_stack = staticmethod(mixed_spin_sigma_stack)

    def __init__(self, plan: SigmaPlan, *, block_columns: int | None = None):
        self.plan = plan
        self.block_columns = (
            int(block_columns) if block_columns else plan.default_block_columns()
        )

    def make_counters(self) -> SigmaCounters:
        return SigmaCounters()

    def account(self, registry, counters, seconds: float, calls: int = 1):
        return account_sigma_dgemm(registry, counters, seconds, calls=calls)

    def apply(self, C: np.ndarray, counters: SigmaCounters | None = None) -> np.ndarray:
        na, nb = self.plan.shape
        C = np.asarray(C)
        if C.shape != (na, nb):
            raise ValueError(f"C must have shape {(na, nb)}, got {C.shape}")
        return self.apply_batch(C[None], counters)[0]

    def apply_batch(
        self, C_stack: np.ndarray, counters: SigmaCounters | None = None
    ) -> np.ndarray:
        plan = self.plan
        na, nb = plan.shape
        C_stack = _check_stack(C_stack, plan.shape)
        k = C_stack.shape[0]
        bc = self.block_columns
        cols = _alpha_layout(C_stack)
        rows_stack = np.ascontiguousarray(C_stack.transpose(0, 2, 1))
        # accumulation order mirrors the single-vector algorithm exactly:
        # one-electron alpha, one-electron beta, alpha-alpha, beta-beta, mixed
        sigma = np.asarray(plan.Ta @ cols).reshape(na, k, nb).transpose(1, 0, 2)
        sigma = sigma + np.asarray(
            plan.Tb @ _beta_layout(C_stack)
        ).reshape(nb, k, na).transpose(1, 2, 0)
        if plan.same_a is not None:
            sigma += self._same_stack(
                plan.same_a, plan.w_matrix, C_stack, bc, counters
            )
        if plan.same_b is not None:
            sigma += self._same_stack(
                plan.same_b, plan.w_matrix, rows_stack, bc, counters
            ).transpose(0, 2, 1)
        sigma += self._mixed_stack(plan, C_stack, bc, counters)
        return sigma


@register_kernel("compiled")
class CompiledKernel(DgemmKernel):
    """Link-index sigma: DgemmKernel's DGEMMs with compiled gather/scatter.

    When numba is importable the gather/scatter loops run as jitted machine
    code over the plan's cached :class:`~repro.core.plans.LinkIndexTables`;
    the DGEMMs are the same ``np.matmul`` calls at the same
    ``column_blocks``, and the jitted scatters accumulate in
    ``_segment_sum``'s left-to-right order, so sigma is bitwise-identical
    to :class:`DgemmKernel` either way.  Without numba the sweeps fall back
    to the NumPy implementations - literally the DgemmKernel code path -
    so the kernel is always safe to select (``jitted`` reports which mode
    is active).
    """

    jitted = HAVE_NUMBA

    _same_stack = staticmethod(compiled_same_spin_sigma_stack)
    _mixed_stack = staticmethod(compiled_mixed_spin_sigma_stack)

    def __init__(self, plan: SigmaPlan, *, block_columns: int | None = None):
        super().__init__(plan, block_columns=block_columns)
        # build (and cache on the plan) the per-string link views up front
        # so first-iteration timing reflects the sweep, not table setup
        self.links = plan.link_tables


# -- MOC kernel pieces --------------------------------------------------------


def moc_same_spin_sigma(
    space,
    W: np.ndarray,
    C_rows: np.ndarray,
    counters: MOCCounters | None,
) -> np.ndarray:
    """MOC same-spin term acting on the row strings of C_rows (nstr, M).

    Regenerates every string's double-excitation list on the fly - the
    paper's replicated-computation bottleneck, reproduced on purpose.  A
    batched caller passes M = k * n_columns stacked columns, so the lists
    are generated once and applied to all k vectors.
    """
    n = space.n
    k = space.k
    if k < 2:
        return np.zeros_like(C_rows)
    nstr = space.size
    out = np.zeros_like(C_rows)
    masks = space.masks
    occs = space.occupations
    index = space._index

    def pair_index(a: int, b: int) -> int:  # a > b
        return a * (a - 1) // 2 + b

    for j in range(nstr):
        mask = int(masks[j])
        occ = [int(o) for o in occs[j]]
        # accumulate H[I, j] for all same-spin-connected I
        vals = np.zeros(nstr)
        for bq in range(k):
            q = occ[bq]
            m1, s1 = _annihilate(mask, q)
            for bs in range(bq):
                s = occ[bs]
                m2, s2 = _annihilate(m1, s)
                qs = pair_index(q, s)
                free = [p for p in range(n) if not (m2 >> p) & 1]
                for ip, p in enumerate(free):  # p > r: a+_p applied last
                    for r in free[:ip]:
                        m3, s3 = _create(m2, r)
                        m4, s4 = _create(m3, p)
                        i_idx = index[m4]
                        vals[i_idx] += s1 * s2 * s3 * s4 * W[pair_index(p, r), qs]
                        if counters is not None:
                            counters.matrix_elements_computed += 1
        nz = np.nonzero(vals)[0]
        out[nz, :] += vals[nz, None] * C_rows[j, :]
        if counters is not None:
            counters.indexed_ops += nz.size * C_rows.shape[1]
    return out


def _annihilate(mask: int, orb: int) -> tuple[int, int]:
    sign = -1 if bin(mask & ((1 << orb) - 1)).count("1") & 1 else 1
    return mask & ~(1 << orb), sign


def _create(mask: int, orb: int) -> tuple[int, int]:
    sign = -1 if bin(mask & ((1 << orb) - 1)).count("1") & 1 else 1
    return mask | (1 << orb), sign


def moc_mixed_sigma_stack(
    plan: SigmaPlan,
    C_stack: np.ndarray,
    counters: MOCCounters | None,
    row_block: int = 512,
) -> np.ndarray:
    """MOC mixed-spin term for a (k, na, nb) stack of CI vectors.

    Loops orbital pairs (p, q), gathers the C rows addressed by every alpha
    single excitation with that pair, and applies the beta list with
    integral weights via indexed updates (operation count per Table 1).
    The batch folds into the gathered-row axis: the integral weights are
    formed once per (p, q) and the row blocking follows the single-vector
    schedule, so results are bitwise-identical to a vector-at-a-time loop.
    """
    ta = plan.singles_a
    gb = plan.gather_b
    n = plan.n
    nb = plan.shape[1]
    k = C_stack.shape[0]
    g = plan.problem.mo.g
    b_src, b_r, b_s, b_sgn = gb.source, gb.p, gb.q, gb.sign
    per_b = gb.per
    sigma = np.zeros_like(C_stack)
    for p in range(n):
        for q in range(n):
            rows_idx = ta.rows_for_pq(p, q)
            if rows_idx.size == 0:
                continue
            src_a = ta.source[rows_idx]
            tgt_a = ta.target[rows_idx]
            sgn_a = ta.sign[rows_idx].astype(np.float64)
            wb = g[p, q, b_r, b_s] * b_sgn  # weights per beta entry
            for lo in range(0, rows_idx.size, row_block):
                hi = min(lo + row_block, rows_idx.size)
                rb = hi - lo
                V = sgn_a[None, lo:hi, None] * C_stack[:, src_a[lo:hi], :]
                T = V.reshape(k * rb, nb)[:, b_src] * wb[None, :]
                Wm = _segment_sum(
                    T.reshape(k * rb, nb, per_b), axis=2
                ).reshape(k, rb, nb)
                for i in range(k):
                    sigma[i, tgt_a[lo:hi], :] += Wm[i]
                if counters is not None:
                    counters.indexed_ops += rb * b_src.size * k
    return sigma


@register_kernel("moc")
class MocKernel:
    """Minimum-operation-count sigma (the paper's baseline), batched.

    ``block_columns`` is accepted for interface parity (it sets the row
    blocking of the mixed-spin gathers); the MOC kernel's cost structure is
    indexed updates, not column-blocked DGEMMs.
    """

    def __init__(self, plan: SigmaPlan, *, block_columns: int | None = None):
        self.plan = plan
        self.row_block = int(block_columns) * 8 if block_columns else 512

    def make_counters(self) -> MOCCounters:
        return MOCCounters()

    def account(self, registry, counters, seconds: float, calls: int = 1):
        return account_sigma_moc(registry, counters, seconds, calls=calls)

    def apply(self, C: np.ndarray, counters: MOCCounters | None = None) -> np.ndarray:
        na, nb = self.plan.shape
        C = np.asarray(C)
        if C.shape != (na, nb):
            raise ValueError(f"C must have shape {(na, nb)}, got {C.shape}")
        return self.apply_batch(C[None], counters)[0]

    def apply_batch(
        self, C_stack: np.ndarray, counters: MOCCounters | None = None
    ) -> np.ndarray:
        plan = self.plan
        problem = plan.problem
        na, nb = plan.shape
        C_stack = _check_stack(C_stack, plan.shape)
        k = C_stack.shape[0]
        cols = _alpha_layout(C_stack)
        rows = _beta_layout(C_stack)
        sigma = np.asarray(plan.Ta @ cols).reshape(na, k, nb).transpose(1, 0, 2)
        sigma = sigma + np.asarray(plan.Tb @ rows).reshape(nb, k, na).transpose(1, 2, 0)
        if problem.n_alpha >= 2:
            sigma += moc_same_spin_sigma(
                problem.space_a, plan.w_matrix, cols, counters
            ).reshape(na, k, nb).transpose(1, 0, 2)
        if problem.n_beta >= 2:
            sigma += moc_same_spin_sigma(
                problem.space_b, plan.w_matrix, rows, counters
            ).reshape(nb, k, na).transpose(1, 2, 0)
        sigma += moc_mixed_sigma_stack(plan, C_stack, counters, self.row_block)
        return sigma
