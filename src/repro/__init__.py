"""repro: a parallel-vector full-configuration-interaction package.

Reproduction of Gan & Harrison, "Calibrating quantum chemistry: A
multi-teraflop, parallel-vector, full-configuration interaction program for
the Cray-X1" (SC 2005): the DGEMM-based sigma-vector algorithm, the
automatically adjusted single-vector diagonalization method, and a simulated
Cray-X1 parallel substrate (SHMEM/DDI, task-pool dynamic load balancing)
that regenerates the paper's scaling studies.

Quick start::

    from repro import Molecule, FCISolver
    mol = Molecule.from_atoms([("H", (0, 0, 0)), ("H", (0, 0, 1.4))])
    print(FCISolver(mol, basis="sto-3g").run().energy)
"""

import logging

from .molecule import Molecule, PointGroup
from .core import Checkpointer, FCIResult, FCISolver, fci
from .faults import ChaosConfig, FaultInjector, FaultPlan
from .obs import ChromeTracer, MetricsRegistry, Telemetry, get_registry

# Library code reports through the "repro" logger hierarchy rather than
# print(); applications opt in with logging.basicConfig() or a handler.
logging.getLogger(__name__).addHandler(logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "Molecule",
    "PointGroup",
    "FCIResult",
    "FCISolver",
    "fci",
    "Checkpointer",
    "ChaosConfig",
    "FaultInjector",
    "FaultPlan",
    "Telemetry",
    "ChromeTracer",
    "MetricsRegistry",
    "get_registry",
    "__version__",
]
