"""FCI-as-a-service: the subsystem that turns the library into a server.

The pieces (each its own module, composable without the others):

* :mod:`.jobs` - content-addressed :class:`JobSpec` (idempotent job keys,
  shared CI-space digests) and the :class:`JobRecord` lifecycle machine.
* :mod:`.cache` - :class:`ArtifactCache`: compiled workspaces (integrals,
  SCF, cached :class:`~repro.core.plans.SigmaPlan`) keyed by space digest,
  converged results keyed by job digest, persisted atomically.
* :mod:`.executor` - one preemptible, checkpointed, telemetry-streaming
  solve per job (:class:`SolveExecutor`, :class:`ServiceCheckpointer`).
* :mod:`.scheduler` - bounded priority :class:`JobQueue` (backpressure)
  and the worker-fleet :class:`Scheduler`.
* :mod:`.service` - :class:`FCIService`, the programmatic facade.
* :mod:`.httpd` / :mod:`.cli` - the HTTP daemon and the
  ``python -m repro.service`` command-line client.

Quick start::

    from repro import Molecule
    from repro.service import FCIService

    with FCIService("fci-workdir") as svc:
        job = svc.submit(Molecule.from_atoms([("H", (0, 0, 0)), ("H", (0, 0, 1.4))]))
        print(svc.result(job.key, timeout=60)["energy"])
"""

from .cache import ArtifactCache, Workspace
from .executor import JobPreempted, JobTimeout, ServiceCheckpointer, SolveExecutor
from .jobs import PRIORITY_TIERS, JobRecord, JobSpec, JobState, JobStateError
from .scheduler import JobQueue, QueueFullError, Scheduler
from .service import FCIService

__all__ = [
    "ArtifactCache",
    "FCIService",
    "JobPreempted",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStateError",
    "JobTimeout",
    "PRIORITY_TIERS",
    "QueueFullError",
    "Scheduler",
    "ServiceCheckpointer",
    "SolveExecutor",
    "Workspace",
]
