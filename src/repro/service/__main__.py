"""``python -m repro.service`` - daemon and HTTP client entry point."""

import sys

from .cli import main

sys.exit(main())
