"""FCIService: the long-running FCI job server, as a programmatic API.

Composes the pieces of this package - content-addressed job keys
(:mod:`.jobs`), the artifact cache (:mod:`.cache`), the bounded priority
queue and worker fleet (:mod:`.scheduler`), and the preemptible executor
(:mod:`.executor`) - into one object with the request lifecycle the
ROADMAP's service item asks for:

* **submit** is idempotent: a spec hashing to an in-flight job dedupes
  onto it; one hashing to a cached result returns instantly as a cache
  hit; a full queue rejects with backpressure semantics.
* **every job is preemptible**: cancellation, per-job timeouts, and
  server shutdown all interrupt at the next solver iteration *after* the
  restart state is durably checkpointed.
* **every job is resumable**: ``resume`` re-enqueues any interrupted job
  and the solver replays the exact iteration sequence from its
  checkpoint - including across full server restarts, because the job
  journal (one JSON per job under ``<workdir>/jobs``) and the checkpoint
  files survive the process.

The HTTP daemon (:mod:`.httpd`) and CLI (:mod:`.cli`) are thin skins over
this class.
"""

from __future__ import annotations

import json
import logging
import os
import time

import threading

from ..molecule.geometry import Molecule
from ..parallel.backend import backend_names
from .cache import ArtifactCache
from .executor import JobPreempted, JobTimeout, SolveExecutor
from .jobs import PRIORITY_TIERS, JobRecord, JobSpec, JobState
from .scheduler import JobQueue, QueueFullError, Scheduler

__all__ = ["FCIService", "QueueFullError"]

logger = logging.getLogger(__name__)

_KEEP_TIMEOUT = object()  # resume() sentinel: keep the job's existing budget


class FCIService:
    """An asynchronous, deduplicating, preemptible FCI job server.

    Parameters
    ----------
    workdir:
        Durable state root: ``jobs/`` (journal), ``checkpoints/``,
        ``results/`` (artifact cache), ``telemetry/`` (JSON-lines streams).
    max_workers:
        Worker-fleet width: how many solves run concurrently.
    queue_size:
        Backpressure bound on *pending* jobs; submissions beyond it raise
        :class:`QueueFullError`.
    default_timeout:
        Wall-clock budget (seconds) applied to jobs submitted without one;
        None means unbounded.
    default_parallel:
        ``FCISolver(parallel=...)`` options applied to jobs whose spec does
        not choose a backend - e.g. ``{"backend": "shm", "n_workers": 4}``
        turns every fleet slot into an shm process-pool front end.
    max_workspaces:
        LRU bound on cached compiled workspaces (plans + integrals).
    checkpoint_faults:
        Optional :class:`repro.faults.FaultInjector` threaded into every
        job's checkpointer - the chaos hook the crash-resume tests use.
    service_faults:
        Optional :class:`repro.faults.ServiceFaultInjector` driving the
        service-layer chaos hooks: worker-thread death mid-solve, result
        corruption after persist, torn journal writes, telemetry-stream
        I/O errors, checkpoint I/O crashes.  None (default) leaves every
        path untouched.
    autostart:
        Start the worker fleet immediately (default).  Tests that need to
        stage the queue deterministically pass False and call
        :meth:`start` themselves.
    """

    def __init__(
        self,
        workdir,
        *,
        max_workers: int = 2,
        queue_size: int = 64,
        default_timeout: float | None = None,
        default_parallel: dict | None = None,
        max_workspaces: int = 8,
        checkpoint_faults=None,
        service_faults=None,
        autostart: bool = True,
    ):
        self.workdir = os.fspath(workdir)
        self.jobs_dir = os.path.join(self.workdir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.default_timeout = default_timeout
        self.checkpoint_faults = checkpoint_faults
        self.service_faults = service_faults
        self.cache = ArtifactCache(
            self.workdir, max_workspaces=max_workspaces, faults=service_faults
        )
        self.executor = SolveExecutor(
            self.cache, self.workdir, default_parallel=default_parallel
        )
        self.queue = JobQueue(maxsize=queue_size)
        self.scheduler = Scheduler(self, self.queue, n_workers=max_workers)
        self._records: dict[str, JobRecord] = {}
        self._lock = threading.RLock()
        self._started_at = time.time()
        self.recovery = {"readopted": 0, "skipped_journals": 0, "reaped": 0}
        self.late_finishes = 0  # outcomes reported for already-terminal jobs
        self._recover()
        if autostart:
            self.start()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Start (or restart) the worker fleet."""
        self.scheduler.start()

    def stop(self, *, preempt: bool = True, timeout: float = 60.0) -> None:
        """Shut the fleet down.

        ``preempt=True`` (default) asks every running job to checkpoint and
        stop at its next iteration, so a subsequent service (or the same
        one after :meth:`start`) can resume it; False lets running solves
        finish before workers exit.
        """
        if preempt:
            with self._lock:
                for rec in self._records.values():
                    if rec.state == JobState.RUNNING:
                        rec.cancel_event.set()
        self.scheduler.stop(wait=True, timeout=timeout)

    def close(self) -> None:
        self.stop(preempt=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        spec=None,
        *,
        molecule: Molecule | None = None,
        basis: str = "sto-3g",
        priority: str | int = "normal",
        timeout: float | None = None,
        force: bool = False,
        preempt_after: int | None = None,
        **solver_options,
    ) -> JobRecord:
        """Submit a job; returns its (possibly pre-existing) record.

        ``spec`` may be a :class:`JobSpec`, a dict (the HTTP payload
        shape), or None with ``molecule=``/solver options instead.
        ``force=True`` invalidates any cached result and re-solves (still
        dedupes onto an in-flight run of the same key).  ``preempt_after``
        is the deterministic chaos hook forwarded to the executor.

        Raises :class:`ValueError` for an invalid spec and
        :class:`QueueFullError` when the queue is at capacity.
        """
        spec = self._coerce_spec(spec, molecule, basis, solver_options)
        self.executor.validate(spec)  # reject unbuildable specs at the door
        tier = self._tier(priority)
        key = spec.job_key
        with self._lock:
            rec = self._records.get(key)
            if rec is not None and rec.state in JobState.ACTIVE:
                rec.deduped += 1
                logger.info("deduped submission onto %s job %s", rec.state, key[:12])
                return rec
            if not force:
                cached = self.cache.get_result(key)
                if cached is not None:
                    meta, _vector = cached
                    if rec is None:
                        rec = JobRecord(key=key, spec=spec, priority=str(priority), tier=tier)
                        rec.state = JobState.COMPLETED
                        rec.finished_at = time.time()
                        rec.done.set()
                        self._records[key] = rec
                    else:
                        rec.deduped += 1
                    rec.result = dict(meta)
                    rec.cache_hit = True
                    self._journal(rec)
                    logger.info("result-cache hit for job %s", key[:12])
                    return rec
            if rec is None:
                rec = JobRecord(key=key, spec=spec, priority=str(priority), tier=tier)
                self._records[key] = rec
            else:
                # resubmission of a terminal job (or force on a completed one)
                if force:
                    self.cache.drop_result(key)
                rec.transition(JobState.QUEUED)
                rec.priority, rec.tier = str(priority), tier
                rec.cache_hit = False
                rec.result = None
            rec.timeout = timeout if timeout is not None else self.default_timeout
            rec.preempt_after = preempt_after
            try:
                self.queue.push(key, tier)
            except QueueFullError:
                # reject-on-full: the record must not linger as QUEUED
                if rec.attempts == 0 and rec.deduped == 0:
                    self._records.pop(key, None)
                else:
                    rec.transition(JobState.PREEMPTED)
                    rec.error = "rejected: queue full"
                    self._journal(rec)
                raise
            self._journal(rec)
            return rec

    def _coerce_spec(self, spec, molecule, basis, solver_options) -> JobSpec:
        if isinstance(spec, JobSpec):
            if molecule is not None or solver_options:
                raise ValueError("pass either a JobSpec or molecule/options, not both")
            return spec
        if isinstance(spec, dict):
            return JobSpec.from_dict(spec)
        if spec is None and molecule is not None:
            return JobSpec.from_molecule(molecule, basis, **solver_options)
        if isinstance(spec, Molecule):
            return JobSpec.from_molecule(spec, basis, **solver_options)
        raise ValueError(
            "submit() needs a JobSpec, a spec dict, or a Molecule (via the "
            "first argument or molecule=)"
        )

    @staticmethod
    def _tier(priority: str | int) -> int:
        if isinstance(priority, int):
            return priority
        try:
            return PRIORITY_TIERS[str(priority).lower()]
        except KeyError:
            raise ValueError(
                f"unknown priority {priority!r}; use one of "
                f"{', '.join(sorted(PRIORITY_TIERS))} or an integer tier"
            ) from None

    # -- scheduler callbacks -------------------------------------------------
    def _begin(self, key: str, worker_id: int) -> JobRecord | None:
        with self._lock:
            rec = self._records.get(key)
            if rec is None or rec.state != JobState.QUEUED:
                return None  # cancelled while queued, or stale heap entry
            rec.transition(JobState.RUNNING)
            rec.worker = worker_id
            rec.attempts += 1
            self._journal(rec)
            return rec

    def _finish(self, rec: JobRecord, *, payload=None, error=None) -> None:
        with self._lock:
            if rec.state != JobState.RUNNING:
                # the job was reaped/preempted out from under its worker and
                # the outcome arrived late: the record's terminal state wins
                # (a completed payload is already in the artifact cache, so
                # a resume turns into a cache hit - nothing is lost)
                self.late_finishes += 1
                logger.warning(
                    "dropping late %s for %s job %s",
                    "result" if payload is not None else f"error ({error})",
                    rec.state,
                    rec.key[:12],
                )
                return
            if payload is not None:
                rec.result = payload
                rec.transition(JobState.COMPLETED)
            elif isinstance(error, JobTimeout):
                rec.error = str(error)
                rec.transition(JobState.TIMED_OUT)
            elif isinstance(error, JobPreempted):
                rec.error = str(error)
                rec.transition(JobState.PREEMPTED)
            else:
                rec.error = f"{type(error).__name__}: {error}"
                rec.transition(JobState.FAILED)
                logger.warning("job %s failed: %s", rec.key[:12], rec.error)
            rec.worker = None
            self._journal(rec)

    # -- client surface ------------------------------------------------------
    def get(self, key: str) -> JobRecord:
        with self._lock:
            try:
                return self._records[key]
            except KeyError:
                raise KeyError(f"unknown job {key!r}") from None

    def status(self, key: str) -> dict:
        """Status snapshot; interrupted jobs include their checkpoint header."""
        rec = self.get(key)
        out = rec.summary()
        if rec.state in JobState.RESUMABLE:
            from ..core.checkpoint import Checkpointer

            header = Checkpointer(self.executor.checkpoint_path(key)).peek()
            if header:
                out["checkpoint"] = {
                    "iteration": header.get("iteration"),
                    "method": header.get("method"),
                    "last_energy": (header.get("energies") or [None])[-1],
                }
        return out

    def wait(self, key: str, timeout: float | None = None) -> JobRecord:
        """Block until the job reaches a terminal state (or timeout)."""
        rec = self.get(key)
        if not rec.done.wait(timeout):
            raise TimeoutError(f"job {key[:12]} still {rec.state} after {timeout}s")
        return rec

    def result(self, key: str, timeout: float | None = None) -> dict:
        """The result payload, waiting for completion; raises on failure."""
        rec = self.wait(key, timeout)
        if rec.state != JobState.COMPLETED:
            raise RuntimeError(f"job {key[:12]} is {rec.state}: {rec.error}")
        return rec.result

    def vector(self, key: str):
        """The converged CI vector of a completed job (from the cache)."""
        cached = self.cache.get_result(key)
        if cached is None:
            raise KeyError(f"no cached result for job {key!r}")
        return cached[1]

    def iterations(self, key: str) -> list[dict]:
        """Per-iteration telemetry events streamed by the job so far."""
        return list(self.get(key).events)

    def cancel(self, key: str) -> str:
        """Cancel a job: dequeue it, or preempt it at its next iteration."""
        with self._lock:
            rec = self.get(key)
            if rec.state == JobState.QUEUED:
                self.queue.remove(key)
                rec.transition(JobState.CANCELLED)
                rec.error = "cancelled while queued"
                self._journal(rec)
            elif rec.state == JobState.RUNNING:
                rec.cancel_event.set()  # -> PREEMPTED at the next iteration
            return rec.state

    def resume(
        self,
        key: str,
        *,
        priority: str | int | None = None,
        timeout: float | None = _KEEP_TIMEOUT,
    ) -> JobRecord:
        """Re-enqueue an interrupted/failed/cancelled (or completed) job.

        The executor picks the job's checkpoint back up, so the solve
        continues from its last durable iteration rather than starting
        over; the checkpointed energy is honored even when the remaining
        iteration budget is zero.  ``timeout`` replaces the job's budget
        for the retry (None removes it); by default the old one is kept.
        """
        with self._lock:
            rec = self.get(key)
            if rec.state == JobState.RUNNING:
                raise RuntimeError(f"job {key[:12]} is running; cancel it first")
            if rec.state == JobState.QUEUED:
                # double resume is idempotent: the job is already on its way
                if priority is not None:
                    rec.priority, rec.tier = str(priority), self._tier(priority)
                return rec
            if priority is not None:
                rec.priority, rec.tier = str(priority), self._tier(priority)
            if timeout is not _KEEP_TIMEOUT:
                rec.timeout = timeout
            rec.transition(JobState.QUEUED)
            self.queue.push(key, rec.tier)
            self._journal(rec)
            return rec

    def reap(self) -> dict:
        """Recover jobs abandoned by dead worker threads, then heal the fleet.

        A worker thread that dies abruptly (injected
        :class:`~repro.faults.WorkerCrashed`, or anything fatal a real
        deployment does to a thread) leaves its job RUNNING forever and a
        fleet slot empty.  This sweep (1) transitions every RUNNING job
        whose worker thread is no longer alive to PREEMPTED - its last
        on-grid checkpoint is intact, so :meth:`resume` continues it - and
        (2) respawns the dead fleet slots.  Order matters: jobs are reaped
        *before* slots are refilled, so a respawned thread can never mask
        an abandoned job.

        Returns ``{"reaped": [keys], "respawned": n}``.
        """
        reaped: list[str] = []
        with self._lock:
            for rec in self._records.values():
                if (
                    rec.state == JobState.RUNNING
                    and rec.worker is not None
                    and not self.scheduler.worker_alive(rec.worker)
                ):
                    rec.transition(JobState.PREEMPTED)
                    rec.error = "worker died; job reaped (checkpoint intact)"
                    rec.worker = None
                    self._journal(rec)
                    reaped.append(rec.key)
            self.recovery["reaped"] += len(reaped)
        respawned = self.scheduler.ensure_workers()
        if reaped:
            logger.warning(
                "reaped %d abandoned job(s), respawned %d worker(s)",
                len(reaped),
                respawned,
            )
            if self.service_faults is not None:
                self.service_faults.note_recovered("reaped_job", len(reaped))
        return {"reaped": reaped, "respawned": respawned}

    def jobs(self) -> list[dict]:
        with self._lock:
            return [rec.summary() for rec in self._records.values()]

    def stats(self) -> dict:
        with self._lock:
            by_state: dict[str, int] = {}
            for rec in self._records.values():
                by_state[rec.state] = by_state.get(rec.state, 0) + 1
            return {
                "uptime_s": time.time() - self._started_at,
                "jobs": by_state,
                "total_jobs": len(self._records),
                "queue_depth": len(self.queue),
                "workers": self.scheduler.n_workers,
                "workers_running": self.scheduler.running,
                "worker_crashes": self.scheduler.crashes,
                "worker_respawns": self.scheduler.respawns,
                "solves_executed": self.executor.solves,
                "telemetry_io_errors": self.executor.telemetry_io_errors,
                "late_finishes": self.late_finishes,
                "recovery": dict(self.recovery),
                "cache": self.cache.stats(),
                "backends_available": list(backend_names()),
                "default_parallel": self.executor.default_parallel,
                "service_faults": (
                    self.service_faults.counts()
                    if self.service_faults is not None
                    else None
                ),
            }

    # -- durability ----------------------------------------------------------
    def _journal_path(self, key: str) -> str:
        return os.path.join(self.jobs_dir, f"{key}.json")

    def _journal(self, rec: JobRecord) -> None:
        path = self._journal_path(rec.key)
        blob = json.dumps(rec.to_journal()).encode()
        if self.service_faults is not None and self.service_faults.torn_journal_write(
            path, blob
        ):
            return  # the injector left a half-written journal in place
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(blob)
        os.replace(tmp, path)

    def _recover(self) -> None:
        """Re-adopt journaled jobs after a restart.

        Jobs that were queued or running when the previous process died are
        marked PREEMPTED - their checkpoints (if any) are intact, so
        :meth:`resume` continues them; terminal jobs come back as-is, with
        completed results re-served from the artifact cache.  A journal a
        crash left torn (partial JSON) is skipped and counted under
        ``recovery["skipped_journals"]`` - never a startup crash.
        """
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path) as f:
                    rec = JobRecord.from_journal(json.load(f))
            except Exception as exc:
                logger.warning("skipping unreadable job journal %s: %s", path, exc)
                self.recovery["skipped_journals"] += 1
                continue
            if rec.state in JobState.ACTIVE:
                rec.state = JobState.PREEMPTED
                rec.error = "server restarted"
                rec.finished_at = rec.finished_at or time.time()
                rec.done.set()
                self._journal(rec)
                self.recovery["readopted"] += 1
                logger.info("re-adopted interrupted job %s as preempted", rec.key[:12])
            self._records[rec.key] = rec
