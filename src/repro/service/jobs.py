"""Job model: content-addressed FCI jobs and their lifecycle state machine.

A job is *what* to solve (:class:`JobSpec` - molecule, basis, CI space,
solver configuration) plus *how it is doing* (:class:`JobRecord` - state,
timestamps, telemetry, result).  Two digests make the service idempotent
and cache-friendly:

* :attr:`JobSpec.job_key` - SHA-256 of the canonical JSON of every field
  that affects the *answer*.  Two submissions with the same key are the
  same job: the service dedupes them onto one solve and one cached result.
* :attr:`JobSpec.space_key` - digest of the subset that defines the CI
  *problem* (geometry, charge/multiplicity, basis, frozen/active space,
  symmetry).  Jobs that share it share one compiled workspace - AO
  integrals, SCF, excitation tables, and the cached
  :class:`~repro.core.plans.SigmaPlan` - through the artifact cache.

Scheduling metadata (priority tier, timeout) deliberately stays *out* of
the digests: re-submitting the same physics at a different priority must
dedupe onto the in-flight solve, not fork a second one.

Float fields are canonicalized through ``repr`` round-tripping (Python
floats serialize losslessly through JSON), so keys are stable across
processes and sessions.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field, fields

from ..molecule.geometry import Molecule

__all__ = ["JobSpec", "JobRecord", "JobState", "JobStateError", "PRIORITY_TIERS"]


PRIORITY_TIERS = {
    "interactive": 0,
    "high": 0,
    "normal": 1,
    "default": 1,
    "batch": 2,
    "low": 2,
}
"""Priority names -> scheduler tiers (lower runs first)."""


class JobState:
    """Lifecycle states and the legal transitions between them."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    PREEMPTED = "preempted"
    TIMED_OUT = "timed_out"
    CANCELLED = "cancelled"

    #: states that occupy (or will occupy) a worker - submissions dedupe here
    ACTIVE = frozenset({QUEUED, RUNNING})
    #: states a job can be re-enqueued from (checkpoint, if any, is reused)
    RESUMABLE = frozenset({PREEMPTED, TIMED_OUT, FAILED, CANCELLED})
    #: states where the job is finished for the purposes of waiting clients
    TERMINAL = frozenset({COMPLETED, FAILED, PREEMPTED, TIMED_OUT, CANCELLED})

    ALLOWED = {
        QUEUED: frozenset({RUNNING, CANCELLED, PREEMPTED}),
        RUNNING: frozenset({COMPLETED, FAILED, PREEMPTED, TIMED_OUT}),
        PREEMPTED: frozenset({QUEUED}),
        TIMED_OUT: frozenset({QUEUED}),
        FAILED: frozenset({QUEUED}),
        CANCELLED: frozenset({QUEUED}),
        # force=True resubmission re-solves a completed job
        COMPLETED: frozenset({QUEUED}),
    }

    ALL = frozenset(
        {QUEUED, RUNNING, COMPLETED, FAILED, PREEMPTED, TIMED_OUT, CANCELLED}
    )


class JobStateError(RuntimeError):
    """An illegal lifecycle transition was requested."""


# spec fields that define the CI *problem* (and therefore the compiled
# workspace: integrals, SCF, excitation tables, SigmaPlan)
_SPACE_FIELDS = (
    "atoms",
    "charge",
    "multiplicity",
    "basis",
    "frozen_core",
    "n_active",
    "point_group",
    "wavefunction_irrep",
)


@dataclass(frozen=True)
class JobSpec:
    """Everything that determines an FCI answer, in hashable canonical form.

    ``atoms`` holds ``(symbol, (x, y, z))`` tuples in Bohr.  ``parallel``
    and ``vector_store`` option dicts are frozen to tuples of sorted
    ``(option, value)`` pairs (a bare store kind string stays a string) so
    the spec stays hashable; :meth:`solver_kwargs` converts them back to
    what :class:`~repro.core.solver.FCISolver` takes.  ``vector_store`` is
    answer-affecting on purpose: dense and mmap backends are bitwise
    interchangeable, but a cdfci ``capacity`` changes the convergence path,
    so the safe canonical rule is "different storage config, different job
    key".  ``label`` is a display name only and is excluded from the
    digests.  ``kernel`` is likewise answer-neutral: it chooses between the
    bitwise-identical "dgemm"/"compiled" sigma sweeps, so two submissions
    differing only in ``kernel`` share one job key (and one cached result).
    """

    atoms: tuple
    charge: int = 0
    multiplicity: int = 1
    basis: str = "sto-3g"
    frozen_core: int | str = 0
    n_active: int | None = None
    point_group: str | None = None
    wavefunction_irrep: str | None = None
    algorithm: str = "dgemm"
    method: str = "auto"
    vector_store: tuple | str | None = None
    block_columns: int | None = None
    model_space_size: int = 50
    spin_penalty: float = 0.0
    olsen_step: float = 0.7
    energy_tol: float = 1e-10
    residual_tol: float = 1e-5
    max_iterations: int = 60
    parallel: tuple | None = None
    kernel: str | None = None
    label: str = ""

    def __post_init__(self):
        # only the bitwise-identical sweep pair may ride the answer-neutral
        # field; anything else (e.g. "moc") must go through `algorithm`,
        # which is part of the job key
        if self.kernel not in (None, "dgemm", "compiled"):
            raise ValueError(
                "kernel must be None, 'dgemm', or 'compiled' (bitwise-"
                f"identical sweeps only); got {self.kernel!r}"
            )

    # -- construction --------------------------------------------------------
    @classmethod
    def from_molecule(cls, mol: Molecule, basis: str = "sto-3g", **options) -> "JobSpec":
        """Build a spec from a :class:`~repro.molecule.Molecule`."""
        atoms = tuple((a.symbol, tuple(float(x) for x in a.position)) for a in mol.atoms)
        options.setdefault("label", mol.name)
        return cls(
            atoms=atoms,
            charge=mol.charge,
            multiplicity=mol.multiplicity,
            basis=basis,
            **{k: _freeze(k, v) for k, v in options.items()},
        )

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Build a spec from a JSON-decoded dict (the HTTP submit payload)."""
        data = dict(data)
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise ValueError(f"unknown job spec fields: {', '.join(sorted(unknown))}")
        if "atoms" not in data or not data["atoms"]:
            raise ValueError("job spec requires a non-empty 'atoms' list")
        data["atoms"] = tuple(
            (str(sym), tuple(float(x) for x in pos)) for sym, pos in data["atoms"]
        )
        return cls(**{k: _freeze(k, v) for k, v in data.items()})

    def to_dict(self) -> dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["atoms"] = [[sym, list(pos)] for sym, pos in self.atoms]
        if self.parallel is not None:
            d["parallel"] = dict(self.parallel)
        if isinstance(self.vector_store, tuple):
            d["vector_store"] = dict(self.vector_store)
        return d

    # -- consumption ---------------------------------------------------------
    def molecule(self) -> Molecule:
        return Molecule.from_atoms(
            [(sym, pos) for sym, pos in self.atoms],
            charge=self.charge,
            multiplicity=self.multiplicity,
            name=self.label,
        )

    def solver_kwargs(self) -> dict:
        """Keyword arguments for :class:`~repro.core.solver.FCISolver`."""
        return dict(
            frozen_core=self.frozen_core,
            n_active=self.n_active,
            point_group=self.point_group,
            wavefunction_irrep=self.wavefunction_irrep,
            algorithm=self.algorithm,
            method=self.method,
            vector_store=(
                dict(self.vector_store)
                if isinstance(self.vector_store, tuple)
                else self.vector_store
            ),
            block_columns=self.block_columns,
            model_space_size=self.model_space_size,
            spin_penalty=self.spin_penalty,
            olsen_step=self.olsen_step,
            energy_tol=self.energy_tol,
            residual_tol=self.residual_tol,
            max_iterations=self.max_iterations,
            parallel=dict(self.parallel) if self.parallel is not None else None,
            kernel=self.kernel,
        )

    # -- content addressing --------------------------------------------------
    def canonical(self) -> dict:
        """Every answer-affecting field, in canonical JSON-ready form."""
        d = self.to_dict()
        d.pop("label", None)
        # kernel selects between bitwise-identical sweeps: not answer-affecting
        d.pop("kernel", None)
        return d

    @property
    def job_key(self) -> str:
        """SHA-256 digest of the canonical spec: the idempotent job identity."""
        return _digest(self.canonical())

    @property
    def space_key(self) -> str:
        """Digest of the CI-problem-defining subset: the workspace identity."""
        c = self.canonical()
        return _digest({k: c[k] for k in _SPACE_FIELDS})

    def __repr__(self) -> str:
        label = self.label or "".join(sym for sym, _ in self.atoms)
        return (
            f"JobSpec({label}/{self.basis}, method={self.method}, "
            f"key={self.job_key[:12]})"
        )


def _freeze(name: str, value):
    """Coerce JSON-decoded values into the spec's hashable canonical types."""
    if name in ("parallel", "vector_store") and isinstance(value, dict):
        return tuple(sorted(value.items()))
    if name in ("spin_penalty", "olsen_step", "energy_tol", "residual_tol"):
        return float(value)
    if name in ("charge", "multiplicity", "model_space_size", "max_iterations"):
        return int(value)
    return value


def _digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class JobRecord:
    """One job's mutable lifecycle: state, timing, telemetry, outcome.

    The owning :class:`~repro.service.service.FCIService` serializes all
    state mutations under its lock; ``events`` is appended to from the
    worker thread (list appends are atomic) and read by status endpoints.
    """

    key: str
    spec: JobSpec
    priority: str = "normal"
    tier: int = 1
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    timeout: float | None = None
    worker: int | None = None
    attempts: int = 0
    deduped: int = 0
    cache_hit: bool = False
    error: str | None = None
    result: dict | None = None
    #: chaos/testing hook - preempt deterministically at this iteration;
    #: cleared when the job is resumed so the retry runs to completion
    preempt_after: int | None = None
    events: list = field(default_factory=list)
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False)
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    def transition(self, new_state: str) -> None:
        """Move to ``new_state``, enforcing the lifecycle state machine."""
        if new_state not in JobState.ALL:
            raise JobStateError(f"unknown job state {new_state!r}")
        if new_state not in JobState.ALLOWED.get(self.state, frozenset()):
            raise JobStateError(
                f"job {self.key[:12]} cannot go {self.state} -> {new_state}"
            )
        self.state = new_state
        now = time.time()
        if new_state == JobState.RUNNING:
            self.started_at = now
        if new_state in JobState.TERMINAL:
            self.finished_at = now
            self.done.set()
        elif new_state == JobState.QUEUED:  # resume/resubmit
            self.finished_at = None
            self.error = None
            self.preempt_after = None
            self.done.clear()
            self.cancel_event.clear()

    @property
    def energy(self) -> float | None:
        return self.result.get("energy") if self.result else None

    def summary(self) -> dict:
        """JSON-friendly status snapshot (no CI vector, no spec geometry)."""
        return {
            "key": self.key,
            "label": self.spec.label or None,
            "state": self.state,
            "priority": self.priority,
            "tier": self.tier,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "timeout": self.timeout,
            "worker": self.worker,
            "attempts": self.attempts,
            "deduped": self.deduped,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "result": self.result,
            "n_events": len(self.events),
        }

    def to_journal(self) -> dict:
        """Everything the on-disk job journal persists across restarts."""
        d = self.summary()
        d["spec"] = self.spec.to_dict()
        return d

    @classmethod
    def from_journal(cls, data: dict) -> "JobRecord":
        spec = JobSpec.from_dict(data["spec"])
        rec = cls(
            key=data["key"],
            spec=spec,
            priority=data.get("priority", "normal"),
            tier=int(data.get("tier", 1)),
            state=data.get("state", JobState.QUEUED),
            submitted_at=data.get("submitted_at") or time.time(),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            timeout=data.get("timeout"),
            attempts=int(data.get("attempts", 0)),
            deduped=int(data.get("deduped", 0)),
            cache_hit=bool(data.get("cache_hit", False)),
            error=data.get("error"),
            result=data.get("result"),
        )
        if rec.state in JobState.TERMINAL:
            rec.done.set()
        return rec
