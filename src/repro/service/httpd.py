"""Minimal HTTP surface over :class:`~repro.service.service.FCIService`.

Pure stdlib (``http.server``), JSON in/JSON out, one threading server so
slow handlers never block health checks.  Routes (all under ``/v1``):

====== ============================  =============================================
verb   path                          meaning
------ ----------------------------  ---------------------------------------------
GET    /v1/healthz                   liveness probe
GET    /v1/stats                     service statistics (queue, cache, fleet)
GET    /v1/jobs                      all job summaries
POST   /v1/jobs                      submit: ``{"spec": {...}, "priority": ...,
                                     "timeout": ..., "force": ...}`` or a bare
                                     spec dict; 429 on queue-full backpressure
GET    /v1/jobs/<key>                status snapshot (checkpoint info if resumable)
GET    /v1/jobs/<key>/result         result; ``?wait=<seconds>`` blocks for it
GET    /v1/jobs/<key>/telemetry      per-iteration telemetry as JSON lines
POST   /v1/jobs/<key>/cancel         dequeue or preempt
POST   /v1/jobs/<key>/resume         re-enqueue from the checkpoint
POST   /v1/reap                      recover jobs abandoned by dead workers
====== ============================  =============================================

Submissions respond with ``{"key", "state", "deduped", "cache_hit"}`` so a
client can tell a fresh solve from a dedupe or a served-from-cache answer.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .jobs import JobState, JobStateError
from .scheduler import QueueFullError

__all__ = ["ServiceHTTPServer"]

logger = logging.getLogger(__name__)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-fci-service/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self):
        return self.server.service

    def log_message(self, fmt, *args):  # route access logs into `logging`
        logger.debug("%s - %s", self.address_string(), fmt % args)

    # -- plumbing ------------------------------------------------------------
    def _send(self, code: int, payload, *, content_type="application/json") -> None:
        body = (
            payload
            if isinstance(payload, (bytes, bytearray))
            else (json.dumps(payload) + "\n").encode()
        )
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send(code, {"error": message})

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return {}
        return json.loads(self.rfile.read(length).decode())

    def _route(self):
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        if not parts or parts[0] != "v1":
            return None, None, query
        return parts[1:], url, query

    # -- verbs ---------------------------------------------------------------
    def do_GET(self):  # noqa: N802 (stdlib handler naming)
        parts, _url, query = self._route()
        try:
            if parts == ["healthz"]:
                return self._send(200, {"ok": True})
            if parts == ["stats"]:
                return self._send(200, self.service.stats())
            if parts == ["jobs"]:
                return self._send(200, {"jobs": self.service.jobs()})
            if parts and parts[0] == "jobs" and len(parts) == 2:
                return self._send(200, self.service.status(parts[1]))
            if parts and parts[0] == "jobs" and len(parts) == 3:
                key, leaf = parts[1], parts[2]
                if leaf == "telemetry":
                    lines = "".join(
                        json.dumps(e) + "\n" for e in self.service.iterations(key)
                    )
                    return self._send(
                        200, lines.encode(), content_type="application/x-ndjson"
                    )
                if leaf == "result":
                    wait = float(query.get("wait", 0.0))
                    rec = self.service.wait(key, wait) if wait else self.service.get(key)
                    if rec.state != JobState.COMPLETED:
                        return self._send(
                            409,
                            {"key": key, "state": rec.state, "error": rec.error},
                        )
                    return self._send(
                        200, {"key": key, "state": rec.state, "result": rec.result}
                    )
        except KeyError as exc:
            return self._error(404, str(exc))
        except TimeoutError as exc:
            return self._error(408, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("GET %s failed", self.path)
            return self._error(500, f"{type(exc).__name__}: {exc}")
        return self._error(404, f"no route for GET {self.path}")

    def do_POST(self):  # noqa: N802
        parts, _url, _query = self._route()
        try:
            if parts == ["jobs"]:
                body = self._read_json()
                spec = body.get("spec", body if "atoms" in body else None)
                if spec is None:
                    return self._error(400, "submit body needs 'spec' (or bare spec)")
                rec = self.service.submit(
                    spec,
                    priority=body.get("priority", "normal"),
                    timeout=body.get("timeout"),
                    force=bool(body.get("force", False)),
                )
                return self._send(
                    202 if rec.state in JobState.ACTIVE else 200,
                    {
                        "key": rec.key,
                        "state": rec.state,
                        "deduped": rec.deduped > 0,
                        "cache_hit": rec.cache_hit,
                    },
                )
            if parts == ["reap"]:
                return self._send(200, self.service.reap())
            if parts and parts[0] == "jobs" and len(parts) == 3:
                key, action = parts[1], parts[2]
                if action == "cancel":
                    state = self.service.cancel(key)
                    return self._send(200, {"key": key, "state": state})
                if action == "resume":
                    rec = self.service.resume(key)
                    return self._send(202, {"key": key, "state": rec.state})
        except QueueFullError as exc:
            return self._error(429, str(exc))
        except KeyError as exc:
            return self._error(404, str(exc))
        except JobStateError as exc:
            # an illegal lifecycle transition is a client-state conflict,
            # not a malformed request and never a server error
            return self._error(409, f"JobStateError: {exc}")
        except (ValueError, RuntimeError) as exc:
            return self._error(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("POST %s failed", self.path)
            return self._error(500, f"{type(exc).__name__}: {exc}")
        return self._error(404, f"no route for POST {self.path}")


class ServiceHTTPServer:
    """A threading HTTP server bound to one :class:`FCIService`.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports the
    actual one.  :meth:`start` serves on a daemon thread; :meth:`stop`
    shuts the socket down (the service itself is stopped by its owner).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = service
        self.service = service
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever, name="fci-httpd", daemon=True
            )
            self._thread.start()
        logger.info("FCI service listening on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI daemon's foreground mode)."""
        logger.info("FCI service listening on %s", self.url)
        self.httpd.serve_forever()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
        return False
