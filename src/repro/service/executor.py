"""Preemptible job execution: one FCI solve, checkpointed and observable.

The executor is where the service composes the library machinery built in
earlier layers into a single cancellable unit of work:

* the **workspace cache** hands it a compiled problem (integrals, SCF,
  excitation tables, cached :class:`~repro.core.plans.SigmaPlan`) shared
  with every job in the same CI-space family;
* a :class:`ServiceCheckpointer` - the stock atomic CRC-verified
  :class:`~repro.core.checkpoint.Checkpointer` plus cooperative
  interruption - persists the solver's restart state every iteration and
  turns cancellation, per-job timeouts, and deterministic chaos-style
  preemption into *durable* interruptions: the state that raised is the
  state already on disk, so a resumed job replays the exact iteration
  sequence an uninterrupted one would have run;
* a per-job :class:`~repro.obs.Telemetry` streams every solver iteration
  (energy, residual norm, step length) into the job record and an
  append-only JSON-lines file clients can tail.

Preemption is iteration-granular by design: the solvers call
``checkpoint.maybe_save`` exactly once per iteration, which is the only
point where the whole restart state is coherent.  Finer-grained
interruption would tear eq. 14-15's retroactive bookkeeping.
"""

from __future__ import annotations

import json
import logging
import os
import time

from ..core.checkpoint import Checkpointer, CheckpointState
from ..core.solver import FCISolver
from ..faults.service import WorkerCrashed
from ..obs import Telemetry

__all__ = ["JobPreempted", "JobTimeout", "ServiceCheckpointer", "SolveExecutor"]

logger = logging.getLogger(__name__)


class JobPreempted(RuntimeError):
    """The job was interrupted cooperatively; its checkpoint is durable."""


class JobTimeout(RuntimeError):
    """The job exceeded its wall-clock budget; its checkpoint is durable."""


class ServiceCheckpointer(Checkpointer):
    """A Checkpointer that doubles as the solve's cooperative interrupt point.

    Parameters beyond the base class:

    cancel_event:
        A :class:`threading.Event`; once set, the next per-iteration save
        persists the state and raises :class:`JobPreempted`.
    deadline:
        ``time.monotonic()`` instant after which the next save persists
        the state and raises :class:`JobTimeout`.
    preempt_after:
        Deterministic chaos hook: preempt as soon as ``state.iteration``
        reaches this count.  Tests use it to interrupt a solve at an exact,
        reproducible iteration instead of racing a wall clock.
    service_faults:
        A :class:`~repro.faults.ServiceFaultInjector`; when its seeded
        ``worker_crashes`` oracle fires, the save raises
        :class:`~repro.faults.WorkerCrashed` *without* persisting - the
        worker thread dies abruptly and only the last on-grid checkpoint
        survives, exactly like a thread killed mid-iteration.
    """

    def __init__(
        self,
        path,
        *,
        every: int = 1,
        telemetry=None,
        faults=None,
        cancel_event=None,
        deadline: float | None = None,
        preempt_after: int | None = None,
        service_faults=None,
    ):
        super().__init__(path, every=every, telemetry=telemetry, faults=faults)
        self.cancel_event = cancel_event
        self.deadline = deadline
        self.preempt_after = preempt_after
        self.service_faults = service_faults

    def maybe_save(self, state: CheckpointState, *, force: bool = False) -> bool:
        if self.service_faults is not None and self.service_faults.worker_crashes():
            raise WorkerCrashed(
                f"injected worker death at iteration {state.iteration}"
            )
        preempt = (self.cancel_event is not None and self.cancel_event.is_set()) or (
            self.preempt_after is not None and state.iteration >= self.preempt_after
        )
        timed_out = self.deadline is not None and time.monotonic() > self.deadline
        if preempt or timed_out:
            # durability before interruption: the exception only fires once
            # the interrupting state is safely on disk.  For mmap-backed
            # solves the save streams the vector into the fsynced sidecar
            # (never through RAM as one blob) - count those flushes so the
            # out-of-core preemption path is observable.
            self.save(state)
            if state.store_kind == "mmap" and self.telemetry:
                c = self.telemetry.counter("service.preempt.mmap_flush")
                if c is not None:
                    c.inc()
            if preempt:
                raise JobPreempted(
                    f"preempted at iteration {state.iteration} (checkpoint saved)"
                )
            raise JobTimeout(
                f"timed out at iteration {state.iteration} (checkpoint saved)"
            )
        return super().maybe_save(state, force=force)


class SolveExecutor:
    """Runs one job record end to end on the calling (worker) thread."""

    def __init__(self, cache, workdir, *, default_parallel: dict | None = None):
        self.cache = cache
        self.workdir = os.fspath(workdir)
        self.default_parallel = default_parallel
        self.checkpoint_dir = os.path.join(self.workdir, "checkpoints")
        self.telemetry_dir = os.path.join(self.workdir, "telemetry")
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        os.makedirs(self.telemetry_dir, exist_ok=True)
        self.solves = 0  # completed solves actually executed (not cache hits)
        self.telemetry_io_errors = 0  # stream writes swallowed (observability)

    def checkpoint_path(self, job_key: str) -> str:
        return os.path.join(self.checkpoint_dir, f"{job_key}.npz")

    def telemetry_path(self, job_key: str) -> str:
        return os.path.join(self.telemetry_dir, f"{job_key}.jsonl")

    def _solver(self, spec, *, telemetry=None, checkpoint=None, workspace=None):
        kwargs = spec.solver_kwargs()
        if kwargs.get("parallel") is None and self.default_parallel is not None:
            kwargs["parallel"] = dict(self.default_parallel)
        if workspace is not None:
            kwargs["ao_integrals"] = workspace.ao
            kwargs["scf_result"] = workspace.scf
        return FCISolver(
            spec.molecule(),
            spec.basis,
            telemetry=telemetry,
            checkpoint=checkpoint,
            **kwargs,
        )

    def validate(self, spec) -> None:
        """Fail fast on an unbuildable spec (bad algorithm/method/backend).

        Constructing the solver runs all constructor-time validation but no
        SCF or integrals, so a bad submission is rejected at submit time
        instead of dying on a worker.
        """
        spec.molecule()  # electron-count / multiplicity consistency
        self._solver(spec)

    def execute(self, record, *, faults=None, preempt_after=None, service_faults=None) -> dict:
        """Solve ``record``'s job; returns the result payload on success.

        Raises :class:`JobPreempted` / :class:`JobTimeout` for durable
        interruptions and lets genuine failures (including injected
        checkpoint I/O crashes) propagate to the scheduler.

        Telemetry streaming is observability, never correctness: an I/O
        error on the JSON-lines file (injected or real - full disk, lost
        mount) is counted under ``service.telemetry.io_errors`` and the
        solve continues; the in-memory event list still fills.
        """
        spec = record.spec
        events_file = open(self.telemetry_path(record.key), "a", buffering=1)

        def stream(event: dict) -> None:
            event = {"job": record.key, **event}
            record.events.append(event)
            try:
                if service_faults is not None and service_faults.telemetry_write_fails():
                    raise OSError("injected telemetry stream I/O error")
                events_file.write(json.dumps(event) + "\n")
            except (OSError, ValueError):  # ValueError: write on a closed file
                self.telemetry_io_errors += 1

        telemetry = Telemetry(on_iteration=stream)
        deadline = (
            time.monotonic() + record.timeout if record.timeout is not None else None
        )
        if faults is None and service_faults is not None:
            # ServiceFaultInjector duck-types Checkpointer's io_fails hook
            faults = service_faults
        checkpoint = ServiceCheckpointer(
            self.checkpoint_path(record.key),
            telemetry=telemetry,
            faults=faults,
            cancel_event=record.cancel_event,
            deadline=deadline,
            preempt_after=preempt_after,
            service_faults=service_faults,
        )

        def build_workspace():
            from .cache import Workspace

            solver = self._solver(spec, telemetry=telemetry)
            problem, scf, mo = solver.build_problem()
            store = spec.solver_kwargs()["vector_store"]
            if isinstance(store, dict):
                store = store.get("kind")
            return Workspace(
                space_key=spec.space_key,
                ao=solver._ao,
                scf=scf,
                mo=mo,
                problem=problem,
                store_kind=store or "dense",
            )

        try:
            workspace, ws_hit = self.cache.workspace(spec.space_key, build_workspace)
            solver = self._solver(
                spec, telemetry=telemetry, checkpoint=checkpoint, workspace=workspace
            )
            result = solver.run(
                prebuilt=(workspace.problem, workspace.scf, workspace.mo)
            )
        finally:
            events_file.close()

        payload = {
            "energy": result.energy,
            "scf_energy": result.scf_energy,
            "correlation_energy": result.correlation_energy,
            "converged": bool(result.solve.converged),
            "n_iterations": int(result.solve.n_iterations),
            "n_sigma": int(result.n_sigma),
            "s_squared": float(result.s_squared),
            "dimension": int(result.problem.dimension),
            "method": result.solve.method,
            "workspace_hit": bool(ws_hit),
            "store_kind": workspace.store_kind,
        }
        self.cache.put_result(record.key, payload, result.vector)
        checkpoint.clear()  # the durable artifact is now the cached result
        self.solves += 1
        logger.info(
            "job %s solved: E=%.10f in %d iterations (workspace %s)",
            record.key[:12],
            result.energy,
            result.solve.n_iterations,
            "hit" if ws_hit else "compiled",
        )
        return payload
