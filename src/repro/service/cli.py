"""Command-line surface: run the daemon, or talk to one over HTTP.

::

    # server
    python -m repro.service serve --workdir /var/lib/fci --port 8080

    # clients
    python -m repro.service submit --url http://127.0.0.1:8080 \\
        --atom "H 0 0 0" --atom "H 0 0 1.4" --basis sto-3g --wait
    python -m repro.service status  <key>
    python -m repro.service result  <key> --wait 60
    python -m repro.service cancel  <key>
    python -m repro.service resume  <key>
    python -m repro.service telemetry <key>
    python -m repro.service stats

The client side is plain ``urllib`` against the JSON routes of
:mod:`repro.service.httpd`; ``submit`` prints the job key (and, with
``--wait``, streams until the job is terminal and prints the energy).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
import urllib.error
import urllib.request

__all__ = ["main"]


def _request(method: str, url: str, payload: dict | None = None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            body = resp.read().decode()
    except urllib.error.HTTPError as exc:
        body = exc.read().decode()
        try:
            message = json.loads(body).get("error", body)
        except json.JSONDecodeError:
            message = body
        raise SystemExit(f"error {exc.code}: {message}") from None
    except urllib.error.URLError as exc:
        raise SystemExit(f"cannot reach service at {url}: {exc.reason}") from None
    try:
        return json.loads(body)
    except json.JSONDecodeError:
        return body


def _spec_from_args(args) -> dict:
    if args.spec_json:
        with open(args.spec_json) as f:
            return json.load(f)
    if not args.atom:
        raise SystemExit("submit needs --atom entries or --spec-json FILE")
    atoms = []
    for entry in args.atom:
        fieldsplit = entry.replace(",", " ").split()
        if len(fieldsplit) != 4:
            raise SystemExit(f"--atom wants 'SYM X Y Z' (bohr); got {entry!r}")
        atoms.append([fieldsplit[0], [float(x) for x in fieldsplit[1:]]])
    spec = {
        "atoms": atoms,
        "charge": args.charge,
        "multiplicity": args.multiplicity,
        "basis": args.basis,
        "method": args.method,
        "max_iterations": args.max_iterations,
    }
    if args.frozen_core:
        spec["frozen_core"] = args.frozen_core
    return spec


def _wait_for(url: str, key: str, poll: float = 0.5) -> dict:
    seen = 0
    while True:
        status = _request("GET", f"{url}/v1/jobs/{key}")
        events = _request("GET", f"{url}/v1/jobs/{key}/telemetry")
        if isinstance(events, str):
            lines = [ln for ln in events.splitlines() if ln]
            for line in lines[seen:]:
                print(line)
            seen = len(lines)
        if status["state"] not in ("queued", "running"):
            return status
        time.sleep(poll)


def _cmd_serve(args) -> int:
    from .httpd import ServiceHTTPServer
    from .service import FCIService

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(levelname)s %(message)s"
    )
    service = FCIService(
        args.workdir,
        max_workers=args.workers,
        queue_size=args.queue_size,
        default_timeout=args.job_timeout,
    )
    server = ServiceHTTPServer(service, host=args.host, port=args.port)
    print(f"FCI service on {server.url} (workdir={args.workdir})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (preempting running jobs)...", flush=True)
    finally:
        server.stop()
        service.stop(preempt=True)
    return 0


def _cmd_submit(args) -> int:
    payload = {
        "spec": _spec_from_args(args),
        "priority": args.priority,
        "force": args.force,
    }
    if args.timeout is not None:
        payload["timeout"] = args.timeout
    out = _request("POST", f"{args.url}/v1/jobs", payload)
    print(json.dumps(out))
    if args.wait:
        status = _wait_for(args.url, out["key"])
        print(json.dumps(status, indent=2))
        if status["state"] != "completed":
            return 1
        print(f"E = {status['result']['energy']:.12f}")
    return 0


def _cmd_status(args) -> int:
    print(json.dumps(_request("GET", f"{args.url}/v1/jobs/{args.key}"), indent=2))
    return 0


def _cmd_result(args) -> int:
    out = _request("GET", f"{args.url}/v1/jobs/{args.key}/result?wait={args.wait}")
    print(json.dumps(out, indent=2))
    return 0


def _cmd_telemetry(args) -> int:
    out = _request("GET", f"{args.url}/v1/jobs/{args.key}/telemetry")
    sys.stdout.write(out if isinstance(out, str) else json.dumps(out))
    return 0


def _cmd_cancel(args) -> int:
    print(json.dumps(_request("POST", f"{args.url}/v1/jobs/{args.key}/cancel", {})))
    return 0


def _cmd_resume(args) -> int:
    print(json.dumps(_request("POST", f"{args.url}/v1/jobs/{args.key}/resume", {})))
    return 0


def _cmd_stats(args) -> int:
    print(json.dumps(_request("GET", f"{args.url}/v1/stats"), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="FCI-as-a-service: job server daemon and HTTP client.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the job-server daemon")
    serve.add_argument("--workdir", default="fci-service", help="durable state root")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--workers", type=int, default=2, help="worker-fleet width")
    serve.add_argument("--queue-size", type=int, default=64)
    serve.add_argument(
        "--job-timeout", type=float, default=None, help="default per-job seconds"
    )
    serve.set_defaults(func=_cmd_serve)

    def client(p):
        p.add_argument("--url", default="http://127.0.0.1:8080")
        return p

    submit = client(sub.add_parser("submit", help="submit a job"))
    submit.add_argument("--atom", action="append", default=[], help="'SYM X Y Z' (bohr)")
    submit.add_argument("--spec-json", help="full JobSpec JSON file instead of --atom")
    submit.add_argument("--charge", type=int, default=0)
    submit.add_argument("--multiplicity", type=int, default=1)
    submit.add_argument("--basis", default="sto-3g")
    submit.add_argument("--method", default="auto")
    submit.add_argument("--max-iterations", type=int, default=60)
    submit.add_argument("--frozen-core", dest="frozen_core", type=int, default=0)
    submit.add_argument("--priority", default="normal")
    submit.add_argument("--timeout", type=float, default=None)
    submit.add_argument("--force", action="store_true", help="bypass the result cache")
    submit.add_argument(
        "--wait", action="store_true", help="stream telemetry until terminal"
    )
    submit.set_defaults(func=_cmd_submit)

    for name, fn, extra in (
        ("status", _cmd_status, None),
        ("result", _cmd_result, "wait"),
        ("telemetry", _cmd_telemetry, None),
        ("cancel", _cmd_cancel, None),
        ("resume", _cmd_resume, None),
    ):
        p = client(sub.add_parser(name, help=f"{name} a job"))
        p.add_argument("key")
        if extra == "wait":
            p.add_argument("--wait", type=float, default=0.0, help="seconds to block")
        p.set_defaults(func=fn)

    stats = client(sub.add_parser("stats", help="service statistics"))
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
