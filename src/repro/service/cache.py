"""Content-addressed artifact cache: compiled workspaces and solved results.

Two tiers, two digests (see :mod:`repro.service.jobs`):

* **Workspaces** (in-memory, LRU-bounded), keyed by ``space_key``: the
  expensive per-problem compilation - AO integrals, the converged SCF, MO
  integrals, and the :class:`~repro.core.problem.CIProblem` whose lazily
  cached excitation tables and :class:`~repro.core.plans.SigmaPlan` ride
  along.  Every job that shares the CI space reuses one workspace, so a
  family of solves (different methods/tolerances on one molecule) pays the
  integral/plan compilation once.  Reusing the *same plan object* is also
  what makes a warm solve bitwise-identical to the cold one that compiled
  it: the kernels consume identical tables either way.

* **Results** (on disk, unbounded), keyed by ``job_key``: the converged
  energy, the scalars of :class:`~repro.core.solver.FCIResult`, and the CI
  vector, persisted as one atomic CRC-verified ``.npz`` (the checkpoint
  file discipline: write-tmp, fsync, rename).  A result hit answers a
  resubmitted job without touching a worker; the stored energy/vector are
  the exact float64s the original solve produced, so a hit is
  bitwise-identical to the solve it memoized.

A corrupt result file (torn write, bit-rot) fails its CRC and is treated
as a miss and deleted - the job simply solves again.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["ArtifactCache", "Workspace"]

logger = logging.getLogger(__name__)

_RESULT_VERSION = 1


@dataclass
class Workspace:
    """One compiled CI problem family: integrals + SCF + problem (+ plan).

    ``store_kind`` records which CI-vector storage backend
    (:func:`repro.core.vectors.store_kinds`) the job that compiled this
    workspace solves on.  It is bookkeeping, not identity: workspaces stay
    keyed by ``space_key`` alone, because the compiled tables are
    storage-agnostic (a dense and an mmap job on one molecule share them),
    and the recorded kind surfaces in :meth:`ArtifactCache.stats` so an
    operator can see which families run out-of-core.
    """

    space_key: str
    ao: object
    scf: object
    mo: object
    problem: object
    store_kind: str = "dense"

    @property
    def plan_nbytes(self) -> int:
        """Bytes held by the problem's compiled plan (0 until first solve)."""
        plan = getattr(self.problem, "_sigma_plan", None)
        return plan.nbytes if plan is not None else 0


class ArtifactCache:
    """Digest-keyed store for workspaces (memory) and results (disk).

    ``root`` is the directory results persist under (``<root>/results``);
    None keeps results in memory only (a library-embedded cache).
    ``max_workspaces`` bounds the LRU workspace tier - a workspace holds
    dense W/G supermatrices, so the bound is a real memory ceiling.
    """

    def __init__(self, root=None, *, max_workspaces: int = 8, faults=None):
        self.root = os.fspath(root) if root is not None else None
        self.max_workspaces = max(1, int(max_workspaces))
        self.faults = faults  # ServiceFaultInjector or None (chaos hook)
        self._workspaces: OrderedDict[str, Workspace] = OrderedDict()
        self._results_mem: dict[str, tuple[dict, np.ndarray]] = {}
        self._lock = threading.RLock()
        self.counts = {
            "workspace_hits": 0,
            "workspace_misses": 0,
            "workspace_evictions": 0,
            "result_hits": 0,
            "result_misses": 0,
            "result_corrupt": 0,
        }
        if self.root is not None:
            os.makedirs(self._results_dir, exist_ok=True)

    @property
    def _results_dir(self) -> str:
        return os.path.join(self.root, "results")

    def _result_path(self, job_key: str) -> str:
        return os.path.join(self._results_dir, f"{job_key}.npz")

    # -- workspace tier ------------------------------------------------------
    def workspace(self, space_key: str, builder) -> tuple[Workspace, bool]:
        """The workspace for ``space_key``, building it on a miss.

        ``builder`` is a zero-argument callable returning a
        :class:`Workspace`; it runs *outside* the cache lock is not needed
        here because builds are already serialized per job by the worker
        that owns them - concurrent builders for the same key are benign
        (last one wins) but never produce wrong answers, since workspaces
        are content-addressed and interchangeable.  Returns ``(workspace,
        hit)``.
        """
        with self._lock:
            ws = self._workspaces.get(space_key)
            if ws is not None:
                self._workspaces.move_to_end(space_key)
                self.counts["workspace_hits"] += 1
                return ws, True
        ws = builder()
        with self._lock:
            self._workspaces[space_key] = ws
            self._workspaces.move_to_end(space_key)
            self.counts["workspace_misses"] += 1
            while len(self._workspaces) > self.max_workspaces:
                evicted, _ = self._workspaces.popitem(last=False)
                self.counts["workspace_evictions"] += 1
                logger.info("evicted workspace %s (LRU)", evicted[:12])
        return ws, False

    # -- result tier ---------------------------------------------------------
    def put_result(self, job_key: str, meta: dict, vector: np.ndarray) -> None:
        """Persist a converged result atomically under its job key."""
        vec = np.ascontiguousarray(vector)
        with self._lock:
            self._results_mem[job_key] = (dict(meta), vec)
        if self.root is None:
            return
        header = {
            "version": _RESULT_VERSION,
            "meta": meta,
            "shape": list(vec.shape),
            "crc32": zlib.crc32(vec.tobytes()),
        }
        blob = json.dumps(header).encode()
        path = self._result_path(job_key)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            np.savez(f, vector=vec, header=np.frombuffer(blob, dtype=np.uint8))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        if self.faults is not None:
            self.faults.corrupt_result(path)

    def get_result(self, job_key: str) -> tuple[dict, np.ndarray] | None:
        """The memoized ``(meta, vector)`` for a job key, or None."""
        with self._lock:
            hit = self._results_mem.get(job_key)
            if hit is not None:
                self.counts["result_hits"] += 1
                return hit
        loaded = self._load_result(job_key)
        with self._lock:
            if loaded is None:
                self.counts["result_misses"] += 1
                return None
            self._results_mem[job_key] = loaded
            self.counts["result_hits"] += 1
            return loaded

    def _load_result(self, job_key: str):
        if self.root is None:
            return None
        path = self._result_path(job_key)
        if not os.path.exists(path):
            return None
        try:
            with np.load(path) as z:
                vec = np.array(z["vector"])
                header = json.loads(bytes(z["header"].tobytes()).decode())
            if header.get("version") != _RESULT_VERSION:
                raise ValueError(f"unsupported result version {header.get('version')!r}")
            if zlib.crc32(vec.tobytes()) != header["crc32"]:
                raise ValueError("CRC32 mismatch")
        except Exception as exc:
            logger.warning("dropping corrupt cached result %s: %s", path, exc)
            with self._lock:
                self.counts["result_corrupt"] += 1
            if self.faults is not None:
                self.faults.note_recovered("result_corrupt_dropped")
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        return header["meta"], vec

    def drop_result(self, job_key: str) -> bool:
        """Invalidate a cached result (the ``force=True`` resubmit path)."""
        with self._lock:
            dropped = self._results_mem.pop(job_key, None) is not None
        if self.root is not None:
            path = self._result_path(job_key)
            if os.path.exists(path):
                os.remove(path)
                dropped = True
        return dropped

    def result_keys(self) -> list[str]:
        """Job keys with a persisted result (memory or disk)."""
        keys = set(self._results_mem)
        if self.root is not None and os.path.isdir(self._results_dir):
            keys.update(
                name[: -len(".npz")]
                for name in os.listdir(self._results_dir)
                if name.endswith(".npz")
            )
        return sorted(keys)

    def stats(self) -> dict:
        with self._lock:
            by_store: dict[str, int] = {}
            for ws in self._workspaces.values():
                by_store[ws.store_kind] = by_store.get(ws.store_kind, 0) + 1
            return {
                **self.counts,
                "workspaces": len(self._workspaces),
                "workspace_plan_bytes": sum(
                    ws.plan_nbytes for ws in self._workspaces.values()
                ),
                "workspace_store_kinds": by_store,
                "results": len(self.result_keys()),
            }
