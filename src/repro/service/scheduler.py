"""Priority job queue and the worker fleet that drains it.

The queue is a bounded binary heap ordered by ``(tier, sequence)``: lower
tiers run first, FIFO within a tier.  ``maxsize`` is the backpressure
valve - a push beyond it raises :class:`QueueFullError`, which the service
surfaces as a submit rejection (HTTP 429) instead of letting an unbounded
backlog eat the box.

The scheduler owns ``n_workers`` daemon threads, each a slot of the worker
fleet.  A worker pops a key, asks the service to transition the record to
RUNNING (jobs cancelled while queued are skipped here - cancellation
removes eagerly from the heap too, but the pop-side check makes the race
benign), runs the executor, and reports the outcome back.  The numeric
work releases the GIL inside BLAS, and a job spec may additionally request
the ``shm`` process backend, making each worker slot the front of a whole
:class:`~repro.parallel.backend.Backend` fleet member.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import threading

from ..faults.service import WorkerCrashed

__all__ = ["QueueFullError", "JobQueue", "Scheduler"]

logger = logging.getLogger(__name__)


class QueueFullError(RuntimeError):
    """Backpressure: the job queue is at capacity; the submit is rejected."""


class JobQueue:
    """Bounded, thread-safe priority queue of job keys."""

    def __init__(self, maxsize: int = 64):
        self.maxsize = max(1, int(maxsize))
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def push(self, key: str, tier: int) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            if len(self._heap) >= self.maxsize:
                raise QueueFullError(
                    f"job queue is full ({self.maxsize} pending); retry later"
                )
            heapq.heappush(self._heap, (int(tier), next(self._seq), key))
            self._not_empty.notify()

    def pop(self, timeout: float | None = None) -> str | None:
        """Lowest-tier, oldest key; None on timeout or when closed and empty."""
        with self._not_empty:
            if not self._heap and not self._closed:
                self._not_empty.wait(timeout)
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def remove(self, key: str) -> bool:
        """Eagerly drop a queued key (cancellation)."""
        with self._lock:
            kept = [e for e in self._heap if e[2] != key]
            removed = len(kept) != len(self._heap)
            if removed:
                self._heap = kept
                heapq.heapify(self._heap)
            return removed

    def close(self) -> None:
        """Wake blocked pops and refuse new pushes (fleet shutdown)."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def reopen(self) -> None:
        """Accept pushes again (fleet restart after :meth:`close`)."""
        with self._lock:
            self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)


class Scheduler:
    """The worker fleet: N threads draining the queue through the executor."""

    def __init__(self, service, queue: JobQueue, n_workers: int = 2, poll: float = 0.2):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.service = service
        self.queue = queue
        self.n_workers = int(n_workers)
        self.poll = float(poll)
        self._threads: dict[int, threading.Thread] = {}
        self._stop = threading.Event()
        self.execution_order: list[str] = []  # keys in the order workers took them
        self._order_lock = threading.Lock()
        self.crashes = 0  # worker threads lost to (injected) WorkerCrashed
        self.respawns = 0  # dead slots refilled by ensure_workers()

    @property
    def running(self) -> bool:
        return bool(self._threads) and not self._stop.is_set()

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        self.queue.reopen()
        for i in range(self.n_workers):
            self._spawn(i)

    def _spawn(self, worker_id: int) -> None:
        t = threading.Thread(
            target=self._worker,
            args=(worker_id,),
            name=f"fci-worker-{worker_id}",
            daemon=True,
        )
        self._threads[worker_id] = t
        t.start()

    def worker_alive(self, worker_id: int) -> bool:
        """Is the thread currently holding this fleet slot alive?"""
        t = self._threads.get(worker_id)
        return t is not None and t.is_alive()

    def ensure_workers(self) -> int:
        """Respawn dead fleet slots; returns how many were refilled.

        A worker thread can die abruptly (an injected
        :class:`~repro.faults.WorkerCrashed`, or anything a real deployment
        throws at a thread); the fleet must heal back to ``n_workers`` or
        throughput silently degrades to zero.  Call sites:
        :meth:`FCIService.reap` (after re-adopting the dead worker's job).
        """
        if not self._threads or self._stop.is_set():
            return 0
        respawned = 0
        for i in range(self.n_workers):
            if not self.worker_alive(i):
                self._spawn(i)
                respawned += 1
        self.respawns += respawned
        return respawned

    def stop(self, wait: bool = True, timeout: float | None = 30.0) -> None:
        self._stop.set()
        self.queue.close()
        if wait:
            for t in self._threads.values():
                t.join(timeout)
        self._threads = {}

    def _worker(self, worker_id: int) -> None:
        while not self._stop.is_set():
            key = self.queue.pop(timeout=self.poll)
            if key is None:
                continue
            record = self.service._begin(key, worker_id)
            if record is None:  # cancelled while queued, or stale entry
                continue
            with self._order_lock:
                self.execution_order.append(key)
            try:
                payload = self.service.executor.execute(
                    record,
                    faults=self.service.checkpoint_faults,
                    preempt_after=record.preempt_after,
                    service_faults=self.service.service_faults,
                )
            except WorkerCrashed as exc:
                # simulated thread death: exit WITHOUT reporting an outcome,
                # leaving the record RUNNING - FCIService.reap() recovers it
                self.crashes += 1
                logger.warning("worker %d died mid-solve: %s", worker_id, exc)
                return
            except Exception as exc:  # preemption, timeout, or real failure
                self.service._finish(record, error=exc)
            else:
                self.service._finish(record, payload=payload)
        logger.debug("worker %d stopped", worker_id)
