"""AO -> MO integral transformation and frozen-core reduction.

Produces the :class:`MOIntegrals` bundle (h_pq, (pq|rs), scalar core energy)
that every FCI routine in :mod:`repro.core` consumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .rhf import AOIntegrals

__all__ = ["MOIntegrals", "transform", "freeze_core"]


@dataclass
class MOIntegrals:
    """Spin-free Hamiltonian in an orthonormal orbital basis.

    H = e_core + sum_pq h[p,q] E_pq + 1/2 sum_pqrs g[p,q,r,s] e_{pr,qs}

    with g in chemists' notation (pq|rs).
    """

    h: np.ndarray
    g: np.ndarray
    e_core: float
    n_orbitals: int
    orbital_irreps: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = self.n_orbitals
        if self.h.shape != (n, n) or self.g.shape != (n, n, n, n):
            raise ValueError("inconsistent MO integral dimensions")

    def validate_symmetries(self, atol: float = 1e-9) -> None:
        """Check hermiticity of h and 8-fold permutational symmetry of g."""
        if not np.allclose(self.h, self.h.T, atol=atol):
            raise ValueError("h is not symmetric")
        g = self.g
        for perm in [(1, 0, 2, 3), (0, 1, 3, 2), (2, 3, 0, 1)]:
            if not np.allclose(g, g.transpose(perm), atol=atol):
                raise ValueError(f"g violates permutation symmetry {perm}")


def transform(
    ints: AOIntegrals,
    mo_coeff: np.ndarray,
    orbital_irreps: np.ndarray | None = None,
    *,
    registry=None,
) -> MOIntegrals:
    """Transform AO integrals into the MO basis defined by ``mo_coeff``.

    The (pq|rs) tensor comes from the :class:`repro.integrals.IntegralEngine`
    cache attached to ``ints`` (when built by ``compute_ao_integrals``), so
    repeated transformations never re-assemble AO integrals.  ``registry``
    (or, if absent, the engine's own registry) receives the
    ``integrals.mo_transform.*`` FLOP accounting; None disables it.
    """
    if registry is None and ints.engine is not None:
        registry = ints.engine.registry
    t0 = time.perf_counter()
    C = np.asarray(mo_coeff, dtype=float)
    h = C.T @ ints.hcore @ C
    # quarter transformations: O(n^5)
    g = np.einsum("pqrs,pi->iqrs", ints.g, C, optimize=True)
    g = np.einsum("iqrs,qj->ijrs", g, C, optimize=True)
    g = np.einsum("ijrs,rk->ijks", g, C, optimize=True)
    g = np.einsum("ijks,sl->ijkl", g, C, optimize=True)
    if registry is not None:
        from ..obs.accounting import account_mo_transform

        account_mo_transform(
            registry, ints.nbf, C.shape[1], time.perf_counter() - t0
        )
    return MOIntegrals(
        h=h,
        g=g,
        e_core=ints.enuc,
        n_orbitals=C.shape[1],
        orbital_irreps=None
        if orbital_irreps is None
        else np.asarray(orbital_irreps, dtype=int),
    )


def freeze_core(mo: MOIntegrals, n_frozen: int, n_active: int | None = None) -> MOIntegrals:
    """Freeze the first ``n_frozen`` (doubly occupied) orbitals.

    Returns integrals over the active window [n_frozen, n_frozen + n_active)
    with the frozen-core mean field folded into the one-electron part and the
    frozen-core energy folded into ``e_core``:

        e_core' = e_core + 2 sum_i h_ii + sum_ij [2 (ii|jj) - (ij|ji)]
        h'_pq  = h_pq + sum_i [2 (pq|ii) - (pi|iq)]

    (i, j run over frozen orbitals; p, q over active ones).
    """
    if n_frozen < 0 or n_frozen >= mo.n_orbitals:
        raise ValueError("invalid number of frozen orbitals")
    if n_active is None:
        n_active = mo.n_orbitals - n_frozen
    hi = n_frozen + n_active
    if hi > mo.n_orbitals:
        raise ValueError("active window exceeds orbital count")
    if n_frozen == 0 and hi == mo.n_orbitals:
        return mo
    f = slice(0, n_frozen)
    a = slice(n_frozen, hi)
    h, g = mo.h, mo.g
    e_core = mo.e_core + 2.0 * float(np.trace(h[f, f]))
    e_core += 2.0 * float(np.einsum("iijj->", g[f, f, f, f]))
    e_core -= float(np.einsum("ijji->", g[f, f, f, f]))
    h_eff = (
        h[a, a]
        + 2.0 * np.einsum("pqii->pq", g[a, a, f, f], optimize=True)
        - np.einsum("piiq->pq", g[a, f, f, a], optimize=True)
    )
    irreps = None
    if mo.orbital_irreps is not None:
        irreps = mo.orbital_irreps[a]
    return MOIntegrals(
        h=h_eff,
        g=g[a, a, a, a].copy(),
        e_core=e_core,
        n_orbitals=n_active,
        orbital_irreps=irreps,
    )
