"""Restricted Hartree-Fock with DIIS convergence acceleration."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..integrals import IntegralEngine
from ..molecule.geometry import Molecule

__all__ = ["SCFResult", "DIIS", "rhf", "AOIntegrals", "compute_ao_integrals"]


@dataclass
class AOIntegrals:
    """Atomic-orbital integrals for one molecule/basis combination."""

    S: np.ndarray
    hcore: np.ndarray
    g: np.ndarray  # (pq|rs) chemists' notation
    enuc: float
    nbf: int
    # the engine that produced these integrals (shell-pair caches, Schwarz
    # bounds, eri stats); None for hand-built integral bundles
    engine: IntegralEngine | None = None


def compute_ao_integrals(
    mol: Molecule,
    basis_name: str = "sto-3g",
    *,
    screen_threshold: float | None = None,
    registry=None,
    engine: IntegralEngine | None = None,
) -> AOIntegrals:
    """All AO integrals needed by SCF and the MO transformation.

    One :class:`repro.integrals.IntegralEngine` serves every matrix/tensor,
    so the contracted shell-pair Hermite data is built exactly once.  Pass
    ``screen_threshold`` to engage Cauchy-Schwarz ERI screening,
    ``registry`` (a :class:`repro.obs.MetricsRegistry`) to publish the
    integral FLOP/byte accounting, or a prebuilt ``engine`` to reuse its
    caches across calls.
    """
    if engine is None:
        engine = IntegralEngine(
            mol.basis(basis_name),
            screen_threshold=screen_threshold,
            registry=registry,
        )
    return AOIntegrals(
        S=engine.overlap(),
        hcore=engine.core_hamiltonian(mol.charges()),
        g=engine.eri(),
        enuc=mol.nuclear_repulsion(),
        nbf=engine.basis.nbf,
        engine=engine,
    )


@dataclass
class SCFResult:
    """Converged SCF state."""

    energy: float
    mo_coeff: np.ndarray  # (nbf, nmo)
    mo_energy: np.ndarray
    density: np.ndarray  # total AO density matrix
    converged: bool
    n_iterations: int
    method: str
    n_alpha: int
    n_beta: int
    fock: np.ndarray | None = None
    history: list[float] = field(default_factory=list)


class DIIS:
    """Pulay commutator-DIIS for Fock matrix extrapolation."""

    def __init__(self, max_vectors: int = 8):
        self.max_vectors = max_vectors
        self._focks: list[np.ndarray] = []
        self._errors: list[np.ndarray] = []

    def update(self, F: np.ndarray, D: np.ndarray, S: np.ndarray, X: np.ndarray):
        """Add (F, D) and return the extrapolated Fock and the error norm."""
        err = X.T @ (F @ D @ S - S @ D @ F) @ X
        self._focks.append(F.copy())
        self._errors.append(err)
        if len(self._focks) > self.max_vectors:
            self._focks.pop(0)
            self._errors.pop(0)
        n = len(self._focks)
        if n == 1:
            return F, float(np.linalg.norm(err))
        B = -np.ones((n + 1, n + 1))
        B[n, n] = 0.0
        for i in range(n):
            for j in range(n):
                B[i, j] = float(np.vdot(self._errors[i], self._errors[j]))
        rhs = np.zeros(n + 1)
        rhs[n] = -1.0
        try:
            coeffs = np.linalg.solve(B, rhs)[:n]
        except np.linalg.LinAlgError:
            self._focks = self._focks[-1:]
            self._errors = self._errors[-1:]
            return F, float(np.linalg.norm(err))
        Fout = np.zeros_like(F)
        for c, Fi in zip(coeffs, self._focks):
            Fout += c * Fi
        return Fout, float(np.linalg.norm(err))


def _orthogonalizer(S: np.ndarray, threshold: float = 1e-8) -> np.ndarray:
    evals, evecs = np.linalg.eigh(S)
    keep = evals > threshold
    return evecs[:, keep] @ np.diag(evals[keep] ** -0.5)


def _symmetry_average(F: np.ndarray, ops: list[np.ndarray] | None) -> np.ndarray:
    """Average an AO-basis operator over point-group operations.

    Forces the effective field to transform totally symmetrically
    ("symmetry equivalencing"), so degenerate shells stay aligned with the
    symmetry axes - required for clean orbital irrep assignment in open-shell
    atoms/molecules.  The FCI energy is invariant to this orbital choice.
    """
    if not ops:
        return F
    out = np.zeros_like(F)
    for T in ops:
        out += T.T @ F @ T
    return out / len(ops)


def rhf(
    mol: Molecule,
    ints: AOIntegrals,
    *,
    max_iterations: int = 200,
    conv_tol: float = 1e-10,
    diis: bool = True,
    symmetry_ops: list[np.ndarray] | None = None,
) -> SCFResult:
    """Closed-shell restricted Hartree-Fock.

    Requires an even electron count with multiplicity 1.  If
    ``symmetry_ops`` (AO representation matrices of a point group) is given,
    the Fock operator is symmetry-averaged each iteration.
    """
    if mol.multiplicity != 1:
        raise ValueError("rhf requires a singlet; use rohf for open shells")
    nocc = mol.n_electrons // 2
    S, h, g = ints.S, ints.hcore, ints.g
    X = _orthogonalizer(S)
    extrapolator = DIIS() if diis else None

    # core guess
    eps, Cp = np.linalg.eigh(X.T @ h @ X)
    C = X @ Cp
    D = C[:, :nocc] @ C[:, :nocc].T

    energy = 0.0
    history: list[float] = []
    converged = False
    F = h
    for it in range(1, max_iterations + 1):
        J = np.einsum("pqrs,rs->pq", g, D, optimize=True)
        K = np.einsum("prqs,rs->pq", g, D, optimize=True)
        F = h + 2.0 * J - K
        new_energy = float(np.sum(D * (h + F))) + ints.enuc
        F = _symmetry_average(F, symmetry_ops)
        Fuse = F
        if extrapolator is not None:
            Fuse, err_norm = extrapolator.update(F, D, S, X)
        else:
            err_norm = float(np.linalg.norm(X.T @ (F @ D @ S - S @ D @ F) @ X))
        eps, Cp = np.linalg.eigh(X.T @ Fuse @ X)
        C = X @ Cp
        D = C[:, :nocc] @ C[:, :nocc].T
        history.append(new_energy)
        if it > 1 and abs(new_energy - energy) < conv_tol and err_norm < 1e-6:
            energy = new_energy
            converged = True
            break
        energy = new_energy

    return SCFResult(
        energy=energy,
        mo_coeff=C,
        mo_energy=eps,
        density=2.0 * D,
        converged=converged,
        n_iterations=it,
        method="rhf",
        n_alpha=nocc,
        n_beta=nocc,
        fock=F,
        history=history,
    )
