"""Self-consistent field methods and MO integral transformation."""

from .rhf import AOIntegrals, DIIS, SCFResult, compute_ao_integrals, rhf
from .rohf import rohf
from .mo import MOIntegrals, freeze_core, transform

__all__ = [
    "AOIntegrals",
    "DIIS",
    "SCFResult",
    "compute_ao_integrals",
    "rhf",
    "rohf",
    "MOIntegrals",
    "freeze_core",
    "transform",
]
