"""High-spin restricted open-shell Hartree-Fock (Roothaan effective Fock)."""

from __future__ import annotations

import numpy as np

from ..molecule.geometry import Molecule
from .rhf import AOIntegrals, DIIS, SCFResult, _orthogonalizer, _symmetry_average

__all__ = ["rohf"]


def _coulomb(g: np.ndarray, D: np.ndarray) -> np.ndarray:
    return np.einsum("pqrs,rs->pq", g, D, optimize=True)


def _exchange(g: np.ndarray, D: np.ndarray) -> np.ndarray:
    return np.einsum("prqs,rs->pq", g, D, optimize=True)


def rohf(
    mol: Molecule,
    ints: AOIntegrals,
    *,
    max_iterations: int = 300,
    conv_tol: float = 1e-10,
    diis: bool = True,
    level_shift: float = 0.0,
    symmetry_ops: list[np.ndarray] | None = None,
) -> SCFResult:
    """Restricted open-shell HF for a high-spin state (na >= nb).

    Uses the Roothaan single-matrix effective Fock operator with the
    canonical (1/2, 1/2) coupling in the closed-closed / open-open /
    virtual-virtual blocks, F_beta in closed-open and F_alpha in
    open-virtual.  Returns one set of spatial orbitals usable by the
    spin-free FCI code.
    """
    na, nb = mol.n_alpha, mol.n_beta
    if na < nb:
        raise ValueError("rohf expects n_alpha >= n_beta")
    S, h, g = ints.S, ints.hcore, ints.g
    n = ints.nbf
    X = _orthogonalizer(S)
    extrapolator = DIIS() if diis else None

    eps, Cp = np.linalg.eigh(X.T @ h @ X)
    C = X @ Cp

    energy = 0.0
    history: list[float] = []
    converged = False
    for it in range(1, max_iterations + 1):
        Da = C[:, :na] @ C[:, :na].T
        Db = C[:, :nb] @ C[:, :nb].T
        Dt = Da + Db
        J = _coulomb(g, Dt)
        Fa = h + J - _exchange(g, Da)
        Fb = h + J - _exchange(g, Db)
        new_energy = (
            0.5 * float(np.sum(Da * (h + Fa)) + np.sum(Db * (h + Fb))) + ints.enuc
        )

        # Roothaan effective Fock in the current MO basis.
        Fa_mo = C.T @ Fa @ C
        Fb_mo = C.T @ Fb @ C
        Fc = 0.5 * (Fa_mo + Fb_mo)
        R = Fc.copy()
        c = slice(0, nb)  # closed (doubly occupied)
        o = slice(nb, na)  # open (singly occupied)
        v = slice(na, n)  # virtual
        R[c, o] = Fb_mo[c, o]
        R[o, c] = Fb_mo[o, c]
        R[o, v] = Fa_mo[o, v]
        R[v, o] = Fa_mo[v, o]
        if level_shift:
            R[v, v] += level_shift * np.eye(n - na)

        # back to AO: R_ao = S C R C^T S (since C^T S C = 1)
        SC = S @ C
        R_ao = SC @ R @ SC.T
        R_ao = _symmetry_average(R_ao, symmetry_ops)
        if extrapolator is not None:
            R_ao, err_norm = extrapolator.update(R_ao, 0.5 * Dt, S, X)
        else:
            err_norm = float(
                np.linalg.norm(X.T @ (R_ao @ (0.5 * Dt) @ S - S @ (0.5 * Dt) @ R_ao) @ X)
            )
        eps, Cp = np.linalg.eigh(X.T @ R_ao @ X)
        C = X @ Cp
        history.append(new_energy)
        if it > 1 and abs(new_energy - energy) < conv_tol and err_norm < 1e-6:
            energy = new_energy
            converged = True
            break
        energy = new_energy

    Da = C[:, :na] @ C[:, :na].T
    Db = C[:, :nb] @ C[:, :nb].T
    return SCFResult(
        energy=energy,
        mo_coeff=C,
        mo_energy=eps,
        density=Da + Db,
        converged=converged,
        n_iterations=it,
        method="rohf",
        n_alpha=na,
        n_beta=nb,
        fock=None,
        history=history,
    )
