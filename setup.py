"""Setuptools shim.

The primary metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments without the ``wheel`` package
(legacy ``setup.py develop`` editable installs).
"""

from setuptools import setup

setup()
