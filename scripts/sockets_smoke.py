#!/usr/bin/env python
"""Sockets-backend smoke test: loopback FCI over the TCP coordinator.

What CI's ``sockets-smoke`` job runs, end to end and against the bitwise
bar (diff vs serial must be exactly 0.0, not "close"):

1. a single sigma evaluation on a seeded random CI space through
   ``ParallelSigma(backend="sockets", n_workers=4)`` — four real worker
   processes dialing the coordinator over loopback TCP — compared
   bit-for-bit against serial ``sigma_dgemm`` at the same blocking;
2. a full FCI solve (H2O/STO-3G, 441 determinants) through
   ``FCISolver(parallel={"backend": "sockets", "n_workers": 4})``,
   required to reproduce the serial solver's energy with exact float
   equality;
3. a resource sweep: after both runs every coordinator must be closed
   and no ``repro-*`` shared-memory segment may remain.

Exits non-zero on any failure.

Usage::

    PYTHONPATH=src python scripts/sockets_smoke.py
"""

from __future__ import annotations

import glob
import sys

N_WORKERS = 4
BLOCK_COLUMNS = 3


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    import numpy as np

    from repro.core import CIProblem, FCISolver, sigma_dgemm
    from repro.molecule import Molecule
    from repro.parallel import ParallelSigma
    from repro.parallel.sockets import LIVE_COORDINATORS
    from repro.scf.mo import MOIntegrals

    # 1. one sigma through 4 TCP workers, bitwise against serial DGEMM
    rng = np.random.default_rng(23)
    n = 6
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T)
    g = rng.standard_normal((n, n, n, n))
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    problem = CIProblem(
        MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), 3, 2
    )
    C = problem.random_vector(0)
    ref = sigma_dgemm(problem, C, block_columns=BLOCK_COLUMNS)
    with ParallelSigma(
        problem,
        backend="sockets",
        n_workers=N_WORKERS,
        block_columns=BLOCK_COLUMNS,
    ) as ps:
        out = ps(C)
        diff = float(np.max(np.abs(out - ref)))
        print(
            f"sigma over {N_WORKERS} TCP workers: max |diff| vs serial = {diff}"
        )
        if not np.array_equal(out, ref):
            fail(f"sockets sigma is not bitwise-identical (diff {diff:.2e})")
        bytes_moved = ps.report.bytes_communicated
        print(f"wire traffic: {bytes_moved:.0f} bytes over the sigma call")
        if bytes_moved <= 0:
            fail("sockets backend reported no wire traffic")

    # 2. full FCI solve: loopback pool drives the eigensolver to the
    #    serial energy with exact float equality
    water = Molecule.from_atoms(
        [
            ("O", (0.0, 0.0, 0.2217)),
            ("H", (0.0, 1.4309, -0.8867)),
            ("H", (0.0, -1.4309, -0.8867)),
        ],
        name="H2O",
    )
    serial = FCISolver(water, "sto-3g").run()
    if not serial.solve.converged:
        fail("serial reference did not converge")
    print(f"serial reference:  E = {serial.energy:.12f}")
    sockets = FCISolver(
        water,
        "sto-3g",
        parallel={"backend": "sockets", "n_workers": N_WORKERS},
    ).run()
    if not sockets.solve.converged:
        fail("sockets solve did not converge")
    print(f"sockets ({N_WORKERS} workers): E = {sockets.energy:.12f}")
    if sockets.energy != serial.energy:
        fail(
            "sockets energy differs from serial by "
            f"{abs(sockets.energy - serial.energy):.2e} (exact match required)"
        )

    # 3. nothing left behind
    if LIVE_COORDINATORS:
        fail(f"{len(LIVE_COORDINATORS)} coordinator(s) still open after close")
    leaked = glob.glob("/dev/shm/repro-*")
    if leaked:
        fail(f"leaked shared-memory segments: {leaked}")

    print("OK: sockets smoke passed")


if __name__ == "__main__":
    main()
