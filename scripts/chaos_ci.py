"""CI chaos driver: seeded scenario runs of the resilient parallel sigma.

For each seed, runs the numeric-mode 4-MSP parallel DGEMM sigma under the
named chaos scenario and verifies the recovered result against the serial
sigma to machine precision.  The first seed's run records a Chrome trace
(one track per MSP, `fault:*` instant markers, heartbeat checks and
requeued work) that CI uploads as an artifact - a Perfetto-viewable story
of what broke and how it healed.

Usage:  python scripts/chaos_ci.py --scenario dead_rank --seeds 0 1 2 \
            --trace-dir chaos-traces
"""

import argparse
import os
import sys

import numpy as np

from repro import Telemetry
from repro.core import CIProblem, sigma_dgemm
from repro.faults import SCENARIOS, ChaosConfig
from repro.obs import ChromeTracer
from repro.parallel import ParallelSigma
from repro.scf.mo import MOIntegrals
from repro.x1 import X1Config


def random_problem(n: int = 6, n_alpha: int = 3, n_beta: int = 3) -> CIProblem:
    rng = np.random.default_rng(42)
    h = rng.standard_normal((n, n))
    h = 0.5 * (h + h.T) + np.diag(np.linspace(-3, 2, n)) * 2
    g = rng.standard_normal((n, n, n, n))
    g = g + g.transpose(1, 0, 2, 3)
    g = g + g.transpose(0, 1, 3, 2)
    g = g + g.transpose(2, 3, 0, 1)
    return CIProblem(MOIntegrals(h=h, g=g, e_core=0.0, n_orbitals=n), n_alpha, n_beta)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scenario", required=True, choices=sorted(SCENARIOS))
    ap.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    ap.add_argument("--n-msps", type=int, default=4)
    ap.add_argument("--trace-dir", default=None)
    args = ap.parse_args()

    problem = random_problem()
    config = X1Config(n_msps=args.n_msps)
    C = problem.random_vector(0)
    ref = sigma_dgemm(problem, C)

    probe = ParallelSigma(problem, config, resilient=True)
    probe(C)
    horizon = probe.report.elapsed
    print(f"scenario={args.scenario} n_msps={args.n_msps} "
          f"fault-free horizon={horizon:.3e} virtual s")

    failures = 0
    for i, seed in enumerate(args.seeds):
        tracer = ChromeTracer() if (args.trace_dir and i == 0) else None
        telemetry = Telemetry(tracer=tracer) if tracer else None
        chaos = ChaosConfig(
            [args.scenario],
            seed=seed,
            victim=seed % args.n_msps,
            at=0.5,
            horizon=horizon,
        )
        injector = chaos.injector(
            registry=telemetry.registry if telemetry else None
        )
        sigma_op = ParallelSigma(
            problem, config, telemetry=telemetry, faults=injector
        )
        out = sigma_op(C)
        err = float(np.max(np.abs(out - ref)))
        ok = err < 1e-10
        failures += not ok
        counters = ", ".join(
            f"{k.removeprefix('faults.')}={v:g}"
            for k, v in sorted(injector.counts().items())
        ) or "none fired"
        print(f"  seed={seed}: max|diff|={err:.3e} "
              f"{'OK' if ok else 'FAIL'}  [{counters}]")
        if tracer:
            os.makedirs(args.trace_dir, exist_ok=True)
            path = tracer.write(
                os.path.join(args.trace_dir, f"{args.scenario}-seed{seed}.json")
            )
            print(f"  trace: {path} ({tracer.n_events} events)")

    if failures:
        print(f"{failures} seed(s) failed to recover exactly", file=sys.stderr)
        return 1
    print(f"all {len(args.seeds)} seeds recovered to machine precision")
    return 0


if __name__ == "__main__":
    sys.exit(main())
