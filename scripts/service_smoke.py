#!/usr/bin/env python
"""End-to-end smoke test of the FCI service daemon, over real HTTP.

What CI's ``service-smoke`` job runs: start ``python -m repro.service
serve`` as a *subprocess* (a genuine daemon, not an in-process server),
submit H2/STO-3G over the wire, poll to completion, check the golden
energy, then resubmit the identical spec and require a result-cache hit
(same key, no second solve).  Exits non-zero on any failure.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--port 8123]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

GOLDEN_H2 = -1.137275943785  # tests/test_golden_energies.py
H2_SPEC = {
    "atoms": [["H", [0.0, 0.0, 0.0]], ["H", [0.0, 0.0, 1.4]]],
    "basis": "sto-3g",
}


def request(method: str, url: str, payload: dict | None = None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        return resp.status, json.loads(resp.read().decode())


def wait_for_health(url: str, deadline: float) -> None:
    while time.monotonic() < deadline:
        try:
            code, body = request("GET", f"{url}/v1/healthz")
            if code == 200 and body.get("ok"):
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            pass
        time.sleep(0.2)
    raise SystemExit("daemon never became healthy")


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--startup-timeout", type=float, default=60.0)
    parser.add_argument("--solve-timeout", type=float, default=120.0)
    args = parser.parse_args(argv)

    port = args.port if args.port is not None else free_port()
    url = f"http://127.0.0.1:{port}"
    workdir = tempfile.mkdtemp(prefix="fci-smoke-")
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--workdir",
            workdir,
            "--port",
            str(port),
            "--workers",
            "1",
        ],
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        wait_for_health(url, time.monotonic() + args.startup_timeout)
        print(f"daemon healthy on {url} (pid {daemon.pid})")

        code, sub = request("POST", f"{url}/v1/jobs", {"spec": H2_SPEC})
        assert code == 202, f"submit returned {code}: {sub}"
        assert not sub["cache_hit"] and not sub["deduped"], sub
        key = sub["key"]
        print(f"submitted H2/sto-3g as {key[:12]}")

        deadline = time.monotonic() + args.solve_timeout
        while True:
            code, status = request("GET", f"{url}/v1/jobs/{key}")
            if status["state"] not in ("queued", "running"):
                break
            if time.monotonic() > deadline:
                raise SystemExit(f"job still {status['state']} after timeout")
            time.sleep(0.2)
        assert status["state"] == "completed", f"job ended {status}"
        energy = status["result"]["energy"]
        assert abs(energy - GOLDEN_H2) < 1e-8, (
            f"energy {energy!r} off golden {GOLDEN_H2!r}"
        )
        print(f"completed: E = {energy:.12f} (golden ok, "
              f"{status['result']['n_iterations']} iterations)")

        # idempotent resubmission: same key, served from the result cache
        code, again = request("POST", f"{url}/v1/jobs", {"spec": H2_SPEC})
        assert code == 200, f"resubmit returned {code}: {again}"
        assert again["key"] == key and again["cache_hit"], again
        code, stats = request("GET", f"{url}/v1/stats")
        assert stats["solves_executed"] == 1, stats
        print("resubmission was a cache hit; exactly one solve executed")
        print("SERVICE SMOKE OK")
        return 0
    finally:
        daemon.send_signal(signal.SIGINT)
        try:
            daemon.wait(timeout=30)
        except subprocess.TimeoutExpired:
            daemon.kill()


if __name__ == "__main__":
    sys.exit(main())
