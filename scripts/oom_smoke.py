#!/usr/bin/env python
"""Out-of-core smoke test: solve through MmapStore under a starved budget.

What CI's ``oom-smoke`` job runs: a small FCI space (H2O/STO-3G, 441
determinants — tiny on purpose, the *path* is what is under test) solved
three ways and required to agree:

1. the dense reference (``vector_store=None``, the pre-storage-layer code
   path);
2. out-of-core Davidson: every held vector in a memory-mapped file, with
   the kernel block budget starved to ``block_columns=1`` so the sigma
   sweeps genuinely stream one column block at a time — the shape of a
   vector that does not fit in RAM;
3. out-of-core resume: the same solve killed at iteration 2 via the
   checkpoint layer, then restarted from the mmap sidecar.

Energy parity to 1e-10 is required everywhere, the mmap store must report
zero resident payload bytes, and RSS growth over the out-of-core solve is
printed for the job log.  Exits non-zero on any failure.

Usage::

    PYTHONPATH=src python scripts/oom_smoke.py
"""

from __future__ import annotations

import os
import resource
import sys
import tempfile

TOL = 1e-10


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    from repro.core import FCISolver
    from repro.molecule import Molecule
    from repro.obs import Telemetry

    water = Molecule.from_atoms(
        [
            ("O", (0.0, 0.0, 0.2217)),
            ("H", (0.0, 1.4309, -0.8867)),
            ("H", (0.0, -1.4309, -0.8867)),
        ],
        name="H2O",
    )

    dense = FCISolver(water, "sto-3g", method="davidson").run()
    if not dense.solve.converged:
        fail("dense reference did not converge")
    print(f"dense reference:   E = {dense.energy:.12f}")

    with tempfile.TemporaryDirectory(prefix="oom-smoke-") as scratch:
        tele = Telemetry()
        rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        oom = FCISolver(
            water,
            "sto-3g",
            method="davidson",
            vector_store={"kind": "mmap", "directory": scratch},
            block_columns=1,  # starve the kernel: stream one column at a time
            telemetry=tele,
        ).run()
        rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if not oom.solve.converged:
            fail("out-of-core solve did not converge")
        err = abs(oom.energy - dense.energy)
        print(f"mmap, 1-col blocks: E = {oom.energy:.12f}  |dE| = {err:.2e}")
        if err >= TOL:
            fail(f"out-of-core energy differs from dense by {err:.2e} >= {TOL}")
        resident = tele.registry.get("vectors.resident_bytes").value
        total = tele.registry.get("vectors.total_bytes").value
        print(f"store bytes: resident={resident:.0f} total={total:.0f}")
        if resident != 0.0:
            fail(f"mmap store pinned {resident} resident bytes (expected 0)")
        if total <= 0.0:
            fail("mmap store reported no payload bytes")
        print(f"peak RSS: {rss_before} -> {rss_after} KiB over the oom solve")

        # interrupted + resumed out-of-core solve hits the same energy
        ckpt = os.path.join(scratch, "oom.npz")
        kwargs = dict(
            method="davidson",
            vector_store={"kind": "mmap", "directory": scratch},
            checkpoint=ckpt,
        )
        try:
            FCISolver(water, "sto-3g", max_iterations=2, **kwargs).run()
        except Exception as exc:  # unconverged small budget is fine; crash is not
            fail(f"interrupted out-of-core solve crashed: {exc}")
        if not os.path.exists(ckpt + ".vec.npy"):
            fail("mmap checkpoint wrote no vector sidecar")
        resumed = FCISolver(water, "sto-3g", **kwargs).run()
        err = abs(resumed.energy - dense.energy)
        print(f"mmap resume:        E = {resumed.energy:.12f}  |dE| = {err:.2e}")
        if not resumed.solve.converged or err >= TOL:
            fail(f"resumed out-of-core solve off by {err:.2e}")

    print("OK: out-of-core smoke passed")


if __name__ == "__main__":
    main()
