"""Golden-value regression: pinned FCI energies for three real molecules.

The numbers below were produced by this code base (block Davidson through
``FCISolver.run_multiroot``) and independently cross-checked against dense
diagonalization of the full Hamiltonian, which agreed to better than 5e-11.
Any sigma-kernel, integral, or eigensolver change that shifts a total
energy by more than 1e-8 Hartree trips this file — on purpose.
"""

import numpy as np
import pytest

from repro.core import FCISolver

TOL = 1e-8

# name -> (ground + 2 excited roots, in Hartree)
GOLDEN = {
    "H2": [-1.137275943785, -0.531807577876, -0.169291749598],
    "HeH+": [-2.851466178664, -2.041771592519, -1.820826272299],
    "H2O": [-75.012586552381, -74.614636940756, -74.554906730080],
}


@pytest.fixture(scope="module")
def molecules(h2, heh_plus, water):
    return {"H2": h2, "HeH+": heh_plus, "H2O": water}


@pytest.fixture(scope="module")
def multiroot_results(molecules):
    return {
        name: FCISolver(mol, "sto-3g").run_multiroot(3)
        for name, mol in molecules.items()
    }


@pytest.mark.parametrize("name", list(GOLDEN))
class TestGoldenEnergies:
    def test_three_lowest_roots(self, multiroot_results, name):
        res = multiroot_results[name]
        assert res.converged
        assert np.max(np.abs(res.energies[:3] - np.array(GOLDEN[name]))) < TOL

    def test_single_root_run_matches_ground_state(self, molecules, name):
        res = FCISolver(molecules[name], "sto-3g").run()
        assert abs(res.energy - GOLDEN[name][0]) < TOL

    def test_roots_are_ordered_and_distinct(self, multiroot_results, name):
        e = multiroot_results[name].energies[:3]
        assert e[0] < e[1] < e[2]
        # vertical excitation energies stay positive by construction
        assert np.all(multiroot_results[name].excitation_energies()[1:] > 0)

    def test_correlation_energy_is_negative(self, multiroot_results, name):
        res = multiroot_results[name]
        assert res.energies[0] < res.scf.energy

    def test_dense_store_is_bitwise_identical(self, molecules, name):
        # the storage layer's contract: routing the default solve through an
        # explicit DenseStore changes nothing — not the energy's last bit
        default = FCISolver(molecules[name], "sto-3g").run()
        stored = FCISolver(molecules[name], "sto-3g", vector_store="dense").run()
        assert stored.energy == default.energy  # exact float equality
        assert abs(stored.energy - GOLDEN[name][0]) < TOL


def test_sockets_backend_pins_h2_golden_energy(h2):
    """The TCP backend reproduces the pinned H2 energy, not just "close"."""
    serial = FCISolver(h2, "sto-3g").run()
    sockets = FCISolver(
        h2, "sto-3g", parallel={"backend": "sockets", "n_workers": 2}
    ).run()
    assert sockets.energy == serial.energy  # exact float equality
    assert abs(sockets.energy - GOLDEN["H2"][0]) < TOL
    assert sockets.solve.converged
