"""Tests for Slater-Condon matrix elements and the dense Hamiltonian."""

import numpy as np
import pytest

from repro.core import (
    CIProblem,
    build_dense_hamiltonian,
    det_matrix_element,
    hamiltonian_diagonal,
)
from tests.conftest import make_random_mo


class TestDenseHamiltonian:
    def test_symmetric(self, random_mo5):
        prob = CIProblem(random_mo5, 2, 2)
        H = build_dense_hamiltonian(random_mo5, prob.space_a, prob.space_b)
        assert np.allclose(H, H.T, atol=1e-12)

    def test_diagonal_matches(self, random_mo5):
        prob = CIProblem(random_mo5, 3, 2)
        H = build_dense_hamiltonian(random_mo5, prob.space_a, prob.space_b)
        diag = hamiltonian_diagonal(random_mo5, prob.space_a, prob.space_b)
        assert np.allclose(np.diag(H), diag.ravel(), atol=1e-11)

    def test_more_than_double_excitations_vanish(self, random_mo6):
        prob = CIProblem(random_mo6, 3, 3)
        ma, mb = prob.space_a.masks, prob.space_b.masks
        # triple excitation: alpha differs by 2, beta by 1
        v = det_matrix_element(
            random_mo6, int(ma[0]), int(mb[0]), int(ma[-1]), int(mb[1])
        )
        da = bin(int(ma[0]) ^ int(ma[-1])).count("1") // 2
        db = bin(int(mb[0]) ^ int(mb[1])).count("1") // 2
        assert da + db > 2
        assert v == 0.0

    def test_one_electron_limit(self):
        # with g = 0 the Hamiltonian reduces to orbital-energy sums
        mo = make_random_mo(4, seed=1)
        mo.g[...] = 0.0
        mo.h[...] = np.diag([0.1, 0.7, 1.3, 2.9])
        prob = CIProblem(mo, 1, 1)
        H = build_dense_hamiltonian(mo, prob.space_a, prob.space_b)
        # diagonal: eps_a + eps_b; off-diagonal zero for diagonal h
        assert np.allclose(H, np.diag(np.diag(H)))
        assert abs(H[0, 0] - 0.2) < 1e-12

    def test_known_two_electron_case(self):
        # H2-like 2x2 problem in the MO basis: compare against textbook CI
        mo = make_random_mo(2, seed=2)
        prob = CIProblem(mo, 1, 1)
        H = build_dense_hamiltonian(mo, prob.space_a, prob.space_b)
        h, g = mo.h, mo.g
        # <00|H|00> = 2 h_00 + (00|00)
        assert abs(H[0, 0] - (2 * h[0, 0] + g[0, 0, 0, 0])) < 1e-12
        # <00|H|11> (both electrons excited) = (01|01)
        assert abs(H[0, 3] - g[0, 1, 0, 1]) < 1e-12
        # <00|H|01> (one beta electron excited) = h_01 + (01|00)
        assert abs(H[0, 1] - (h[0, 1] + g[0, 1, 0, 0])) < 1e-12

    def test_invariance_under_spin_swap(self, random_mo5):
        # H(na, nb) and H(nb, na) have identical spectra (spin-free operator)
        p1 = CIProblem(random_mo5, 3, 2)
        H1 = build_dense_hamiltonian(random_mo5, p1.space_a, p1.space_b)
        from repro.core.strings import StringSpace

        sa, sb = StringSpace(5, 2), StringSpace(5, 3)
        H2 = build_dense_hamiltonian(random_mo5, sa, sb)
        e1 = np.linalg.eigvalsh(H1)
        e2 = np.linalg.eigvalsh(H2)
        assert np.allclose(e1, e2, atol=1e-9)


class TestDiagonal:
    def test_shape(self, random_mo5):
        prob = CIProblem(random_mo5, 2, 1)
        d = hamiltonian_diagonal(random_mo5, prob.space_a, prob.space_b)
        assert d.shape == prob.shape

    def test_single_determinant_energy(self, water_mo, water):
        # the HF determinant diagonal equals the HF electronic energy
        nocc = water.n_electrons // 2
        prob = CIProblem(water_mo, nocc, nocc)
        d = hamiltonian_diagonal(water_mo, prob.space_a, prob.space_b)
        # HF determinant = lowest orbitals = colex rank 0
        e_hf_electronic = d[0, 0] + 0.0
        from repro.scf import rhf  # noqa: F401  (value via fixture instead)

        # compare with 2 sum h + sum (2J - K)
        o = slice(0, nocc)
        ref = 2 * np.trace(water_mo.h[o, o])
        ref += 2 * np.einsum("iijj->", water_mo.g[o, o, o, o])
        ref -= np.einsum("ijji->", water_mo.g[o, o, o, o])
        assert abs(e_hf_electronic - ref) < 1e-9
