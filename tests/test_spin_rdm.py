"""Tests for spin operators and reduced density matrices."""

import numpy as np
import pytest

from repro.core import (
    CIProblem,
    SpinOperator,
    apply_s2,
    build_dense_hamiltonian,
    natural_orbitals,
    one_rdm,
    s_squared,
)
from tests.conftest import make_random_mo


@pytest.fixture(scope="module")
def prob_and_eigs():
    mo = make_random_mo(5, seed=77)
    prob = CIProblem(mo, 3, 2)
    H = build_dense_hamiltonian(mo, prob.space_a, prob.space_b)
    evals, evecs = np.linalg.eigh(H)
    return mo, prob, evals, evecs


class TestSSquared:
    def test_eigenstates_are_spin_pure(self, prob_and_eigs):
        mo, prob, evals, evecs = prob_and_eigs
        na, nb = prob.shape
        for i in range(5):
            v = evecs[:, i].reshape(na, nb)
            s2 = s_squared(prob, v)
            # allowed S for Ms = 1/2: S = 1/2, 3/2, 5/2 -> S(S+1) in {.75, 3.75, 8.75}
            cands = [0.75, 3.75, 8.75]
            assert min(abs(s2 - c) for c in cands) < 1e-8

    def test_high_spin_determinant(self):
        mo = make_random_mo(4, seed=1)
        prob = CIProblem(mo, 2, 0)
        C = np.zeros(prob.shape)
        C[0, 0] = 1.0
        # all-alpha: S = Ms = 1 -> S(S+1) = 2
        assert abs(s_squared(prob, C) - 2.0) < 1e-12

    def test_closed_shell_determinant(self):
        mo = make_random_mo(4, seed=2)
        prob = CIProblem(mo, 2, 2)
        C = np.zeros(prob.shape)
        C[0, 0] = 1.0  # doubly-occupied lowest orbitals
        assert abs(s_squared(prob, C)) < 1e-12

    def test_open_shell_singlet_triplet_mix(self):
        # |ab| determinant with 2 open shells: <S^2> = 1
        mo = make_random_mo(4, seed=3)
        prob = CIProblem(mo, 1, 1)
        C = np.zeros(prob.shape)
        ia = prob.space_a.index(0b01)
        ib = prob.space_b.index(0b10)
        C[ia, ib] = 1.0
        assert abs(s_squared(prob, C) - 1.0) < 1e-12

    def test_zero_vector_rejected(self, prob_and_eigs):
        _, prob, _, _ = prob_and_eigs
        with pytest.raises(ValueError):
            s_squared(prob, np.zeros(prob.shape))

    def test_apply_s2_hermitian(self, prob_and_eigs):
        _, prob, _, _ = prob_and_eigs
        rng = np.random.default_rng(0)
        X = rng.standard_normal(prob.shape)
        Y = rng.standard_normal(prob.shape)
        assert abs(np.vdot(Y, apply_s2(prob, X)) - np.vdot(apply_s2(prob, Y), X)) < 1e-9

    def test_apply_s2_commutes_with_h(self, prob_and_eigs):
        from repro.core import sigma_dgemm

        mo, prob, _, _ = prob_and_eigs
        C = prob.random_vector(4)
        a = apply_s2(prob, sigma_dgemm(prob, C))
        b = sigma_dgemm(prob, apply_s2(prob, C))
        assert np.allclose(a, b, atol=1e-8)

    def test_expectation_matches_operator(self, prob_and_eigs):
        _, prob, _, _ = prob_and_eigs
        C = prob.random_vector(8)
        op = SpinOperator(prob)
        direct = float(np.vdot(C, op.apply_s2(C)))
        assert abs(direct - op.expectation(C)) < 1e-10


class TestOneRDM:
    def test_trace_is_electron_count(self, prob_and_eigs):
        _, prob, _, evecs = prob_and_eigs
        na, nb = prob.shape
        v = evecs[:, 0].reshape(na, nb)
        gamma = one_rdm(prob, v)
        assert abs(np.trace(gamma) - (prob.n_alpha + prob.n_beta)) < 1e-10

    def test_symmetric(self, prob_and_eigs):
        _, prob, _, evecs = prob_and_eigs
        v = evecs[:, 1].reshape(prob.shape)
        gamma = one_rdm(prob, v)
        assert np.allclose(gamma, gamma.T, atol=1e-10)

    def test_one_electron_energy_consistency(self, prob_and_eigs):
        # tr(gamma h) must equal <C| sum h_pq E_pq |C>
        mo, prob, _, evecs = prob_and_eigs
        from repro.core.sigma_dgemm import one_electron_operators

        v = evecs[:, 0].reshape(prob.shape)
        gamma = one_rdm(prob, v)
        Ta, Tb = one_electron_operators(prob)
        direct = float(np.vdot(v, np.asarray(Ta @ v) + np.asarray(Tb @ v.T).T))
        assert abs(np.sum(gamma * mo.h) - direct) < 1e-9

    def test_hf_determinant_rdm(self):
        mo = make_random_mo(4, seed=5)
        prob = CIProblem(mo, 2, 1)
        C = np.zeros(prob.shape)
        C[0, 0] = 1.0  # alpha {0,1}, beta {0}
        gamma = one_rdm(prob, C)
        assert np.allclose(gamma, np.diag([2.0, 1.0, 0.0, 0.0]), atol=1e-12)

    def test_natural_occupations(self, prob_and_eigs):
        _, prob, _, evecs = prob_and_eigs
        v = evecs[:, 0].reshape(prob.shape)
        occ, vecs = natural_orbitals(prob, v)
        assert np.all(np.diff(occ) <= 1e-12)  # descending
        assert abs(occ.sum() * 2 - 2 * (prob.n_alpha + prob.n_beta)) < 1e-9
        assert np.all(occ > -1e-10)
        assert np.all(occ < 2.0 + 1e-10)
