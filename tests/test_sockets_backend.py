"""Unit and integration tests for the sockets (TCP DDI) execution backend.

The cross-substrate semantics live in the conformance harness
(:mod:`tests.backend_conformance`, run by ``test_backend_conformance``);
this file covers what is *specific* to sockets: the wire framing, the
coordinator's handshake policy, heartbeat-based dead-worker detection
(including the chaos lane that SIGKILLs a real worker mid-span), the
external-worker CLI, and the solver integration.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.chaos import ChaosEnv, build_backend_plan
from repro.core import FCISolver, HamiltonianOperator, sigma_dgemm
from repro.parallel import ParallelSigma, backend_names
from repro.parallel.backend import SocketsBackend
from repro.parallel.sockets import (
    Channel,
    Coordinator,
    SocketComm,
    SocketSigmaEngine,
    WireError,
    WireTimeout,
    connect_with_retry,
)
from repro.core.plans import SigmaPlan
from tests.backend_conformance import assert_no_new_leaks, leak_snapshot
from tests.helpers import make_random_problem


@pytest.fixture(scope="module", autouse=True)
def no_leaked_backend_resources_module():
    """Module-scoped leak gate: pools are module fixtures, so the /dev/shm
    and live-coordinator scan runs after the whole file, not per test."""
    before = leak_snapshot()
    yield
    assert_no_new_leaks(before)


@pytest.fixture(scope="module")
def problem():
    return make_random_problem(5, 3, 2, seed=41)


@pytest.fixture(scope="module")
def sockets_sigma(problem):
    ps = ParallelSigma(problem, backend="sockets", n_workers=2, block_columns=4)
    yield ps
    ps.close()


def _tcp_pair():
    """A connected loopback (server_side, client_side) Channel pair."""
    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]
    client = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    server, _ = listener.accept()
    listener.close()
    return Channel(server), Channel(client)


class TestWire:
    """Framing: 8-byte big-endian length prefix + pickled tuple payload."""

    def test_roundtrip_preserves_arrays_and_counts_bytes(self):
        a, b = _tcp_pair()
        try:
            msg = ("acc", "mix", (slice(None), slice(0, 3)), np.arange(6.0))
            sent = a.send(msg)
            got = b.recv(timeout=5.0)
            assert got[0] == "acc" and got[1] == "mix"
            assert got[2] == (slice(None), slice(0, 3))
            assert np.array_equal(got[3], np.arange(6.0))
            assert a.tx_bytes == sent > 8  # header + payload
            assert b.rx_bytes == sent
        finally:
            a.close()
            b.close()

    def test_messages_arrive_in_order(self):
        a, b = _tcp_pair()
        try:
            for i in range(20):
                a.send(("seq", i))
            assert [b.recv(timeout=5.0)[1] for i in range(20)] == list(range(20))
        finally:
            a.close()
            b.close()

    def test_recv_timeout_raises_wire_timeout(self):
        a, b = _tcp_pair()
        try:
            with pytest.raises(WireTimeout):
                b.recv(timeout=0.1)
        finally:
            a.close()
            b.close()

    def test_peer_close_raises_wire_closed(self):
        from repro.parallel.sockets import WireClosed

        a, b = _tcp_pair()
        a.close()
        try:
            with pytest.raises(WireClosed):
                b.recv(timeout=5.0)
        finally:
            b.close()

    def test_oversized_frame_header_is_a_protocol_error(self):
        a, b = _tcp_pair()
        try:
            a.sock.sendall((1 << 37).to_bytes(8, "big"))  # corrupt header
            with pytest.raises(WireError, match="exceeds"):
                b.recv(timeout=5.0)
        finally:
            a.close()
            b.close()

    def test_connect_with_retry_bounded_failure_names_address(self):
        # a port nobody listens on: bounded retry, then a clean diagnostic
        with pytest.raises(WireError, match="127.0.0.1"):
            connect_with_retry("127.0.0.1", 1, attempts=2, delay=0.01)


class TestCoordinatorHandshake:
    def test_bad_token_is_refused(self):
        with Coordinator({"a": (2,)}, n_ranks=1) as co:
            ch = connect_with_retry(co.host, co.port)
            try:
                ch.send(("hello", "data", 0, "wrong-token"))
                reply = ch.recv(timeout=5.0)
                assert reply[0] == "err" and "token" in reply[1]
            finally:
                ch.close()

    def test_rank_out_of_range_is_refused(self):
        with Coordinator({"a": (2,)}, n_ranks=1) as co:
            ch = connect_with_retry(co.host, co.port)
            try:
                ch.send(("hello", "data", 7, co.token))
                reply = ch.recv(timeout=5.0)
                assert reply[0] == "err" and "rank" in reply[1]
            finally:
                ch.close()

    def test_unknown_verb_gets_error_reply(self):
        with Coordinator({"a": (2,)}, n_ranks=1) as co:
            comm = SocketComm.connect(co.spec(), 0)
            try:
                with pytest.raises(WireError, match="unknown verb"):
                    comm._request(("teleport", "a"))
            finally:
                comm.close()

    def test_coordinator_assigns_join_order_ranks(self):
        with Coordinator({"a": (2,)}, n_ranks=2) as co:
            c0 = SocketComm.connect(co.spec(), rank=None)
            c1 = SocketComm.connect(co.spec(), rank=None)
            try:
                assert {c0.rank, c1.rank} == {0, 1}
            finally:
                c0.close()
                c1.close()

    def test_close_is_idempotent(self):
        co = Coordinator({"a": (2,)}, n_ranks=0)
        co.close()
        co.close()


class TestRegistryAndValidation:
    def test_sockets_is_registered(self):
        assert "sockets" in backend_names()

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            SocketsBackend(n_workers=-2)

    def test_engine_rejects_unknown_spawn_mode(self, problem):
        plan = SigmaPlan.for_problem(problem)
        with pytest.raises(ValueError, match="spawn"):
            SocketSigmaEngine(plan, n_workers=1, block_columns=3, spawn="teleport")

    def test_rejects_fault_injection(self, problem):
        from repro.faults import FaultInjector, FaultPlan

        with pytest.raises(ValueError, match="simulated"):
            ParallelSigma(
                problem, backend="sockets", faults=FaultInjector(FaultPlan())
            )

    def test_rejects_vector_store(self, problem):
        with pytest.raises(ValueError, match="simulated"):
            ParallelSigma(problem, backend="sockets", vector_store="mmap")

    def test_describe_names_substrate(self):
        backend = SocketsBackend(n_workers=3)
        desc = backend.describe()
        assert desc["backend"] == "sockets"
        assert desc["n_ranks"] == 3
        assert desc["spawn"] == "process"


class TestReport:
    def test_report_measures_real_work_and_wire_bytes(self, problem, sockets_sigma):
        before = sockets_sigma.report.n_calls
        sockets_sigma(problem.random_vector(0))
        report = sockets_sigma.report
        assert report.n_calls == before + 1
        assert report.elapsed > 0.0
        assert report.flops > 0.0
        # sockets moves real bytes: C fetches + shipped owned windows
        assert report.bytes_communicated > 0.0
        for phase in ("one-electron", "alpha-alpha", "beta-beta", "alpha-beta"):
            assert phase in report.phase_times
        assert "wire-ship" in report.phase_times

    def test_one_stat_per_worker(self, problem, sockets_sigma):
        run = sockets_sigma.backend.run_sigma(
            sockets_sigma, problem.random_vector(1)
        )
        assert len(run.stats) == 2
        assert all(s.bytes_sent > 0 and s.bytes_received > 0 for s in run.stats)


class TestLifecycle:
    def test_context_manager_stops_workers(self, problem):
        with ParallelSigma(problem, backend="sockets", n_workers=2) as ps:
            ps(problem.random_vector(0))
            procs = list(ps.backend._engine._procs)
            assert all(p.is_alive() for p in procs)
        assert all(not p.is_alive() for p in procs)

    def test_close_is_idempotent(self, problem):
        ps = ParallelSigma(problem, backend="sockets", n_workers=1)
        ps(problem.random_vector(0))
        ps.close()
        ps.close()

    def test_shape_validation(self, sockets_sigma):
        with pytest.raises(ValueError):
            sockets_sigma(np.zeros((2, 2)))

    def test_sigma_after_close_is_a_clean_error(self, problem):
        ps = ParallelSigma(problem, backend="sockets", n_workers=1)
        engine = ps.backend.engine(ps.plan, ps.block_columns)
        ps.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.sigma(problem.random_vector(0))

    def test_worker_death_between_calls_raises(self, problem):
        with ParallelSigma(problem, backend="sockets", n_workers=2) as ps:
            ps(problem.random_vector(0))
            victim = ps.backend._engine._procs[0]
            victim.terminate()
            victim.join(timeout=5.0)
            with pytest.raises(RuntimeError, match="worker 0"):
                ps(problem.random_vector(1))


class TestChaosKillMidSpan:
    """The ISSUE's fault lane: SIGKILL a real worker while it is inside a
    mixed-spin span; the engine must fail loud, named, and bounded."""

    def test_scenario_composes_to_a_knob_dict(self):
        plan = build_backend_plan(
            ["socket_worker_kill"], ChaosEnv(n_ranks=2), seed=5
        )
        assert plan["backend"] == "sockets"
        assert 0 <= plan["kill_rank"] < 2
        assert plan["straggle_seconds"] > 0.0

    def test_unknown_backend_scenario_lists_registry(self):
        with pytest.raises(ValueError, match="socket_worker_kill"):
            build_backend_plan(["meteor_strike"], ChaosEnv(), seed=0)

    def test_sigkill_mid_span_fails_loud_naming_the_rank(self, problem):
        plan = build_backend_plan(
            ["socket_worker_kill"], ChaosEnv(n_ranks=2), seed=11
        )
        victim_rank = plan["kill_rank"] % 2
        deadline = 30.0
        ps = ParallelSigma(
            problem,
            backend="sockets",
            n_workers=2,
            block_columns=3,
            shm_timeout=60.0,
            # straggle widens every claimed span so the kill lands mid-span;
            # a tight heartbeat keeps detection well under the deadline
            backend_options={
                "straggle_seconds": 0.3,
                "heartbeat_interval": 0.05,
                "heartbeat_misses": 20,
            },
        )
        with ps:
            ps(problem.random_vector(0))  # warm pool, workers proven healthy
            procs = ps.backend._engine._procs
            with ThreadPoolExecutor(1) as pool:
                future = pool.submit(ps, problem.random_vector(1))
                time.sleep(0.15)  # inside the first straggled span
                os.kill(procs[victim_rank].pid, signal.SIGKILL)
                t0 = time.monotonic()
                with pytest.raises(RuntimeError, match=f"worker {victim_rank}"):
                    future.result(timeout=deadline)
                assert time.monotonic() - t0 < deadline, (
                    "dead-worker detection exceeded the deadline"
                )

    def test_backend_recovers_by_rebuilding_the_pool(self, problem):
        """After a kill, the *backend* (not the dead engine) can serve again:
        run_sigma drops the closed engine and the next call respawns."""
        C = problem.random_vector(2)
        ref = sigma_dgemm(problem, C, block_columns=3)
        with ParallelSigma(
            problem, backend="sockets", n_workers=2, block_columns=3
        ) as ps:
            ps(C)
            victim = ps.backend._engine._procs[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            with pytest.raises(RuntimeError, match="worker 1"):
                ps(C)
            assert ps.backend._engine is None  # closed engine was dropped
            assert np.array_equal(ps(C), ref)  # fresh pool, same bits


class TestExternalWorkers:
    """The two-terminal story: workers join over the CLI, plan over the wire."""

    def test_cli_workers_join_and_compute_bitwise_sigma(self, problem):
        C = problem.random_vector(3)
        ref = sigma_dgemm(problem, C, block_columns=3)
        plan = SigmaPlan.for_problem(problem)

        # reserve a port for the coordinator so workers know where to dial
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        token = "conformance-test-token"

        engines: list = []
        errors: list = []

        def build_engine():
            try:
                engines.append(
                    SocketSigmaEngine(
                        plan,
                        n_workers=2,
                        block_columns=3,
                        spawn="external",
                        port=port,
                        token=token,
                        timeout=120.0,
                    )
                )
            except Exception as exc:  # pragma: no cover - diagnostic path
                errors.append(exc)

        builder = threading.Thread(target=build_engine)
        builder.start()
        workers = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.parallel.sockets.worker",
                    "--host",
                    "127.0.0.1",
                    "--port",
                    str(port),
                    "--token",
                    token,
                ],
                env={**os.environ, "PYTHONPATH": "src"},
            )
            for _ in range(2)
        ]
        try:
            builder.join(timeout=120.0)
            assert not errors, errors
            assert engines, "engine construction never completed"
            engine = engines[0]
            run = engine.sigma(C)
            assert np.array_equal(run.sigma, ref)
            engine.close()
            for w in workers:
                assert w.wait(timeout=30.0) == 0
        finally:
            for w in workers:
                if w.poll() is None:
                    w.kill()
            for e in engines:
                e.close()


class TestKernelProtocol:
    """ParallelSigma(sockets) is a drop-in SigmaKernel."""

    def test_name(self, sockets_sigma):
        assert sockets_sigma.name == "parallel-sockets"

    def test_apply_is_bitwise_serial(self, problem, sockets_sigma):
        C = problem.random_vector(3)
        counters = sockets_sigma.make_counters()
        out = sockets_sigma.apply(C, counters)
        assert np.array_equal(out, sigma_dgemm(problem, C, block_columns=4))
        assert counters.dgemm_flops > 0
        assert counters.gather_elements > 0

    def test_drops_into_hamiltonian_operator(self, problem, sockets_sigma):
        op = HamiltonianOperator(problem, sockets_sigma)
        C = problem.random_vector(7)
        assert np.array_equal(op(C), sigma_dgemm(problem, C, block_columns=4))


class TestSolverIntegration:
    def test_fci_energy_identical_across_backends(self, h2):
        serial = FCISolver(h2).run()
        sockets = FCISolver(
            h2, parallel={"backend": "sockets", "n_workers": 2}
        ).run()
        assert sockets.energy == serial.energy
        assert sockets.solve.converged

    def test_backend_options_forwarded_through_solver(self, h2):
        res = FCISolver(
            h2,
            parallel={
                "backend": "sockets",
                "n_workers": 1,
                "backend_options": {"heartbeat_interval": 0.1},
            },
        ).run()
        assert res.solve.converged
