"""Tests for the diagonalization methods: Davidson, Olsen, auto-adjusted."""

import numpy as np
import pytest

from repro.core import (
    CIProblem,
    DiagonalPreconditioner,
    ModelSpacePreconditioner,
    auto_adjusted_solve,
    build_dense_hamiltonian,
    davidson_solve,
    olsen_correction,
    olsen_solve,
    sigma_dgemm,
)
from tests.conftest import make_random_mo


@pytest.fixture(scope="module")
def setup():
    mo = make_random_mo(6, seed=42)
    # make it diagonally dominant enough to behave like a CI Hamiltonian
    mo.h += np.diag(np.linspace(-4.0, 3.0, 6)) * 3
    prob = CIProblem(mo, 3, 3)
    H = build_dense_hamiltonian(mo, prob.space_a, prob.space_b)
    e0 = np.linalg.eigvalsh(H)[0]

    def sigma_fn(C):
        return sigma_dgemm(prob, C)

    return prob, H, e0, sigma_fn


class TestPreconditioners:
    def test_diagonal_solve(self, setup):
        prob, H, e0, _ = setup
        pre = DiagonalPreconditioner(prob)
        R = np.ones(prob.shape)
        X = pre.solve(R, -100.0)
        assert np.allclose(X * (prob.diagonal + 100.0), R, atol=1e-12)

    def test_diagonal_floor_protects(self, setup):
        prob, *_ = setup
        pre = DiagonalPreconditioner(prob)
        shift = float(prob.diagonal.ravel()[0])  # exact diagonal hit
        X = pre.solve(np.ones(prob.shape), shift)
        assert np.all(np.isfinite(X))

    def test_model_space_selection_size(self, setup):
        prob, *_ = setup
        pre = ModelSpacePreconditioner(prob, 10)
        assert pre.size == 10
        assert pre.h_model.shape == (10, 10)

    def test_model_space_block_is_exact_h(self, setup):
        prob, H, *_ = setup
        pre = ModelSpacePreconditioner(prob, 8)
        sel = pre.selection
        assert np.allclose(pre.h_model, H[np.ix_(sel, sel)], atol=1e-10)

    def test_model_space_solve_inverts_h0(self, setup):
        prob, *_ = setup
        pre = ModelSpacePreconditioner(prob, 12)
        R = np.random.default_rng(0).standard_normal(prob.shape)
        shift = -50.0
        X = pre.solve(R, shift)
        # applying H0 - shift must recover R
        back = pre.apply_h0(X) - shift * X
        assert np.allclose(back, R, atol=1e-8)

    def test_guess_is_normalized_and_supported(self, setup):
        prob, *_ = setup
        pre = ModelSpacePreconditioner(prob, 6)
        g = pre.ground_state_guess()
        assert abs(np.linalg.norm(g) - 1.0) < 1e-12
        flat = g.ravel()
        outside = np.delete(flat, pre.selection)
        assert np.allclose(outside, 0.0)

    def test_apply_h0_consistent_with_solve(self, setup):
        prob, *_ = setup
        pre = ModelSpacePreconditioner(prob, 5)
        X = np.random.default_rng(1).standard_normal(prob.shape)
        Y = pre.apply_h0(X)
        # solve is the inverse map at shift 0 (if H0 nonsingular)
        X2 = pre.solve(Y, 0.0)
        assert np.allclose(X2, X, atol=1e-6)


class TestOlsenCorrection:
    def test_orthogonal_to_c(self, setup):
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 10)
        C = prob.random_vector(5)
        sigma = sigma_fn(C)
        e = float(np.vdot(C, sigma))
        t = olsen_correction(C, sigma, e, pre)
        assert abs(np.vdot(C, t)) < 1e-8 * np.linalg.norm(t)

    def test_zero_residual_gives_zero_correction(self, setup):
        prob, H, e0, sigma_fn = setup
        evals, evecs = np.linalg.eigh(H)
        C = evecs[:, 0].reshape(prob.shape)
        pre = DiagonalPreconditioner(prob)
        t = olsen_correction(C, sigma_fn(C), evals[0], pre)
        assert np.linalg.norm(t) < 1e-8


class TestDavidson:
    def test_finds_ground_state(self, setup):
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 20)
        res = davidson_solve(sigma_fn, pre.ground_state_guess(), pre)
        assert res.converged
        assert abs(res.energy - e0) < 1e-8

    def test_eigenvector_quality(self, setup):
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 20)
        res = davidson_solve(sigma_fn, pre.ground_state_guess(), pre)
        r = sigma_fn(res.vector) - res.energy * res.vector
        assert np.linalg.norm(r) < 1e-4

    def test_restart_path(self, setup):
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 10)
        res = davidson_solve(
            sigma_fn, pre.ground_state_guess(), pre, max_subspace=3, max_iterations=80
        )
        assert res.converged
        assert abs(res.energy - e0) < 1e-8

    def test_energies_monotone_nonincreasing(self, setup):
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 20)
        res = davidson_solve(sigma_fn, pre.ground_state_guess(), pre)
        diffs = np.diff(res.energies)
        assert np.all(diffs < 1e-8)  # variational subspace growth

    def test_iteration_counting(self, setup):
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 20)
        res = davidson_solve(sigma_fn, pre.ground_state_guess(), pre)
        assert res.n_iterations == res.n_sigma == len(res.energies)


class TestOlsenIteration:
    def test_olsen_converges_on_easy_problem(self, setup):
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 20)
        res = olsen_solve(sigma_fn, pre.ground_state_guess(), pre, step=1.0, max_iterations=100)
        # the random test Hamiltonian is diagonally dominant: Olsen should work
        assert res.converged
        assert abs(res.energy - e0) < 1e-7

    def test_damped_step_used(self, setup):
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 20)
        res = olsen_solve(sigma_fn, pre.ground_state_guess(), pre, step=0.7, max_iterations=100)
        assert res.method == "olsen(step=0.7)"

    def test_history_recorded(self, setup):
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 20)
        res = olsen_solve(sigma_fn, pre.ground_state_guess(), pre, max_iterations=20)
        assert len(res.energies) == len(res.residual_norms) == res.n_iterations


class TestAutoAdjusted:
    def test_converges_to_ground_state(self, setup):
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 20)
        res = auto_adjusted_solve(sigma_fn, pre.ground_state_guess(), pre)
        assert res.converged
        assert abs(res.energy - e0) < 1e-8

    def test_single_vector_storage_semantics(self, setup):
        # the method never stores subspaces: its result vector is normalized
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 20)
        res = auto_adjusted_solve(sigma_fn, pre.ground_state_guess(), pre)
        assert abs(np.linalg.norm(res.vector) - 1.0) < 1e-10

    def test_competitive_with_davidson(self, setup):
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 20)
        res_auto = auto_adjusted_solve(sigma_fn, pre.ground_state_guess(), pre)
        res_dav = davidson_solve(sigma_fn, pre.ground_state_guess(), pre)
        # paper: auto requires no more than ~2x the subspace method, usually less
        assert res_auto.n_iterations <= 2 * res_dav.n_iterations + 5

    def test_eq14_recovers_tht(self, setup):
        # the retroactive <t|H|t> identity must match the direct value
        prob, H, e0, sigma_fn = setup
        pre = ModelSpacePreconditioner(prob, 15)
        C = pre.ground_state_guess()
        sigma = sigma_fn(C)
        e = float(np.vdot(C, sigma))
        t = olsen_correction(C, sigma, e, pre)
        lam = 0.6
        tn2 = float(np.vdot(t, t))
        e_ct = float(np.vdot(sigma, t))
        s2 = 1.0 / (1.0 + lam * lam * tn2)
        Cn = (C + lam * t) * np.sqrt(s2)
        e_next = float(np.vdot(Cn, sigma_fn(Cn)))
        e_tt_rec = (e_next / s2 - e - 2 * lam * e_ct) / lam**2
        e_tt_direct = float(np.vdot(t, sigma_fn(t)))
        assert abs(e_tt_rec - e_tt_direct) < 1e-6 * max(1.0, abs(e_tt_direct))
