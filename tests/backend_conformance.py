"""Reusable backend-conformance harness for the real-process DDI substrates.

One suite, many substrates: :class:`BackendConformanceSuite` states what
*any* execution backend's communication layer must guarantee — the five
DDI verbs' semantics, fetch_add atomicity under contention, barrier and
quiet ordering, the decomposition's disjoint-owned-window invariants, and
the bitwise sigma contract for every worker count — and an *adapter*
binds it to a concrete substrate (POSIX shared memory, a TCP
coordinator).  Registering a new backend for conformance is one adapter
class and one pytest param; the whole suite applies for free.

The verbs are exercised through a :class:`VerbGroup`: the parent-side
endpoint (``ShmComm`` / ``Coordinator`` — deliberately the same method
surface) plus client endpoints opened from worker threads the way real
worker processes would open them (``ShmComm.attach`` /
``SocketComm.connect``).

Leak checking: :func:`leak_snapshot` / :func:`assert_no_new_leaks`
capture the visible residue a backend can leave behind — ``/dev/shm``
segments and live TCP coordinators — and are asserted around every
conformance test (and, module-scoped, around the per-backend test files).
"""

from __future__ import annotations

import glob
import multiprocessing as mp
import os
import threading
import time

import numpy as np
import pytest

from repro.core import sigma_dgemm
from repro.parallel import ParallelSigma, build_sigma_decomposition
from repro.parallel.shm.comm import ShmComm
from repro.parallel.sockets import Coordinator, SocketComm
from repro.parallel.sockets.coordinator import LIVE_COORDINATORS
from tests.helpers import make_random_problem

__all__ = [
    "ADAPTERS",
    "BackendConformanceSuite",
    "ShmAdapter",
    "SocketsAdapter",
    "VerbGroup",
    "assert_no_new_leaks",
    "leak_snapshot",
]

# the conformance sigma lane shares one block width with its serial
# reference: bitwise identity is defined at fixed blocking
BLOCK_COLUMNS = 3


# -- leak accounting ----------------------------------------------------------

def leak_snapshot() -> dict:
    """What a backend could leave behind: shm segments, live coordinators."""
    shm = set()
    if os.path.isdir("/dev/shm"):
        shm = set(glob.glob("/dev/shm/repro-*"))
    return {"shm_segments": shm, "coordinators": set(LIVE_COORDINATORS)}


def assert_no_new_leaks(before: dict) -> None:
    after = leak_snapshot()
    leaked_shm = after["shm_segments"] - before["shm_segments"]
    assert not leaked_shm, f"leaked shared-memory segments: {sorted(leaked_shm)}"
    leaked_co = after["coordinators"] - before["coordinators"]
    assert not leaked_co, (
        f"leaked {len(leaked_co)} live TCP coordinator(s) "
        f"(ports {[c.port for c in leaked_co]})"
    )


# -- substrate adapters -------------------------------------------------------

class VerbGroup:
    """A parent verb endpoint plus lazily opened client endpoints."""

    def __init__(self, parent, connect):
        self.parent = parent
        self._connect = connect
        self.clients: list = []

    def connect(self, rank: int | None = None):
        client = self._connect(rank)
        self.clients.append(client)
        return client

    def close(self) -> None:
        for client in self.clients:
            try:
                client.close()
            except Exception:
                pass
        self.clients = []
        self.parent.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class ShmAdapter:
    """POSIX shared memory: clients attach the parent's named segments."""

    name = "shm"

    def open_group(self, arrays: dict, n_clients: int = 0) -> VerbGroup:
        ctx = mp.get_context("spawn")
        comm = ShmComm(ctx, arrays=arrays, n_ranks=n_clients)
        spec = comm.spec()
        return VerbGroup(comm, lambda rank: ShmComm.attach(spec))


class SocketsAdapter:
    """TCP coordinator: clients dial the heap server's data port."""

    name = "sockets"

    def open_group(self, arrays: dict, n_clients: int = 0) -> VerbGroup:
        co = Coordinator(arrays, n_ranks=n_clients)
        spec = co.spec()
        return VerbGroup(co, lambda rank: SocketComm.connect(spec, rank))


ADAPTERS = {"shm": ShmAdapter, "sockets": SocketsAdapter}


# -- the suite ----------------------------------------------------------------

class BackendConformanceSuite:
    """What every real-process execution backend must guarantee.

    Subclass with an ``adapter`` fixture returning a substrate adapter;
    every test then runs identically against that substrate.
    """

    # ---- verb semantics, parent side ----------------------------------------
    def test_get_returns_zeroed_array_and_windows(self, adapter):
        with adapter.open_group({"a": (3, 4), "b": (2,)}) as g:
            full = np.asarray(g.parent.get("a"))
            assert full.shape == (3, 4)
            assert np.all(full == 0.0)
            window = np.asarray(g.parent.get("a", (1, slice(2, 4))))
            assert window.shape == (2,)

    def test_acc_accumulates_windowed(self, adapter):
        with adapter.open_group({"b": (2,)}) as g:
            g.parent.acc("b", slice(None), np.array([1.0, 2.0]))
            g.parent.acc("b", slice(0, 1), np.array([0.5]))
            assert np.array_equal(np.asarray(g.parent.get("b")), [1.5, 2.0])

    def test_fetch_add_returns_old_value_and_resets(self, adapter):
        with adapter.open_group({"a": (1,)}) as g:
            assert g.parent.fetch_add() == 0
            assert g.parent.fetch_add(5) == 1
            assert g.parent.fetch_add() == 6
            g.parent.reset_counter()
            assert g.parent.fetch_add() == 0

    def test_zero_resets_named_arrays(self, adapter):
        with adapter.open_group({"a": (2, 2), "b": (2,)}) as g:
            g.parent.acc("a", None, np.full((2, 2), 3.0))
            g.parent.acc("b", None, np.full((2,), 4.0))
            g.parent.zero("a")
            assert np.all(np.asarray(g.parent.get("a")) == 0.0)
            assert np.all(np.asarray(g.parent.get("b")) == 4.0)

    def test_parent_only_barrier_and_quiet(self, adapter):
        with adapter.open_group({"a": (1,)}) as g:
            g.parent.barrier(timeout=5.0)  # parent is the only party
            g.parent.quiet()

    # ---- verb semantics, over the client path --------------------------------
    def test_client_get_sees_parent_stores(self, adapter):
        with adapter.open_group({"a": (3, 4)}, n_clients=1) as g:
            np.asarray(g.parent.get("a"))[...] = 7.0
            client = g.connect(0)
            got = client.get("a")
            assert np.all(np.asarray(got) == 7.0)
            got = client.get("a", (slice(0, 2), slice(1, 3)))
            assert np.asarray(got).shape == (2, 2)

    def test_client_acc_fenced_by_quiet(self, adapter):
        with adapter.open_group({"a": (4, 4)}, n_clients=2) as g:
            c0, c1 = g.connect(0), g.connect(1)
            # disjoint owned windows, the decomposition's write pattern
            c0.acc("a", (slice(None), slice(0, 2)), np.full((4, 2), 1.0))
            c1.acc("a", (slice(None), slice(2, 4)), np.full((4, 2), 2.0))
            c0.quiet()
            c1.quiet()
            out = np.asarray(g.parent.get("a"))
            assert np.all(out[:, :2] == 1.0) and np.all(out[:, 2:] == 2.0)

    def test_client_acc_error_raises_at_or_before_quiet(self, adapter):
        with adapter.open_group({"a": (2, 2)}, n_clients=1) as g:
            client = g.connect(0)
            with pytest.raises(Exception):
                client.acc("no-such-array", None, np.zeros((2, 2)))
                client.quiet()

    def test_fetch_add_atomic_under_contention(self, adapter):
        n_clients, per_client = 4, 50
        with adapter.open_group({"a": (1,)}, n_clients=n_clients) as g:
            clients = [g.connect(r) for r in range(n_clients)]
            claims: list[list[int]] = [[] for _ in range(n_clients)]
            errors: list = []

            def hammer(idx: int) -> None:
                try:
                    for _ in range(per_client):
                        claims[idx].append(clients[idx].fetch_add())
                except Exception as exc:  # pragma: no cover - diagnostic path
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(i,)) for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert not errors, errors
            flat = [c for per in claims for c in per]
            # atomicity: every ticket issued exactly once, no gaps, no dupes
            assert sorted(flat) == list(range(n_clients * per_client))
            # per-client monotonicity: the counter never goes backwards
            for per in claims:
                assert per == sorted(per)

    def test_barrier_waits_for_every_party(self, adapter):
        hold = 0.3
        with adapter.open_group({"a": (1,)}, n_clients=1) as g:
            client = g.connect(0)

            def late_arrival() -> None:
                time.sleep(hold)
                client.barrier(10.0)

            t = threading.Thread(target=late_arrival)
            start = time.monotonic()
            t.start()
            g.parent.barrier(timeout=10.0)  # must block until the client joins
            elapsed = time.monotonic() - start
            t.join(timeout=10.0)
            assert elapsed >= hold * 0.8, (
                f"parent cleared the barrier after {elapsed:.3f}s, before the "
                f"other party arrived at {hold:.3f}s"
            )

    def test_quiet_fences_a_burst_of_accs(self, adapter):
        with adapter.open_group({"a": (8, 8)}, n_clients=1) as g:
            client = g.connect(0)
            for i in range(8):
                client.acc("a", (i, slice(None)), np.full((8,), float(i + 1)))
            client.quiet()  # after the fence, every prior acc is applied
            out = np.asarray(g.parent.get("a"))
            for i in range(8):
                assert np.all(out[i] == float(i + 1))

    # ---- decomposition invariants -------------------------------------------
    @pytest.mark.parametrize("n_workers", [1, 2, 3, 4])
    def test_owned_windows_disjoint_and_cover(self, adapter, n_workers):
        problem = make_random_problem(5, 3, 2, seed=23)
        from repro.core.plans import SigmaPlan

        plan = SigmaPlan.for_problem(problem)
        decomp = build_sigma_decomposition(plan, n_workers, BLOCK_COLUMNS)
        na, nb = plan.shape

        # same-spin round-robin: every column owned by exactly one rank
        for blocks, n_cols in ((decomp.aa_blocks, nb), (decomp.bb_blocks, na)):
            owned = [
                col
                for rank in range(n_workers)
                for lo, hi in blocks[rank::n_workers]
                for col in range(lo, hi)
            ]
            assert sorted(owned) == list(range(n_cols))
            assert len(owned) == len(set(owned))

        # mixed-spin task spans: disjoint owned windows covering all columns
        spans = [decomp.task_column_span(t) for t in range(len(decomp.tasks))]
        cols = [c for lo, hi in spans for c in range(lo, hi)]
        assert sorted(cols) == list(range(nb))
        assert len(cols) == len(set(cols))

    # ---- the bitwise sigma contract -----------------------------------------
    @pytest.mark.parametrize("n_workers", [1, 2, 3, 4])
    def test_sigma_bitwise_identical_to_serial(self, adapter, n_workers):
        problem = make_random_problem(5, 2, 2, seed=29)
        C = problem.random_vector(1)
        ref = sigma_dgemm(problem, C, block_columns=BLOCK_COLUMNS)
        with ParallelSigma(
            problem,
            backend=adapter.name,
            n_workers=n_workers,
            block_columns=BLOCK_COLUMNS,
        ) as ps:
            out = ps(C)
            assert np.array_equal(out, ref), (
                f"{adapter.name} sigma not bitwise-equal to serial "
                f"sigma_dgemm at n_workers={n_workers}"
            )
            # and stable across repeated evaluations on the same pool
            assert np.array_equal(ps(C), ref)
