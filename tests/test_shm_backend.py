"""Unit tests for the shared-memory execution backend and its comm layer."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core import FCISolver, HamiltonianOperator, sigma_dgemm
from repro.parallel import ParallelSigma, backend_names, make_backend
from repro.parallel.backend import ShmBackend
from repro.parallel.shm import ShmComm
from repro.obs.tracer import ChromeTracer
from tests.backend_conformance import assert_no_new_leaks, leak_snapshot
from tests.helpers import make_random_problem


@pytest.fixture(scope="module", autouse=True)
def no_leaked_backend_resources_module():
    """Module-scoped leak gate: the shm pool is a module fixture, so the
    /dev/shm segment scan runs after the whole file tears down."""
    before = leak_snapshot()
    yield
    assert_no_new_leaks(before)


@pytest.fixture(scope="module")
def problem():
    return make_random_problem(5, 3, 2, seed=41)


@pytest.fixture(scope="module")
def shm_sigma(problem):
    ps = ParallelSigma(problem, backend="shm", n_workers=2, block_columns=4)
    yield ps
    ps.close()


class TestShmComm:
    """The five DDI/SHMEM verbs on real shared memory, parent-side."""

    @pytest.fixture()
    def comm(self):
        # n_ranks=0: the barrier has only the parent as a party, so every
        # verb can be exercised single-process
        ctx = mp.get_context("spawn")
        comm = ShmComm(ctx, arrays={"a": (3, 4), "b": (2,)}, n_ranks=0)
        yield comm
        comm.close()

    def test_get_returns_writable_zeroed_window(self, comm):
        view = comm.get("a")
        assert view.shape == (3, 4)
        assert np.all(view == 0.0)
        view[1, 2] = 7.0  # a live window, not a copy
        assert comm.get("a", (1, slice(2, 3)))[0] == 7.0

    def test_acc_accumulates(self, comm):
        comm.acc("b", slice(None), np.array([1.0, 2.0]))
        comm.acc("b", slice(0, 1), np.array([0.5]))
        assert np.array_equal(comm.get("b"), [1.5, 2.0])

    def test_fetch_add_returns_old_value(self, comm):
        assert comm.fetch_add() == 0
        assert comm.fetch_add(5) == 1
        assert comm.fetch_add() == 6
        comm.reset_counter()
        assert comm.fetch_add() == 0

    def test_barrier_and_quiet(self, comm):
        comm.barrier(timeout=1.0)  # parent is the only party
        comm.quiet()  # documented no-op

    def test_zero(self, comm):
        comm.get("a")[...] = 3.0
        comm.zero("a")
        assert np.all(comm.get("a") == 0.0)

    def test_attach_maps_same_segments(self, comm):
        comm.get("a")[0, 0] = 42.0
        attached = ShmComm.attach(comm.spec())
        try:
            assert attached.get("a")[0, 0] == 42.0
            attached.get("a")[0, 1] = 7.0
            assert comm.get("a")[0, 1] == 7.0  # same physical memory
        finally:
            attached.close()

    def test_close_is_idempotent(self):
        ctx = mp.get_context("spawn")
        comm = ShmComm(ctx, arrays={"a": (2, 2)}, n_ranks=0)
        comm.close()
        comm.close()


class TestBackendRegistry:
    def test_names(self):
        names = backend_names()
        assert "simulated" in names and "shm" in names

    def test_unknown_backend_lists_registry(self):
        with pytest.raises(ValueError, match="simulated"):
            make_backend("mpi")

    def test_shm_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            ShmBackend(n_workers=-1)

    def test_parallel_sigma_rejects_unknown_backend(self, problem):
        with pytest.raises(ValueError, match="registered backends"):
            ParallelSigma(problem, backend="gpu")


class TestShmValidation:
    """Simulated-only features must be refused, not silently ignored."""

    def test_rejects_fault_injection(self, problem):
        from repro.faults import FaultInjector, FaultPlan

        faults = FaultInjector(FaultPlan())
        with pytest.raises(ValueError, match="simulated"):
            ParallelSigma(problem, backend="shm", faults=faults)

    def test_rejects_resilient_mode(self, problem):
        with pytest.raises(ValueError, match="simulated"):
            ParallelSigma(problem, backend="shm", resilient=True)

    def test_rejects_virtual_time_tracer(self, problem):
        with pytest.raises(ValueError, match="tracing"):
            ParallelSigma(problem, backend="shm", tracer=ChromeTracer())

    def test_solver_rejects_parallel_moc(self, h2):
        with pytest.raises(ValueError, match="DGEMM"):
            FCISolver(h2, algorithm="moc", parallel="shm")

    def test_solver_rejects_unknown_parallel_backend(self, h2):
        with pytest.raises(ValueError, match="backend"):
            FCISolver(h2, parallel="cluster")


class TestShmReport:
    def test_report_measures_real_work(self, problem, shm_sigma):
        before = shm_sigma.report.n_calls
        shm_sigma(problem.random_vector(0))
        report = shm_sigma.report
        assert report.n_calls == before + 1
        assert report.elapsed > 0.0
        assert report.flops > 0.0
        assert report.bytes_communicated > 0.0
        for phase in ("one-electron", "alpha-alpha", "beta-beta", "alpha-beta"):
            assert phase in report.phase_times
        assert report.gflops_rate() > 0.0

    def test_one_stat_per_worker(self, problem, shm_sigma):
        run = shm_sigma.backend.run_sigma(shm_sigma, problem.random_vector(1))
        assert len(run.stats) == 2
        assert all(s.finish_time >= 0.0 for s in run.stats)


class TestShmLifecycle:
    def test_context_manager_stops_workers(self, problem):
        with ParallelSigma(problem, backend="shm", n_workers=2) as ps:
            ps(problem.random_vector(0))
            procs = list(ps.backend._engine._procs)
            assert all(p.is_alive() for p in procs)
        assert all(not p.is_alive() for p in procs)

    def test_worker_death_raises(self, problem):
        with ParallelSigma(problem, backend="shm", n_workers=2) as ps:
            ps(problem.random_vector(0))
            ps.backend._engine._procs[0].terminate()
            ps.backend._engine._procs[0].join(timeout=5.0)
            with pytest.raises(RuntimeError, match="worker 0"):
                ps(problem.random_vector(1))

    def test_close_is_idempotent(self, problem):
        ps = ParallelSigma(problem, backend="shm", n_workers=1)
        ps(problem.random_vector(0))
        ps.close()
        ps.close()

    def test_shape_validation(self, shm_sigma):
        with pytest.raises(ValueError):
            shm_sigma(np.zeros((2, 2)))


class TestKernelProtocol:
    """ParallelSigma(shm) is a drop-in SigmaKernel."""

    def test_name(self, shm_sigma):
        assert shm_sigma.name == "parallel-shm"

    def test_apply_is_bitwise_serial(self, problem, shm_sigma):
        C = problem.random_vector(3)
        counters = shm_sigma.make_counters()
        out = shm_sigma.apply(C, counters)
        assert np.array_equal(out, sigma_dgemm(problem, C, block_columns=4))
        assert counters.dgemm_flops > 0
        assert counters.gather_elements > 0

    def test_apply_batch_matches_loop(self, problem, shm_sigma):
        C = np.stack([problem.random_vector(s) for s in (4, 5, 6)])
        batch = shm_sigma.apply_batch(C, shm_sigma.make_counters())
        for i in range(3):
            assert np.array_equal(batch[i], shm_sigma.apply(C[i]))

    def test_drops_into_hamiltonian_operator(self, problem, shm_sigma):
        op = HamiltonianOperator(problem, shm_sigma)
        C = problem.random_vector(7)
        assert np.array_equal(op(C), sigma_dgemm(problem, C, block_columns=4))


class TestSolverIntegration:
    def test_fci_energy_identical_across_backends(self, h2):
        serial = FCISolver(h2).run()
        shm = FCISolver(h2, parallel={"backend": "shm", "n_workers": 2}).run()
        assert shm.energy == serial.energy
        assert shm.solve.converged

    def test_parallel_dict_options_forwarded(self, h2):
        res = FCISolver(h2, parallel={"backend": "shm", "n_workers": 1}).run()
        assert res.solve.converged
