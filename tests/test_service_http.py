"""Tests of the HTTP daemon and CLI client over a live FCIService."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service import FCIService
from repro.service.cli import build_parser, main as cli_main
from repro.service.httpd import ServiceHTTPServer

GOLDEN_H2 = -1.137275943785

H2_SPEC = {
    "atoms": [["H", [0.0, 0.0, 0.0]], ["H", [0.0, 0.0, 1.4]]],
    "basis": "sto-3g",
}
WATER_SPEC = {
    "atoms": [
        ["O", [0.0, 0.0, 0.2217]],
        ["H", [0.0, 1.4309, -0.8867]],
        ["H", [0.0, -1.4309, -0.8867]],
    ],
    "basis": "sto-3g",
}


def _call(method: str, url: str, payload=None):
    """(status code, decoded body) for one JSON request; no raising on 4xx."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            code, body = resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        code, body = exc.code, exc.read().decode()
    try:
        return code, json.loads(body)
    except json.JSONDecodeError:
        return code, body


@pytest.fixture()
def server(tmp_path):
    with FCIService(tmp_path / "svc", max_workers=1) as svc:
        with ServiceHTTPServer(svc, port=0) as srv:
            yield srv


class TestHTTPEndpoints:
    def test_healthz_and_stats(self, server):
        assert _call("GET", f"{server.url}/v1/healthz") == (200, {"ok": True})
        code, stats = _call("GET", f"{server.url}/v1/stats")
        assert code == 200
        assert stats["workers"] == 1
        assert "cache" in stats

    def test_submit_poll_result_and_cache_hit(self, server):
        code, out = _call("POST", f"{server.url}/v1/jobs", {"spec": H2_SPEC})
        assert code == 202
        assert out["deduped"] is False and out["cache_hit"] is False
        key = out["key"]

        code, res = _call("GET", f"{server.url}/v1/jobs/{key}/result?wait=120")
        assert code == 200
        assert abs(res["result"]["energy"] - GOLDEN_H2) < 1e-8

        code, status = _call("GET", f"{server.url}/v1/jobs/{key}")
        assert code == 200 and status["state"] == "completed"

        # identical resubmission: answered from the result cache, 200 not 202
        code, again = _call("POST", f"{server.url}/v1/jobs", H2_SPEC)  # bare spec
        assert code == 200
        assert again["key"] == key and again["cache_hit"] is True

        code, listing = _call("GET", f"{server.url}/v1/jobs")
        assert code == 200 and len(listing["jobs"]) == 1

    def test_telemetry_stream_is_ndjson(self, server):
        _, out = _call("POST", f"{server.url}/v1/jobs", {"spec": H2_SPEC})
        _call("GET", f"{server.url}/v1/jobs/{out['key']}/result?wait=120")
        code, body = _call("GET", f"{server.url}/v1/jobs/{out['key']}/telemetry")
        assert code == 200
        events = [json.loads(ln) for ln in body.splitlines() if ln]
        assert events
        assert all(e["job"] == out["key"] for e in events)
        assert [e["iteration"] for e in events] == list(range(1, len(events) + 1))

    def test_timeout_then_resume_over_http(self, server):
        code, out = _call(
            "POST", f"{server.url}/v1/jobs", {"spec": WATER_SPEC, "timeout": 0.0}
        )
        assert code == 202
        key = out["key"]
        # wait for the interruption: result reports 409 with the state
        code, res = _call("GET", f"{server.url}/v1/jobs/{key}/result?wait=120")
        assert code in (409, 408)
        code, status = _call("GET", f"{server.url}/v1/jobs/{key}")
        assert status["state"] == "timed_out"
        assert "checkpoint" in status  # resumable jobs expose their checkpoint

        code, out = _call("POST", f"{server.url}/v1/jobs/{key}/resume", {})
        assert code == 202 and out["state"] == "queued"
        # the retry keeps the zero budget (resume keeps budgets by default),
        # so it times out again at iteration >= its checkpoint; resume via
        # the programmatic API lifts it and the job completes
        server.service.wait(key, timeout=120)
        server.service.resume(key, timeout=None)
        code, res = _call("GET", f"{server.url}/v1/jobs/{key}/result?wait=120")
        assert code == 200

    def test_cancel_queued_job_over_http(self, tmp_path):
        with FCIService(tmp_path / "svc2", max_workers=1, autostart=False) as svc:
            with ServiceHTTPServer(svc, port=0) as srv:
                _, out = _call("POST", f"{srv.url}/v1/jobs", {"spec": H2_SPEC})
                key = out["key"]
                code, res = _call("POST", f"{srv.url}/v1/jobs/{key}/cancel", {})
                assert code == 200 and res["state"] == "cancelled"

    def test_error_mapping(self, server):
        # 404 unknown job; 404 unknown route; 400 bad spec; 400 bad priority
        code, _ = _call("GET", f"{server.url}/v1/jobs/deadbeef")
        assert code == 404
        code, _ = _call("GET", f"{server.url}/v1/nope")
        assert code == 404
        code, out = _call("POST", f"{server.url}/v1/jobs", {"spec": {"atoms": []}})
        assert code == 400 and "atoms" in out["error"]
        code, out = _call(
            "POST", f"{server.url}/v1/jobs", {"spec": H2_SPEC, "priority": "yesterday"}
        )
        assert code == 400 and "priority" in out["error"]
        code, _ = _call("POST", f"{server.url}/v1/jobs", {})
        assert code == 400

    def test_illegal_transition_maps_to_409_not_500(self, server, monkeypatch):
        """A JobStateError escaping a handler is a client-state conflict, not
        an internal error - it must surface as 409, never a 500."""
        from repro.service import JobStateError

        code, out = _call("POST", f"{server.url}/v1/jobs", {"spec": H2_SPEC})
        key = out["key"]
        _call("GET", f"{server.url}/v1/jobs/{key}/result?wait=120")

        def boom(*_a, **_k):
            raise JobStateError("completed -> running is not a legal transition")

        monkeypatch.setattr(server.service, "resume", boom)
        code, out = _call("POST", f"{server.url}/v1/jobs/{key}/resume")
        assert code == 409
        assert "JobStateError" in out["error"]

    def test_reap_endpoint(self, server):
        code, out = _call("POST", f"{server.url}/v1/reap")
        assert code == 200
        assert out == {"reaped": [], "respawned": 0}

    def test_backpressure_maps_to_429(self, tmp_path):
        svc = FCIService(tmp_path / "svc3", max_workers=1, queue_size=1, autostart=False)
        try:
            with ServiceHTTPServer(svc, port=0) as srv:
                code, _ = _call("POST", f"{srv.url}/v1/jobs", {"spec": H2_SPEC})
                assert code == 202
                code, out = _call("POST", f"{srv.url}/v1/jobs", {"spec": WATER_SPEC})
                assert code == 429 and "full" in out["error"]
        finally:
            svc.close()


class TestCLI:
    def test_parser_covers_all_subcommands(self):
        parser = build_parser()
        for argv in (
            ["serve", "--port", "0"],
            ["submit", "--atom", "H 0 0 0"],
            ["status", "k"],
            ["result", "k", "--wait", "5"],
            ["telemetry", "k"],
            ["cancel", "k"],
            ["resume", "k"],
            ["stats"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_submit_status_stats_round_trip(self, server, capsys):
        rc = cli_main(
            [
                "submit",
                "--url",
                server.url,
                "--atom",
                "H 0 0 0",
                "--atom",
                "H 0 0 1.4",
                "--wait",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "E = -1.137275943785" in out
        key = json.loads(out.splitlines()[0])["key"]

        assert cli_main(["status", key, "--url", server.url]) == 0
        assert json.loads(capsys.readouterr().out)["state"] == "completed"

        assert cli_main(["stats", "--url", server.url]) == 0
        assert json.loads(capsys.readouterr().out)["solves_executed"] == 1

    def test_client_errors_exit_nonzero(self, server):
        with pytest.raises(SystemExit, match="404"):
            cli_main(["status", "deadbeef", "--url", server.url])
        with pytest.raises(SystemExit, match="--atom"):
            cli_main(["submit", "--url", server.url])
