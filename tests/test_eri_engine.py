"""Differential and screening tests for the batched ERI engine.

The batched :class:`repro.integrals.IntegralEngine` replaced the scalar
primitive-quad quadruple loop as the production ERI path.  The scalar loop
is retained verbatim as :func:`eri_reference` and acts as the oracle here:

* the engine must agree with the oracle to 1e-12 across sto-3g and 6-31g
  bases, including l > 0 shells,
* Schwarz screening at tau = 0 must be *bitwise* identical to the
  unscreened assembly (the screen may only ever skip quartets),
* when screening does skip quartets, the deviation must stay below tau,
* the audited quartet/FLOP counters must match the closed-form model in
  ``repro.obs.accounting`` exactly.
"""

import numpy as np
import pytest

from repro.basis import BasisSet, Shell
from repro.integrals import (
    IntegralEngine,
    eri,
    eri_reference,
    kinetic,
    nuclear_attraction,
    overlap,
)
from repro.integrals.two_electron import _quartet_batched
from repro.obs import MetricsRegistry
from repro.obs.accounting import eri_quartet_flops, mo_transform_flops
from repro.scf import compute_ao_integrals, rhf, transform


def s_basis(centers_alphas):
    return BasisSet(
        [Shell(0, [a], [1.0], np.asarray(c, dtype=float)) for c, a in centers_alphas]
    )


def far_dimer_basis(R=40.0):
    """Two tight s shells separated far enough that cross pairs vanish."""
    return s_basis([((0, 0, 0), 1.3), ((0, 0, R), 0.9)])


class TestDifferentialOracle:
    @pytest.mark.parametrize(
        "mol_fixture,basis_name",
        [
            ("h2", "sto-3g"),
            ("water", "sto-3g"),
            ("water", "6-31g"),  # s+p shells, general contractions
            ("oxygen_triplet", "6-31g"),
        ],
    )
    def test_engine_matches_scalar_oracle(self, request, mol_fixture, basis_name):
        basis = request.getfixturevalue(mol_fixture).basis(basis_name)
        g_ref = eri_reference(basis)
        g_new = IntegralEngine(basis).eri()
        assert np.abs(g_new - g_ref).max() <= 1e-12

    def test_quartet_kernel_matches_on_p_shells(self, water):
        # block-level differential: every quartet, not just the assembled g
        from repro.integrals.two_electron import (
            _flat_pairs,
            _quartet_reference,
            build_shell_pairs,
        )

        pairs = _flat_pairs(build_shell_pairs(water.basis("6-31g")))
        for pi, bra in enumerate(pairs):
            for ket in pairs[: pi + 1]:
                ref = _quartet_reference(bra, ket)
                new = _quartet_batched(bra, ket)
                assert np.abs(new - ref).max() <= 1e-13


class TestSchwarzScreening:
    def test_tau_zero_bitwise_identical(self, water):
        basis = water.basis("sto-3g")
        g_unscreened = IntegralEngine(basis).eri()
        g_tau0 = IntegralEngine(basis, screen_threshold=0.0).eri()
        assert np.array_equal(g_tau0, g_unscreened)  # bitwise

    def test_bounds_are_rigorous(self, h2):
        # bounds[i] * bounds[j] must dominate every element of quartet (i|j)
        engine = IntegralEngine(h2.basis("sto-3g"))
        pairs, bounds = engine.shell_pairs, engine.schwarz
        for pi, bra in enumerate(pairs):
            for ki, ket in enumerate(pairs[: pi + 1]):
                block = np.abs(_quartet_batched(bra, ket))
                assert block.max() <= bounds[pi] * bounds[ki] * (1 + 1e-12)

    def test_screening_skips_far_quartets_within_tau(self):
        basis = far_dimer_basis()
        tau = 1e-10
        engine = IntegralEngine(basis, screen_threshold=tau)
        g = engine.eri()
        assert engine.stats.quartets_screened > 0
        # every skipped quartet element is rigorously below tau
        assert np.abs(g - eri_reference(basis)).max() <= tau

    def test_screened_count_monotonic_in_tau(self):
        basis = far_dimer_basis()
        screened = []
        for tau in (0.0, 1e-14, 1e-8, 1e-2):
            engine = IntegralEngine(basis, screen_threshold=tau)
            engine.eri()
            screened.append(engine.stats.quartets_screened)
        assert screened[0] == 0
        assert screened == sorted(screened)

    def test_negative_threshold_rejected(self, h2):
        with pytest.raises(ValueError):
            IntegralEngine(h2.basis("sto-3g"), screen_threshold=-1e-8)

    def test_module_level_wrapper(self, h2):
        basis = h2.basis("sto-3g")
        assert np.array_equal(eri(basis), eri(basis, screen_threshold=0.0))


class TestAccounting:
    def test_stats_match_closed_form_flops(self, water):
        engine = IntegralEngine(water.basis("6-31g"))
        engine.eri()
        pairs = engine.shell_pairs
        expected = 0.0
        for pi, bra in enumerate(pairs):
            for ket in pairs[: pi + 1]:
                expected += eri_quartet_flops(
                    bra.coefs.size,
                    ket.coefs.size,
                    bra.ncomp,
                    ket.ncomp,
                    bra.nherm,
                    ket.nherm,
                )
        assert engine.stats.flops == expected
        npairs = len(pairs)
        assert engine.stats.quartets_total == npairs * (npairs + 1) // 2
        assert engine.stats.quartets_computed == engine.stats.quartets_total

    def test_registry_counters_published(self, water):
        reg = MetricsRegistry()
        engine = IntegralEngine(water.basis("sto-3g"), registry=reg)
        engine.eri()
        stats = engine.stats
        assert reg.get("integrals.eri.assemblies").value == 1.0
        assert reg.get("integrals.quartets.computed").value == stats.quartets_computed
        assert reg.get("integrals.quartets.screened").value == stats.quartets_screened
        assert reg.get("integrals.eri.flops").value == stats.flops
        assert stats.as_dict()["flops"] == stats.flops

    def test_mo_transform_accounted(self, h2):
        reg = MetricsRegistry()
        ints = compute_ao_integrals(h2, "sto-3g", registry=reg)
        scf = rhf(h2, ints)
        transform(ints, scf.mo_coeff)  # falls back to the engine's registry
        n = ints.nbf
        assert reg.get("integrals.mo_transform.calls").value == 1.0
        assert reg.get("integrals.mo_transform.flops").value == mo_transform_flops(n, n)


class TestEngineCaching:
    def test_eri_memoized(self, h2):
        engine = IntegralEngine(h2.basis("sto-3g"))
        assert engine.eri() is engine.eri()
        assert engine.stats.quartets_total > 0  # tallied once, not twice

    def test_one_electron_matches_module_functions(self, water):
        basis = water.basis("6-31g")
        engine = IntegralEngine(basis)
        charges = water.charges()
        assert np.array_equal(engine.overlap(), overlap(basis))
        assert np.array_equal(engine.kinetic(), kinetic(basis))
        assert np.array_equal(
            engine.nuclear_attraction(charges), nuclear_attraction(basis, charges)
        )
        # the pair-table cache is shared across the one-electron builds
        assert len(engine._one_electron_tables) > 0
        assert engine.overlap() is engine.overlap()

    def test_compute_ao_integrals_attaches_engine(self, h2):
        ints = compute_ao_integrals(h2, "sto-3g")
        assert isinstance(ints.engine, IntegralEngine)
        assert ints.g is ints.engine.eri()  # shared, not recomputed

    def test_prebuilt_engine_reused(self, h2):
        engine = IntegralEngine(h2.basis("sto-3g"))
        g = engine.eri()
        ints = compute_ao_integrals(h2, "sto-3g", engine=engine)
        assert ints.engine is engine
        assert ints.g is g
