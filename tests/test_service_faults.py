"""Service-layer fault injection and corruption handling.

Exercises the :class:`repro.faults.ServiceFaultInjector` hooks end-to-end
(worker-thread death -> reap -> resume, torn journal writes -> restart
recovery, result-file rot -> CRC miss, telemetry-stream I/O errors ->
solve unaffected) and pins the corruption discipline of every durable
reader: ``Checkpointer.peek/load/restore``, ``ArtifactCache``, and the
job-journal reader turn damage into a counted miss - never a crash, never
a served garbage value.  Also audits the JobRecord lifecycle races the
chaos runs provoke: cancel-after-complete, an outcome racing a reap, and
double resume.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.checkpoint import Checkpointer, CheckpointError, CheckpointState
from repro.faults import ServiceFaultInjector, ServiceFaultPlan, WorkerCrashed
from repro.service import FCIService, JobSpec, JobState
from repro.service.cache import ArtifactCache

GOLDEN_H2 = -1.137275943785  # tests/test_golden_energies.py, 1e-8


def spec_for(mol, **options) -> JobSpec:
    return JobSpec.from_molecule(mol, "sto-3g", **options)


def _wait_for(predicate, timeout=30.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


# -- the plan / injector primitives -------------------------------------------


class TestServiceFaultPlan:
    def test_default_is_idle(self):
        plan = ServiceFaultPlan()
        assert not plan.any_faults()

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ServiceFaultPlan(worker_crash=1.5)
        with pytest.raises(ValueError):
            ServiceFaultPlan(result_corrupt_mode="shred")

    def test_roundtrip(self):
        plan = ServiceFaultPlan(
            seed=9, worker_crash=0.3, result_corrupt=0.5, result_corrupt_mode="truncate"
        )
        back = ServiceFaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert back.to_dict() == plan.to_dict()

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ServiceFaultPlan.from_dict({"seed": 0, "gremlins": 1.0})

    def test_same_seed_same_decisions(self):
        a = ServiceFaultInjector(ServiceFaultPlan(seed=5, worker_crash=0.5))
        b = ServiceFaultInjector(ServiceFaultPlan(seed=5, worker_crash=0.5))
        assert [a.worker_crashes() for _ in range(50)] == [
            b.worker_crashes() for _ in range(50)
        ]

    def test_idle_hooks_never_fire_and_count_nothing(self, tmp_path):
        fi = ServiceFaultInjector(ServiceFaultPlan())
        path = tmp_path / "x.npz"
        path.write_bytes(b"payload-bytes")
        assert not fi.worker_crashes()
        assert not fi.io_fails(0)
        assert not fi.telemetry_write_fails()
        assert not fi.corrupt_result(str(path))
        assert path.read_bytes() == b"payload-bytes"
        assert not fi.torn_journal_write(str(path), b"{}")
        assert fi.counts() == {}


class TestCorruptResultModes:
    def _payload(self, tmp_path):
        path = tmp_path / "r.npz"
        path.write_bytes(os.urandom(256))
        return path

    def test_truncate(self, tmp_path):
        path = self._payload(tmp_path)
        fi = ServiceFaultInjector(ServiceFaultPlan(result_corrupt=1.0, result_corrupt_mode="truncate"))
        assert fi.corrupt_result(str(path))
        assert path.stat().st_size == 128
        assert fi.counts()["faults.injected.result_corrupt.truncate"] == 1

    def test_header_only(self, tmp_path):
        path = self._payload(tmp_path)
        fi = ServiceFaultInjector(ServiceFaultPlan(result_corrupt=1.0, result_corrupt_mode="header_only"))
        assert fi.corrupt_result(str(path))
        assert path.stat().st_size <= 6

    def test_bitflip(self, tmp_path):
        path = self._payload(tmp_path)
        before = path.read_bytes()
        fi = ServiceFaultInjector(ServiceFaultPlan(result_corrupt=1.0, result_corrupt_mode="bitflip"))
        assert fi.corrupt_result(str(path))
        after = path.read_bytes()
        assert len(after) == len(before)
        assert sum(a != b for a, b in zip(after, before)) == 1


# -- durable readers under corruption -----------------------------------------


class TestCheckpointerCorruption:
    def _saved(self, tmp_path):
        cp = Checkpointer(tmp_path / "c.npz")
        cp.save(
            CheckpointState(
                method="auto",
                iteration=3,
                n_sigma=3,
                vector=np.arange(8.0),
                energies=[-1.0, -1.1, -1.11],
            )
        )
        return cp

    def test_truncated_file(self, tmp_path):
        cp = self._saved(tmp_path)
        blob = open(cp.path, "rb").read()
        with open(cp.path, "wb") as f:
            f.write(blob[: len(blob) // 2])
        assert cp.peek() is None  # miss, not a crash
        with pytest.raises(CheckpointError):
            cp.load()
        assert cp.restore("auto") is None  # degraded to fresh start

    def test_header_only_garbage(self, tmp_path):
        cp = self._saved(tmp_path)
        with open(cp.path, "wb") as f:
            f.write(b"PK\x03\x04")  # a zip magic and nothing else
        assert cp.peek() is None
        assert cp.restore("auto") is None

    def test_crc_mismatch(self, tmp_path):
        cp = self._saved(tmp_path)
        blob = bytearray(open(cp.path, "rb").read())
        blob[-20] ^= 0xFF  # damage inside the vector payload
        with open(cp.path, "wb") as f:
            f.write(bytes(blob))
        # header may still parse; the verified paths must reject it
        with pytest.raises(CheckpointError):
            cp.load()
        assert cp.restore("auto") is None

    def test_peek_failure_is_counted(self, tmp_path):
        from repro.obs import Telemetry

        tel = Telemetry()
        cp = Checkpointer(tmp_path / "c.npz", telemetry=tel)
        cp.save(CheckpointState(method="auto", iteration=1, n_sigma=1, vector=np.ones(4)))
        with open(cp.path, "wb") as f:
            f.write(b"torn")
        assert cp.peek() is None
        assert tel.registry.counter("solver.checkpoint.peek_failed").value == 1


class TestArtifactCacheCorruption:
    def _cache_with_result(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put_result("k1", {"energy": -1.5}, np.arange(16.0))
        cache._results_mem.clear()  # force the next get through the disk path
        return cache, cache._result_path("k1")

    @pytest.mark.parametrize("damage", ["truncate", "bitflip", "header_only"])
    def test_damage_is_a_counted_miss(self, tmp_path, damage):
        cache, path = self._cache_with_result(tmp_path)
        blob = bytearray(open(path, "rb").read())
        if damage == "truncate":
            blob = blob[: len(blob) // 2]
        elif damage == "header_only":
            blob = blob[:4]
        else:
            # flip a byte *inside the stored vector payload* (zip structure
            # slack is not CRC-protected, so a random offset may be ignored)
            offset = blob.find(np.arange(16.0).tobytes())
            assert offset > 0
            blob[offset + 8] ^= 0x40
        with open(path, "wb") as f:
            f.write(bytes(blob))
        assert cache.get_result("k1") is None
        assert cache.counts["result_corrupt"] == 1
        assert not os.path.exists(path)  # the rotten file is dropped

    def test_intact_result_still_served(self, tmp_path):
        cache, _ = self._cache_with_result(tmp_path)
        meta, vec = cache.get_result("k1")
        assert meta["energy"] == -1.5
        assert np.array_equal(vec, np.arange(16.0))


# -- the service under injected faults ----------------------------------------


class TestWorkerCrashAndReap:
    def test_crashed_worker_job_is_reaped_and_resumed(self, tmp_path, h2):
        fi = ServiceFaultInjector(ServiceFaultPlan(worker_crash=1.0))
        with FCIService(tmp_path / "svc", max_workers=1, service_faults=fi) as svc:
            job = svc.submit(spec_for(h2))
            # the worker dies at its first checkpoint save: the thread exits,
            # the record is stuck RUNNING, and no outcome ever arrives
            assert _wait_for(lambda: not svc.scheduler.worker_alive(0))
            assert svc.get(job.key).state == JobState.RUNNING
            with pytest.raises(TimeoutError):
                svc.wait(job.key, timeout=0.2)

            out = svc.reap()
            assert out["reaped"] == [job.key]
            assert out["respawned"] == 1
            rec = svc.get(job.key)
            assert rec.state == JobState.PREEMPTED
            assert "worker died" in rec.error
            assert svc.scheduler.worker_alive(0)

            # heal the weather and resume: the checkpoint carries the job home
            svc.service_faults = None
            svc.resume(job.key)
            assert abs(svc.result(job.key, timeout=300)["energy"] - GOLDEN_H2) < 1e-8
            stats = svc.stats()
            assert stats["worker_crashes"] >= 1
            assert stats["worker_respawns"] >= 1
            assert stats["recovery"]["reaped"] == 1

    def test_reap_without_casualties_is_a_noop(self, tmp_path, h2):
        with FCIService(tmp_path / "svc", max_workers=1) as svc:
            job = svc.submit(spec_for(h2))
            svc.wait(job.key, timeout=300)
            out = svc.reap()
            assert out == {"reaped": [], "respawned": 0}


class TestTornJournals:
    def test_restart_skips_torn_journal_and_counts_it(self, tmp_path, h2):
        fi = ServiceFaultInjector(ServiceFaultPlan(journal_torn_write=1.0))
        svc = FCIService(tmp_path / "svc", max_workers=1, service_faults=fi, autostart=False)
        job = svc.submit(spec_for(h2))
        svc.stop()
        # every journal write tore: the file on disk is half a JSON blob
        with open(svc._journal_path(job.key)) as f:
            with pytest.raises(json.JSONDecodeError):
                json.load(f)
        assert fi.counts()["faults.injected.journal_torn_write"] >= 1

        svc2 = FCIService(tmp_path / "svc", max_workers=1, autostart=False)
        try:
            assert svc2.recovery["skipped_journals"] == 1
            assert svc2.recovery["readopted"] == 0
            with pytest.raises(KeyError):
                svc2.get(job.key)  # never adopted from garbage
            # the job is simply resubmitted - same spec, same key
            assert svc2.submit(spec_for(h2)).key == job.key
        finally:
            svc2.stop()

    def test_intact_journals_unaffected(self, tmp_path, h2):
        svc = FCIService(tmp_path / "svc", max_workers=1, autostart=False)
        job = svc.submit(spec_for(h2))
        svc.stop()
        svc2 = FCIService(tmp_path / "svc", max_workers=1, autostart=False)
        try:
            assert svc2.recovery["skipped_journals"] == 0
            assert svc2.get(job.key).state == JobState.PREEMPTED  # re-adopted
            assert svc2.recovery["readopted"] == 1
        finally:
            svc2.stop()


class TestResultRot:
    def test_corrupted_result_is_cache_miss_on_restart(self, tmp_path, h2):
        fi = ServiceFaultInjector(
            ServiceFaultPlan(result_corrupt=1.0, result_corrupt_mode="truncate")
        )
        with FCIService(tmp_path / "svc", max_workers=1, service_faults=fi) as svc:
            job = svc.submit(spec_for(h2))
            result = svc.result(job.key, timeout=300)
            assert abs(result["energy"] - GOLDEN_H2) < 1e-8  # memory tier intact

        # restart: the disk copy is rot; the cache must miss, count, re-solve
        with FCIService(tmp_path / "svc", max_workers=1) as svc2:
            assert svc2.cache.get_result(job.key) is None
            assert svc2.cache.counts["result_corrupt"] == 1
            resub = svc2.submit(spec_for(h2))
            assert resub.key == job.key
            assert not resub.cache_hit
            assert abs(svc2.result(job.key, timeout=300)["energy"] - GOLDEN_H2) < 1e-8

    def test_telemetry_blackout_does_not_kill_the_solve(self, tmp_path, h2):
        fi = ServiceFaultInjector(ServiceFaultPlan(telemetry_io_error=1.0))
        with FCIService(tmp_path / "svc", max_workers=1, service_faults=fi) as svc:
            job = svc.submit(spec_for(h2))
            result = svc.result(job.key, timeout=300)
            assert abs(result["energy"] - GOLDEN_H2) < 1e-8
            assert svc.executor.telemetry_io_errors > 0
            assert svc.iterations(job.key)  # in-memory events still flowed
            assert fi.counts()["faults.injected.telemetry_io_error"] >= 1


# -- JobRecord lifecycle audit ------------------------------------------------


class TestLifecycleRaces:
    def test_cancel_after_complete_is_benign(self, tmp_path, h2):
        with FCIService(tmp_path / "svc", max_workers=1) as svc:
            job = svc.submit(spec_for(h2))
            svc.wait(job.key, timeout=300)
            assert svc.cancel(job.key) == JobState.COMPLETED  # no transition, no raise
            assert svc.get(job.key).state == JobState.COMPLETED

    def test_double_resume_is_idempotent(self, tmp_path, h2):
        svc = FCIService(tmp_path / "svc", max_workers=1, autostart=False)
        try:
            job = svc.submit(spec_for(h2))
            svc.cancel(job.key)
            assert svc.get(job.key).state == JobState.CANCELLED
            first = svc.resume(job.key)
            assert first.state == JobState.QUEUED
            second = svc.resume(job.key)  # already on its way: a no-op
            assert second is first
            assert second.state == JobState.QUEUED
            assert len(svc.queue) == 1  # not enqueued twice
        finally:
            svc.stop()

    def test_late_outcome_loses_to_reap(self, tmp_path, h2):
        """A worker's result racing a reap/preempt must not clobber the
        record's terminal state (and must be counted, not raised)."""
        svc = FCIService(tmp_path / "svc", max_workers=1, autostart=False)
        try:
            job = svc.submit(spec_for(h2))
            rec = svc._begin(job.key, worker_id=0)
            assert rec.state == JobState.RUNNING
            rec.transition(JobState.PREEMPTED)  # the reap got there first
            svc._finish(rec, payload={"energy": -1.0})  # the late result arrives
            assert rec.state == JobState.PREEMPTED  # terminal state wins
            assert svc.late_finishes == 1
        finally:
            svc.stop()

    def test_worker_crashed_is_catchable_exception(self):
        assert issubclass(WorkerCrashed, Exception)
        assert not issubclass(WorkerCrashed, OSError)
