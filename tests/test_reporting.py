"""Tests for the text reporting helpers."""

from repro.analysis import format_series, format_table, paper_comparison


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["q"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_alignment(self):
        out = format_table(["col"], [[123456], [1]])
        rows = out.splitlines()[-2:]
        assert len(rows[0]) == len(rows[1])


class TestFormatSeries:
    def test_columns(self):
        out = format_series("P", [16, 32], {"moc": [1.0, 2.0], "dgemm": [0.5, 0.25]})
        assert "moc" in out and "dgemm" in out
        assert "16" in out and "32" in out


class TestPaperComparison:
    def test_three_columns(self):
        out = paper_comparison([("time/iter", 249.0, 250.1)])
        assert "paper" in out and "this repo" in out
