"""Tests for the Boys function."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrals import boys, boys_array


class TestBoysValues:
    def test_zero_argument(self):
        # F_n(0) = 1 / (2n + 1)
        for n in range(8):
            assert abs(boys(n, 0.0) - 1.0 / (2 * n + 1)) < 1e-14

    def test_f0_analytic(self):
        # F_0(x) = sqrt(pi/(4x)) erf(sqrt(x))
        for x in [0.1, 0.5, 1.0, 5.0, 20.0, 60.0]:
            ref = 0.5 * math.sqrt(math.pi / x) * math.erf(math.sqrt(x))
            assert abs(boys(0, x) - ref) < 1e-12 * max(1.0, ref)

    def test_large_x_asymptotic(self):
        # F_n(x) ~ (2n-1)!! / (2x)^n * 1/2 sqrt(pi/x)
        x = 200.0
        ref = 0.5 * math.sqrt(math.pi / x)
        assert abs(boys(0, x) - ref) < 1e-10

    def test_negative_argument_rejected(self):
        with pytest.raises(ValueError):
            boys(0, -1.0)
        with pytest.raises(ValueError):
            boys_array(2, -0.5)

    def test_quadrature_reference(self):
        # compare against direct numerical integration
        from scipy.integrate import quad

        for n in [0, 1, 3, 6]:
            for x in [0.3, 2.7, 11.0]:
                ref, _ = quad(lambda t: t ** (2 * n) * math.exp(-x * t * t), 0, 1)
                assert abs(boys(n, x) - ref) < 1e-10


class TestBoysArray:
    def test_matches_direct(self):
        for x in [0.0, 0.4, 3.0, 30.0]:
            arr = boys_array(6, x)
            for n in range(7):
                assert abs(arr[n] - boys(n, x)) < 1e-10

    def test_length(self):
        assert boys_array(4, 1.0).shape == (5,)

    @given(st.floats(min_value=0.0, max_value=100.0), st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_n(self, x, nmax):
        # F_{n+1}(x) <= F_n(x): integrand shrinks with n on [0, 1]
        arr = boys_array(nmax + 1, x)
        assert np.all(np.diff(arr) <= 1e-15)

    @given(st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, x):
        # 0 < F_0 <= 1
        v = boys(0, x)
        assert 0.0 < v <= 1.0

    @given(st.floats(min_value=1e-3, max_value=80.0), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_upward_recursion_consistency(self, x, n):
        # F_{n-1} = (2x F_n + e^-x) / (2n - 1)
        fn = boys(n, x)
        fn_minus = boys(n - 1, x)
        rec = (2 * x * fn + math.exp(-x)) / (2 * n - 1)
        assert abs(rec - fn_minus) < 1e-9 * max(1.0, abs(fn_minus))
