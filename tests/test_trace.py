"""Tests for trace-mode paper-scale simulation."""

import numpy as np
import pytest

from repro.parallel import (
    FCISpaceSpec,
    TraceFCI,
    atom_irreps,
    homonuclear_diatomic_irreps,
)
from repro.x1 import X1Config


@pytest.fixture(scope="module")
def c2_spec():
    return FCISpaceSpec(66, 4, 4, "D2h", homonuclear_diatomic_irreps(66), 0, name="C2")


@pytest.fixture(scope="module")
def o_spec():
    return FCISpaceSpec(43, 3, 5, "D2h", atom_irreps(43), 0, name="O")


class TestFCISpaceSpec:
    def test_c2_dimension_close_to_paper(self, c2_spec):
        dim = c2_spec.ci_dimension()
        assert abs(dim - 64_931_348_928) / 64_931_348_928 < 0.01

    def test_o_anion_dimension_close_to_paper(self):
        spec = FCISpaceSpec(43, 4, 5, "D2h", atom_irreps(43), 0, name="O-")
        assert abs(spec.ci_dimension() - 14_851_999_576) / 14_851_999_576 < 0.02

    def test_irrep_counts_sum(self, c2_spec):
        from math import comb

        assert abs(c2_spec.na_by_irrep.sum() - comb(66, 4)) < 1
        assert abs(c2_spec.nb_by_irrep.sum() - comb(66, 4)) < 1

    def test_pair_counts_sum(self, c2_spec):
        assert c2_spec.pair_by_irrep.sum() == 66 * 65 // 2
        assert c2_spec.orbpair_by_irrep.sum() == 66 * 66

    def test_trivial_group(self):
        spec = FCISpaceSpec(10, 3, 3)
        from math import comb

        assert spec.ci_dimension() == comb(10, 3) ** 2

    def test_irrep_length_validation(self):
        with pytest.raises(ValueError):
            FCISpaceSpec(10, 3, 3, "D2h", np.zeros(5, dtype=int))

    def test_describe(self, c2_spec):
        assert "C2" in c2_spec.describe()
        assert "Ag" in c2_spec.describe()


class TestTraceIteration:
    def test_phases_present(self, o_spec):
        res = TraceFCI(o_spec, X1Config(n_msps=16)).run_iteration()
        for phase in ["beta-beta", "alpha-beta", "vector-symm", "vector-ops", "disk-io"]:
            assert phase in res.phase_seconds, phase
        assert res.elapsed > 0

    def test_dgemm_scales_with_msps(self, o_spec):
        t = {}
        for P in [16, 64]:
            t[P] = TraceFCI(o_spec, X1Config(n_msps=P)).run_iteration()
        ratio = t[16].phase_seconds["alpha-beta"] / t[64].phase_seconds["alpha-beta"]
        assert 3.0 < ratio < 4.5  # near-ideal 4x

    def test_moc_same_spin_does_not_scale(self, o_spec):
        # the paper's central negative result: replicated same-spin work
        t16 = TraceFCI(o_spec, X1Config(n_msps=16), algorithm="moc").run_iteration()
        t128 = TraceFCI(o_spec, X1Config(n_msps=128), algorithm="moc").run_iteration()
        ratio = t16.phase_seconds["beta-beta"] / t128.phase_seconds["beta-beta"]
        assert ratio < 2.0  # far from the ideal 8x

    def test_dgemm_beats_moc(self, o_spec):
        moc = TraceFCI(o_spec, X1Config(n_msps=64), algorithm="moc").run_iteration()
        dg = TraceFCI(o_spec, X1Config(n_msps=64), algorithm="dgemm").run_iteration()
        assert dg.elapsed < moc.elapsed
        assert dg.phase_seconds["alpha-beta"] < moc.phase_seconds["alpha-beta"]

    def test_moc_communicates_more(self, o_spec):
        moc = TraceFCI(o_spec, X1Config(n_msps=32), algorithm="moc").run_iteration()
        dg = TraceFCI(o_spec, X1Config(n_msps=32), algorithm="dgemm").run_iteration()
        # paper: factor ~25 communication reduction for O
        assert moc.comm_bytes / dg.comm_bytes > 5

    def test_c2_headline_numbers(self, c2_spec):
        res = TraceFCI(c2_spec, X1Config(n_msps=432)).run_iteration()
        # shape targets from Table 3 (loose envelopes, not equalities)
        assert 150 < res.elapsed < 400  # paper 249 s
        assert 30 < res.phase_seconds["beta-beta"] < 120  # paper 62 s
        assert 100 < res.phase_seconds["alpha-beta"] < 250  # paper 167 s
        assert res.phase_seconds["alpha-beta"] > res.phase_seconds["beta-beta"]
        assert 4e12 < res.comm_bytes < 9e12  # paper ~6.2 TB
        assert 2.5 < res.aggregate_tflops < 5.5  # paper 3.4 TF/s
        assert 6.0 < res.sustained_gflops_per_msp < 11.0  # paper ~8

    def test_sustained_rate_below_peak(self, o_spec):
        res = TraceFCI(o_spec, X1Config(n_msps=16)).run_iteration()
        assert res.sustained_gflops_per_msp < 12.8

    def test_load_imbalance_small_fraction(self, c2_spec):
        res = TraceFCI(c2_spec, X1Config(n_msps=432)).run_iteration()
        assert res.load_imbalance < 0.15 * res.elapsed

    def test_fig5_near_perfect_speedup(self):
        spec = FCISpaceSpec(43, 4, 5, "D2h", atom_irreps(43), 0, name="O-")
        t128 = TraceFCI(spec, X1Config(n_msps=128)).run_iteration()
        t256 = TraceFCI(spec, X1Config(n_msps=256)).run_iteration()
        speedup = t128.elapsed / t256.elapsed
        assert speedup > 1.8  # paper: "almost perfect speedup"

    def test_invalid_algorithm(self, o_spec):
        with pytest.raises(ValueError):
            TraceFCI(o_spec, X1Config(n_msps=4), algorithm="mystery")
