"""Run the backend-conformance suite against every real-process substrate.

The suite itself lives in :mod:`tests.backend_conformance`; this file
binds it to the registered substrates (``shm``, ``sockets``) and wraps
every test in the leak check, so a backend that passes here is known to
honor the five-verb semantics, the decomposition's ownership invariants,
the bitwise sigma contract, and clean resource teardown.
"""

import pytest

from tests.backend_conformance import (
    ADAPTERS,
    BackendConformanceSuite,
    assert_no_new_leaks,
    leak_snapshot,
)


@pytest.fixture(params=sorted(ADAPTERS), ids=sorted(ADAPTERS))
def adapter(request):
    return ADAPTERS[request.param]()


@pytest.fixture(autouse=True)
def no_leaked_backend_resources():
    before = leak_snapshot()
    yield
    assert_no_new_leaks(before)


class TestBackendConformance(BackendConformanceSuite):
    """shm and sockets, one contract."""
