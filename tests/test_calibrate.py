"""Tests for the calibration ladder: MP2, CISD, CISD+Q against FCI."""

import numpy as np
import pytest

from repro import FCISolver
from repro.core import CIProblem, TruncatedCI, cisd, mp2_energy
from repro.scf import freeze_core


@pytest.fixture(scope="module")
def water_setup(water, water_ao, water_scf, water_mo):
    nf = 1
    mo = freeze_core(water_mo, nf)
    nocc = water.n_electrons // 2 - nf
    prob = CIProblem(mo, nocc, nocc)
    return water_scf, mo, nocc, prob


class TestMP2:
    def test_negative_correlation(self, water_scf, water_setup):
        scf, mo, nocc, _ = water_setup
        e2 = mp2_energy(mo, scf.mo_energy[1:], nocc)
        assert e2 < 0

    def test_bounded_by_fci(self, water, water_setup):
        scf, mo, nocc, prob = water_setup
        e2 = mp2_energy(mo, scf.mo_energy[1:], nocc)
        fci = FCISolver(water, "sto-3g", frozen_core=1).run()
        # MP2 recovers a sizeable fraction of the FCI correlation energy
        fci_corr = fci.energy - scf.energy
        assert 0.4 < e2 / fci_corr < 1.3

    def test_h2_mp2_exact_limit_not_reached(self, h2, h2_ao, h2_scf):
        from repro.scf import transform

        mo = transform(h2_ao, h2_scf.mo_coeff)
        e2 = mp2_energy(mo, h2_scf.mo_energy, 1)
        fci = FCISolver(h2, "sto-3g").run()
        assert e2 < 0
        assert e2 > fci.energy - h2_scf.energy  # MP2 above FCI correlation

    def test_validation(self, water_setup):
        _, mo, _, _ = water_setup
        with pytest.raises(ValueError):
            mp2_energy(mo, np.zeros(mo.n_orbitals), 0)
        with pytest.raises(ValueError):
            mp2_energy(mo, np.zeros(3), 2)


class TestTruncatedCI:
    def test_dimension_hierarchy(self, water_setup):
        *_, prob = water_setup
        dims = [TruncatedCI(prob, k).dimension for k in range(0, 5)]
        assert dims[0] == 1
        assert all(a < b for a, b in zip(dims, dims[1:]))

    def test_full_truncation_is_fci(self, water, water_setup):
        *_, prob = water_setup
        full = TruncatedCI(prob, prob.n_alpha + prob.n_beta)
        assert full.dimension == prob.dimension
        res = full.solve()
        ref = FCISolver(water, "sto-3g", frozen_core=1).run()
        assert abs(res.energy - ref.energy) < 1e-7

    def test_variational_ladder(self, water, water_setup):
        scf, mo, nocc, prob = water_setup
        e_cis = TruncatedCI(prob, 1).solve().energy
        e_cisd = TruncatedCI(prob, 2).solve().energy
        e_cisdt = TruncatedCI(prob, 3).solve().energy
        ref = FCISolver(water, "sto-3g", frozen_core=1).run().energy
        # monotone variational convergence toward FCI
        assert e_cis >= e_cisd - 1e-10
        assert e_cisd >= e_cisdt - 1e-10
        assert e_cisdt >= ref - 1e-10

    def test_cis_brillouin(self, water_setup):
        # Brillouin theorem: singles alone give no correlation for RHF refs
        scf, mo, nocc, prob = water_setup
        res = TruncatedCI(prob, 1).solve()
        assert abs(res.energy - scf.energy) < 1e-7

    def test_negative_level_rejected(self, water_setup):
        *_, prob = water_setup
        with pytest.raises(ValueError):
            TruncatedCI(prob, -1)

    def test_projection_idempotent(self, water_setup):
        *_, prob = water_setup
        t = TruncatedCI(prob, 2)
        C = prob.random_vector(0)
        assert np.allclose(t.project(t.project(C)), t.project(C))


class TestCISDQ:
    def test_q_correction_sign(self, water_setup):
        *_, prob = water_setup
        result, q = cisd(prob)
        assert result.solve.converged
        assert q < 0  # lowers the energy toward FCI

    def test_q_improves_on_cisd(self, water, water_setup):
        *_, prob = water_setup
        result, q = cisd(prob)
        ref = FCISolver(water, "sto-3g", frozen_core=1).run().energy
        err_cisd = abs(result.energy - ref)
        err_q = abs(result.energy + q - ref)
        assert err_q < err_cisd

    def test_c0_dominant_for_water(self, water_setup):
        *_, prob = water_setup
        result, _ = cisd(prob)
        assert result.c0 > 0.95  # single-reference molecule
