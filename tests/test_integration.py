"""Cross-module integration tests: whole pipelines exercised together."""

import numpy as np
import pytest

from repro import FCISolver, Molecule
from repro.core import (
    CIProblem,
    ModelSpacePreconditioner,
    auto_adjusted_solve,
    build_dense_hamiltonian,
    sigma_dgemm,
)
from repro.parallel import ParallelSigma
from repro.x1 import X1Config
from tests.conftest import make_random_mo


class TestSpinPenalty:
    def test_penalty_targets_singlet(self):
        # an Ms = 0 space whose lowest state is reachable either way; with a
        # penalty the solver must land on a spin-pure state
        mol = Molecule.from_atoms([("H", (0, 0, 0)), ("H", (0, 0, 2.8))])
        r = FCISolver(mol, "sto-3g", spin_penalty=0.5, model_space_size=4).run()
        assert abs(r.s_squared) < 1e-6

    def test_penalty_zero_is_default_path(self, h2):
        r0 = FCISolver(h2, "sto-3g").run()
        r1 = FCISolver(h2, "sto-3g", spin_penalty=0.0).run()
        assert abs(r0.energy - r1.energy) < 1e-10


class TestMOCSolverPath:
    def test_full_solve_with_moc_algorithm(self, water):
        r = FCISolver(water, "sto-3g", frozen_core=2, n_active=5, algorithm="moc").run()
        ref = FCISolver(water, "sto-3g", frozen_core=2, n_active=5).run()
        assert r.solve.converged
        assert abs(r.energy - ref.energy) < 1e-8


class TestSymmetryProjection:
    def test_projection_preserves_sigma_in_block(self):
        # sigma of a symmetry-pure vector stays in the block: projection is
        # a no-op on physical vectors
        mol = Molecule.from_atoms([("O", (0, 0, 0))], multiplicity=3)
        solver = FCISolver(mol, "sto-3g", frozen_core=1, point_group="D2h")
        prob, scf, mo = solver.build_problem()
        C = prob.random_vector(0)  # already projected
        s = sigma_dgemm(prob, C)
        assert np.allclose(s, prob.project_symmetry(s), atol=1e-10)

    def test_block_dimensions_sum(self):
        mol = Molecule.from_atoms([("O", (0, 0, 0))], multiplicity=3)
        total = 0
        group_dims = {}
        for irrep in ["Ag", "B1g", "B2g", "B3g", "Au", "B1u", "B2u", "B3u"]:
            solver = FCISolver(
                mol, "sto-3g", frozen_core=1, point_group="D2h",
                wavefunction_irrep=irrep,
            )
            prob, _, _ = solver.build_problem()
            group_dims[irrep] = prob.symmetry_dimension()
            total += prob.symmetry_dimension()
        # the blocks partition the full space
        assert total == prob.dimension

    def test_lowest_state_sits_in_reported_irrep(self):
        mol = Molecule.from_atoms([("O", (0, 0, 0))], multiplicity=3)
        energies = {}
        for irrep in ["Ag", "B1g", "B2g", "B3g"]:
            solver = FCISolver(
                mol, "sto-3g", frozen_core=1, point_group="D2h",
                wavefunction_irrep=irrep, max_iterations=80,
            )
            prob, _, _ = solver.build_problem()
            if prob.symmetry_dimension() == 0:
                continue  # empty blocks exist in a minimal basis
            energies[irrep] = solver.run().energy
        unrestricted = FCISolver(mol, "sto-3g", frozen_core=1).run()
        assert abs(min(energies.values()) - unrestricted.energy) < 1e-7


class TestParallelEndToEnd:
    def test_auto_method_on_simulated_machine(self):
        # the paper's full production path: auto single-vector + parallel
        # DGEMM sigma on the simulated X1, validated against dense eigh
        mo = make_random_mo(5, seed=55)
        mo.h += np.diag(np.linspace(-6, 5, 5)) * 4  # CI-like diagonal dominance
        prob = CIProblem(mo, 2, 2)
        H = build_dense_hamiltonian(mo, prob.space_a, prob.space_b)
        e0 = np.linalg.eigvalsh(H)[0]
        pre = ModelSpacePreconditioner(prob, 15)
        ps = ParallelSigma(prob, X1Config(n_msps=4))
        res = auto_adjusted_solve(
            lambda C: ps(C), pre.ground_state_guess(), pre, max_iterations=120
        )
        assert res.converged
        assert abs(res.energy - e0) < 1e-8
        # virtual time was accumulated across all sigma builds
        assert ps.report.n_calls == res.n_sigma
        assert ps.report.elapsed > 0

    def test_taskpool_knobs_do_not_change_results(self):
        mo = make_random_mo(5, seed=56)
        prob = CIProblem(mo, 3, 2)
        C = prob.random_vector(1)
        ref = sigma_dgemm(prob, C)
        for knobs in [
            dict(n_fine_per_proc=2, n_large_per_proc=1, n_small_per_proc=1),
            dict(n_fine_per_proc=32, n_large_per_proc=8, n_small_per_proc=8),
        ]:
            ps = ParallelSigma(prob, X1Config(n_msps=3), **knobs)
            assert np.max(np.abs(ps(C) - ref)) < 1e-10


class TestEvenTemperedPipeline:
    def test_fci_on_even_tempered_basis(self):
        # exercise the generated-basis path end to end: He atom with an
        # even-tempered s stack has a variational ladder in basis size
        from repro.basis import BasisSet, even_tempered_shells
        from repro.core import davidson_solve
        from repro.integrals import core_hamiltonian, eri, overlap
        from repro.scf import transform
        from repro.scf.rhf import AOIntegrals

        energies = []
        for n_s in [2, 4, 6]:
            shells = even_tempered_shells(
                np.zeros(3), 0, n_s=n_s, alpha0=0.25, beta=3.2
            )
            basis = BasisSet(shells)
            S = overlap(basis)
            h = core_hamiltonian(basis, [(2.0, np.zeros(3))])
            g = eri(basis)
            ao = AOIntegrals(S=S, hcore=h, g=g, enuc=0.0, nbf=basis.nbf)
            evals, evecs = np.linalg.eigh(S)
            X = evecs @ np.diag(evals**-0.5) @ evecs.T
            mo = transform(ao, X)
            prob = CIProblem(mo, 1, 1)
            pre = ModelSpacePreconditioner(prob, min(10, prob.dimension))
            res = davidson_solve(
                lambda C: sigma_dgemm(prob, C), pre.ground_state_guess(), pre
            )
            energies.append(res.energy)
        # variational in basis size, approaching He ground state (-2.9037)
        assert energies[0] > energies[1] > energies[2]
        assert -2.95 < energies[2] < -2.6
