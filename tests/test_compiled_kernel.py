"""The compiled (link-index) sigma kernel against the DGEMM reference.

``CompiledKernel`` promises bitwise identity with ``DgemmKernel`` in *both*
modes: the pure-NumPy fallback literally runs the DGEMM sweeps, and the
numba-jitted path runs operand-identical DGEMMs with scatters accumulated
in ``_segment_sum``'s left-to-right order.  Everything here therefore
asserts exact equality (``np.array_equal``), never closeness, regardless of
whether numba is importable in this environment (``HAVE_NUMBA``).
"""

import numpy as np
import pytest

from repro.core import FCISolver
from repro.core.kernels import (
    HAVE_NUMBA,
    CompiledKernel,
    DgemmKernel,
    kernel_names,
    make_kernel,
    sigma_sweeps,
)
from repro.core.plans import SigmaPlan
from repro.parallel import ParallelSigma
from repro.service.jobs import JobSpec
from tests.helpers import make_random_problem, stack_of_vectors

SPACES = [(5, 2, 2, 11), (5, 3, 1, 13), (6, 3, 2, 17), (6, 4, 1, 19), (4, 1, 1, 7)]


@pytest.fixture(scope="module", params=SPACES, ids=lambda s: f"{s[0]}o{s[1]}a{s[2]}b")
def problem(request):
    n, na, nb, seed = request.param
    return make_random_problem(n, na, nb, seed=seed)


class TestRegistry:
    def test_compiled_is_registered(self):
        assert "compiled" in kernel_names()
        plan = SigmaPlan.for_problem(make_random_problem(4, 2, 1, seed=3))
        kern = make_kernel("compiled", plan)
        assert isinstance(kern, CompiledKernel)
        assert kern.name == "compiled"
        assert kern.jitted is HAVE_NUMBA

    def test_sigma_sweeps_dispatch(self):
        assert sigma_sweeps("dgemm") != sigma_sweeps("compiled")
        with pytest.raises(ValueError, match="moc"):
            sigma_sweeps("moc")

    def test_solver_accepts_kernel_alias(self, h2):
        solver = FCISolver(h2, "sto-3g", kernel="compiled")
        assert solver.algorithm == "compiled"
        with pytest.raises(ValueError, match="registered sigma kernel"):
            FCISolver(h2, "sto-3g", kernel="nope")

    def test_parallel_accepts_compiled_rejects_moc(self, h2):
        FCISolver(h2, "sto-3g", kernel="compiled", parallel="simulated")
        with pytest.raises(ValueError, match="moc"):
            FCISolver(h2, "sto-3g", algorithm="moc", parallel="simulated")
        with pytest.raises(ValueError, match="kernel"):
            ParallelSigma(
                make_random_problem(4, 2, 1, seed=3), kernel="moc"
            )


class TestBitwiseAgainstDgemm:
    def test_batch_and_single_vector(self, problem):
        plan = SigmaPlan.for_problem(problem)
        ref = DgemmKernel(plan, block_columns=3)
        compiled = CompiledKernel(plan, block_columns=3)
        C_stack = stack_of_vectors(problem, 3, seed=101)
        assert np.array_equal(
            compiled.apply_batch(C_stack), ref.apply_batch(C_stack)
        )
        rng = np.random.default_rng(5)
        C = rng.standard_normal(problem.shape)
        assert np.array_equal(compiled.apply(C), ref.apply(C))

    @pytest.mark.parametrize("block_columns", [1, 2, 7])
    def test_every_block_width(self, problem, block_columns):
        """Narrow and ragged blocks exercise the hoisted-scratch reallocation."""
        plan = SigmaPlan.for_problem(problem)
        ref = DgemmKernel(plan, block_columns=block_columns)
        compiled = CompiledKernel(plan, block_columns=block_columns)
        C_stack = stack_of_vectors(problem, 2, seed=202)
        assert np.array_equal(
            compiled.apply_batch(C_stack), ref.apply_batch(C_stack)
        )

    def test_counters_match_dgemm(self, problem):
        plan = SigmaPlan.for_problem(problem)
        ref = DgemmKernel(plan, block_columns=3)
        compiled = CompiledKernel(plan, block_columns=3)
        C_stack = stack_of_vectors(problem, 2, seed=303)
        c_ref, c_new = ref.make_counters(), compiled.make_counters()
        ref.apply_batch(C_stack, c_ref)
        compiled.apply_batch(C_stack, c_new)
        assert c_ref.as_dict() == c_new.as_dict()


class TestSolverIntegration:
    def test_golden_h2_energy_bitwise(self, h2):
        """kernel="compiled" reproduces the dgemm solve exactly, not closely."""
        ref = FCISolver(h2, "sto-3g").run()
        res = FCISolver(h2, "sto-3g", kernel="compiled").run()
        assert res.energy == ref.energy
        assert res.solve.n_iterations == ref.solve.n_iterations
        assert np.array_equal(res.vector, ref.vector)

    def test_shm_backend_with_compiled_kernel_bitwise(self, problem):
        """rankwork's compiled sweeps stay bitwise-equal to serial dgemm."""
        ref = DgemmKernel(SigmaPlan.for_problem(problem), block_columns=3)
        rng = np.random.default_rng(17)
        C = rng.standard_normal(problem.shape)
        with ParallelSigma(
            problem, backend="shm", kernel="compiled", n_workers=2, block_columns=3
        ) as par:
            assert par.kernel_name == "compiled"
            assert np.array_equal(par(C), ref.apply(C))


class TestServiceKernelField:
    def test_kernel_is_answer_neutral_in_job_key(self):
        atoms = (("H", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, 1.4)))
        base = JobSpec(atoms=atoms)
        compiled = JobSpec(atoms=atoms, kernel="compiled")
        dgemm = JobSpec(atoms=atoms, kernel="dgemm")
        assert base.job_key == compiled.job_key == dgemm.job_key
        assert base.space_key == compiled.space_key
        # but algorithm (which admits numerically different kernels) is not
        assert JobSpec(atoms=atoms, algorithm="moc").job_key != base.job_key

    def test_kernel_field_round_trips_and_reaches_solver(self):
        atoms = (("H", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, 1.4)))
        spec = JobSpec.from_dict({"atoms": [["H", [0, 0, 0]], ["H", [0, 0, 1.4]]],
                                  "kernel": "compiled"})
        assert spec.kernel == "compiled"
        assert spec.to_dict()["kernel"] == "compiled"
        assert spec.solver_kwargs()["kernel"] == "compiled"
        assert "kernel" not in spec.canonical()
        assert spec.job_key == JobSpec(atoms=atoms).job_key

    def test_kernel_field_rejects_non_bitwise_kernels(self):
        atoms = (("H", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, 1.4)))
        with pytest.raises(ValueError, match="bitwise"):
            JobSpec(atoms=atoms, kernel="moc")
