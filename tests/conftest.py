"""Shared fixtures: cached molecules, AO integrals, and random MO integrals."""

from __future__ import annotations

import pytest

from repro.molecule import Molecule
from repro.scf import compute_ao_integrals, rhf, transform

# builders live in tests.helpers; re-exported here because many test files
# (and prototypes) import make_random_mo from tests.conftest
from tests.helpers import make_random_mo  # noqa: F401


@pytest.fixture(scope="session")
def h2():
    return Molecule.from_atoms([("H", (0, 0, 0)), ("H", (0, 0, 1.4))], name="H2")


@pytest.fixture(scope="session")
def heh_plus():
    return Molecule.from_atoms(
        [("He", (0, 0, 0)), ("H", (0, 0, 1.4632))], charge=1, name="HeH+"
    )


@pytest.fixture(scope="session")
def water():
    # near-equilibrium geometry, bohr
    return Molecule.from_atoms(
        [
            ("O", (0.0, 0.0, 0.2217)),
            ("H", (0.0, 1.4309, -0.8867)),
            ("H", (0.0, -1.4309, -0.8867)),
        ],
        name="H2O",
    )


@pytest.fixture(scope="session")
def oxygen_triplet():
    return Molecule.from_atoms([("O", (0, 0, 0))], multiplicity=3, name="O")


@pytest.fixture(scope="session")
def h2_ao(h2):
    return compute_ao_integrals(h2, "sto-3g")


@pytest.fixture(scope="session")
def water_ao(water):
    return compute_ao_integrals(water, "sto-3g")


@pytest.fixture(scope="session")
def h2_scf(h2, h2_ao):
    return rhf(h2, h2_ao)


@pytest.fixture(scope="session")
def water_scf(water, water_ao):
    return rhf(water, water_ao)


@pytest.fixture(scope="session")
def water_mo(water_ao, water_scf):
    return transform(water_ao, water_scf.mo_coeff)


@pytest.fixture(scope="session")
def random_mo5():
    return make_random_mo(5, seed=11)


@pytest.fixture(scope="session")
def random_mo6():
    return make_random_mo(6, seed=23)
