"""Tests for the size-ordered aggregated task pool (paper Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import build_task_pool, pool_statistics


class TestConstruction:
    def test_covers_all_units_exactly_once(self):
        costs = np.random.default_rng(0).uniform(1, 10, size=500)
        tasks = build_task_pool(costs, 8)
        covered = np.zeros(500, dtype=int)
        for t in tasks:
            covered[t.start : t.stop] += 1
        assert np.all(covered == 1)

    def test_total_cost_preserved(self):
        costs = np.random.default_rng(1).uniform(0.5, 3.0, size=300)
        tasks = build_task_pool(costs, 4)
        assert abs(sum(t.cost for t in tasks) - costs.sum()) < 1e-9

    def test_large_tasks_decreasing(self):
        costs = np.random.default_rng(2).uniform(1, 2, size=1000)
        tasks = build_task_pool(
            costs, 4, n_fine_per_proc=16, n_large_per_proc=3, n_small_per_proc=4
        )
        n_small = 4 * 4
        large = tasks[: len(tasks) - n_small]
        large_costs = [t.cost for t in large]
        assert large_costs == sorted(large_costs, reverse=True)

    def test_tail_is_fine_grained(self):
        costs = np.ones(1000)
        tasks = build_task_pool(
            costs, 4, n_fine_per_proc=16, n_large_per_proc=3, n_small_per_proc=4
        )
        n_small = 16
        tail = tasks[-n_small:]
        head = tasks[: len(tasks) - n_small]
        # tail tasks stay fine-grained: far below the aggregated task mean
        head_mean = np.mean([t.cost for t in head])
        assert max(t.cost for t in tail) < 0.5 * head_mean

    def test_fewer_units_than_fine_tasks(self):
        tasks = build_task_pool(np.ones(5), 8, n_fine_per_proc=16)
        covered = sorted((t.start, t.stop) for t in tasks)
        assert covered[0][0] == 0 and covered[-1][1] == 5

    def test_single_unit(self):
        tasks = build_task_pool([3.0], 4)
        assert len(tasks) == 1
        assert tasks[0].n_units == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            build_task_pool([], 4)
        with pytest.raises(ValueError):
            build_task_pool([1.0], 0)

    def test_zero_costs_handled(self):
        tasks = build_task_pool(np.zeros(100), 4)
        covered = np.zeros(100, dtype=int)
        for t in tasks:
            covered[t.start : t.stop] += 1
        assert np.all(covered == 1)

    @given(
        st.integers(10, 400),
        st.integers(1, 16),
        st.integers(0, 60000),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_property(self, n_units, n_procs, seed):
        costs = np.random.default_rng(seed).uniform(0.1, 5.0, size=n_units)
        tasks = build_task_pool(costs, n_procs)
        covered = np.zeros(n_units, dtype=int)
        for t in tasks:
            assert t.stop > t.start
            covered[t.start : t.stop] += 1
        assert np.all(covered == 1)


class TestStatistics:
    def test_pool_statistics(self):
        tasks = build_task_pool(np.ones(200), 4)
        stats = pool_statistics(tasks)
        assert stats["n_tasks"] == len(tasks)
        assert abs(stats["total_cost"] - 200) < 1e-9
        assert stats["max_cost"] >= stats["mean_cost"] >= stats["min_cost"]

    def test_empty_pool_returns_zeroed_stats(self):
        # regression: an empty pool (a rank with no work units) used to trip
        # numpy's zero-size reduction ValueError instead of reporting zeros
        stats = pool_statistics([])
        assert stats == {
            "n_tasks": 0,
            "total_cost": 0.0,
            "max_cost": 0.0,
            "min_cost": 0.0,
            "mean_cost": 0.0,
            "tail_cost": 0.0,
        }

    def test_imbalance_bound_by_tail(self):
        # with a fine tail, the worst-case imbalance is one tail-task cost
        costs = np.random.default_rng(5).uniform(1, 4, size=2000)
        tasks = build_task_pool(costs, 8, n_small_per_proc=6)
        stats = pool_statistics(tasks)
        assert stats["tail_cost"] <= stats["total_cost"] / 8


class TestCostValidation:
    def test_nan_cost_rejected_naming_unit(self):
        costs = np.ones(50)
        costs[17] = np.nan
        with pytest.raises(ValueError, match="unit 17.*non-finite"):
            build_task_pool(costs, 4)

    def test_inf_cost_rejected(self):
        costs = np.ones(50)
        costs[3] = np.inf
        with pytest.raises(ValueError, match="unit 3"):
            build_task_pool(costs, 4)

    def test_negative_cost_rejected_naming_unit(self):
        costs = np.ones(50)
        costs[42] = -2.0
        with pytest.raises(ValueError, match="unit 42.*negative"):
            build_task_pool(costs, 4)

    def test_zero_cost_allowed(self):
        costs = np.ones(50)
        costs[10] = 0.0
        tasks = build_task_pool(costs, 4)
        covered = np.zeros(50, dtype=int)
        for t in tasks:
            covered[t.start : t.stop] += 1
        assert np.all(covered == 1)
