"""Tests for abelian point groups and orbital irrep assignment."""

import numpy as np
import pytest

from repro.molecule import Molecule, PointGroup, ao_representation, assign_orbital_irreps
from repro.molecule.symmetry import POINT_GROUPS
from repro.scf import compute_ao_integrals, rhf


class TestPointGroup:
    @pytest.mark.parametrize("name", POINT_GROUPS)
    def test_all_groups_constructible(self, name):
        g = PointGroup.get(name)
        assert g.n_irreps == len(g.ops)
        assert len(g.irrep_names) == g.n_irreps

    def test_case_insensitive(self):
        assert PointGroup.get("d2h").name == "D2h"

    def test_unknown_group(self):
        with pytest.raises(KeyError):
            PointGroup.get("C3v")  # non-abelian, unsupported

    def test_identity_first(self):
        for name in POINT_GROUPS:
            assert PointGroup.get(name).ops[0] == 0

    def test_d2h_has_8_irreps(self):
        assert PointGroup.get("D2h").n_irreps == 8

    def test_totally_symmetric_is_zero(self):
        g = PointGroup.get("D2h")
        assert all(g.character(0, i) == 1 for i in range(len(g.ops)))

    def test_characters_are_signs(self):
        g = PointGroup.get("C2v")
        for r in range(g.n_irreps):
            for i in range(len(g.ops)):
                assert g.character(r, i) in (-1, 1)

    @pytest.mark.parametrize("name", POINT_GROUPS)
    def test_product_table_is_group(self, name):
        g = PointGroup.get(name)
        pt = g.product_table()
        n = g.n_irreps
        # identity element
        assert np.array_equal(pt[0], np.arange(n))
        # commutative
        assert np.array_equal(pt, pt.T)
        # each row is a permutation (latin square)
        for r in range(n):
            assert sorted(pt[r]) == list(range(n))
        # self-product is identity (all irreps are real, order-2 group)
        for r in range(n):
            assert pt[r, r] == 0

    def test_product_matches_characters(self):
        g = PointGroup.get("D2h")
        for a in range(8):
            for b in range(8):
                c = g.product(a, b)
                for i in range(8):
                    assert g.character(c, i) == g.character(a, i) * g.character(b, i)

    def test_irrep_id_lookup(self):
        g = PointGroup.get("D2h")
        assert g.irrep_id("Ag") == 0
        assert g.irrep_names[g.irrep_id("B1u")] == "B1u"
        with pytest.raises(KeyError):
            g.irrep_id("E1g")

    def test_op_names(self):
        g = PointGroup.get("Ci")
        assert g.op_names() == ["E", "i"]


class TestAORepresentation:
    def test_identity_op(self, water):
        basis = water.basis("sto-3g")
        T = ao_representation(basis, water.coordinates(), 0)
        assert np.allclose(T, np.eye(basis.nbf))

    def test_orthogonal(self, water):
        basis = water.basis("sto-3g")
        # water in the conftest geometry lies in the yz plane: sigma_yz (flip x)
        T = ao_representation(basis, water.coordinates(), 0b001)
        assert np.allclose(T @ T.T, np.eye(basis.nbf), atol=1e-12)

    def test_involution(self, water):
        basis = water.basis("sto-3g")
        T = ao_representation(basis, water.coordinates(), 0b010)  # flip y, swaps H
        assert np.allclose(T @ T, np.eye(basis.nbf), atol=1e-12)

    def test_geometry_violation_raises(self):
        mol = Molecule.from_atoms([("H", (0, 0, 0)), ("He", (0, 0, 1.0))], charge=1)
        basis = mol.basis("sto-3g")
        with pytest.raises(ValueError):
            ao_representation(basis, mol.coordinates(), 0b100)  # flip z

    def test_p_function_sign_flip(self):
        mol = Molecule.from_atoms([("O", (0, 0, 0))], multiplicity=3)
        basis = mol.basis("sto-3g")
        T = ao_representation(basis, mol.coordinates(), 0b001)  # flip x
        # px (function index 2) flips sign; py/pz (3, 4) do not
        assert T[2, 2] == -1.0
        assert T[3, 3] == 1.0 and T[4, 4] == 1.0

    def test_commutes_with_overlap(self, water, water_ao):
        basis = water.basis("sto-3g")
        T = ao_representation(basis, water.coordinates(), 0b001)
        S = water_ao.S
        assert np.allclose(T.T @ S @ T, S, atol=1e-10)


class TestOrbitalIrreps:
    def test_water_c2v_assignment(self, water, water_ao):
        group = PointGroup.get("C2v")
        # C2 axis must be z: conftest water has C2 along z? It lies in yz
        # plane with H mirrored in y: C2z maps H1<->H2? C2z flips x and y.
        scf = rhf(water, water_ao)
        basis = water.basis("sto-3g")
        C, irreps = assign_orbital_irreps(
            group, basis, water.coordinates(), scf.mo_coeff, water_ao.S, scf.mo_energy
        )
        assert irreps.shape == (7,)
        assert np.all(irreps >= 0)
        # water (1a1 2a1 1b2 3a1 1b1) occupied pattern: count of A1 among
        # first five orbitals should be 3
        names = [group.irrep_names[i] for i in irreps[:5]]
        assert names.count("A1") == 3

    def test_symmetrized_orbitals_transform_diagonally(self, water, water_ao):
        group = PointGroup.get("C2v")
        scf = rhf(water, water_ao)
        basis = water.basis("sto-3g")
        C, irreps = assign_orbital_irreps(
            group, basis, water.coordinates(), scf.mo_coeff, water_ao.S, scf.mo_energy
        )
        S = water_ao.S
        for gi, op in enumerate(group.ops):
            T = ao_representation(basis, water.coordinates(), op)
            diag = np.einsum("mi,mn,ni->i", C, S @ T, C)
            expected = [group.character(r, gi) for r in irreps]
            assert np.allclose(diag, expected, atol=1e-8)
