"""Tests for the DGEMM and MOC sigma kernels - the paper's core algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CIProblem,
    MOCCounters,
    SigmaCounters,
    build_dense_hamiltonian,
    sigma_dgemm,
    sigma_moc,
)
from tests.helpers import make_random_problem


@pytest.fixture(scope="module")
def cases():
    """(problem, dense H) pairs covering even/odd, open/closed shells."""
    out = []
    for n, na, nb, seed in [(5, 2, 2, 1), (5, 3, 2, 2), (4, 2, 1, 3), (5, 4, 4, 4), (4, 1, 0, 5)]:
        prob = make_random_problem(n, na, nb, seed=seed)
        H = build_dense_hamiltonian(prob.mo, prob.space_a, prob.space_b)
        out.append((prob, H))
    return out


class TestSigmaDGEMM:
    def test_matches_dense(self, cases):
        rng = np.random.default_rng(0)
        for prob, H in cases:
            C = rng.standard_normal(prob.shape)
            ref = (H @ C.ravel()).reshape(prob.shape)
            assert np.max(np.abs(sigma_dgemm(prob, C) - ref)) < 1e-10

    def test_linearity(self, cases):
        prob, _ = cases[0]
        rng = np.random.default_rng(1)
        C1 = rng.standard_normal(prob.shape)
        C2 = rng.standard_normal(prob.shape)
        s = sigma_dgemm(prob, 2.0 * C1 - 0.5 * C2)
        ref = 2.0 * sigma_dgemm(prob, C1) - 0.5 * sigma_dgemm(prob, C2)
        assert np.allclose(s, ref, atol=1e-10)

    def test_self_adjoint(self, cases):
        prob, _ = cases[1]
        rng = np.random.default_rng(2)
        X = rng.standard_normal(prob.shape)
        Y = rng.standard_normal(prob.shape)
        assert abs(np.vdot(Y, sigma_dgemm(prob, X)) - np.vdot(sigma_dgemm(prob, Y), X)) < 1e-9

    def test_block_size_independence(self, cases):
        prob, _ = cases[1]
        rng = np.random.default_rng(3)
        C = rng.standard_normal(prob.shape)
        s1 = sigma_dgemm(prob, C, block_columns=1)
        s2 = sigma_dgemm(prob, C, block_columns=3)
        s3 = sigma_dgemm(prob, C, block_columns=10_000)
        assert np.allclose(s1, s2, atol=1e-11)
        assert np.allclose(s1, s3, atol=1e-11)

    def test_shape_check(self, cases):
        prob, _ = cases[0]
        with pytest.raises(ValueError):
            sigma_dgemm(prob, np.zeros((1, 1)))

    def test_counters_populated(self, cases):
        prob, _ = cases[0]
        counters = SigmaCounters()
        sigma_dgemm(prob, np.zeros(prob.shape), counters=counters)
        d = counters.as_dict()
        assert d["dgemm_flops"] > 0
        assert d["gather_elements"] > 0
        assert d["scatter_elements"] > 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_vectors_match_dense(self, seed):
        prob = make_random_problem(4, 2, 2, seed=99)
        H = build_dense_hamiltonian(prob.mo, prob.space_a, prob.space_b)
        C = np.random.default_rng(seed).standard_normal(prob.shape)
        ref = (H @ C.ravel()).reshape(prob.shape)
        assert np.max(np.abs(sigma_dgemm(prob, C) - ref)) < 1e-10


class TestSigmaMOC:
    def test_matches_dense(self, cases):
        rng = np.random.default_rng(4)
        for prob, H in cases:
            C = rng.standard_normal(prob.shape)
            ref = (H @ C.ravel()).reshape(prob.shape)
            assert np.max(np.abs(sigma_moc(prob, C) - ref)) < 1e-10

    def test_agrees_with_dgemm(self, cases):
        rng = np.random.default_rng(5)
        for prob, _ in cases:
            C = rng.standard_normal(prob.shape)
            assert np.allclose(sigma_moc(prob, C), sigma_dgemm(prob, C), atol=1e-10)

    def test_counters(self, cases):
        prob, _ = cases[0]
        counters = MOCCounters()
        sigma_moc(prob, np.zeros(prob.shape), counters=counters)
        assert counters.matrix_elements_computed > 0
        assert counters.indexed_ops > 0

    def test_shape_check(self, cases):
        prob, _ = cases[0]
        with pytest.raises(ValueError):
            sigma_moc(prob, np.zeros((2, 2)))


class TestRealMolecule:
    def test_water_sigma_consistency(self, water_mo):
        # 10 electrons, 7 orbitals - a real chemistry case
        prob = CIProblem(water_mo, 5, 5)
        C = prob.random_vector(3)
        s1 = sigma_dgemm(prob, C)
        s2 = sigma_moc(prob, C)
        assert np.max(np.abs(s1 - s2)) < 1e-9

    def test_hf_determinant_energy(self, water_mo, water_scf):
        prob = CIProblem(water_mo, 5, 5)
        C = np.zeros(prob.shape)
        C[0, 0] = 1.0  # HF determinant (lowest orbitals, colex rank 0)
        sigma = sigma_dgemm(prob, C)
        e_elec = float(np.vdot(C, sigma))
        assert abs(e_elec + water_mo.e_core - water_scf.energy) < 1e-8
