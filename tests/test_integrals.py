"""Tests for one- and two-electron molecular integrals."""

import math

import numpy as np
import pytest

from repro.basis import BasisSet, Shell
from repro.integrals import (
    eri,
    hermite_expansion,
    kinetic,
    nuclear_attraction,
    overlap,
)
from repro.molecule import Molecule


def s_basis(centers_alphas):
    return BasisSet(
        [Shell(0, [a], [1.0], np.asarray(c, dtype=float)) for c, a in centers_alphas]
    )


class TestHermiteExpansion:
    def test_e000_gaussian_product(self):
        a, b, abx = 0.9, 0.4, 1.7
        E = hermite_expansion(0, 0, a, b, abx)
        mu = a * b / (a + b)
        assert abs(E[0, 0, 0] - math.exp(-mu * abx * abx)) < 1e-14

    def test_same_center_e_simple(self):
        E = hermite_expansion(1, 1, 1.0, 1.0, 0.0)
        # P = A = B: E_0^{10} = PA = 0
        assert abs(E[1, 0, 0]) < 1e-14
        assert abs(E[1, 0, 1] - 0.25) < 1e-14  # 1/(2p) with p = 2

    def test_shape(self):
        E = hermite_expansion(2, 1, 0.5, 0.5, 0.3)
        assert E.shape == (3, 2, 4)


class TestOverlap:
    def test_two_s_primitives_analytic(self):
        a, b, R = 0.8, 1.1, 1.3
        basis = s_basis([((0, 0, 0), a), ((0, 0, R), b)])
        S = overlap(basis)
        # normalized s-s overlap: exp(-mu R^2) * (2 sqrt(ab)/(a+b))^{3/2}
        mu = a * b / (a + b)
        ref = math.exp(-mu * R * R) * (2 * math.sqrt(a * b) / (a + b)) ** 1.5
        assert abs(S[0, 1] - ref) < 1e-12

    def test_symmetric_positive_definite(self, water):
        S = overlap(water.basis("sto-3g"))
        assert np.allclose(S, S.T, atol=1e-12)
        assert np.linalg.eigvalsh(S).min() > 0

    def test_unit_diagonal(self, water):
        S = overlap(water.basis("6-31g"))
        assert np.allclose(np.diag(S), 1.0, atol=1e-9)

    def test_szabo_h2_value(self, h2):
        S = overlap(h2.basis("sto-3g"))
        assert abs(S[0, 1] - 0.6593) < 2e-4  # Szabo & Ostlund table 3.4

    def test_translation_invariance(self):
        b1 = s_basis([((0, 0, 0), 0.7), ((0.5, -0.2, 1.0), 1.3)])
        shift = np.array([1.1, -2.2, 0.7])
        b2 = s_basis([(shift, 0.7), (np.array([0.5, -0.2, 1.0]) + shift, 1.3)])
        assert np.allclose(overlap(b1), overlap(b2), atol=1e-12)

    def test_p_orthogonal_to_s_same_center(self):
        basis = BasisSet(
            [
                Shell(0, [0.8], [1.0], np.zeros(3)),
                Shell(1, [1.3], [1.0], np.zeros(3)),
            ]
        )
        S = overlap(basis)
        assert np.allclose(S[0, 1:4], 0.0, atol=1e-14)


class TestKinetic:
    def test_single_s_analytic(self):
        # <s|T|s> = 3a/2 for a normalized s gaussian
        a = 0.75
        T = kinetic(s_basis([((0, 0, 0), a)]))
        assert abs(T[0, 0] - 1.5 * a) < 1e-12

    def test_single_p_analytic(self):
        # <p|T|p> = 5a/2 for a normalized p gaussian
        a = 1.2
        T = kinetic(BasisSet([Shell(1, [a], [1.0], np.zeros(3))]))
        assert np.allclose(np.diag(T), 2.5 * a, atol=1e-12)

    def test_symmetric(self, water):
        T = kinetic(water.basis("sto-3g"))
        assert np.allclose(T, T.T, atol=1e-12)

    def test_positive_definite(self, water):
        T = kinetic(water.basis("6-31g"))
        assert np.linalg.eigvalsh(T).min() > 0

    def test_szabo_h2_value(self, h2):
        T = kinetic(h2.basis("sto-3g"))
        assert abs(T[0, 0] - 0.7600) < 2e-4


class TestNuclearAttraction:
    def test_s_on_nucleus_analytic(self):
        # <s| -1/r |s> centered at nucleus = -2 sqrt(2a/pi)
        a = 0.9
        basis = s_basis([((0, 0, 0), a)])
        V = nuclear_attraction(basis, [(1.0, np.zeros(3))])
        ref = -2.0 * math.sqrt(2.0 * a / math.pi)
        assert abs(V[0, 0] - ref) < 1e-12

    def test_scales_with_charge(self, h2):
        basis = h2.basis("sto-3g")
        V1 = nuclear_attraction(basis, [(1.0, np.zeros(3))])
        V2 = nuclear_attraction(basis, [(2.0, np.zeros(3))])
        assert np.allclose(V2, 2 * V1, atol=1e-12)

    def test_additive_over_nuclei(self, h2):
        basis = h2.basis("sto-3g")
        c1, c2 = (1.0, np.zeros(3)), (1.0, np.array([0, 0, 1.4]))
        Vsum = nuclear_attraction(basis, [c1]) + nuclear_attraction(basis, [c2])
        Vboth = nuclear_attraction(basis, [c1, c2])
        assert np.allclose(Vsum, Vboth, atol=1e-12)

    def test_negative_diagonal(self, water):
        V = nuclear_attraction(water.basis("sto-3g"), water.charges())
        assert np.all(np.diag(V) < 0)


class TestERI:
    def test_szabo_h2_values(self, h2_ao):
        g = h2_ao.g
        assert abs(g[0, 0, 0, 0] - 0.7746) < 2e-4
        assert abs(g[0, 0, 1, 1] - 0.5697) < 2e-4
        assert abs(g[0, 1, 0, 1] - 0.2970) < 2e-4

    def test_8fold_symmetry(self, water_ao):
        g = water_ao.g
        assert np.allclose(g, g.transpose(1, 0, 2, 3), atol=1e-11)
        assert np.allclose(g, g.transpose(0, 1, 3, 2), atol=1e-11)
        assert np.allclose(g, g.transpose(2, 3, 0, 1), atol=1e-11)

    def test_positive_semidefinite_supermatrix(self, water_ao):
        n = water_ao.nbf
        M = water_ao.g.reshape(n * n, n * n)
        evals = np.linalg.eigvalsh(0.5 * (M + M.T))
        assert evals.min() > -1e-10

    def test_single_s_analytic(self):
        # self-repulsion of one normalized s gaussian: (ss|ss) = 2 sqrt(a/pi)
        a = 1.7
        g = eri(s_basis([((0, 0, 0), a)]))
        ref = 2.0 * math.sqrt(a / math.pi)
        assert abs(g[0, 0, 0, 0] - ref) < 1e-12

    def test_coulomb_decay_with_distance(self):
        a = 1.0
        vals = []
        for R in [2.0, 4.0, 8.0]:
            g = eri(s_basis([((0, 0, 0), a), ((0, 0, R), a)]))
            vals.append(g[0, 0, 1, 1])
        # (11|22) ~ 1/R at long range
        assert vals[0] > vals[1] > vals[2]
        assert abs(vals[2] * 8.0 - 1.0) < 0.05
