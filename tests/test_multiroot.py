"""Tests for the block (multi-root) Davidson solver."""

import numpy as np
import pytest

from repro.core import (
    CIProblem,
    ModelSpacePreconditioner,
    build_dense_hamiltonian,
    davidson_multiroot,
    sigma_dgemm,
)
from tests.conftest import make_random_mo


@pytest.fixture(scope="module")
def setup():
    mo = make_random_mo(6, seed=13)
    mo.h += np.diag(np.linspace(-4, 3, 6)) * 2
    prob = CIProblem(mo, 3, 3)
    H = build_dense_hamiltonian(mo, prob.space_a, prob.space_b)
    evals = np.linalg.eigvalsh(H)
    pre = ModelSpacePreconditioner(prob, 40)

    def sigma_fn(C):
        return sigma_dgemm(prob, C)

    def guesses(n):
        ev, evec = np.linalg.eigh(pre.h_model)
        out = []
        for i in range(n):
            g = np.zeros(prob.dimension)
            g[pre.selection] = evec[:, i]
            out.append(g.reshape(prob.shape))
        return out

    return prob, evals, pre, sigma_fn, guesses


class TestMultiRoot:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_lowest_k_eigenvalues(self, setup, k):
        prob, evals, pre, sigma_fn, guesses = setup
        res = davidson_multiroot(sigma_fn, guesses(2 * k), pre, n_roots=k)
        assert res.converged
        assert np.allclose(res.energies, evals[:k], atol=1e-7)

    def test_vectors_orthonormal(self, setup):
        prob, evals, pre, sigma_fn, guesses = setup
        res = davidson_multiroot(sigma_fn, guesses(6), pre, n_roots=3)
        V = np.array([v.ravel() for v in res.vectors])
        assert np.allclose(V @ V.T, np.eye(3), atol=1e-6)

    def test_residuals_small(self, setup):
        prob, evals, pre, sigma_fn, guesses = setup
        res = davidson_multiroot(sigma_fn, guesses(4), pre, n_roots=2)
        for e, v in zip(res.energies, res.vectors):
            r = sigma_fn(v) - e * v
            assert np.linalg.norm(r) < 1e-4

    def test_subspace_collapse_path(self, setup):
        prob, evals, pre, sigma_fn, guesses = setup
        res = davidson_multiroot(
            sigma_fn, guesses(4), pre, n_roots=2, max_subspace=7, max_iterations=120
        )
        assert res.converged
        assert np.allclose(res.energies, evals[:2], atol=1e-7)

    def test_history_monotone(self, setup):
        prob, evals, pre, sigma_fn, guesses = setup
        res = davidson_multiroot(sigma_fn, guesses(4), pre, n_roots=2)
        roots = np.array(res.history)
        # each tracked root decreases monotonically (variational)
        assert np.all(np.diff(roots[:, 0]) < 1e-8)

    def test_validation(self, setup):
        prob, evals, pre, sigma_fn, guesses = setup
        with pytest.raises(ValueError):
            davidson_multiroot(sigma_fn, [], pre)
        with pytest.raises(ValueError):
            davidson_multiroot(sigma_fn, guesses(1), pre, n_roots=3)


class TestSolverIntegration:
    def test_run_multiroot_spectrum(self, h2):
        from repro import FCISolver

        res = FCISolver(h2, "sto-3g", model_space_size=4).run_multiroot(3)
        assert res.converged
        # H2/STO-3G Ms=0 spectrum: X1Sg+ ground, b3Su+ triplet, then singlet
        assert res.energies[0] < res.energies[1] < res.energies[2]
        assert abs(res.energies[0] - (-1.137276)) < 1e-4
        assert abs(res.s_squared[0]) < 1e-6
        assert abs(res.s_squared[1] - 2.0) < 1e-6  # triplet
        gaps = res.excitation_energies()
        assert gaps[0] == 0.0 and np.all(gaps[1:] > 0)
