"""Chaos tests: fault injection, self-healing comms, resilient parallel sigma.

The contract under test is the robustness story end to end:

* a :class:`FaultPlan` is validated and its injector fully deterministic,
* the engine turns deaths into barrier releases and mutex-lease
  revocations, and dropped one-sided ops into the :data:`DROPPED` sentinel,
* the DDI layer retries drops/corruption within its budget (and raises
  :class:`DDICommError` past it),
* :class:`ParallelSigma` under every named chaos scenario still reproduces
  the serial sigma to machine precision,
* with faults disabled the instrumented code paths are bitwise identical
  to the original schedule.
"""

import numpy as np
import pytest

from repro.core import CIProblem, sigma_dgemm
from repro.faults import ChaosConfig, FaultInjector, FaultPlan, SCENARIOS, StallWindow
from repro.parallel import ParallelSigma
from repro.parallel.trace import FCISpaceSpec, TraceFCI, homonuclear_diatomic_irreps
from repro.faults import DEFAULT_MUTEX_LEASE
from repro.x1 import DDIArray, DDICommError, DROPPED, Engine, SymmetricHeap, X1Config

from tests.conftest import make_random_mo


@pytest.fixture(scope="module")
def ci():
    """Small CI problem + reference serial sigma."""
    mo = make_random_mo(6, seed=31)
    mo.h += np.diag(np.linspace(-3, 2, 6)) * 2
    problem = CIProblem(mo, 3, 3)
    C = problem.random_vector(0)
    return problem, C, sigma_dgemm(problem, C)


@pytest.fixture(scope="module")
def horizon(ci):
    """Virtual elapsed time of a fault-free 4-MSP resilient run."""
    problem, C, _ = ci
    ps = ParallelSigma(problem, X1Config(n_msps=4), resilient=True)
    ps(C)
    return ps.report.elapsed


class TestFaultPlan:
    def test_default_plan_injects_nothing(self):
        assert not FaultPlan().any_faults()

    def test_any_faults(self):
        assert FaultPlan(deaths={1: 1e-4}).any_faults()
        assert FaultPlan(drop_get=0.1).any_faults()
        assert FaultPlan(stalls=[StallWindow(0)]).any_faults()

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="probabilities"):
            FaultPlan(drop_get=1.5)
        with pytest.raises(ValueError, match="probabilities"):
            FaultPlan(io_error=-0.1)

    def test_corrupt_mode_validation(self):
        with pytest.raises(ValueError, match="corrupt_mode"):
            FaultPlan(corrupt_mode="garble")

    def test_stall_slowdown_validation(self):
        with pytest.raises(ValueError, match="slowdown"):
            FaultInjector(FaultPlan(stalls=[StallWindow(0, slowdown=0.5)]))

    def test_scenarios_build(self):
        for name in SCENARIOS:
            fi = ChaosConfig([name], seed=7).injector()
            assert fi.plan.any_faults(), name

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="meteor_strike"):
            ChaosConfig(["meteor_strike"])


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        decisions = []
        for _ in range(2):
            fi = FaultInjector(FaultPlan(seed=42, drop_get=0.3, drop_put=0.3))
            decisions.append([fi.should_drop(0, "get") for _ in range(50)])
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_stall_window_scales_compute(self):
        fi = FaultInjector(FaultPlan(stalls=[StallWindow(2, t0=1.0, t1=2.0, slowdown=4.0)]))
        assert fi.op_delay(2, "compute", 0.1, now=1.5) == pytest.approx(0.3)
        assert fi.op_delay(2, "compute", 0.1, now=0.5) == 0.0  # outside window
        assert fi.op_delay(1, "compute", 0.1, now=1.5) == 0.0  # other rank

    def test_corrupt_nan(self):
        fi = FaultInjector(FaultPlan(seed=1, corrupt=1.0, corrupt_mode="nan"))
        out = fi.maybe_corrupt(0, np.ones(8))
        assert np.isnan(out).sum() == 1

    def test_corrupt_bitflip(self):
        fi = FaultInjector(FaultPlan(seed=1, corrupt=1.0, corrupt_mode="bitflip"))
        data = np.ones(8)
        out = fi.maybe_corrupt(0, data)
        assert np.sum(out != data) == 1
        assert np.all(data == 1.0)  # original untouched

    def test_counts_accumulate(self):
        fi = FaultInjector(FaultPlan(seed=0, drop_get=1.0))
        fi.should_drop(0, "get")
        fi.note_recovered("retried_get", 2)
        counts = fi.counts()
        assert counts["faults.injected.dropped_get"] == 1.0
        assert counts["faults.recovered.retried_get"] == 2.0


class TestEngineFaults:
    def test_dropped_get_returns_sentinel(self):
        cfg = X1Config(n_msps=2, msps_per_node=1)  # cross-node -> remote
        heap = SymmetricHeap(2)
        heap.alloc("x", (4,))
        fi = FaultInjector(FaultPlan(drop_get=1.0))
        seen = {}

        def prog(proc, h):
            if proc.rank == 0:
                seen["res"] = yield proc.get(1, "x", key=slice(0, 2))
            else:
                yield proc.compute(1e-6)

        Engine(cfg, heap, faults=fi).run([prog, prog])
        assert seen["res"] is DROPPED
        assert fi.counts()["faults.injected.dropped_get"] == 1.0

    def test_death_releases_barrier(self):
        cfg = X1Config(n_msps=2)
        heap = SymmetricHeap(2)
        fi = FaultInjector(FaultPlan(deaths={0: 1e-4}))
        done = []

        def prog(proc, h):
            if proc.rank == 0:
                yield proc.compute(1.0)  # dies mid-compute, never reaches barrier
            else:
                yield proc.compute(1e-6)
            yield proc.barrier()
            done.append(proc.rank)

        eng = Engine(cfg, heap, faults=fi)
        eng.run([prog, prog])
        assert done == [1]
        assert eng.dead_ranks == frozenset({0})

    def test_mutex_lease_revoked_on_death(self):
        cfg = X1Config(n_msps=2)
        heap = SymmetricHeap(2)
        fi = FaultInjector(FaultPlan(deaths={0: 1e-4}))
        done = []

        def prog(proc, h):
            if proc.rank == 0:
                yield proc.lock(7)
                yield proc.compute(1.0)  # dies holding the mutex
                yield proc.unlock(7)
            else:
                yield proc.compute(1e-5)
                yield proc.lock(7)
                yield proc.unlock(7)
                done.append(proc.rank)

        Engine(cfg, heap, faults=fi).run([prog, prog])
        assert done == [1]
        assert fi.counts()["faults.recovered.mutex_revoked"] == 1.0

    def test_all_ranks_dead_is_not_deadlock(self):
        cfg = X1Config(n_msps=2)
        heap = SymmetricHeap(2)
        fi = FaultInjector(FaultPlan(deaths={0: 1e-4, 1: 1e-4}))

        def prog(proc, h):
            yield proc.compute(1.0)
            yield proc.barrier()

        eng = Engine(cfg, heap, faults=fi)
        eng.run([prog, prog])  # must terminate without RuntimeError
        assert eng.dead_ranks == frozenset({0, 1})


class TestDDIRetry:
    def _array(self, n_msps=4, msps_per_node=1, faults=None):
        heap = SymmetricHeap(n_msps)
        A = DDIArray(heap, "A", 8, 3, msps_per_node=msps_per_node, faults=faults)
        full = np.arange(24, dtype=float).reshape(8, 3)
        for r, (lo, hi) in enumerate(A.ranges):
            A.set_local(r, full[lo:hi])
        return heap, A, full

    def test_flaky_get_retried(self):
        fi = FaultInjector(FaultPlan(seed=3, drop_get=0.4))
        heap, A, full = self._array(faults=fi)
        got = {}

        def prog(proc, h):
            if proc.rank == 0:
                got["rows"] = yield from A.iget_rows(proc, np.arange(8))
            else:
                yield proc.compute(1e-6)

        Engine(X1Config(n_msps=4, msps_per_node=1), heap, faults=fi).run([prog] * 4)
        assert np.allclose(got["rows"], full)
        c = fi.counts()
        assert c.get("faults.injected.dropped_get", 0) > 0
        assert c.get("faults.recovered.retried_get", 0) > 0

    def test_permanent_drop_raises(self):
        fi = FaultInjector(FaultPlan(seed=3, drop_get=1.0, max_retries=3))
        heap, A, _ = self._array(faults=fi)
        err = {}

        def prog(proc, h):
            if proc.rank == 0:
                try:
                    yield from A.iget_rows(proc, np.arange(8))
                except DDICommError as e:
                    err["e"] = e
            else:
                yield proc.compute(1e-6)

        Engine(X1Config(n_msps=4, msps_per_node=1), heap, faults=fi).run([prog] * 4)
        assert "e" in err

    def test_corrupt_payload_refetched(self):
        fi = FaultInjector(FaultPlan(seed=0, corrupt=0.5, corrupt_mode="nan"))
        heap, A, full = self._array(faults=fi)
        got = {}

        def prog(proc, h):
            if proc.rank == 0:
                got["rows"] = yield from A.iget_rows(proc, np.arange(8))
            else:
                yield proc.compute(1e-6)

        Engine(X1Config(n_msps=4, msps_per_node=1), heap, faults=fi).run([prog] * 4)
        assert np.all(np.isfinite(got["rows"]))
        assert np.allclose(got["rows"], full)
        assert fi.counts().get("faults.recovered.refetched_corrupt", 0) > 0

    def test_distinct_mutex_namespaces(self):
        # two DDI arrays on one heap must not share node-mutex ids
        heap = SymmetricHeap(4)
        A = DDIArray(heap, "A", 8, 2, msps_per_node=2)
        B = DDIArray(heap, "B", 8, 2, msps_per_node=2)
        assert A.node_mutex(0) != B.node_mutex(0)


class TestChaosParallelSigma:
    @pytest.mark.parametrize("victim", [0, 1, 2, 3])
    @pytest.mark.parametrize("at", [0.25, 0.6])
    def test_dead_rank_recovers(self, ci, horizon, victim, at):
        problem, C, ref = ci
        fi = ChaosConfig(["dead_rank"], seed=1, victim=victim, at=at, horizon=horizon).injector()
        out = ParallelSigma(problem, X1Config(n_msps=4), faults=fi)(C)
        assert np.max(np.abs(out - ref)) < 1e-10
        c = fi.counts()
        assert c.get("faults.injected.rank_death", 0) == 1.0
        if at == 0.6:
            # deep enough into the run that the victim always leaves
            # uncommitted work behind for the survivors to requeue
            assert c.get("faults.recovered.task_requeue", 0) > 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flaky_network_recovers(self, ci, seed):
        problem, C, ref = ci
        fi = ChaosConfig(["flaky_network"], seed=seed).injector()
        out = ParallelSigma(problem, X1Config(n_msps=4), faults=fi)(C)
        assert np.max(np.abs(out - ref)) < 1e-10
        assert fi.counts().get("faults.recovered.retried_get", 0) > 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_corrupt_payload_recovers(self, ci, seed):
        problem, C, ref = ci
        fi = ChaosConfig(["corrupt_payload"], seed=seed, corrupt_prob=0.2).injector()
        out = ParallelSigma(problem, X1Config(n_msps=4), faults=fi)(C)
        assert np.max(np.abs(out - ref)) < 1e-10

    def test_bitflip_payload_deterministic(self, ci):
        # finite bit-flips are indistinguishable from valid data at the
        # comms layer (the solver watchdog owns them); the contract here is
        # that the run completes, stays finite where NaN flips occurred, and
        # is reproducible bit-for-bit from the seed
        problem, C, _ = ci
        outs = []
        for _ in range(2):
            fi = ChaosConfig(["bitflip_payload"], seed=2, corrupt_prob=0.2).injector()
            outs.append(ParallelSigma(problem, X1Config(n_msps=4), faults=fi)(C))
        assert np.array_equal(outs[0], outs[1])

    def test_slow_rank_exact(self, ci):
        problem, C, ref = ci
        fi = ChaosConfig(["slow_rank"], seed=0, victim=2, slowdown=8.0).injector()
        ps = ParallelSigma(problem, X1Config(n_msps=4), faults=fi)
        out = ps(C)
        assert np.max(np.abs(out - ref)) < 1e-10
        assert fi.counts().get("faults.injected.stall", 0) > 0

    def test_combined_death_and_flaky(self, ci, horizon):
        problem, C, ref = ci
        for seed in range(2):
            fi = ChaosConfig(
                ["dead_rank", "flaky_network"],
                seed=seed,
                victim=seed % 4,
                at=0.4,
                horizon=horizon,
            ).injector()
            out = ParallelSigma(problem, X1Config(n_msps=4), faults=fi)(C)
            assert np.max(np.abs(out - ref)) < 1e-10

    def test_two_simultaneous_deaths(self, ci):
        problem, C, ref = ci
        fi = FaultInjector(FaultPlan(deaths={1: 2e-4, 3: 4e-4}))
        out = ParallelSigma(problem, X1Config(n_msps=8), faults=fi)(C)
        assert np.max(np.abs(out - ref)) < 1e-10
        assert fi.counts()["faults.injected.rank_death"] == 2.0


class TestDisabledHooksBitwise:
    def test_sigma_and_schedule_identical(self, ci):
        """Idle fault hooks must not perturb a single bit of the result or
        a single virtual nanosecond of the schedule."""
        problem, C, _ = ci
        ps_plain = ParallelSigma(problem, X1Config(n_msps=4))
        ps_hooked = ParallelSigma(
            problem,
            X1Config(n_msps=4),
            faults=FaultInjector(FaultPlan()),
            resilient=False,
        )
        a = ps_plain(C)
        b = ps_hooked(C)
        assert np.array_equal(a, b)
        assert ps_plain.report.elapsed == ps_hooked.report.elapsed

    def test_resilient_faultfree_matches_serial(self, ci):
        problem, C, ref = ci
        out = ParallelSigma(problem, X1Config(n_msps=4), resilient=True)(C)
        assert np.max(np.abs(out - ref)) < 1e-10


class TestTraceModeFaults:
    @pytest.fixture(scope="class")
    def spec(self):
        return FCISpaceSpec(
            n_orbitals=28,
            n_alpha=6,
            n_beta=6,
            point_group="D2h",
            orbital_irreps=homonuclear_diatomic_irreps(28, seed=0),
            name="C2-like",
        )

    def test_idle_hooks_identical(self, spec):
        cfg = X1Config(n_msps=8)
        base = TraceFCI(spec, cfg).run_iteration()
        hooked = TraceFCI(spec, cfg, faults=FaultInjector(FaultPlan())).run_iteration()
        assert base.elapsed == hooked.elapsed

    def test_flaky_io_retried(self, spec):
        cfg = X1Config(n_msps=8)
        base = TraceFCI(spec, cfg).run_iteration()
        fi = ChaosConfig(["flaky_io"], seed=3).injector()
        r = TraceFCI(spec, cfg, faults=fi).run_iteration()
        assert r.elapsed >= base.elapsed
        c = fi.counts()
        assert c.get("faults.injected.io_error", 0) > 0
        assert c.get("faults.recovered.retried_io", 0) > 0


def test_default_mutex_lease_positive():
    assert DEFAULT_MUTEX_LEASE > 0
