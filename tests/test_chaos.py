"""The chaos package: scenario composition, the fuzzer, and its shrinker.

The load-bearing test here is the *mutation-catch proof*: with the
recovery machinery deliberately disabled (``_RECOVERY_ENABLED = False``),
the fuzzer must find a violating plan within a small seed range and shrink
it to a 1-minimal reproducer - evidence the property-based search can
catch real recovery bugs, not merely rubber-stamp a healthy stack.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.chaos import (
    CHAOS_SCENARIOS,
    ChaosEnv,
    FuzzBudget,
    FuzzCase,
    FuzzRunner,
    build_fault_plan,
    build_service_plan,
    chaos_scenario_names,
    register_chaos_scenario,
    service_scenario_names,
    shrink,
)
from repro.chaos import fuzz as fuzz_mod
from repro.chaos.cli import main as chaos_main
from repro.faults import FaultPlan, ServiceFaultPlan

ENV = ChaosEnv(n_ranks=4, horizon=1e-3, n_spans=8)


@pytest.fixture(scope="module")
def runner():
    return FuzzRunner(FuzzBudget())


class TestScenarioRegistry:
    def test_names_sorted_and_populated(self):
        names = chaos_scenario_names()
        assert names == sorted(names)
        assert {"correlated_failures", "adversarial_stalls", "calm"} <= set(names)
        assert {"worker_massacre", "torn_journals"} <= set(service_scenario_names())

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="correlated_failures"):
            build_fault_plan(["nope"], ENV, 1)
        with pytest.raises(ValueError, match="torn_journals"):
            build_service_plan(["nope"], ENV, 1)

    def test_duplicate_registration_rejected(self):
        name = chaos_scenario_names()[0]
        with pytest.raises(ValueError, match="already registered"):
            register_chaos_scenario(name)(lambda env, rng: {})

    def test_registration_roundtrip(self):
        @register_chaos_scenario("_test_only")
        def _gen(env, rng):
            return {"io_error": 0.25}

        try:
            plan = build_fault_plan(["_test_only"], ENV, 0)
            assert plan.io_error == 0.25
        finally:
            del CHAOS_SCENARIOS["_test_only"]


class TestComposition:
    def test_same_seed_same_plan(self):
        names = ["correlated_failures", "adversarial_stalls", "flaky_interconnect"]
        a = build_fault_plan(names, ENV, 7)
        b = build_fault_plan(names, ENV, 7)
        assert a.to_dict() == b.to_dict()
        c = build_fault_plan(names, ENV, 8)
        assert c.to_dict() != a.to_dict()

    def test_compose_merges_deaths_and_stalls(self):
        plan = build_fault_plan(
            ["correlated_failures", "adversarial_stalls", "heavy_tail_latency"], ENV, 3
        )
        assert plan.deaths  # correlated_failures contributed
        assert plan.stalls  # adversarial_stalls contributed
        assert plan.delay_prob > 0  # heavy_tail_latency contributed

    def test_stalls_align_to_span_boundaries(self):
        dt = ENV.horizon / ENV.n_spans
        for seed in range(5):
            plan = build_fault_plan(["adversarial_stalls"], ENV, seed)
            for w in plan.stalls:
                assert abs(w.t0 / dt - round(w.t0 / dt)) < 1e-9

    def test_calm_is_empty(self):
        assert not build_fault_plan(["calm"], ENV, 5).any_faults()

    def test_service_plan_composes(self):
        plan = build_service_plan(["worker_massacre", "torn_journals"], ENV, 2)
        assert plan.worker_crash > 0
        assert plan.journal_torn_write > 0


class TestPlanJSONRoundTrip:
    def test_fault_plan_roundtrip(self):
        plan = build_fault_plan(
            ["correlated_failures", "adversarial_stalls", "silent_bitflips"], ENV, 13
        )
        d = json.loads(json.dumps(plan.to_dict()))  # through real JSON
        back = FaultPlan.from_dict(d)
        assert back.to_dict() == plan.to_dict()
        assert back.deaths == plan.deaths  # int keys restored

    def test_infinite_stall_end_roundtrips(self):
        from repro.faults import StallWindow

        plan = FaultPlan(stalls=[StallWindow(rank=1, t0=0.0, t1=float("inf"), slowdown=3.0)])
        back = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert back.stalls[0].t1 == float("inf")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict({"seed": 0, "warp_drive": 1.0})

    def test_service_plan_roundtrip(self):
        plan = ServiceFaultPlan(seed=4, worker_crash=0.2, result_corrupt=0.5)
        back = ServiceFaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert back.to_dict() == plan.to_dict()


class TestBudget:
    def test_clamp_bounds_probabilities_and_deaths(self):
        budget = FuzzBudget(max_deaths=1, max_drop=0.05, max_io_error=0.1)
        plan = FaultPlan(
            seed=1, deaths={0: 1e-4, 2: 2e-4}, drop_get=0.5, drop_put=0.5, io_error=0.9
        )
        clamped = budget.clamp(plan)
        assert len(clamped.deaths) == 1
        assert clamped.drop_get <= 0.05 and clamped.drop_put <= 0.05
        assert clamped.io_error <= 0.1
        assert clamped.max_retries >= budget.min_retries


class TestGeneration:
    def test_same_seed_same_case(self, runner):
        for seed in (0, 3, 9, 17):
            a = runner.case_for_seed(seed)
            b = runner.case_for_seed(seed)
            assert a.to_dict() == b.to_dict()

    def test_case_json_roundtrip(self, runner):
        for seed in range(20):
            case = runner.case_for_seed(seed)
            back = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
            assert back.to_dict() == case.to_dict()

    def test_all_harnesses_reachable(self, runner):
        kinds = {runner.case_for_seed(s).harness for s in range(60)}
        assert kinds == {"sigma", "solver", "service"}


class TestInvariantsHold:
    """A small deterministic batch of the CI invariants (the full 200-seed
    sweep runs in the chaos-fuzz CI job; this keeps the tier-1 suite fast)."""

    def test_sigma_batch_clean(self, runner):
        report = runner.fuzz(
            [s for s in range(40) if runner.case_for_seed(s).harness == "sigma"],
            do_shrink=False,
        )
        assert report.violations == []
        assert report.executed >= 20

    def test_solver_case_clean(self, runner):
        seeds = [s for s in range(80) if runner.case_for_seed(s).harness == "solver"]
        report = runner.fuzz(seeds[:2], do_shrink=False)
        assert report.violations == []
        assert report.executed == 2


class TestMutationCatch:
    def test_disabled_recovery_is_caught_and_shrunk(self, runner, monkeypatch):
        monkeypatch.setattr(fuzz_mod, "_RECOVERY_ENABLED", False)
        found = None
        for seed in range(60):
            case = runner.case_for_seed(seed)
            if case.harness != "sigma" or not case.plan.any_faults():
                continue
            if case.plan.corrupt and case.plan.corrupt_mode == "bitflip":
                continue  # bitflip lane only asserts reproducibility
            failure = runner.run_case(case)
            if failure is not None:
                found = (case, failure)
                break
        assert found is not None, "fuzzer failed to catch disabled recovery"
        case, (invariant, _detail) = found
        assert invariant in ("exact_recovery", "no_crash")

        shrunk, iters = shrink(case, runner.run_case)
        assert iters > 0
        # still failing, and 1-minimal: every further simplification passes
        assert runner.run_case(shrunk) is not None
        for candidate in fuzz_mod._shrink_moves(shrunk):
            assert runner.run_case(candidate) is None
        # and the healthy stack is exonerated by the same reproducer
        monkeypatch.setattr(fuzz_mod, "_RECOVERY_ENABLED", True)
        assert runner.run_case(shrunk) is None

    def test_reproducer_persisted_and_replayable(self, runner, monkeypatch, tmp_path):
        monkeypatch.setattr(fuzz_mod, "_RECOVERY_ENABLED", False)
        seeds = [
            s
            for s in range(60)
            if runner.case_for_seed(s).harness == "sigma"
            and runner.case_for_seed(s).plan.deaths
        ]
        report = runner.fuzz(seeds[:3], reproducer_dir=tmp_path)
        assert report.violations
        files = sorted(tmp_path.glob("seed*.json"))
        assert files
        payload = json.loads(files[0].read_text())
        assert "shrunk" in payload and "invariant" in payload
        # the persisted reproducer replays green once recovery is back on
        monkeypatch.setattr(fuzz_mod, "_RECOVERY_ENABLED", True)
        rc = chaos_main(["replay", "--file", str(files[0])])
        assert rc == 0


class TestCLI:
    def test_scenarios_command(self, capsys):
        assert chaos_main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "correlated_failures" in out and "worker_massacre" in out

    def test_fuzz_command_small_batch(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        rc = chaos_main(
            ["fuzz", "--seeds", "4", "--start", "0", "--report", str(report_path)]
        )
        assert rc == 0
        report = json.loads(report_path.read_text())
        assert report["executed"] == 4
        assert report["violations"] == []
        capsys.readouterr()  # drain

    def test_replay_seed(self, capsys):
        assert chaos_main(["replay", "3"]) == 0
        capsys.readouterr()

    def test_min_executed_gate(self, capsys):
        rc = chaos_main(
            ["fuzz", "--seeds", "5", "--time-budget", "0", "--min-executed", "5"]
        )
        assert rc == 2
        capsys.readouterr()

    def test_module_entrypoint(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.chaos", "scenarios"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "adversarial_stalls" in proc.stdout
