"""Tests for the discrete-event SPMD engine: clocks, sync, contention."""

import numpy as np
import pytest

from repro.x1 import Engine, SymmetricHeap, X1Config


def run(cfg, heap, progs):
    eng = Engine(cfg, heap)
    stats = eng.run(progs)
    return eng, stats


class TestCompute:
    def test_clock_advance(self):
        cfg = X1Config(n_msps=2)
        heap = SymmetricHeap(2)

        def prog(proc, h):
            yield proc.compute(0.5)
            yield proc.compute(0.25)

        eng, stats = run(cfg, heap, [prog, prog])
        assert abs(eng.elapsed() - 0.75) < 1e-12
        assert all(abs(s.compute - 0.75) < 1e-12 for s in stats)

    def test_flop_accounting(self):
        cfg = X1Config(n_msps=1)
        heap = SymmetricHeap(1)

        def prog(proc, h):
            yield proc.compute(1.0, flops=5e9, label="work")

        eng, stats = run(cfg, heap, [prog])
        assert stats[0].flops == 5e9
        assert stats[0].phase_times["work"] == 1.0
        assert stats[0].phase_flops["work"] == 5e9


class TestGetPut:
    def test_numeric_get_returns_copy(self):
        cfg = X1Config(n_msps=2)
        heap = SymmetricHeap(2)
        heap.alloc("x", (4,))
        heap.segment("x", 1)[:] = [1, 2, 3, 4]
        seen = {}

        def prog(proc, h):
            if proc.rank == 0:
                data = yield proc.get(1, "x", key=slice(1, 3))
                seen["data"] = data
            else:
                yield proc.compute(0.0)

        run(cfg, heap, [prog, prog])
        assert np.allclose(seen["data"], [2, 3])

    def test_put_applies(self):
        cfg = X1Config(n_msps=2)
        heap = SymmetricHeap(2)
        heap.alloc("x", (4,))

        def prog(proc, h):
            if proc.rank == 0:
                yield proc.put(1, "x", key=slice(0, 2), value=np.array([9.0, 8.0]))
            else:
                yield proc.barrier()
            if proc.rank == 0:
                yield proc.barrier()

        run(cfg, heap, [prog, prog])
        assert np.allclose(heap.segment("x", 1)[:2], [9, 8])

    def test_remote_slower_than_local(self):
        cfg = X1Config(n_msps=8, msps_per_node=4)

        def make(target):
            def prog(proc, h):
                yield proc.get(target, "", n_bytes=1e8)

            return prog

        h1 = SymmetricHeap(8)
        eng1, _ = run(cfg, h1, [make(0)] + [make(r) for r in range(1, 8)])
        t_local = eng1.stats[0].finish_time
        h2 = SymmetricHeap(8)
        eng2, _ = run(cfg, h2, [make(7)] + [make(r) for r in range(1, 8)])
        t_remote = eng2.stats[0].finish_time
        assert t_remote > t_local

    def test_port_contention_serializes(self):
        # many ranks pulling from rank 0 must queue at its memory port
        cfg = X1Config(n_msps=8, msps_per_node=8)
        heap = SymmetricHeap(8)

        def prog(proc, h):
            if proc.rank != 0:
                yield proc.get(0, "", n_bytes=1e9)
            else:
                yield proc.compute(0.0)

        eng, stats = run(cfg, heap, [prog] * 8)
        t_one = 1e9 / cfg.node_bandwidth
        # 7 transfers serialized at the port: elapsed ~= 7x single transfer
        assert eng.elapsed() > 6 * t_one
        assert sum(s.wait for s in stats) > 0


class TestAtomicsAndLocks:
    def test_fadd_returns_old_values_uniquely(self):
        cfg = X1Config(n_msps=6)
        heap = SymmetricHeap(6)
        heap.alloc("ctr", (1,), dtype=np.int64)
        got = []

        def prog(proc, h):
            for _ in range(3):
                old = yield proc.fadd(0, "ctr", key=0, value=1)
                got.append(int(old))

        run(cfg, heap, [prog] * 6)
        assert sorted(got) == list(range(18))
        assert heap.segment("ctr", 0)[0] == 18

    def test_mutex_mutual_exclusion(self):
        cfg = X1Config(n_msps=4)
        heap = SymmetricHeap(4)
        heap.alloc("shared", (1,))
        order = []

        def prog(proc, h):
            yield proc.lock(1)
            order.append(("in", proc.rank))
            yield proc.compute(0.1)
            order.append(("out", proc.rank))
            yield proc.unlock(1)

        eng, stats = run(cfg, heap, [prog] * 4)
        # critical sections never interleave
        inside = 0
        for tag, _ in order:
            inside += 1 if tag == "in" else -1
            assert 0 <= inside <= 1
        # all serialized: elapsed >= 4 * 0.1
        assert eng.elapsed() >= 0.4

    def test_unlock_without_lock_raises(self):
        cfg = X1Config(n_msps=1)
        heap = SymmetricHeap(1)

        def prog(proc, h):
            yield proc.unlock(3)

        with pytest.raises(RuntimeError):
            run(cfg, heap, [prog])


class TestBarrier:
    def test_synchronizes_clocks(self):
        cfg = X1Config(n_msps=3)
        heap = SymmetricHeap(3)
        after = {}

        def prog(proc, h):
            yield proc.compute(0.1 * (proc.rank + 1))
            yield proc.barrier()
            after[proc.rank] = True
            yield proc.compute(0.0)

        eng, stats = run(cfg, heap, [prog] * 3)
        # slowest rank had 0.3 compute; all waited for it
        assert eng.elapsed() >= 0.3
        assert stats[0].wait >= 0.2 - 1e-9

    def test_multiple_barriers(self):
        cfg = X1Config(n_msps=4)
        heap = SymmetricHeap(4)

        def prog(proc, h):
            for _ in range(5):
                yield proc.compute(0.01)
                yield proc.barrier()

        eng, _ = run(cfg, heap, [prog] * 4)
        assert eng.elapsed() >= 0.05

    def test_barrier_with_early_finishers(self):
        # rank 1 exits before the others barrier: engine must not hang
        cfg = X1Config(n_msps=3)
        heap = SymmetricHeap(3)

        def prog(proc, h):
            if proc.rank == 1:
                yield proc.compute(0.01)
                return
            yield proc.compute(0.02)
            yield proc.barrier()

        eng, _ = run(cfg, heap, [prog] * 3)
        assert eng.elapsed() >= 0.02


class TestIO:
    def test_shared_filesystem_serializes(self):
        cfg = X1Config(n_msps=4)
        heap = SymmetricHeap(4)

        def prog(proc, h):
            yield proc.io(246e6, write=True)  # 1 s each at paper write rate

        eng, stats = run(cfg, heap, [prog] * 4)
        assert abs(eng.elapsed() - 4.0) < 0.1
        assert sum(s.io for s in stats) > 3.9


class TestMisc:
    def test_heap_shapes(self):
        heap = SymmetricHeap(3)
        heap.alloc("a", (2, 3))
        assert heap.segment("a", 2).shape == (2, 3)
        with pytest.raises(KeyError):
            heap.alloc("a", (1,))

    def test_trace_segments_are_none(self):
        heap = SymmetricHeap(2)
        heap.alloc("big", (10,), numeric=False)
        assert heap.segment("big", 0) is None
        assert not heap.is_numeric("big")

    def test_load_imbalance_metric(self):
        cfg = X1Config(n_msps=2)
        heap = SymmetricHeap(2)

        def prog(proc, h):
            yield proc.compute(1.0 if proc.rank == 0 else 2.0)

        eng, _ = run(cfg, heap, [prog] * 2)
        assert abs(eng.load_imbalance() - 0.5) < 1e-12
